"""Perf-regression guard for the substrate hot paths.

Times each hot path with plain ``perf_counter`` loops (no pytest needed),
producing machine-readable ops/sec so successive PRs have a throughput
trajectory to compare against.

Usage::

    python benchmarks/perf_guard.py              # measure and print
    python benchmarks/perf_guard.py --update     # also (re)write BENCH_PERF.json
    python benchmarks/perf_guard.py --check      # exit 1 if any hot path is
                                                 # >30% below the committed
                                                 # BENCH_PERF.json baseline

Numbers are machine-relative: ``--check`` is meant to compare two runs on
the *same* machine (pre/post a change, or in one CI job), not to compare a
laptop against the committed numbers from another host.  Regenerate the
baseline with ``--update`` when switching machines.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.netsim import (  # noqa: E402
    Host,
    Network,
    Simulator,
    burst_loss_profile,
)
from repro.packets import (  # noqa: E402
    ACK,
    ICMPMessage,
    IPPacket,
    PSH,
    SYN,
    TCPSegment,
    UDPDatagram,
)
from repro.rules import (  # noqa: E402
    DEFAULT_VARIABLES,
    RuleEngine,
    StreamReassembler,
    censor_ruleset_text,
    mvr_detection_ruleset_text,
    surveillance_interest_ruleset_text,
)

BASELINE_PATH = REPO_ROOT / "BENCH_PERF.json"
DEFAULT_TOLERANCE = 0.30
MIN_SECONDS = 0.25

# -- shared workload builders (also used by bench_perf.py) ---------------------


def full_ruleset_text() -> str:
    return "\n".join(
        [
            censor_ruleset_text(),
            mvr_detection_ruleset_text(),
            surveillance_interest_ruleset_text(),
        ]
    )


def http_packet(index: int = 0) -> IPPacket:
    return IPPacket(
        src="10.1.0.5",
        dst="203.0.113.10",
        payload=TCPSegment(
            sport=40000 + index % 1000,
            dport=80,
            seq=100,
            ack=500,
            flags=PSH | ACK,
            payload=b"GET /index.html HTTP/1.1\r\nHost: example.org\r\n\r\n",
        ),
    )


def wide_port_ruleset_text(n_rules: int = 200) -> str:
    """One content rule per port across a wide spread — the workload where a
    linear scan pays for every rule and the dispatch index pays for one."""
    lines = []
    for i in range(n_rules):
        port = 1000 + i
        lines.append(
            f'alert tcp any any -> any {port} '
            f'(msg:"PERF svc {port}"; content:"token{port}"; sid:{600000 + i};)'
        )
    # A few catch-alls so the candidate list is never empty.
    lines.append('alert tcp any any -> any any (msg:"PERF tcp any"; flags:S; sid:699998;)')
    lines.append('alert ip any any -> any any (msg:"PERF ip any"; dsize:>4000; sid:699999;)')
    return "\n".join(lines)


def wide_port_packets(count: int = 200) -> list:
    """Traffic spread across the rule ports; payload hits ~1 rule in 8."""
    packets = []
    for i in range(count):
        port = 1000 + (i * 7) % 200
        body = f"token{port}".encode() if i % 8 == 0 else b"GET / HTTP/1.1\r\n\r\n"
        packets.append(
            IPPacket(
                src=f"10.1.{i % 4}.{i % 250 + 1}",
                dst="203.0.113.10",
                payload=TCPSegment(
                    sport=30000 + i, dport=port, seq=1, flags=PSH | ACK, payload=body
                ),
            )
        )
    return packets


def mixed_protocol_packets(count: int = 120) -> list:
    """A TCP/UDP/ICMP mix, matching transit traffic at the tap."""
    packets = []
    for i in range(count):
        kind = i % 3
        src = f"10.1.0.{i % 200 + 1}"
        if kind == 0:
            packets.append(http_packet(i))
        elif kind == 1:
            packets.append(
                IPPacket(
                    src=src,
                    dst="8.8.8.8",
                    payload=UDPDatagram(
                        sport=20000 + i,
                        dport=53,
                        payload=b"\x12\x34\x01\x00\x00\x01\x00\x00\x00\x00\x00\x00"
                        b"\x07example\x03org\x00\x00\x0f\x00\x01",
                    ),
                )
            )
        else:
            packets.append(
                IPPacket(src=src, dst="203.0.113.10", payload=ICMPMessage.echo_request())
            )
    return packets


# -- measurement ---------------------------------------------------------------


def _measure(
    batch_fn,
    units_per_batch: int,
    min_seconds: float = MIN_SECONDS,
    warmup_batches: int = 1,
) -> float:
    """Run ``batch_fn`` until ``min_seconds`` elapse; return units/sec.

    ``warmup_batches`` runs are discarded first.  Rule-engine paths need a
    substantial warmup: each batch advances simulated time 1 s, and
    throughput only stabilizes once the longest threshold window (60 s)
    has filled and started evicting — measuring earlier under-reports the
    steady state by ~30%.
    """
    for _ in range(warmup_batches):
        batch_fn()
    batches = 0
    start = time.perf_counter()
    while True:
        batch_fn()
        batches += 1
        elapsed = time.perf_counter() - start
        if elapsed >= min_seconds:
            return batches * units_per_batch / elapsed


def _bench_packet_serialization() -> tuple:
    packet = http_packet()
    return lambda: [packet.to_bytes() for _ in range(100)], 100, "packets", 1


def _bench_packet_parsing() -> tuple:
    raw = http_packet().to_bytes()
    return lambda: [IPPacket.from_bytes(raw) for _ in range(100)], 100, "packets", 1


def _bench_packet_wire_length() -> tuple:
    packet = http_packet()
    return lambda: [packet.wire_length() for _ in range(1000)], 1000, "packets", 1


def _bench_checksum_throughput() -> tuple:
    """Raw checksum arithmetic on an MTU-sized odd-length buffer (the odd
    tail exercises the no-copy padding path)."""
    from repro.packets import internet_checksum

    data = bytes(range(256)) * 5 + b"\x7f"  # 1281 B
    return lambda: [internet_checksum(data) for _ in range(100)], 100, "checksums", 1


def _bench_packet_roundtrip_cached() -> tuple:
    """The serialize half of a parse -> forward -> serialize round trip.

    Parsing seeds each packet's wire cache with the source bytes, so
    re-serializing a parsed-but-unmutated packet should cost a cache probe,
    not a rebuild — this bench is the direct measurement of that claim."""
    raw = http_packet().to_bytes()
    packets = [IPPacket.from_bytes(raw) for _ in range(100)]
    return lambda: [packet.to_bytes() for packet in packets], 100, "packets", 1


def _bench_capture_serialize() -> tuple:
    """A TTL-rewritten packet stream hitting three capture taps: each tap
    stores ``packet.to_bytes()``, so per packet this costs one 20-byte
    header rebuild (the TTL write invalidates the IP cache, not the
    transport's) plus two cache hits."""
    from repro.netsim import PacketCapture

    packets = [http_packet(i) for i in range(40)]
    for packet in packets:
        packet.to_bytes()
    taps = [PacketCapture() for _ in range(3)]

    class _Ctx:
        now = 0.0

        class node:
            name = "tap"

    ctx = _Ctx()

    def batch():
        for packet in packets:
            packet.ttl = 64
            for tap in taps:
                tap.process(packet, ctx)
        for tap in taps:
            tap.packets.clear()

    return batch, len(packets) * len(taps), "captures", 1


def _bench_rule_engine_full_ruleset() -> tuple:
    engine = RuleEngine.from_text(full_ruleset_text(), variables=DEFAULT_VARIABLES)
    packets = [http_packet(i) for i in range(100)]
    state = {"now": 0.0}

    def batch():
        state["now"] += 1.0
        for packet in packets:
            engine.process(packet, state["now"])

    return batch, len(packets), "packets", 80


def _bench_rule_engine_full_instrumented() -> tuple:
    """The full-ruleset workload with a live metrics registry installed.

    Tracked alongside ``rule_engine_full_ruleset`` so the cost of
    instrumentation-on is a number in BENCH_PERF.json, not folklore; the
    gap between the two benches is the observability overhead.
    """
    from repro.obs import MetricsRegistry, use_registry

    with use_registry(MetricsRegistry()):
        engine = RuleEngine.from_text(full_ruleset_text(), variables=DEFAULT_VARIABLES)
    packets = [http_packet(i) for i in range(100)]
    state = {"now": 0.0}

    def batch():
        state["now"] += 1.0
        for packet in packets:
            engine.process(packet, state["now"])

    return batch, len(packets), "packets", 80


def _bench_rule_engine_batch() -> tuple:
    """The full-ruleset workload through ``process_batch`` — the path the
    surveillance tap takes.  Compared with ``rule_engine_full_ruleset``
    this shows what batch amortization (one obs flush per batch instead
    of per interval, list-driven loop) buys on the same traffic."""
    engine = RuleEngine.from_text(full_ruleset_text(), variables=DEFAULT_VARIABLES)
    packets = [http_packet(i) for i in range(100)]
    state = {"now": 0.0}

    def batch():
        state["now"] += 1.0
        engine.process_batch(packets, state["now"])

    return batch, len(packets), "packets", 80


def _bench_rule_engine_construct_cached() -> tuple:
    """Full engine construction with a warm shared-automaton cache.

    This is the per-point construction cost a sweep worker actually pays:
    the process pool reuses workers across points, so after the first
    point of a ruleset the literal automaton comes from the process-wide
    cache (``shared_automaton``) and construction skips the trie/
    failure-link/dense-table build that ``multipattern_build`` prices.
    Rules are pre-parsed so the number isolates engine assembly (index,
    automaton lookup, obs wiring) rather than ruleset text parsing."""
    from repro.rules import parse_ruleset

    rules = parse_ruleset(full_ruleset_text(), variables=DEFAULT_VARIABLES)
    RuleEngine(rules=rules, variables=DEFAULT_VARIABLES)  # warm the cache

    def batch():
        RuleEngine(rules=rules, variables=DEFAULT_VARIABLES)

    return batch, 1, "builds", 1


def _bench_multipattern_build() -> tuple:
    """Cold build of the ruleset-wide literal automaton: interning every
    content literal of the full ruleset, trie + failure links + dense
    DFA rows.  Paid once per ruleset (and once more per ``add_rules``),
    so this bounds engine construction and live rule-reload cost."""
    from repro.rules import parse_ruleset
    from repro.rules.multipattern import MultiPatternAutomaton

    rules = parse_ruleset(full_ruleset_text(), variables=DEFAULT_VARIABLES)

    def batch():
        automaton = MultiPatternAutomaton()
        automaton.add_rules(rules)
        automaton.ensure_ready()

    return batch, 1, "builds", 1


def _bench_multipattern_scan() -> tuple:
    """One-shot payload scans against the full-ruleset automaton — the
    per-packet cost floor of the multipattern prefilter."""
    from repro.rules import parse_ruleset
    from repro.rules.multipattern import MultiPatternAutomaton

    automaton = MultiPatternAutomaton()
    automaton.add_rules(parse_ruleset(full_ruleset_text(), variables=DEFAULT_VARIABLES))
    automaton.ensure_ready()
    payloads = [
        b"GET /index.html HTTP/1.1\r\nHost: example.org\r\n\r\n",
        b"POST /upload HTTP/1.1\r\nHost: cdn.example.net\r\n\r\n" + b"A" * 160,
        b"\x13BitTorrent protocol" + b"\x00" * 48,
        b"random filler payload with no signature bytes at all " * 3,
    ]

    def batch():
        scan = automaton.scan
        for payload in payloads:
            for _ in range(25):
                scan(payload)

    return batch, len(payloads) * 25, "scans", 1


def _bench_rule_dispatch_wide_ports() -> tuple:
    engine = RuleEngine.from_text(wide_port_ruleset_text())
    packets = wide_port_packets()
    state = {"now": 0.0}

    def batch():
        state["now"] += 1.0
        for packet in packets:
            engine.process(packet, state["now"])

    return batch, len(packets), "packets", 80


def _bench_rule_engine_mixed_protocols() -> tuple:
    engine = RuleEngine.from_text(full_ruleset_text(), variables=DEFAULT_VARIABLES)
    packets = mixed_protocol_packets()
    state = {"now": 0.0}

    def batch():
        state["now"] += 1.0
        for packet in packets:
            engine.process(packet, state["now"])

    return batch, len(packets), "packets", 80


def _bench_stream_reassembly() -> tuple:
    def batch():
        reasm = StreamReassembler()
        for flow in range(20):
            client = f"10.1.0.{flow + 1}"
            reasm.feed(
                IPPacket(
                    src=client,
                    dst="203.0.113.10",
                    payload=TCPSegment(sport=1000, dport=80, seq=10, flags=SYN),
                ),
                0.0,
            )
            for index in range(10):
                reasm.feed(
                    IPPacket(
                        src=client,
                        dst="203.0.113.10",
                        payload=TCPSegment(
                            sport=1000,
                            dport=80,
                            seq=11 + index * 8,
                            ack=51,
                            flags=PSH | ACK,
                            payload=b"payload!",
                        ),
                    ),
                    0.0,
                )

    return batch, 220, "segments", 1


def _link_forward_bench(impaired: bool) -> tuple:
    """Hop-by-hop forwarding throughput across one link.

    The lossless variant is the engine fast path (shared clean fate, no
    per-packet allocation); the impaired variant pays the full pipeline
    (burst-loss state machine, jitter draw, duplication)."""
    sim = Simulator(seed=3)
    net = Network(sim)
    a = net.add(Host("a", "10.0.0.1"))
    b = net.add(Host("b", "10.0.0.2"))
    link = net.connect(a, b)
    if impaired:
        link.impair(
            burst_loss_profile(
                marginal=0.05, jitter=0.001, duplicate_probability=0.02
            )
        )
    a.stack.udp_listen(7, lambda *args: None)
    b.stack.udp_listen(7, lambda *args: None)
    template = IPPacket(
        src=a.ip, dst=b.ip, payload=UDPDatagram(sport=7, dport=7, payload=b"x" * 64)
    )

    def batch():
        for _ in range(500):
            a.send_ip(template)
        sim.run()

    return batch, 500, "packets", 1


def _bench_link_forward_lossless() -> tuple:
    return _link_forward_bench(impaired=False)


def _bench_link_forward_impaired() -> tuple:
    return _link_forward_bench(impaired=True)


def _sweep_grid16_spec():
    """16-point scenario grid shared by the sweep benches.

    ``sweep_serial_grid16``, ``sweep_workers4_grid16`` (static
    round-robin shards), and ``sweep_stealing_grid16`` (shared-queue
    work stealing) run the *same* grid, so their ratios are the
    multi-worker speedups on this host.  On a single-core container the
    three converge (the process pool adds fork overhead but no
    parallelism); on a multi-core machine — e.g. the CI runners — the
    pooled modes pull ahead roughly linearly until the core count or
    the largest single point dominates, with stealing >= round-robin on
    skewed grids.  ``sweep_resume_grid16`` resumes the grid from a
    half-complete journal, so it prices the campaign-restore path:
    half the points replay from disk, half execute.

    Every point in this grid builds rule engines over the same rulesets;
    because pool workers persist across points, the process-wide shared
    automaton cache means only each worker's *first* point pays the
    multipattern build — later points reuse the finalized automaton
    (``rule_engine_construct_cached`` prices the reused path).
    """
    from repro.runner import SweepSpec

    return SweepSpec(
        name="bench",
        base_seed=11,
        seeds=(0, 1, 2, 3),
        loss_rates=(0.02, 0.05),
        retry_policies=("single-shot", "retry-4"),
        port_count=300,
        duration=300.0,
    )


def _bench_sweep_serial_grid16() -> tuple:
    from repro.runner import SweepRunner

    spec = _sweep_grid16_spec()
    return lambda: SweepRunner(spec, serial=True).run(), len(spec), "points", 0


def _bench_sweep_workers4_grid16() -> tuple:
    from repro.runner import SweepRunner

    spec = _sweep_grid16_spec()
    return (
        lambda: SweepRunner(spec, workers=4, dispatch="round-robin").run(),
        len(spec), "points", 0,
    )


def _bench_sweep_stealing_grid16() -> tuple:
    from repro.runner import SweepRunner

    spec = _sweep_grid16_spec()
    return (
        lambda: SweepRunner(spec, workers=4, dispatch="stealing").run(),
        len(spec), "points", 0,
    )


def _bench_sweep_resume_grid16() -> tuple:
    """Resume the shared grid from a half-complete campaign journal.

    Setup runs the grid once, journaled, and keeps the header plus the
    first 8 point lines; each iteration rewrites that half-journal and
    resumes it serially — 8 points replayed from disk, 8 executed —
    so the number prices journal load + merge on top of the residual
    execution, the cost an operator pays per restart.
    """
    import tempfile

    from repro.runner import CampaignStore, SweepRunner

    spec = _sweep_grid16_spec()
    spec_hash = spec.content_hash()
    handle = tempfile.NamedTemporaryFile(suffix=".journal.jsonl", delete=False)
    handle.close()
    path = handle.name
    with CampaignStore(path, spec_hash) as store:
        SweepRunner(spec, serial=True, store=store).run()
    with open(path, "rb") as fh:
        lines = fh.read().splitlines(keepends=True)
    half_journal = b"".join(lines[: 1 + len(spec) // 2])

    def resume():
        with open(path, "wb") as fh:
            fh.write(half_journal)
        with CampaignStore(path, spec_hash, resume=True) as store:
            SweepRunner(spec, serial=True, store=store).run()

    return resume, len(spec) - len(spec) // 2, "points", 0


def _synthetic_record_rows(count: int):
    """Deterministic measurement-record rows shaped like real campaign
    output — every ROW_FIELDS key present, realistic value vocabulary —
    without paying for a sweep."""
    techniques = ("overt-http", "scan", "spam")
    targets = ("twitter.com", "example.org", "bbc.com", "weather.gov",
               "youtube.com")
    verdicts = ("accessible", "blocked_rst", "dns_poisoned", "inconclusive")
    for i in range(count):
        censored = bool(i % 2)
        yield {
            "attempts": 1 + i % 3,
            "censor": "gfc" if censored else "none",
            "confidence": (i % 10) / 10.0,
            "evaded": censored,
            "latency": 0.5 + (i % 40) * 0.25,
            "loss": (0.0, 0.02, 0.05)[i % 3],
            "point": i // 8,
            "reason": "",
            "retry": "retry-3",
            "seed": i % 4,
            "seq": i % 8,
            "target": targets[i % len(targets)],
            "technique": techniques[i % len(techniques)],
            "topology": "censored-as",
            "vantage": "censored" if censored else "clean",
            "verdict": verdicts[i % len(verdicts)],
        }


def _bench_record_sink_write() -> tuple:
    """Atomic canonical-JSONL render of the record sink.

    Prices the merge-time cost a campaign pays per row: canonical JSON
    encoding, the temp-file write, and the ``os.replace`` swap.  Rows
    are prebuilt so the number isolates the sink, not row construction.
    """
    import tempfile

    from repro.results import write_records

    rows = list(_synthetic_record_rows(5_000))
    handle = tempfile.NamedTemporaryFile(suffix=".records.jsonl", delete=False)
    handle.close()
    path = handle.name
    return lambda: write_records(path, "bench", rows), len(rows), "rows", 1


def _bench_report_stream_1e5_rows() -> tuple:
    """Streaming analysis over a 100k-row record file.

    The file is rendered once in setup; each batch replays the full
    ``repro report`` compute path — line-at-a-time JSON parse plus the
    classification/matrix/curve/latency folds — so the number is the
    rows/sec an operator gets out of a big campaign's record file.
    """
    import tempfile

    from repro.results import analyze_records, iter_rows, write_records

    count = 100_000
    handle = tempfile.NamedTemporaryFile(suffix=".records.jsonl", delete=False)
    handle.close()
    path = handle.name
    write_records(path, "bench", _synthetic_record_rows(count))
    return lambda: analyze_records(iter_rows(path)), count, "rows", 1


def _bench_censor_dispatch() -> tuple:
    """Registry indirection on the censors-axis sweep path.

    A censors-axis sweep pays exactly one ``build_censor`` dispatch per
    point: name lookup in the family registry, kwarg forwarding, family
    construction.  Measured on the leanest family so the number isolates
    the registry machinery rather than the GFC's rule-engine build (which
    predates the registry and is priced by the rule-engine benches).
    ``--check`` pins the ratio against ``sweep_serial_grid16``: one
    dispatch must stay under ``DISPATCH_BUDGET`` (2%) of a sweep point.
    """
    from repro.censor import build_censor

    return lambda: [build_censor("geoblocker") for _ in range(200)], 200, "builds", 1


def _population_bench(users: int, fidelity: str) -> tuple:
    """Background-population traffic over the censored AS at one fidelity.

    Each batch builds the topology, attaches a ``PopulationTraffic``
    generator, and simulates a 5-second generation window; ops/sec is
    *users per wall-clock second*, the tentpole's headline unit.  The
    aggregate tier advances flows as single completion events (one per
    flow, charged to every link on the path); full fidelity materializes
    every flow into byte-accurate packets and forwards them hop by hop.
    ``population_speedup`` pins their same-run ratio: the flow-level fast
    path must stay >= POPULATION_SPEEDUP_FLOOR x the packet path.
    """
    from repro.netsim import build_censored_as
    from repro.traffic import PopulationTraffic

    window = 5.0

    def batch():
        topo = build_censored_as(seed=11)
        population = PopulationTraffic(topo, users=users, fidelity=fidelity)
        population.start(window)
        topo.sim.run(until=topo.sim.now + window)

    return batch, users, "users", 0


def _bench_population_aggregate_10k_users() -> tuple:
    return _population_bench(10_000, "aggregate")


def _bench_population_full_fidelity_1k_users() -> tuple:
    return _population_bench(1_000, "full")


def _bench_simulator_events() -> tuple:
    def batch():
        sim = Simulator()
        state = {"count": 0}

        def tick():
            state["count"] += 1
            if state["count"] < 10_000:
                sim.at(0.001, tick)

        sim.at(0.0, tick)
        sim.run()

    return batch, 10_000, "events", 1


HOT_PATHS = {
    "packet_serialization": _bench_packet_serialization,
    "packet_parsing": _bench_packet_parsing,
    "packet_wire_length": _bench_packet_wire_length,
    "checksum_throughput": _bench_checksum_throughput,
    "packet_roundtrip_cached": _bench_packet_roundtrip_cached,
    "capture_serialize": _bench_capture_serialize,
    "rule_engine_full_ruleset": _bench_rule_engine_full_ruleset,
    "rule_engine_construct_cached": _bench_rule_engine_construct_cached,
    "rule_engine_full_instrumented": _bench_rule_engine_full_instrumented,
    "rule_engine_batch": _bench_rule_engine_batch,
    "multipattern_build": _bench_multipattern_build,
    "multipattern_scan": _bench_multipattern_scan,
    "rule_dispatch_wide_ports": _bench_rule_dispatch_wide_ports,
    "rule_engine_mixed_protocols": _bench_rule_engine_mixed_protocols,
    "stream_reassembly": _bench_stream_reassembly,
    "simulator_events": _bench_simulator_events,
    "link_forward_lossless": _bench_link_forward_lossless,
    "link_forward_impaired": _bench_link_forward_impaired,
    "sweep_serial_grid16": _bench_sweep_serial_grid16,
    "sweep_workers4_grid16": _bench_sweep_workers4_grid16,
    "sweep_stealing_grid16": _bench_sweep_stealing_grid16,
    "sweep_resume_grid16": _bench_sweep_resume_grid16,
    "censor_dispatch": _bench_censor_dispatch,
    "record_sink_write": _bench_record_sink_write,
    "report_stream_1e5_rows": _bench_report_stream_1e5_rows,
    "population_aggregate_10k_users": _bench_population_aggregate_10k_users,
    "population_full_fidelity_1k_users": _bench_population_full_fidelity_1k_users,
}

DISPATCH_BUDGET = 0.02  # one censor dispatch may add at most 2% to a sweep point

#: the tiered-fidelity acceptance floor: the flow-level aggregate tier must
#: simulate at least this many times more users per wall-clock second than
#: full packet fidelity on the same topology and traffic profile
POPULATION_SPEEDUP_FLOOR = 20.0


def population_speedup(current: dict):
    """Aggregate-tier users/sec over full-fidelity users/sec, same run.

    Like ``dispatch_share`` this is a same-run ratio, meaningful on any
    machine: both numbers move together with host speed.  It is the
    tentpole's acceptance gate — the flow-level fast path exists to buy
    exactly this headroom, so a change that erodes it below
    ``POPULATION_SPEEDUP_FLOOR`` is a regression even if both absolute
    numbers pass their baselines.
    """
    aggregate = current.get("population_aggregate_10k_users", {}).get("ops_per_sec", 0)
    full = current.get("population_full_fidelity_1k_users", {}).get("ops_per_sec", 0)
    if not aggregate or not full:
        return None
    return aggregate / full


def dispatch_share(current: dict):
    """Fraction of one grid16 sweep point spent on one censor dispatch.

    A same-run ratio, so unlike the absolute baselines it is meaningful
    on any machine: both numbers move together with host speed.
    """
    grid = current.get("sweep_serial_grid16", {}).get("ops_per_sec", 0)
    dispatch = current.get("censor_dispatch", {}).get("ops_per_sec", 0)
    if not grid or not dispatch:
        return None
    return grid / dispatch


def run_all(min_seconds: float = MIN_SECONDS) -> dict:
    results = {}
    for name, builder in HOT_PATHS.items():
        batch_fn, units, unit_name, warmup = builder()
        ops = _measure(batch_fn, units, min_seconds, warmup)
        results[name] = {"ops_per_sec": round(ops, 1), "unit": unit_name}
    return results


def check(current: dict, baseline: dict, tolerance: float) -> list:
    """Return [(name, baseline_ops, current_ops, ratio)] for regressions."""
    regressions = []
    for name, entry in baseline.get("hot_paths", {}).items():
        if name not in current:
            continue
        base_ops = entry["ops_per_sec"]
        cur_ops = current[name]["ops_per_sec"]
        if base_ops > 0 and cur_ops < base_ops * (1.0 - tolerance):
            regressions.append((name, base_ops, cur_ops, cur_ops / base_ops))
    return regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true",
                        help="compare against the committed baseline; exit 1 on regression")
    parser.add_argument("--update", action="store_true",
                        help="write the measured numbers to BENCH_PERF.json")
    parser.add_argument("--json", type=Path, default=BASELINE_PATH,
                        help="baseline file (default: BENCH_PERF.json at the repo root)")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="allowed fractional slowdown before --check fails (default 0.30)")
    parser.add_argument("--min-seconds", type=float, default=MIN_SECONDS,
                        help="minimum measurement time per hot path")
    args = parser.parse_args(argv)

    current = run_all(args.min_seconds)
    width = max(len(name) for name in current)
    for name, entry in current.items():
        print(f"{name:<{width}}  {entry['ops_per_sec']:>14,.0f} {entry['unit']}/s")

    status = 0
    if args.check:
        if not args.json.exists():
            print(f"\nno baseline at {args.json}; run with --update first", file=sys.stderr)
            return 2
        baseline = json.loads(args.json.read_text())
        regressions = check(current, baseline, args.tolerance)
        # A single-shot reading can dip on a loaded machine (these paths run
        # back to back on one core); re-measure just the flagged paths and
        # keep the best reading before declaring a regression.
        for attempt in range(2):
            if not regressions:
                break
            for name, _base, _cur, _ratio in regressions:
                batch_fn, units, unit_name, warmup = HOT_PATHS[name]()
                ops = _measure(batch_fn, units, args.min_seconds, warmup)
                if ops > current[name]["ops_per_sec"]:
                    current[name] = {"ops_per_sec": round(ops, 1), "unit": unit_name}
            regressions = check(current, baseline, args.tolerance)
        if regressions:
            print(f"\nREGRESSIONS (> {args.tolerance:.0%} below baseline):")
            for name, base_ops, cur_ops, ratio in regressions:
                print(f"  {name}: {base_ops:,.0f} -> {cur_ops:,.0f} ({ratio:.0%} of baseline)")
            status = 1
        else:
            print(f"\nok: all hot paths within {args.tolerance:.0%} of baseline")
        share = dispatch_share(current)
        if share is not None:
            if share > DISPATCH_BUDGET:
                print(f"REGRESSION: censor dispatch is {share:.2%} of a grid16 "
                      f"sweep point (budget {DISPATCH_BUDGET:.0%})")
                status = 1
            else:
                print(f"ok: censor dispatch is {share:.3%} of a grid16 sweep "
                      f"point (budget {DISPATCH_BUDGET:.0%})")
        speedup = population_speedup(current)
        if speedup is not None:
            if speedup < POPULATION_SPEEDUP_FLOOR:
                print(f"REGRESSION: aggregate population tier is only "
                      f"{speedup:.1f}x full fidelity "
                      f"(floor {POPULATION_SPEEDUP_FLOOR:.0f}x)")
                status = 1
            else:
                print(f"ok: aggregate population tier is {speedup:.1f}x full "
                      f"fidelity (floor {POPULATION_SPEEDUP_FLOOR:.0f}x)")

    if args.update:
        payload = {
            "schema": 1,
            "note": (
                "ops/sec per hot path, measured by benchmarks/perf_guard.py; "
                "machine-relative — regenerate with --update when hardware changes. "
                "The sweep_* benches share one grid: workers4/serial and "
                "stealing/serial are the multi-worker speedups, meaningful "
                "only when cpus > 1; resume replays half the grid from a "
                "campaign journal.  Sweep workers share one process-cached "
                "literal automaton per ruleset (rule_engine_construct_cached "
                "vs multipattern_build is that win), and the population_* "
                "pair's ratio is the tiered-fidelity speedup gate."
            ),
            "cpus": len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else os.cpu_count(),
            "hot_paths": current,
        }
        args.json.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {args.json}")
    return status


if __name__ == "__main__":
    sys.exit(main())
