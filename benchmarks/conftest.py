"""Benchmark-suite configuration."""

import sys
import os

# Make `common` importable as a sibling module when pytest is run from the
# repository root.
sys.path.insert(0, os.path.dirname(__file__))
