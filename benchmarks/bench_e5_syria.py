"""E5 — the Syria-logs infeasibility argument (paper §2.2, citing [9]).

Chaabane et al. found 1.57 % of users touched at least one censored site in
two days of leaked Syrian logs; the paper concludes that alarming on every
censored query is infeasible for user-focused targeting.  We reproduce the
statistic on calibrated synthetic logs and compute the analyst burden
across population scales.
"""

import random

from common import write_report

from repro.analysis import (
    SYRIA_CENSORED_USER_FRACTION,
    SyriaLogGenerator,
    analyze_logs,
    render_table,
)
from repro.surveillance import NSA_PROFILE

POPULATIONS = [10_000, 50_000, 200_000]


def run_sweep(seed: int = 4):
    results = []
    for population in POPULATIONS:
        generator = SyriaLogGenerator(population=population, rng=random.Random(seed))
        logs = generator.generate()
        results.append((population, analyze_logs(logs, population)))
    return results


def test_e5_syria_infeasibility(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    capacity = NSA_PROFILE.analyst_capacity_per_day
    rows = []
    for population, analysis in results:
        rows.append([
            population,
            analysis.total_requests,
            analysis.users_touching_censored,
            analysis.censored_user_fraction,
            analysis.pursuit_burden(capacity),
        ])
    report = render_table(
        ["population", "requests (2d)", "users w/ censored hit",
         "fraction", f"analyst-days @ {capacity}/day"],
        rows,
        title="E5: fraction of users touching censored content (target 0.0157)",
    )
    write_report("e5_syria", report)

    for population, analysis in results:
        # Statistic reproduces within sampling noise.
        assert abs(analysis.censored_user_fraction - SYRIA_CENSORED_USER_FRACTION) < 0.005
        # And pursuing every flagged user vastly exceeds analyst capacity:
        # the bigger the population, the more hopeless it gets.
        assert analysis.pursuit_burden(capacity) > 5
    burdens = [analysis.pursuit_burden(capacity) for _, analysis in results]
    assert burdens == sorted(burdens)
