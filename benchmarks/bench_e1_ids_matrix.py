"""E1 — the IDS evaluation matrix (paper §3.2.2, Figure 1 environment).

Reproduces the paper's controlled test: each measurement technique runs
against the reference censor (toggled on/off) with the surveillance MVR
watching.  A technique *succeeds* when it detects blocking accurately AND
never causes a user-attributed alert.

Expected shape: every stealthy method succeeds; the overt baseline is
accurate but attributed.
"""

from common import write_report

from repro.analysis import render_table
from repro.core import (
    DDoSMeasurement,
    OvertHTTPMeasurement,
    ScanMeasurement,
    ScanTarget,
    SpamMeasurement,
    StatelessSpoofedDNSMeasurement,
    evaluate_technique,
)
from repro.core.evaluation import BLOCKED_TARGETS, CONTROL_TARGETS

TARGETS = BLOCKED_TARGETS + CONTROL_TARGETS


def _scan_factory(env):
    if env.censor.policy.ip_blocking:
        env.censor.policy.blocked_ips.add(env.topo.blocked_web.ip)
    return ScanMeasurement(
        env.ctx,
        [
            ScanTarget(env.topo.blocked_web.ip, [80], "twitter.com"),
            ScanTarget(env.topo.control_web.ip, [80], "example.org"),
        ],
        port_count=60,
    )


ROWS = [
    ("overt-http (baseline)", lambda env: OvertHTTPMeasurement(env.ctx, TARGETS), None, None),
    ("scan (method 1)", _scan_factory, ["twitter.com"], ["example.org"]),
    ("spam (method 2)", lambda env: SpamMeasurement(env.ctx, TARGETS), None, None),
    ("ddos (method 3)", lambda env: DDoSMeasurement(env.ctx, TARGETS, requests_per_target=25), None, None),
    ("spoofed-dns (sec 4)", lambda env: StatelessSpoofedDNSMeasurement(env.ctx, TARGETS, env.cover_ips(8)), None, None),
]


def run_matrix(seed: int = 0):
    outcomes = []
    for name, factory, blocked, control in ROWS:
        outcome = evaluate_technique(
            factory, name, blocked_targets=blocked, control_targets=control,
            seed=seed, run_duration=60.0,
        )
        outcomes.append(outcome)
    return outcomes


def test_e1_ids_matrix(benchmark):
    outcomes = benchmark.pedantic(run_matrix, rounds=1, iterations=1)

    rows = []
    for outcome in outcomes:
        risk = outcome.censored_run.risk
        rows.append([
            outcome.technique,
            "yes" if outcome.detects_censorship else "NO",
            "yes" if outcome.no_false_positives else "NO",
            outcome.accuracy,
            "yes" if outcome.evades_surveillance else "NO",
            risk.attributed_alerts,
            "SUCCESS" if outcome.successful else "fails-evasion",
        ])
    report = render_table(
        ["technique", "detects", "no-FP", "accuracy", "evades", "attrib-alerts", "verdict"],
        rows,
        title="E1: IDS evaluation matrix (censor on/off, MVR watching)",
    )
    write_report("e1_ids_matrix", report)

    # Paper shape: all stealthy methods satisfy both criteria...
    for outcome in outcomes[1:]:
        assert outcome.detects_censorship, outcome.technique
        assert outcome.no_false_positives, outcome.technique
        assert outcome.evades_surveillance, outcome.technique
    # ...and the overt baseline is accurate but does NOT evade.
    overt = outcomes[0]
    assert overt.accuracy == 1.0
    assert not overt.evades_surveillance
