"""E6 — spoofed cover traffic vs. attribution confidence (paper §4.1-4.2).

Sweeps the number of spoofed cover hosts for the stateless DNS mimicry and
measures what the surveillance system can conclude: attribution confidence
for the true measurer should fall toward 1/(N+1) and suspect entropy rise
toward log2(N+1) — "an IDS that triggers on a particular measurement
behavior may generate false positives for large numbers of users."
"""

import math

from common import write_report

from repro.analysis import render_table
from repro.core import StatelessSpoofedDNSMeasurement, assess_risk
from repro.core.evaluation import BLOCKED_TARGETS_FULL, build_environment

COVER_SIZES = [0, 2, 5, 10, 20]


def run_sweep(seed: int = 5):
    outcomes = []
    for cover in COVER_SIZES:
        env = build_environment(censored=True, seed=seed, population_size=max(cover, 1) + 2)
        technique = StatelessSpoofedDNSMeasurement(
            env.ctx, list(BLOCKED_TARGETS_FULL), env.cover_ips(cover)
        )
        technique.start()
        env.run(duration=60.0)
        risk = assess_risk(env.surveillance, f"cover={cover}", "measurer",
                           env.topo.measurement_client.ip, now=env.sim.now)
        accurate = all(result.blocked for result in technique.results)
        outcomes.append((cover, risk, accurate))
    return outcomes


def test_e6_cover_dilutes_attribution(benchmark):
    outcomes = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = []
    for cover, risk, accurate in outcomes:
        ideal_confidence = 1.0 / (cover + 1)
        rows.append([
            cover,
            "yes" if accurate else "NO",
            risk.attributed_alerts,
            risk.attribution_confidence,
            ideal_confidence,
            risk.suspect_entropy,
            math.log2(cover + 1),
            risk.risk_score(),
        ])
    report = render_table(
        ["cover hosts", "accurate", "attrib-alerts", "confidence",
         "ideal 1/(N+1)", "entropy", "log2(N+1)", "risk score"],
        rows,
        title="E6: spoofed-cover size vs. surveillance attribution",
    )
    write_report("e6_spoofing", report)

    # Accuracy never degrades with cover size.
    assert all(accurate for _cover, _risk, accurate in outcomes)
    # Confidence decreases monotonically and tracks 1/(N+1).
    confidences = [risk.attribution_confidence for _c, risk, _a in outcomes]
    assert all(a >= b for a, b in zip(confidences, confidences[1:]))
    for cover, risk, _accurate in outcomes:
        if cover:
            assert abs(risk.attribution_confidence - 1 / (cover + 1)) < 0.05
            assert abs(risk.suspect_entropy - math.log2(cover + 1)) < 0.3
    # With no cover, attribution is certain.
    assert outcomes[0][1].attribution_confidence == 1.0
    # Risk strictly lower with the largest crowd than alone.
    assert outcomes[-1][1].risk_score() < outcomes[0][1].risk_score()
