"""Extended probe benches: SNI filtering and residual-penalty mapping.

Both extend the paper's goal statement ("whether an IP address, domain,
URL, or keyword is reachable") to the mechanisms the measurement
literature around it maps: SNI-keyed HTTPS censorship and the GFC's
post-reset penalty window (Clayton et al.).
"""

from common import write_report

from repro.analysis import render_table
from repro.core import TLSReachabilityMeasurement, Verdict, build_environment
from repro.core.residual import ResidualBlockingMeasurement


def run_sni(seed: int = 30):
    env = build_environment(censored=True, seed=seed, population_size=4)
    env.censor.policy.dns_poisoning = False
    technique = TLSReachabilityMeasurement(
        env.ctx, ["twitter.com", "youtube.com", "example.org", "weather.gov"]
    )
    technique.start()
    env.run(duration=60.0)
    return technique


def run_residual_sweep(seed: int = 30):
    rows = []
    for configured in (5.0, 15.0, 45.0):
        env = build_environment(censored=True, seed=seed, population_size=4)
        env.censor.policy.dns_poisoning = False
        env.censor.policy.residual_block_seconds = configured
        technique = ResidualBlockingMeasurement(
            env.ctx, env.topo.control_web.ip, probe_interval=1.0, max_wait=120.0
        )
        technique.start()
        env.run(duration=200.0)
        measured = technique.results[0].evidence.get("penalty_seconds")
        rows.append([configured, measured])
    return rows


def test_sni_filtering_matrix(benchmark):
    technique = benchmark.pedantic(run_sni, rounds=1, iterations=1)
    rows = [[r.target, r.verdict.value, r.evidence.get("control_status", "-")]
            for r in technique.results]
    write_report("sni_filtering", render_table(
        ["domain", "TLS verdict", "decoy-SNI control"],
        rows, title="SNI-keyed HTTPS censorship matrix",
    ))
    verdicts = {r.target: r.verdict for r in technique.results}
    assert verdicts["twitter.com"] is Verdict.BLOCKED_RST
    assert verdicts["youtube.com"] is Verdict.BLOCKED_RST
    assert verdicts["example.org"] is Verdict.ACCESSIBLE
    # Decoy controls prove the blocks are name-keyed, not address-keyed.
    blocked = [r for r in technique.results if r.blocked]
    assert all(r.evidence.get("control_status") == "ok" for r in blocked)


def test_residual_penalty_mapping(benchmark):
    rows = benchmark.pedantic(run_residual_sweep, rounds=1, iterations=1)
    write_report("residual_penalty", render_table(
        ["configured penalty (s)", "measured penalty (s)"],
        rows, title="residual flow-kill window: configured vs measured",
    ))
    for configured, measured in rows:
        assert measured is not None
        # Probe-interval granularity: within ~2 intervals of ground truth.
        assert configured <= measured <= configured + 2.5
