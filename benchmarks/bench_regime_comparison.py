"""Regime comparison: censorship signatures across deployment styles.

Runs the same measurement deck against the three censorship presets (GFC,
block-page, null-route) and tabulates the observable signature per
mechanism — the comparative matrix an OONI-style country report contains.
The DDoS method's per-sample statistics are what make the mechanism
identifiable (paper Method #3: "better determine how content is being
censored").
"""

from common import write_report

from repro.analysis import render_table
from repro.censor import CensorshipPolicy
from repro.core import DDoSMeasurement, OvertDNSMeasurement, Verdict, build_environment


def run_regimes(seed: int = 25):
    outcomes = {}
    for regime in ("gfc", "blockpage", "nullroute"):
        env = build_environment(censored=True, seed=seed, population_size=4)
        if regime == "gfc":
            policy = CensorshipPolicy.gfc_preset()
        elif regime == "blockpage":
            policy = CensorshipPolicy.blockpage_preset()
            policy.dns_poisoning = False
        else:
            policy = CensorshipPolicy.nullroute_preset({env.topo.blocked_web.ip})
        env.censor.set_policy(policy)

        dns = OvertDNSMeasurement(env.ctx, ["twitter.com"])
        http = DDoSMeasurement(env.ctx, ["twitter.com"], requests_per_target=12)
        dns.start()
        http.start()
        env.run(duration=60.0)
        outcomes[regime] = (dns.results[0].verdict, http.results[0].verdict)
    return outcomes


def test_regime_signatures(benchmark):
    outcomes = benchmark.pedantic(run_regimes, rounds=1, iterations=1)

    rows = [
        [regime, dns_verdict.value, http_verdict.value]
        for regime, (dns_verdict, http_verdict) in outcomes.items()
    ]
    write_report("regime_comparison", render_table(
        ["regime", "DNS signature", "HTTP signature (12-sample)"],
        rows,
        title="censorship mechanism signatures by deployment regime",
    ))

    gfc_dns, gfc_http = outcomes["gfc"]
    bp_dns, bp_http = outcomes["blockpage"]
    nr_dns, nr_http = outcomes["nullroute"]
    # GFC: DNS injection (which then masks the HTTP layer).
    assert gfc_dns is Verdict.DNS_POISONED
    assert gfc_http is Verdict.DNS_POISONED
    # Block-page regime: truthful DNS, explicit 403.
    assert bp_dns is Verdict.ACCESSIBLE
    assert bp_http is Verdict.HTTP_BLOCKPAGE
    # Null-route regime: truthful DNS, silent timeouts.
    assert nr_dns is Verdict.ACCESSIBLE
    assert nr_http is Verdict.BLOCKED_TIMEOUT
