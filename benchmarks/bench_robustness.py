"""Multi-seed robustness: the E1 result is not a lucky seed.

Runs the accuracy/evasion evaluation for the core techniques across
several independent seeds and asserts the matrix holds at every one.
"""

from common import write_report

from repro.analysis import render_table
from repro.core import (
    DDoSMeasurement,
    OvertHTTPMeasurement,
    SpamMeasurement,
    evaluate_technique,
)
from repro.core.evaluation import BLOCKED_TARGETS, CONTROL_TARGETS

SEEDS = [0, 101, 202, 303, 404]
TARGETS = BLOCKED_TARGETS + CONTROL_TARGETS


def run_seeds():
    rows = []
    for seed in SEEDS:
        spam = evaluate_technique(
            lambda env: SpamMeasurement(env.ctx, TARGETS), "spam", seed=seed
        )
        ddos = evaluate_technique(
            lambda env: DDoSMeasurement(env.ctx, TARGETS, requests_per_target=20),
            "ddos", seed=seed,
        )
        overt = evaluate_technique(
            lambda env: OvertHTTPMeasurement(env.ctx, TARGETS), "overt", seed=seed
        )
        rows.append([
            seed,
            spam.accuracy, "yes" if spam.evades_surveillance else "NO",
            ddos.accuracy, "yes" if ddos.evades_surveillance else "NO",
            overt.accuracy, "yes" if overt.evades_surveillance else "NO",
        ])
    return rows


def test_matrix_robust_across_seeds(benchmark):
    rows = benchmark.pedantic(run_seeds, rounds=1, iterations=1)
    report = render_table(
        ["seed", "spam acc", "spam evades", "ddos acc", "ddos evades",
         "overt acc", "overt evades"],
        rows,
        title="robustness: accuracy/evasion across independent seeds",
    )
    write_report("robustness_seeds", report)
    for row in rows:
        seed, spam_acc, spam_ev, ddos_acc, ddos_ev, overt_acc, overt_ev = row
        assert spam_acc == 1.0 and spam_ev == "yes", f"seed {seed}"
        assert ddos_acc == 1.0 and ddos_ev == "yes", f"seed {seed}"
        assert overt_acc == 1.0 and overt_ev == "NO", f"seed {seed}"
