"""Keyword-list mapping cost (ConceptDoppler-style isolation).

The paper's goal includes determining whether a *keyword* is reachable;
mapping the censor's keyword list efficiently is the natural campaign
built from that primitive.  This bench measures isolation cost (probes per
culprit via bisection vs. linear scanning) and verifies the recovered
list matches the censor's ground truth exactly.
"""

from common import write_report

from repro.analysis import render_table
from repro.core import KeywordIsolator, KeywordProbeMeasurement, build_environment
from repro.rules.rulesets import GFC_KEYWORDS

DECOYS = [
    "weather", "recipes", "football", "gardening", "astronomy",
    "cooking", "chess", "poetry", "museums", "hiking",
]


def run_mapping(seed: int = 21):
    rows = []
    for list_size in (8, 16, 32):
        env = build_environment(censored=True, seed=seed, population_size=4)
        env.censor.policy.dns_poisoning = False
        terms = (DECOYS * 4)[: list_size - 2] + ["falun", "tiananmen"]
        # De-duplicate decoys while keeping order and size.
        terms = [f"{term}{i}" if terms.index(term) != i else term
                 for i, term in enumerate(terms)]
        isolator = KeywordIsolator(
            env.ctx, env.topo.control_web.ip, hostname="example.org",
            max_probes=256,
        )
        found = []
        isolator.isolate(terms, found.append)
        env.run(duration=300.0)
        rows.append([
            list_size,
            ",".join(found[0]) if found else "-",
            isolator.probes_sent,
            list_size,  # linear-scan cost for comparison
        ])
    return rows


def run_probe_sweep(seed: int = 21):
    env = build_environment(censored=True, seed=seed, population_size=4)
    env.censor.policy.dns_poisoning = False
    technique = KeywordProbeMeasurement(
        env.ctx, list(GFC_KEYWORDS) + DECOYS[:6],
        env.topo.control_web.ip, hostname="example.org",
    )
    technique.start()
    env.run(duration=120.0)
    return technique


def test_keyword_isolation_cost(benchmark):
    rows = benchmark.pedantic(run_mapping, rounds=1, iterations=1)
    report = render_table(
        ["list size", "culprits found", "bisection probes", "linear probes"],
        rows,
        title="keyword isolation: bisection vs. linear scanning",
    )
    write_report("keyword_mapping", report)
    for list_size, culprits, probes, linear in rows:
        assert culprits == "falun,tiananmen"
        # Bisection beats linear once the list is non-trivial.
        if list_size >= 16:
            assert probes < linear


def test_keyword_probe_recovers_censor_list(benchmark):
    technique = benchmark.pedantic(run_probe_sweep, rounds=1, iterations=1)
    recovered = sorted(technique.censored_keywords())
    assert recovered == sorted(GFC_KEYWORDS)
