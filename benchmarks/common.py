"""Shared helpers for the benchmark harness.

Each ``bench_eN_*`` module reproduces one table/figure from the paper (see
DESIGN.md's experiment index).  Benches print their reproduction table and
also write it under ``benchmarks/output/`` so EXPERIMENTS.md can reference
the exact artifacts.
"""

from __future__ import annotations

import os

OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")


def write_report(name: str, text: str) -> str:
    """Persist a bench's reproduction table; returns the path."""
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    path = os.path.join(OUTPUT_DIR, f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(text.rstrip() + "\n")
    print(f"\n{text}\n[written to {path}]")
    return path
