"""E10 — measurement scans vanish into background scanning (paper §3.2.2).

Durumeric et al. measured 10.8 M scans from 1.76 M hosts against a 5.5 M
address darknet in one month; the paper argues this volume is why the MVR
discards scan traffic.  We reproduce the arithmetic (expected background
probes for a network) and verify packet-level indistinguishability: the
MVR classifies our measurement scan into the same class as the background
scanners.
"""

from common import write_report

from repro.analysis import render_table
from repro.core import ScanMeasurement, ScanTarget
from repro.core.evaluation import build_environment
from repro.traffic import BackgroundScanners, DURUMERIC_2014


def run_arithmetic():
    """Expected background scan arrivals vs. one measurement campaign."""
    campaign_probes = 1000 * 3  # a top-1000 scan of three services
    rows = []
    for prefix, addresses in (("/24", 256), ("/16", 65_536), ("/8", 16_777_216)):
        expected_day = DURUMERIC_2014.expected_background(addresses, days=1.0)
        rows.append([prefix, addresses, expected_day, campaign_probes,
                     campaign_probes / expected_day if expected_day else float("inf")])
    return rows


def run_classification(seed: int = 9):
    """Both background and measurement scans must classify identically."""
    env = build_environment(censored=False, seed=seed, population_size=6)
    # Background scanners outside the AS probing inward.
    from repro.netsim import Host

    scanners = []
    for index in range(2):
        scanner = env.topo.network.add(Host(f"bgscan{index}", f"198.18.2.{10 + index}"))
        env.topo.network.connect(scanner, env.topo.transit_router)
        scanners.append(scanner)
    background = BackgroundScanners(
        scanners=scanners,
        target_ips=[host.ip for host in env.topo.population],
        rng=env.sim.rng,
        mean_interval=0.02,
    )
    background.start(until=10.0)
    # Our measurement scan from inside.
    technique = ScanMeasurement(
        env.ctx,
        [ScanTarget(env.topo.blocked_web.ip, [80], "svc")],
        port_count=80,
    )
    technique.start()
    env.run(duration=30.0)
    return env, background, technique


def test_e10_background_arithmetic(benchmark):
    rows = benchmark.pedantic(run_arithmetic, rounds=1, iterations=1)
    report = render_table(
        ["network", "addresses", "background probes/day", "campaign probes",
         "campaign / background"],
        rows,
        title="E10: measurement scan volume vs. Internet background radiation",
    )
    write_report("e10_scan_background", report)
    # For a /16 (the AS scale the paper reasons about), one full measurement
    # campaign is under the daily background noise level.
    slash16 = rows[1]
    assert slash16[2] > slash16[3]


def test_e10_indistinguishable_classification(benchmark):
    env, background, technique = benchmark.pedantic(
        run_classification, rounds=1, iterations=1
    )
    assert background.probes_sent > 100
    # Scan class discarded bytes exist, and include both inbound background
    # and our outbound measurement (both tripped the same detection).
    scan_alerts = [a for a in env.surveillance.engine.alerts
                   if a.classtype == "attempted-recon"]
    sources = {a.src for a in scan_alerts}
    assert env.topo.measurement_client.ip in sources
    assert any(src.startswith("198.18.2.") for src in sources)
    # And the measurer is never attributed.
    assert env.surveillance.attributed_alerts_for_user("measurer") == []
