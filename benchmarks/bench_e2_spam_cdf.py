"""E2 — Figure 2: CDF of spam-filter scores for n=100 measurements.

The paper sent 100 spam-cloaked measurement emails through the university's
Proofpoint deployment and plotted the score CDF (scores 0-100; the mass
sits high, validating that the filter classifies the measurements as spam).
We reproduce with the Proofpoint-analogue scorer, adding a ham control the
paper used implicitly (normal mail must NOT classify as spam).
"""

import random

from common import write_report

from repro.analysis import EmpiricalCDF, ascii_cdf, render_table
from repro.spamfilter import (
    SPAM_THRESHOLD,
    SpamScorer,
    generate_ham,
    measurement_spam_email,
)

N = 100


def run_cdf(seed: int = 2):
    rng = random.Random(seed)
    scorer = SpamScorer()
    measurement_scores = [
        scorer.score(measurement_spam_email(rng, "twitter.com")) for _ in range(N)
    ]
    ham_scores = [scorer.score(message) for message in generate_ham(rng, N)]
    return EmpiricalCDF(measurement_scores), EmpiricalCDF(ham_scores)


def test_e2_spam_score_cdf(benchmark):
    meas_cdf, ham_cdf = benchmark.pedantic(run_cdf, rounds=1, iterations=1)

    table = render_table(
        ["corpus", "n", "min", "median", "max", "frac >= threshold"],
        [
            ["measurement (cloaked)", len(meas_cdf), meas_cdf.min, meas_cdf.median,
             meas_cdf.max, 1.0 - meas_cdf.at(SPAM_THRESHOLD - 0.001)],
            ["ham control", len(ham_cdf), ham_cdf.min, ham_cdf.median,
             ham_cdf.max, 1.0 - ham_cdf.at(SPAM_THRESHOLD - 0.001)],
        ],
        title=f"E2 (Figure 2): spam scores for n={N} cloaked measurements",
    )
    art = ascii_cdf(meas_cdf, x_label="spam score", title="CDF of measurement spam scores")
    write_report("e2_spam_cdf", table + "\n\n" + art)

    # Paper shape: every cloaked measurement classifies as spam (the
    # published CDF is concentrated in the high-score region)...
    assert meas_cdf.min >= SPAM_THRESHOLD
    assert meas_cdf.median >= 85.0
    # ...while normal mail does not.
    assert ham_cdf.max < SPAM_THRESHOLD
