"""E3 — the censored-vantage DNS validation (paper §3.2.3).

The paper validated spam-measurement accuracy from a PlanetLab node in
China: the GFC injected bad *A* answers for both A and MX queries for
twitter.com and youtube.com.  We reproduce from a vantage host inside the
censored AS, including control domains that must resolve truthfully.
"""

from common import write_report

from repro.analysis import render_table
from repro.core.evaluation import build_environment
from repro.netsim import resolve
from repro.packets import QTYPE_A, QTYPE_MX, qtype_name


def run_vantage_queries(seed: int = 3):
    env = build_environment(censored=True, seed=seed, population_size=4)
    observations = []

    def observe(domain, qtype):
        resolve(
            env.ctx.client,
            env.ctx.resolver_ip,
            domain,
            qtype=qtype,
            callback=lambda res, d=domain, q=qtype: observations.append((d, q, res)),
        )

    for domain in ("twitter.com", "youtube.com", "example.org", "weather.gov"):
        observe(domain, QTYPE_A)
        observe(domain, QTYPE_MX)
    env.run(duration=30.0)
    return env, observations


def test_e3_gfc_dns_poisoning(benchmark):
    env, observations = benchmark.pedantic(run_vantage_queries, rounds=1, iterations=1)
    poison_ip = env.censor.policy.poison_ip

    rows = []
    for domain, qtype, res in observations:
        injected = bool(res.addresses) and res.addresses[0] == poison_ip
        rows.append([
            domain,
            qtype_name(qtype),
            res.status,
            ",".join(res.addresses) or "-",
            ",".join(f"{p} {x}" for p, x in res.mx) or "-",
            "INJECTED" if injected else "truthful",
        ])
    report = render_table(
        ["domain", "qtype", "status", "A answers", "MX answers", "verdict"],
        rows,
        title="E3: DNS answers observed from the censored vantage",
    )
    write_report("e3_gfc_dns", report)

    by_key = {(d, q): res for d, q, res in observations}
    # Paper shape: blocked domains get injected A answers for BOTH qtypes.
    for domain in ("twitter.com", "youtube.com"):
        for qtype in (QTYPE_A, QTYPE_MX):
            res = by_key[(domain, qtype)]
            assert res.addresses == [poison_ip], (domain, qtype)
    # Controls resolve truthfully.
    assert by_key[("example.org", QTYPE_A)].addresses == [env.topo.control_web.ip]
    assert by_key[("example.org", QTYPE_MX)].mx  # genuine MX answer
    assert env.censor.dns_injections == 4
