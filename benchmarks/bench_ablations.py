"""Ablation benches for the design choices DESIGN.md §6 calls out.

A1 — MVR detection coverage: the Section-3 evasion argument rests on the
     surveillance system *recognizing* the traffic as commodity bot noise.
     Remove the DDoS detection rule and the DDoS technique is suddenly
     attributed — "evading by triggering" needs the trigger to exist.
A2 — Censor response mode: block page vs. bare RST.  The DDoS technique's
     per-sample statistics characterize the mechanism either way.
A3 — TTL-estimate error: over-estimating hop distance lets TTL-limited
     replies reach spoofed clients, whose replay RSTs corrupt stateful-
     mimicry verdicts (the paper's §4.1 complication, quantified).
A4 — SAV granularity: stricter source-address validation shrinks the
     usable cover crowd (paper §4.2).
"""

from common import write_report

from repro.analysis import render_table
from repro.core import (
    DDoSMeasurement,
    StatefulMimicryMeasurement,
    StatelessSpoofedDNSMeasurement,
    Verdict,
    assess_risk,
)
from repro.core.evaluation import BLOCKED_TARGETS_FULL, build_environment
from repro.core.spoofing_stateful import MimicryServer
from repro.netsim import Host
from repro.spoofing import SAVFilter
from repro.surveillance import AttributionEngine, SurveillanceSystem


def test_a1_mvr_coverage_ablation(benchmark):
    """Without the DDoS detection, the DDoS method loses its cover."""

    def run():
        results = {}
        detection_variants = {
            "full-ruleset": None,
            "no-ddos-rule": "\n".join(
                line
                for line in __import__(
                    "repro.rules.rulesets", fromlist=["mvr_detection_ruleset_text"]
                ).mvr_detection_ruleset_text().splitlines()
                if "DOS" not in line
            ),
        }
        for label, detection in detection_variants.items():
            env = build_environment(censored=True, seed=70, population_size=6)
            # Rebuild surveillance with the variant ruleset on the same spot.
            surv = SurveillanceSystem(
                attribution=AttributionEngine.from_network(env.topo.network),
                detection_ruleset=detection,
            )
            env.topo.border_router.taps[0] = surv
            env.surveillance = surv
            env.censor.policy.dns_poisoning = False  # force the HTTP stage
            technique = DDoSMeasurement(env.ctx, ["twitter.com"], requests_per_target=25)
            technique.start()
            env.run(duration=60.0)
            risk = assess_risk(surv, label, "measurer",
                               env.topo.measurement_client.ip, now=env.sim.now)
            results[label] = (technique.results[0].verdict, risk)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[label, verdict.value, risk.attributed_alerts]
            for label, (verdict, risk) in results.items()]
    write_report("a1_mvr_coverage", render_table(
        ["MVR ruleset", "verdict", "attributed alerts"], rows,
        title="A1: evasion depends on the commodity detection existing",
    ))
    # Accuracy unchanged; evasion flips.
    assert results["full-ruleset"][0] is Verdict.BLOCKED_RST
    assert results["no-ddos-rule"][0] is Verdict.BLOCKED_RST
    assert results["full-ruleset"][1].attributed_alerts == 0
    assert results["no-ddos-rule"][1].attributed_alerts > 0


def test_a2_censor_response_mode(benchmark):
    """Block-page censors are characterized as such, resets as resets."""

    def run():
        verdicts = {}
        for mode, block_page in (("rst", False), ("block-page", True)):
            env = build_environment(censored=True, seed=71, population_size=4)
            env.censor.policy.dns_poisoning = False
            env.censor.policy.http_block_page = block_page
            technique = DDoSMeasurement(env.ctx, ["twitter.com"], requests_per_target=15)
            technique.start()
            env.run(duration=60.0)
            verdicts[mode] = technique.results[0].verdict
        return verdicts

    verdicts = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report("a2_censor_mode", render_table(
        ["censor mode", "characterized as"],
        [[mode, verdict.value] for mode, verdict in verdicts.items()],
        title="A2: per-sample statistics identify the censorship mechanism",
    ))
    assert verdicts["rst"] is Verdict.BLOCKED_RST
    assert verdicts["block-page"] is Verdict.HTTP_BLOCKPAGE


def test_a3_ttl_estimate_error(benchmark):
    """TTL over-estimation leaks SYN/ACKs to covers -> replay corruption.

    Censor OFF throughout: any blocked verdict is a false positive caused
    purely by the replay RSTs.
    """

    def run():
        outcomes = {}
        for error in (0, +2):
            env = build_environment(censored=False, seed=72, population_size=8)
            planned = env.topo.reply_ttl_dying_inside()
            server_host = env.topo.network.add(
                Host("mimicry2", "198.51.100.60")
            )
            env.topo.network.connect(server_host, env.topo.transit_router)
            server = MimicryServer(server_host, port=8080, reply_ttl=planned + error)
            technique = StatefulMimicryMeasurement(
                env.ctx, server,
                [b"GET /benign HTTP/1.1\r\n\r\n"],
                cover_ips=env.cover_ips(6),
            )
            technique.start()
            env.run(duration=60.0)
            false_blocked = sum(1 for r in technique.results if r.blocked)
            outcomes[error] = (false_blocked, len(technique.results))
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report("a3_ttl_error", render_table(
        ["TTL estimate error", "false-blocked flows", "total flows"],
        [[error, blocked, total] for error, (blocked, total) in outcomes.items()],
        title="A3: hop-estimate error vs. replay corruption (censor OFF)",
    ))
    assert outcomes[0][0] == 0          # correct TTL: clean verdicts
    assert outcomes[2][0] > 0           # +2 hops: replay RSTs corrupt flows


def test_a4_sav_granularity(benchmark):
    """Stricter SAV shrinks the spoofed crowd the measurer can hide in."""

    def run():
        results = {}
        for label, scope in (("no-SAV", 0), ("/16 scope", 16), ("/24 scope", 24),
                             ("strict", None)):
            env_kwargs = dict(censored=True, seed=73, population_size=12)
            env = build_environment(**env_kwargs)
            # Install enforcement keyed to a uniform per-host scope.
            for host in env.topo.all_clients:
                host.spoof_scope = scope
            env.topo.border_router.sav = SAVFilter.from_network(env.topo.network)
            technique = StatelessSpoofedDNSMeasurement(
                env.ctx, list(BLOCKED_TARGETS_FULL), env.cover_ips(10)
            )
            technique.start()
            env.run(duration=60.0)
            report = env.surveillance.suspect_report()
            results[label] = (env.topo.border_router.sav_drops,
                              report.confidence("measurer"),
                              report.entropy())
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report("a4_sav_granularity", render_table(
        ["SAV policy", "spoofed packets dropped", "measurer confidence", "entropy"],
        [[label, drops, conf, ent] for label, (drops, conf, ent) in results.items()],
        title="A4: SAV granularity vs. cover effectiveness",
    ))
    # No SAV: full dilution.  Strict SAV: every spoof dropped, certain
    # attribution.  (Population is 10.1.1.x-10.1.2.x; the measurer sits in
    # 10.1.0.x, so /24-scoped spoofing cannot reach the cover addresses
    # while /16-scoped spoofing can.)
    assert results["no-SAV"][1] < 0.15
    assert results["/16 scope"][1] < 0.15
    assert results["/24 scope"][0] > 0
    assert results["/24 scope"][1] == 1.0
    assert results["strict"][1] == 1.0


def test_a5_ttl_normalization_countermeasure(benchmark):
    """The §4.2 countermeasure trade-off: TTL normalization defeats
    stateful mimicry but breaks legitimate hop-limited diagnostics.
    """

    from repro.packets import ICMPMessage, IPPacket
    from repro.surveillance import TTLNormalizer

    def run():
        results = {}
        for deployed in (False, True):
            env = build_environment(censored=False, seed=74, population_size=6)
            normalizer = TTLNormalizer(floor=8)
            if deployed:
                env.topo.border_router.taps.insert(0, normalizer)
            technique = StatefulMimicryMeasurement(
                env.ctx, env.mimicry_server,
                [b"GET /benign HTTP/1.1\r\n\r\n"],
                cover_ips=env.cover_ips(4),
            )
            technique.start()
            # Legitimate low-TTL diagnostics crossing the same tap
            # (traceroute-style probes from the measurement server).
            for ttl in (1, 2, 3):
                env.topo.measurement_server.send_ip(IPPacket(
                    src=env.topo.measurement_server.ip,
                    dst=env.topo.population[0].ip,
                    ttl=ttl,
                    payload=ICMPMessage.echo_request(ident=ttl),
                ))
            env.run(duration=30.0)
            false_blocked = sum(1 for r in technique.results if r.blocked)
            results["normalizer" if deployed else "baseline"] = (
                false_blocked, len(technique.results), normalizer.diagnostics_broken,
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report("a5_ttl_normalizer", render_table(
        ["deployment", "false-blocked flows", "total flows", "diagnostics broken"],
        [[label, blocked, total, broken]
         for label, (blocked, total, broken) in results.items()],
        title="A5: TTL-normalization countermeasure trade-off (censor OFF)",
    ))
    baseline, deployed = results["baseline"], results["normalizer"]
    assert baseline[0] == 0            # mimicry clean without the countermeasure
    assert deployed[0] == deployed[1]  # countermeasure corrupts every flow...
    assert deployed[2] > 0             # ...at the cost of broken diagnostics


def test_a6_low_and_slow_overt(benchmark):
    """Pacing ablation: a *slow* overt DNS campaign stays under the bulk-
    resolution threshold and evades too — but pays in wall-clock time.

    An honest caveat this reproduction surfaces: volume-threshold interest
    rules create a stealth/latency trade-off even for overt methods.  The
    paper's techniques remove the latency cost (they can burst, because
    bursting is exactly what makes them look like bots).
    """

    from repro.core import OvertDNSMeasurement

    def run():
        results = {}
        for label, interval in (("burst", 0.0), ("low-and-slow", 10.0)):
            env = build_environment(censored=True, seed=75, population_size=6)
            technique = OvertDNSMeasurement(
                env.ctx, list(BLOCKED_TARGETS_FULL), interval=interval
            )
            started = env.sim.now
            technique.start()
            env.run(duration=300.0)
            elapsed = max(r.time for r in technique.results) - started
            risk = assess_risk(env.surveillance, label, "measurer",
                               env.topo.measurement_client.ip, now=env.sim.now)
            accurate = all(r.blocked for r in technique.results)
            results[label] = (accurate, risk.attributed_alerts, elapsed)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report("a6_pacing", render_table(
        ["pacing", "accurate", "attributed alerts", "campaign seconds"],
        [[label, "yes" if acc else "NO", alerts, elapsed]
         for label, (acc, alerts, elapsed) in results.items()],
        title="A6: overt-DNS pacing vs. the volume-threshold interest rule",
    ))
    burst, slow = results["burst"], results["low-and-slow"]
    assert burst[0] and slow[0]          # both accurate
    assert burst[1] > 0                  # bursting trips the threshold
    assert slow[1] == 0                  # pacing stays under it...
    assert slow[2] > 20 * burst[2]       # ...at a large latency cost


def test_a7_sampling_beats_single_shot_under_loss(benchmark):
    """Method #3's sampling claim, quantified: on a lossy path (censor
    OFF), single-shot overt probes misreport timeouts as blocking while the
    DDoS method's majority vote over 25 samples stays correct.
    """

    from repro.core import OvertHTTPMeasurement

    def run():
        rows = []
        for loss in (0.0, 0.05, 0.10):
            single_fp = 0
            sampled_fp = 0
            trials = 6
            for trial in range(trials):
                env = build_environment(censored=False, seed=76 + trial,
                                        population_size=4)
                # Make the international hop lossy.
                for link in env.topo.network.links:
                    if link.connects(env.topo.border_router, env.topo.transit_router):
                        link.loss = loss
                overt = OvertHTTPMeasurement(env.ctx, ["example.org"])
                # Censorship is deterministic (~100 % of samples fail)
                # while loss is stochastic, so the sampled method can use
                # a high blocked-fraction threshold and separate the two —
                # something a single-shot probe fundamentally cannot do.
                sampled = DDoSMeasurement(env.ctx, ["weather.gov"],
                                          requests_per_target=25,
                                          blocked_fraction_threshold=0.8)
                overt.start()
                sampled.start()
                env.run(duration=120.0)
                single_fp += int(overt.results[0].blocked)
                sampled_fp += int(sampled.results[0].blocked)
            rows.append([loss, f"{single_fp}/{trials}", f"{sampled_fp}/{trials}"])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    from repro.analysis.stats import wilson_interval

    def with_ci(cell):
        hits, trials = (int(x) for x in cell.split("/"))
        low, high = wilson_interval(hits, trials)
        return f"{cell} (95% CI {low:.2f}-{high:.2f})"

    write_report("a7_loss_sampling", render_table(
        ["link loss", "overt false-blocked", "ddos(25-sample) false-blocked"],
        [[loss, with_ci(single), with_ci(sampled)] for loss, single, sampled in rows],
        title="A7: repeated sampling vs. single-shot probing on lossy paths",
    ))
    # Clean path: nobody false-positives.
    assert rows[0][1] == "0/6" and rows[0][2] == "0/6"
    # Lossy paths: the sampled method never false-positives; the single
    # shot does at least once across the sweep.
    total_single = sum(int(r[1].split("/")[0]) for r in rows)
    total_sampled = sum(int(r[2].split("/")[0]) for r in rows)
    assert total_sampled == 0
    assert total_single > 0


def test_a8_censor_stream_depth(benchmark):
    """The censor's finite reassembly (Khattak et al. [26]): content past
    the inspection depth is invisible, so a keyword buried deep in the
    request escapes the reset — and a measurement that only probes deep
    offsets would wrongly conclude 'not censored'.
    """

    from repro.censor import GreatFirewall
    from repro.netsim import http_get

    def run():
        results = {}
        for depth in (256, 8192):
            env = build_environment(censored=True, seed=77, population_size=4)
            censor = GreatFirewall(stream_depth=depth)
            censor.policy.dns_poisoning = False
            # Replace the default censor tap (index 1; MVR is at 0).
            env.topo.border_router.taps[1] = censor
            outcomes = {}
            filler = "x" * 600
            for label, path in (
                ("shallow", "/falun"),
                ("deep", f"/{filler}falun"),
            ):
                captured = []
                http_get(env.ctx.client, env.topo.control_web.ip, "example.org",
                         path, callback=captured.append)
                env.run(duration=20.0)
                outcomes[label] = captured[0].status
            results[depth] = outcomes
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report("a8_stream_depth", render_table(
        ["censor depth", "shallow keyword", "keyword at offset ~600"],
        [[depth, out["shallow"], out["deep"]] for depth, out in results.items()],
        title="A8: censor reassembly depth vs. keyword position",
    ))
    assert results[256]["shallow"] == "reset"
    assert results[256]["deep"] == "ok"      # escaped the shallow censor
    assert results[8192]["deep"] == "reset"  # full-depth censor catches it


def test_a9_fragmentation_evasion(benchmark):
    """Clayton et al.'s fragment evasion, as a censor-capability ablation:
    a keyword split across IP fragments passes a non-reassembling censor
    and is caught by a reassembling one.  (This is an *accuracy* hazard
    for keyword measurements against modern censors: concluding "not
    censored" from a fragmented probe requires knowing the censor's
    reassembly capability.)
    """

    from repro.censor import GreatFirewall
    from repro.netsim import WebServer, build_three_node
    from repro.packets import ACK, IPPacket, PSH, SYN, TCPSegment, fragment

    def keyword_over_fragments(reassemble):
        """Real TCP flow whose keyword-bearing data segment travels as
        IP fragments (the raw client suppresses kernel RSTs, nmap-style)."""
        topo = build_three_node(seed=23)
        censor = GreatFirewall()
        censor.policy.reassemble_fragments = reassemble
        topo.switch.add_tap(censor)
        web = WebServer(topo.server)
        client, server = topo.client, topo.server
        client.stack.closed_port_rst = False
        sport, client_isn = 45000, 1000
        state = {}

        def sniff(packet):
            if packet.tcp is not None and packet.tcp.is_synack:
                state["server_isn"] = packet.tcp.seq

        client.stack.add_sniffer(sniff)
        client.send_raw(IPPacket(
            src=client.ip, dst=server.ip,
            payload=TCPSegment(sport=sport, dport=80, seq=client_isn, flags=SYN),
        ))
        topo.run()

        def seg(flags, seq, data=b""):
            return IPPacket(
                src=client.ip, dst=server.ip, flags=0,
                payload=TCPSegment(sport=sport, dport=80, seq=seq,
                                   ack=state["server_isn"] + 1,
                                   flags=flags, payload=data),
            )

        client.send_raw(seg(ACK, client_isn + 1))
        topo.run()
        request = b"GET /falun-material HTTP/1.1\r\nHost: x\r\n\r\n"
        for frag in fragment(seg(PSH | ACK, client_isn + 1, request), mtu=36):
            client.send_raw(frag)
        topo.run()
        return censor, web

    def run():
        outcomes = {}
        for reassemble in (False, True):
            censor, web = keyword_over_fragments(reassemble)
            outcomes[reassemble] = (
                len(censor.events_by_mechanism("keyword")),
                len(web.request_log),
            )
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report("a9_fragmentation", render_table(
        ["censor reassembles fragments", "keyword detections", "requests served"],
        [[str(flag), events, served] for flag, (events, served) in outcomes.items()],
        title="A9: IP-fragmentation evasion vs. censor reassembly capability",
    ))
    assert outcomes[False] == (0, 1)   # evaded; server still got the request
    assert outcomes[True][0] == 1      # reassembling censor catches it
