"""Performance microbenchmarks for the substrate hot paths.

Unlike the E1-E10 reproduction benches (single-shot), these exercise the
hot loops with real repetition so pytest-benchmark's statistics mean
something: packet serialization, rule-engine evaluation, stream
reassembly, and raw simulator event throughput.

All benches carry the ``perf`` marker, which the repo's pytest config
excludes by default — run them with ``pytest benchmarks/bench_perf.py -m
perf``.  ``benchmarks/perf_guard.py`` times the same hot paths without
pytest and checks them against the committed ``BENCH_PERF.json`` baseline.
"""

import pytest

from repro.netsim import Simulator
from repro.packets import ACK, IPPacket, PSH, SYN, TCPSegment, UDPDatagram
from repro.rules import (
    DEFAULT_VARIABLES,
    RuleEngine,
    StreamReassembler,
    censor_ruleset_text,
    mvr_detection_ruleset_text,
    surveillance_interest_ruleset_text,
)

pytestmark = pytest.mark.perf


def _request_packet(index=0):
    return IPPacket(
        src="10.1.0.5",
        dst="203.0.113.10",
        payload=TCPSegment(
            sport=40000 + index % 1000, dport=80, seq=100, ack=500,
            flags=PSH | ACK,
            payload=b"GET /index.html HTTP/1.1\r\nHost: example.org\r\n\r\n",
        ),
    )


def test_perf_packet_serialization(benchmark):
    packet = _request_packet()
    raw = benchmark(packet.to_bytes)
    assert len(raw) > 40


def test_perf_packet_parsing(benchmark):
    raw = _request_packet().to_bytes()
    parsed = benchmark(IPPacket.from_bytes, raw)
    assert parsed.tcp is not None


def test_perf_dns_round_trip(benchmark):
    from repro.packets import DNSMessage, DNSRecord, QTYPE_A

    message = DNSMessage(
        txid=7, is_response=True,
        answers=[DNSRecord("example.org", QTYPE_A, "1.2.3.4")],
    )
    message.questions = DNSMessage.query("example.org").questions

    def round_trip():
        return DNSMessage.from_bytes(message.to_bytes())

    parsed = benchmark(round_trip)
    assert parsed.a_records() == ["1.2.3.4"]


def test_perf_rule_engine_full_ruleset(benchmark):
    """Packets/second through the complete combined ruleset (~35 rules)."""
    text = "\n".join([
        censor_ruleset_text(),
        mvr_detection_ruleset_text(),
        surveillance_interest_ruleset_text(),
    ])
    engine = RuleEngine.from_text(text, variables=DEFAULT_VARIABLES)
    packets = [_request_packet(i) for i in range(100)]
    state = {"now": 0.0}

    def run_batch():
        state["now"] += 1.0
        for packet in packets:
            engine.process(packet, state["now"])

    benchmark(run_batch)
    assert engine.packets_processed >= 100


def test_perf_rule_dispatch_wide_ports(benchmark):
    """Dispatch-index showcase: ~200 single-port rules, traffic spread wide.

    A linear scan pays for every rule on every packet here; the port index
    consults one bucket (a handful of candidates) per packet.
    """
    from perf_guard import wide_port_packets, wide_port_ruleset_text

    engine = RuleEngine.from_text(wide_port_ruleset_text())
    packets = wide_port_packets()
    state = {"now": 0.0}

    def run_batch():
        state["now"] += 1.0
        for packet in packets:
            engine.process(packet, state["now"])

    benchmark(run_batch)
    assert engine.packets_processed >= len(packets)
    assert engine.alerts  # the token packets really fire their port rules


def test_perf_rule_engine_mixed_protocols(benchmark):
    """Packets/second for a TCP/UDP/ICMP transit mix, full ruleset."""
    from perf_guard import full_ruleset_text, mixed_protocol_packets

    engine = RuleEngine.from_text(full_ruleset_text(), variables=DEFAULT_VARIABLES)
    packets = mixed_protocol_packets()
    state = {"now": 0.0}

    def run_batch():
        state["now"] += 1.0
        for packet in packets:
            engine.process(packet, state["now"])

    benchmark(run_batch)
    assert engine.packets_processed >= len(packets)


def test_perf_stream_reassembly(benchmark):
    """Segments/second through handshake tracking + payload assembly."""
    def run_flows():
        reasm = StreamReassembler()
        for flow in range(20):
            client = f"10.1.0.{flow + 1}"
            reasm.feed(IPPacket(src=client, dst="203.0.113.10",
                                payload=TCPSegment(sport=1000, dport=80, seq=10,
                                                   flags=SYN)), 0.0)
            reasm.feed(IPPacket(src="203.0.113.10", dst=client,
                                payload=TCPSegment(sport=80, dport=1000, seq=50,
                                                   ack=11, flags=SYN | ACK)), 0.0)
            for index in range(10):
                reasm.feed(IPPacket(src=client, dst="203.0.113.10",
                                    payload=TCPSegment(sport=1000, dport=80,
                                                       seq=11 + index * 8, ack=51,
                                                       flags=PSH | ACK,
                                                       payload=b"payload!")), 0.0)
        return reasm

    reasm = benchmark(run_flows)
    assert len(reasm.flows) == 20


def test_perf_simulator_event_throughput(benchmark):
    """Raw event-loop throughput: schedule/dispatch 10k chained events."""
    def run_events():
        sim = Simulator()
        state = {"count": 0}

        def tick():
            state["count"] += 1
            if state["count"] < 10_000:
                sim.at(0.001, tick)

        sim.at(0.0, tick)
        sim.run()
        return state["count"]

    count = benchmark(run_events)
    assert count == 10_000


def test_perf_end_to_end_http_transaction(benchmark):
    """Full-stack cost: one HTTP fetch across the three-node topology."""
    from repro.netsim import WebServer, build_three_node, http_get

    def fetch():
        topo = build_three_node(seed=1)
        WebServer(topo.server)
        results = []
        http_get(topo.client, topo.server.ip, "example.org", callback=results.append)
        topo.run()
        return results[0]

    result = benchmark(fetch)
    assert result.ok
