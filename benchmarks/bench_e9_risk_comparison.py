"""E9 — the headline risk comparison: overt vs. stealthy techniques.

Runs every technique over the same full target list in identical censored
environments and reports what the surveillance system ends up knowing about
the measurer.  Paper shape: the overt baseline is attributed with full
confidence and investigated; each stealthy technique leaves zero attributed
alerts (Section 3 methods) or a diluted 1/N attribution (Section 4
spoofing), at equal measurement accuracy.
"""

from common import write_report

from repro.analysis import render_table
from repro.core import (
    DDoSMeasurement,
    OvertDNSMeasurement,
    OvertHTTPMeasurement,
    ScanMeasurement,
    ScanTarget,
    SpamMeasurement,
    StatefulMimicryMeasurement,
    StatelessSpoofedDNSMeasurement,
    assess_risk,
    comparison_table,
)
from repro.core.evaluation import (
    BLOCKED_TARGETS_FULL,
    CONTROL_TARGETS_FULL,
    build_environment,
)

FULL = list(BLOCKED_TARGETS_FULL) + CONTROL_TARGETS_FULL


def _factories():
    def overt_http(env):
        return OvertHTTPMeasurement(env.ctx, FULL)

    def overt_dns(env):
        return OvertDNSMeasurement(env.ctx, FULL)

    def scan(env):
        env.censor.policy.blocked_ips.add(env.topo.blocked_web.ip)
        return ScanMeasurement(
            env.ctx,
            [ScanTarget(env.topo.blocked_web.ip, [80], "blocked"),
             ScanTarget(env.topo.control_web.ip, [80], "control")],
            port_count=80,
        )

    def spam(env):
        return SpamMeasurement(env.ctx, FULL)

    def ddos(env):
        return DDoSMeasurement(env.ctx, FULL[:4], requests_per_target=25)

    def spoofed_dns(env):
        return StatelessSpoofedDNSMeasurement(env.ctx, FULL, env.cover_ips(10))

    def stateful(env):
        # Cover sets only defeat the analyst when the resulting suspect
        # crowd exceeds analyst capacity (a quantitative result of this
        # reproduction: a tie-group the analyst can afford to investigate
        # wholesale offers no protection).  Capacity is 10/day; 11 covers
        # put the crowd at 12.
        payloads = [b"GET /falun HTTP/1.1\r\nHost: probe\r\n\r\n",
                    b"GET /weather HTTP/1.1\r\nHost: probe\r\n\r\n"]
        return StatefulMimicryMeasurement(
            env.ctx, env.mimicry_server, payloads, env.cover_ips(11)
        )

    return [
        ("overt-http", overt_http, False),
        ("overt-dns", overt_dns, False),
        ("scan", scan, True),
        ("spam", spam, True),
        ("ddos", ddos, True),
        ("spoofed-dns", spoofed_dns, True),
        ("stateful-mimicry", stateful, True),
    ]


def run_comparison(seed: int = 8):
    assessments = []
    detected = {}
    for name, factory, _stealthy in _factories():
        env = build_environment(censored=True, seed=seed, population_size=12)
        env.surveillance.analyst.escalation_threshold = 1
        technique = factory(env)
        technique.start()
        env.run(duration=120.0)
        risk = assess_risk(env.surveillance, name, "measurer",
                           env.topo.measurement_client.ip, now=env.sim.now)
        assessments.append(risk)
        detected[name] = any(result.blocked for result in technique.results)
    return assessments, detected


def test_e9_risk_comparison(benchmark):
    assessments, detected = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    report = comparison_table(assessments)
    extra = render_table(
        ["technique", "detected censorship"],
        [[name, "yes" if hit else "NO"] for name, hit in detected.items()],
        title="\ncensorship detection per technique",
    )
    write_report("e9_risk_comparison", report + "\n" + extra)

    by_name = {a.technique: a for a in assessments}
    # Every technique detected the censorship.
    assert all(detected.values()), detected
    # Overt HTTP/DNS: attributed and investigated.
    assert by_name["overt-http"].attributed_alerts > 0
    assert by_name["overt-dns"].attributed_alerts > 0
    assert by_name["overt-dns"].investigated
    # Section-3 methods: zero attributed alerts.
    for name in ("scan", "spam", "ddos"):
        assert by_name[name].attributed_alerts == 0, name
        assert not by_name[name].investigated, name
    # Section-4 spoofing: diluted attribution, low confidence.
    assert by_name["spoofed-dns"].attribution_confidence < 0.15
    assert by_name["stateful-mimicry"].attribution_confidence < 0.5
    # Headline: every stealthy technique is strictly less risky than overt.
    overt_risk = min(by_name["overt-http"].risk_score(),
                     by_name["overt-dns"].risk_score())
    for name in ("scan", "spam", "ddos", "spoofed-dns", "stateful-mimicry"):
        assert by_name[name].risk_score() < overt_risk, name
