"""E4 — the surveillance storage model (paper §2.1 numbers).

Reproduces the quantitative surveillance constraints the paper cites:

- Massive Volume Reduction cuts observed volume by roughly 30 % (chiefly
  by discarding p2p);
- total content retention never exceeds 7.5 % of observed volume;
- content expires after 3 days, connection metadata after 30 days (NSA
  profile) / 36 hours (campus profile).
"""

from common import write_report

from repro.analysis import render_table
from repro.netsim import build_censored_as
from repro.surveillance import (
    AttributionEngine,
    CAMPUS_PROFILE,
    NSA_PROFILE,
    SurveillanceSystem,
)
from repro.traffic import PopulationMix, install_standard_servers

DAY = 86_400.0


def run_population(seed: int = 1, duration: float = 40.0):
    topo = build_censored_as(seed=seed, population_size=12)
    surveillance = SurveillanceSystem(
        attribution=AttributionEngine.from_network(topo.network)
    )
    topo.border_router.add_tap(surveillance)
    install_standard_servers(topo)
    mix = PopulationMix(
        topo,
        p2p_chunk=4096, p2p_interval=4.0, web_interval=0.2,
        dns_interval=0.3, spam_interval=3.0, scan_interval=1.0,
    )
    mix.start(until=duration)
    topo.run(duration=duration * 1.5)
    return topo, surveillance, mix


def test_e4_mvr_and_storage_budget(benchmark):
    topo, surveillance, mix = benchmark.pedantic(run_population, rounds=1, iterations=1)
    summary = surveillance.summary()
    seen = summary["bytes_seen"]

    rows = [
        ["bytes observed", seen, "-"],
        ["MVR discard fraction", summary["discard_fraction"], "~0.30 (paper)"],
        ["  of which p2p", summary["discarded_by_class"].get("p2p", 0) / seen, "dominant"],
        ["content retained fraction", summary["retained_fraction"], "<= 0.075 (paper)"],
        ["flow metadata records", summary["flow_records"], "-"],
        ["retained alerts", summary["retained_alerts"], "-"],
    ]
    report = render_table(
        ["quantity", "measured", "paper"], rows,
        title="E4: Massive Volume Reduction and storage budget",
    )
    write_report("e4_mvr_storage", report)

    # Paper shape: ~30 % stage-1 reduction, dominated by p2p.
    assert 0.15 <= summary["discard_fraction"] <= 0.45
    p2p = summary["discarded_by_class"].get("p2p", 0)
    assert p2p >= 0.6 * summary["bytes_discarded_stage1"]
    # Hard budget: retained content never beats the 7.5 % fraction.
    assert summary["retained_fraction"] <= NSA_PROFILE.storage_fraction + 0.001


def test_e4_retention_windows(benchmark):
    def run():
        topo, surveillance, _ = run_population(seed=2, duration=20.0)
        store = surveillance.store
        before = (len(store.content), len(store.flows))
        # Jump past the content window but inside the metadata window.
        store.expire(now=topo.sim.now + 4 * DAY)
        after_content = (len(store.content), len(store.flows))
        # Jump past the metadata window too.
        store.expire(now=topo.sim.now + 31 * DAY)
        after_metadata = (len(store.content), len(store.flows))
        return before, after_content, after_metadata

    before, after_content, after_metadata = benchmark.pedantic(run, rounds=1, iterations=1)
    assert before[0] > 0 and before[1] > 0
    assert after_content[0] == 0          # content gone after 3 days
    assert after_content[1] == before[1]  # metadata survives 4 days
    assert after_metadata[1] == 0         # metadata gone after 30 days


def test_e4_campus_profile_no_content(benchmark):
    def run():
        topo = build_censored_as(seed=3, population_size=8)
        surveillance = SurveillanceSystem(
            profile=CAMPUS_PROFILE,
            attribution=AttributionEngine.from_network(topo.network),
        )
        topo.border_router.add_tap(surveillance)
        install_standard_servers(topo)
        mix = PopulationMix(topo)
        mix.start(until=15.0)
        topo.run(duration=25.0)
        return surveillance

    surveillance = benchmark.pedantic(run, rounds=1, iterations=1)
    # Campus: no full-content capture, but flow records and alerts exist.
    assert surveillance.store.bytes_retained == 0
    assert len(surveillance.store.flows) > 0
