"""E7 — spoofing feasibility, after Beverly et al. (paper §4.2).

"77 % of clients can spoof other addresses within their own /24, and 11 %
can spoof addresses within their own /16; these characteristics hold across
a wide range of countries and regions."  We reproduce the population
statistics from the SAV model and verify the per-region stability claim
with independent samples.
"""

import random

from common import write_report

from repro.analysis import render_table
from repro.spoofing import BEVERLY_PROFILE, SAVFilter, sample_scopes, feasibility_summary

REGIONS = ["africa", "americas", "asia", "europe", "oceania"]
CLIENTS_PER_REGION = 20_000


def run_regions(seed: int = 6):
    summaries = {}
    for index, region in enumerate(REGIONS):
        rng = random.Random(seed * 1000 + index)
        scopes = sample_scopes(rng, CLIENTS_PER_REGION, BEVERLY_PROFILE)
        summaries[region] = feasibility_summary(scopes)
    return summaries


def test_e7_sav_feasibility(benchmark):
    summaries = benchmark.pedantic(run_regions, rounds=1, iterations=1)

    rows = [
        [region, summary["total"], summary["frac_slash24"], summary["frac_slash16"]]
        for region, summary in summaries.items()
    ]
    rows.append(["(paper)", "-", 0.77, 0.11])
    report = render_table(
        ["region", "clients", "can spoof /24", "can spoof /16"],
        rows,
        title="E7: spoofing feasibility by region (Beverly et al. model)",
    )
    write_report("e7_sav", report)

    for region, summary in summaries.items():
        assert abs(summary["frac_slash24"] - 0.77) < 0.02, region
        assert abs(summary["frac_slash16"] - 0.11) < 0.02, region


def test_e7_filter_enforcement_matches_scopes(benchmark):
    """The packet-level filter enforces exactly the sampled capability."""

    def run():
        rng = random.Random(9)
        scopes = {}
        base = "10.7.0.0"
        for index in range(2000):
            ip = f"10.7.{index // 250}.{index % 250 + 1}"
            scopes[ip] = BEVERLY_PROFILE.draw_scope(rng)
        sav = SAVFilter(lambda ip: scopes.get(ip))
        allowed_24 = allowed_16 = 0
        for ip, scope in scopes.items():
            same_24 = ip.rsplit(".", 1)[0] + ".254"
            other_24_same_16 = f"10.7.99.{rng.randrange(1, 250)}"
            if sav.permits(same_24, ip):
                allowed_24 += 1
            if sav.permits(other_24_same_16, ip):
                allowed_16 += 1
        return allowed_24 / len(scopes), allowed_16 / len(scopes)

    frac24, frac16 = benchmark.pedantic(run, rounds=1, iterations=1)
    assert abs(frac24 - 0.77) < 0.04
    assert abs(frac16 - 0.11) < 0.04
