"""E8 — the ethics-section load comparison (paper §6).

"If we conducted a single DNS measurement from every IP in an ASN's /16,
we would send roughly 65k queries" — compared against the accepted practice
of open-resolver measurement (Schomp et al.: 32 M open forwarders, 60-70 k
open recursives).  We reproduce the arithmetic and additionally replay a
scaled-down spoofed sweep in the simulator to measure the true per-server
load.
"""

from common import write_report

from repro.analysis import load_comparison, render_table, spoofed_query_load
from repro.core.evaluation import build_environment
from repro.packets import DNSMessage, IPPacket, UDPDatagram


def run_arithmetic():
    return {
        "/16 sweep": load_comparison(prefix_length=16),
        "/24 sweep": load_comparison(prefix_length=24),
    }


def run_simulated_sweep(seed: int = 7, prefix: int = 24):
    """Replay a /24-scale spoofed sweep and count resolver load."""
    env = build_environment(censored=False, seed=seed, population_size=4)
    client = env.topo.measurement_client
    base = client.ip.rsplit(".", 1)[0]
    count = spoofed_query_load(prefix)
    for index in range(count):
        query = DNSMessage.query("example.org", txid=index % 65536)
        packet = IPPacket(
            src=f"{base}.{index % 254 + 1}",
            dst=env.topo.dns_server.ip,
            payload=UDPDatagram(sport=30000 + index % 20000, dport=53,
                                payload=query.to_bytes()),
        )
        client.send_raw(packet)
    env.run(duration=30.0)
    return count, env.servers["dns"].queries_served


def test_e8_load_arithmetic(benchmark):
    comparisons = benchmark.pedantic(run_arithmetic, rounds=1, iterations=1)

    rows = []
    for name, cmp in comparisons.items():
        rows.append([
            name,
            cmp.spoofed_queries,
            cmp.open_forwarders,
            cmp.queries_per_forwarder_equivalent,
            cmp.fraction_of_recursive_population,
        ])
    report = render_table(
        ["scenario", "queries", "open forwarders (Schomp)",
         "queries per forwarder", "vs recursive population"],
        rows,
        title="E8: spoofed-measurement load vs. open-resolver practice",
    )
    write_report("e8_ethics_load", report)

    full = comparisons["/16 sweep"]
    assert full.spoofed_queries == 65_536  # the paper's "roughly 65k"
    # The imposed load is small next to accepted measurement practice.
    assert full.queries_per_forwarder_equivalent < 0.01


def test_e8_simulated_sweep_load(benchmark):
    count, served = benchmark.pedantic(run_simulated_sweep, rounds=1, iterations=1)
    # Every spoofed query lands on the resolver exactly once: the load is
    # bounded and predictable (one query per address, as the paper states).
    assert count == 256
    assert served == count
