"""Stage-1 traffic classification for Massive Volume Reduction.

The MVR must decide, per packet, whether the traffic has intelligence
value.  Classification combines the commodity IDS detections (scan / DDoS /
spam / p2p classtypes) with cheap protocol heuristics — the same toolbox a
real reduction stage has at line rate.
"""

from __future__ import annotations

from typing import List, Optional

from ..packets import IPPacket, PROTO_TCP, PROTO_UDP
from ..rules import Alert
from ..rules.rulesets import DISCARD_CLASSTYPES, RETAIN_CLASSTYPES

__all__ = ["TrafficClass", "classify_packet", "classify_alerts"]


class TrafficClass:
    """Coarse traffic classes the MVR reasons about."""

    P2P = "p2p"
    SCAN = "scan"
    DDOS = "ddos"
    SPAM = "spam"
    WEB = "web"
    DNS = "dns"
    MAIL = "mail"
    ICMP = "icmp"
    OTHER = "other"

    #: Classes MVR discards wholesale (commodity/botnet noise).
    DISCARDED = frozenset({P2P, SCAN, DDOS, SPAM})


_CLASSTYPE_TO_TRAFFIC = {
    "attempted-recon": TrafficClass.SCAN,
    "denial-of-service": TrafficClass.DDOS,
    "spam": TrafficClass.SPAM,
    "p2p": TrafficClass.P2P,
}


def classify_alerts(alerts: List[Alert]) -> Optional[str]:
    """Map commodity-detection alerts to a traffic class, if any."""
    for alert in alerts:
        traffic_class = _CLASSTYPE_TO_TRAFFIC.get(alert.classtype)
        if traffic_class is not None:
            return traffic_class
    return None


def classify_packet(packet: IPPacket, alerts: List[Alert]) -> str:
    """Classify one packet given the detections it raised.

    Detection classtypes dominate; port-based heuristics fill in the rest.
    """
    from_alerts = classify_alerts(alerts)
    if from_alerts is not None:
        return from_alerts
    if packet.protocol == PROTO_TCP and packet.tcp is not None:
        ports = {packet.tcp.sport, packet.tcp.dport}
        if ports & {80, 8080, 443}:
            return TrafficClass.WEB
        if 25 in ports:
            return TrafficClass.MAIL
        if ports & set(range(6881, 7000)):
            return TrafficClass.P2P
        return TrafficClass.OTHER
    if packet.protocol == PROTO_UDP and packet.udp is not None:
        ports = {packet.udp.sport, packet.udp.dport}
        if 53 in ports:
            return TrafficClass.DNS
        if ports & set(range(6881, 7000)):
            return TrafficClass.P2P
        return TrafficClass.OTHER
    if packet.icmp is not None:
        return TrafficClass.ICMP
    return TrafficClass.OTHER


def has_retainable_alert(alerts: List[Alert]) -> bool:
    """Whether any alert belongs to the user-focused retain set."""
    return any(alert.classtype in RETAIN_CLASSTYPES for alert in alerts)


def has_discardable_alert(alerts: List[Alert]) -> bool:
    """Whether any alert marks the packet as commodity noise."""
    return any(alert.classtype in DISCARD_CLASSTYPES for alert in alerts)
