"""Stage-2 analyst triage.

After Massive Volume Reduction, "surveillance systems pass the data to a
human analyst" whose responses "are typically expensive; thus, false
positives are costly" (paper Section 2.1).  This stage models that
selectivity: a user is escalated only above an alert threshold, and the
analyst can only open a bounded number of investigations per day —
whence the paper's Syria argument that alarming on all censored queries is
infeasible (1.57 % of a population is far beyond capacity).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List

from .profile import SurveillanceProfile
from .storage import StoredAlert

__all__ = ["Investigation", "Analyst"]

DAY = 86_400.0


@dataclass
class Investigation:
    """One opened case against a user."""

    user: str
    opened_at: float
    alert_count: int
    reasons: List[str] = field(default_factory=list)


class Analyst:
    """Threshold-based triage with bounded daily capacity."""

    def __init__(
        self,
        profile: SurveillanceProfile,
        escalation_threshold: int = 3,
        window: float = DAY,
    ) -> None:
        self.profile = profile
        self.escalation_threshold = escalation_threshold
        self.window = window
        self.investigations: List[Investigation] = []
        self.escalations_denied_capacity = 0
        self._investigated_users = set()

    def triage(self, alerts: List[StoredAlert], now: float) -> List[Investigation]:
        """Review retained alerts; open investigations within capacity.

        Returns the investigations opened by this call.
        """
        recent: Dict[str, List[StoredAlert]] = defaultdict(list)
        for stored in alerts:
            if stored.user is not None and now - stored.time <= self.window:
                recent[stored.user].append(stored)

        candidates = [
            (user, user_alerts)
            for user, user_alerts in recent.items()
            if len(user_alerts) >= self.escalation_threshold
            and user not in self._investigated_users
        ]
        # Most-alerting users first: the analyst spends capacity wisely.
        candidates.sort(key=lambda item: (-len(item[1]), item[0]))

        opened: List[Investigation] = []
        already_today = sum(
            1 for inv in self.investigations if now - inv.opened_at < DAY
        )
        capacity = self.profile.analyst_capacity_per_day - already_today

        # Process tie-groups of equal alert count, most-suspicious first.
        # A tie-group larger than remaining capacity is *indiscriminate*:
        # the analyst has no basis to pick within it, and acting on a
        # random subset is exactly the costly false-positive behaviour the
        # paper rules out ("protests against random police action").  The
        # whole group — and everything less suspicious — is denied.  This
        # is what spoofed cover traffic exploits.
        index = 0
        while index < len(candidates):
            count = len(candidates[index][1])
            group = [c for c in candidates[index:] if len(c[1]) == count]
            if capacity <= 0 or len(group) > capacity:
                self.escalations_denied_capacity += len(candidates) - index
                break
            for user, user_alerts in group:
                investigation = Investigation(
                    user=user,
                    opened_at=now,
                    alert_count=len(user_alerts),
                    reasons=sorted(
                        {
                            stored.alert.msg
                            for stored in user_alerts
                            if stored.alert is not None
                        }
                    ),
                )
                self.investigations.append(investigation)
                self._investigated_users.add(user)
                opened.append(investigation)
                capacity -= 1
            index += len(group)
        return opened

    def is_under_investigation(self, user: str) -> bool:
        return user in self._investigated_users

    def required_capacity(self, alerts: List[StoredAlert], now: float) -> int:
        """How many users *would* cross the threshold with unbounded capacity.

        This is the quantity the Syria analysis computes: when it exceeds
        plausible analyst capacity, user-focused targeting breaks down.
        """
        recent: Dict[str, int] = defaultdict(int)
        for stored in alerts:
            if stored.user is not None and now - stored.time <= self.window:
                recent[stored.user] += 1
        return sum(1 for count in recent.values() if count >= self.escalation_threshold)
