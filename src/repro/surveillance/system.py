"""The composite surveillance system: detection engine + MVR + analyst.

A passive tap (it never drops traffic) modelling the two-stage pipeline of
paper Section 2.1:

1. **Massive Volume Reduction** — every packet is classified; commodity
   noise (p2p, scanning, DDoS, spam) is discarded without per-user logging,
   because storing it has no intelligence value.  Everything else is
   retained as content (byte-budgeted, 7.5 %) and flow metadata.
2. **Analyst triage** — user-attributable alerts from the interest ruleset
   (censored-content access, circumvention signatures) are retained for a
   year and escalated by the :class:`Analyst` when a user crosses the
   threshold.

Evasion, in the paper's terms, means: the measurement completes without the
system retaining a *user-attributed alert* for the measurer.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..netsim.middlebox import Action, Middlebox, TapContext
from ..obs.metrics import active_or_none
from ..packets import IPPacket, canonical_flow
from ..rules import DEFAULT_VARIABLES, RuleEngine
from ..rules.rulesets import (
    BOT_CLASSTYPES,
    RETAIN_CLASSTYPES,
    mvr_detection_ruleset_text,
    surveillance_interest_ruleset_text,
)
from .analyst import Analyst, Investigation
from .attribution import AttributionEngine, SuspectReport
from .classify import TrafficClass, classify_packet
from .profile import NSA_PROFILE, SurveillanceProfile
from .storage import ContentRecord, RetentionStore, StoredAlert

__all__ = ["SurveillanceSystem"]


class SurveillanceSystem(Middlebox):
    """The surveillance tap; attach next to the censor with ``add_tap``.

    The tap is *purely passive* — it returns ``Action.PASS`` for every
    packet regardless of what it records — so intake is decoupled from
    analysis: ``process`` buffers ``(packet, time, size)`` and the full
    pipeline (rule engine via :meth:`RuleEngine.process_batch`, bot
    tracking, retention, MVR classification) runs over the batch when
    ``batch_size`` packets have accumulated or any query method is
    called.  Replay order inside a batch is exactly arrival order, so
    every stored record and counter is identical to per-packet
    processing — batching changes *when* the work happens, never the
    result.  Query methods (and the metrics registry's flush hooks)
    drain the buffer first, so observable state is always current.
    """

    name = "surveillance"

    #: packets buffered before the pipeline runs over them in one go
    batch_size = 32

    def __init__(
        self,
        profile: SurveillanceProfile = NSA_PROFILE,
        attribution: Optional[AttributionEngine] = None,
        variables: Optional[Dict[str, str]] = None,
        escalation_threshold: int = 3,
        extra_rules: str = "",
        detection_ruleset: Optional[str] = None,
        interest_ruleset: Optional[str] = None,
    ) -> None:
        self.profile = profile
        self.attribution = attribution
        self.store = RetentionStore(profile)
        self.analyst = Analyst(profile, escalation_threshold=escalation_threshold)
        variables = dict(variables or DEFAULT_VARIABLES)
        if detection_ruleset is None:
            detection_ruleset = mvr_detection_ruleset_text()
        if interest_ruleset is None:
            interest_ruleset = surveillance_interest_ruleset_text()
        ruleset = "\n".join([detection_ruleset, interest_ruleset, extra_rules])
        self.engine = RuleEngine.from_text(
            ruleset, variables=variables, obs_label="mvr"
        )
        # Per-stage byte/alert counters — the MVR numbers the paper's
        # argument is about (which stage a packet dies in).
        obs = active_or_none()
        self._obs = obs
        if obs is not None:
            self._m_ingest_pkts = obs.counter(
                "mvr_packets_ingested_total",
                "Packets entering the surveillance tap",
            )
            self._m_ingest_bytes = obs.counter(
                "mvr_bytes_ingested_total",
                "Wire bytes entering the surveillance tap",
            )
            self._m_discard_bytes = obs.counter(
                "mvr_bytes_discarded_total",
                "Bytes discarded by stage-1 Massive Volume Reduction",
                ("traffic_class",),
            )
            self._m_retain_bytes = obs.counter(
                "mvr_bytes_retained_total",
                "Bytes retained as content past stage 1",
                ("traffic_class",),
            )
            self._m_alerts = obs.counter(
                "mvr_alerts_stored_total",
                "Interest alerts stored with user attribution",
                ("classtype",),
            )
            self._m_bot = obs.counter(
                "mvr_bot_sightings_total",
                "Commodity detections marking a source bot-like",
            )
        self.packets_seen = 0
        self._bytes_discarded = 0
        self._discarded_by_class: Counter = Counter()
        self._retained_by_class: Counter = Counter()
        #: Sources the commodity detections classified as bot-like, with
        #: detection timestamps.  Interest alerts from such sources are
        #: suppressed within ``bot_suppression_window`` seconds: a host
        #: behaving like malware is treated as infected, not as a user
        #: intentionally touching censored content (paper Section 3.1).
        self.bot_suppression_window = 300.0
        self._bot_sightings: Dict[str, List[float]] = {}
        #: intake buffer: (packet, arrival time, wire size) awaiting the
        #: batched pipeline run
        self._batch: List[Tuple[IPPacket, float, int]] = []
        if obs is not None:
            # Any registry read drains the buffer first, so mvr_* counters
            # are exact no matter where a batch boundary fell.
            obs.on_flush(self.flush)

    def sees_own_injections(self) -> bool:
        return True  # purely passive; it never injects, so nothing to skip

    # -- tap entry point ----------------------------------------------------------

    def process(self, packet: IPPacket, ctx: TapContext) -> Action:
        self.packets_seen += 1
        # wire_length() gives the serialized size without materializing (and
        # checksumming) the wire bytes for every transit packet.
        batch = self._batch
        batch.append((packet, ctx.now, packet.wire_length()))
        if len(batch) >= self.batch_size:
            self.flush()
        return Action.PASS

    def flush(self) -> None:
        """Run the full pipeline over buffered packets, in arrival order."""
        batch = self._batch
        if not batch:
            return
        self._batch = []
        alert_lists = self.engine.process_batch(
            [item[0] for item in batch], [item[1] for item in batch]
        )
        for (packet, now, size), alerts in zip(batch, alert_lists):
            self._ingest(packet, now, size, alerts)

    def _ingest(self, packet: IPPacket, now: float, size: int, alerts) -> None:
        self.store.observe_volume(size)
        obs = self._obs
        if obs is not None:
            self._m_ingest_pkts.inc()
            self._m_ingest_bytes.inc((), size)

        # Track bot-like behaviour per claimed source: these sightings
        # retroactively devalue interest alerts from the same source.
        for alert in alerts:
            if alert.classtype in BOT_CLASSTYPES:
                self._bot_sightings.setdefault(packet.src, []).append(now)
                if obs is not None:
                    self._m_bot.inc()

        # Retain user-focused alerts regardless of the MVR decision: the
        # interest rules are exactly what the system exists to keep.
        for alert in alerts:
            if alert.classtype in RETAIN_CLASSTYPES:
                user = (
                    self.attribution.user_of(packet.src)
                    if self.attribution is not None
                    else None
                )
                self.store.store_alert(
                    StoredAlert(
                        time=now,
                        alert=alert,
                        user=user,
                        origin_ip=packet.metadata.get("origin_ip"),
                    )
                )
                if obs is not None:
                    self._m_alerts.inc((alert.classtype,))

        traffic_class = classify_packet(packet, alerts)

        # Stage 1: Massive Volume Reduction.
        if traffic_class in TrafficClass.DISCARDED:
            self._bytes_discarded += size
            self._discarded_by_class[traffic_class] += size
            if obs is not None:
                self._m_discard_bytes.inc((traffic_class,), size)
            return

        self._retained_by_class[traffic_class] += size
        if obs is not None:
            self._m_retain_bytes.inc((traffic_class,), size)
        self.store.store_content(
            ContentRecord(
                time=now,
                src=packet.src,
                dst=packet.dst,
                size=size,
                summary=packet.summary(),
            )
        )
        flow_key = canonical_flow(packet)
        if flow_key is not None:
            self.store.store_flow(flow_key, now, size)

    # -- pipeline maintenance --------------------------------------------------------

    def expire(self, now: float) -> None:
        """Apply retention windows (run periodically in long simulations)."""
        self.flush()
        self.store.expire(now)

    def run_analyst(self, now: float) -> List[Investigation]:
        """Stage-2 triage over the effective (bot-suppressed) alerts."""
        self.flush()
        return self.analyst.triage(self.effective_alerts(), now)

    # -- evaluation queries ------------------------------------------------------------

    # The byte-accounting attributes are flushing properties: tests and
    # evaluation code read them directly, and a read must reflect every
    # packet the tap has been handed, including ones still buffered.

    @property
    def bytes_discarded(self) -> int:
        self.flush()
        return self._bytes_discarded

    @property
    def discarded_by_class(self) -> Counter:
        self.flush()
        return self._discarded_by_class

    @property
    def retained_by_class(self) -> Counter:
        self.flush()
        return self._retained_by_class

    def discard_fraction(self) -> float:
        """Fraction of observed bytes thrown away by MVR (stage 1)."""
        self.flush()
        if self.store.bytes_seen == 0:
            return 0.0
        return self.bytes_discarded / self.store.bytes_seen

    def is_bot_suppressed(self, src_ip: str, time: float) -> bool:
        """Whether ``src_ip`` showed bot-like behaviour near ``time``."""
        self.flush()
        sightings = self._bot_sightings.get(src_ip)
        if not sightings:
            return False
        window = self.bot_suppression_window
        return any(abs(time - seen) <= window for seen in sightings)

    def effective_alerts(self) -> List[StoredAlert]:
        """Retained alerts after bot suppression — what the analyst sees.

        An alert from a source that also triggered commodity bot detections
        (scan/DDoS/spam/p2p) in the surrounding window is written off as
        malware activity rather than user intent; this is the mechanism the
        paper's Section 3 techniques exploit.
        """
        self.flush()
        return [
            stored
            for stored in self.store.alerts
            if not self.is_bot_suppressed(stored.alert.src, stored.time)
        ]

    def attributed_alerts_for_user(self, user: str) -> List[StoredAlert]:
        """Effective alerts the system pins on ``user`` (what it believes)."""
        return [stored for stored in self.effective_alerts() if stored.user == user]

    def raw_alerts_for_user(self, user: str) -> List[StoredAlert]:
        """All retained alerts for ``user``, before bot suppression."""
        self.flush()
        return self.store.alerts_for_user(user)

    def alerts_from_origin(self, origin_ip: str) -> List[StoredAlert]:
        """Effective alerts whose *true* origin was ``origin_ip``.

        Only the evaluation can ask this; the surveillance system itself
        has no access to origin metadata.
        """
        return [
            stored
            for stored in self.effective_alerts()
            if stored.origin_ip == origin_ip
        ]

    def suspect_report(self, sids=None) -> SuspectReport:
        """Attribution distribution over effective alerts."""
        if self.attribution is None:
            raise RuntimeError("no attribution engine configured")
        if sids is None:
            return self.attribution.report(self.effective_alerts())
        return self.attribution.report_for_sids(self.effective_alerts(), sids)

    def users_contacting(
        self, ip: str, now: float, window: Optional[float] = None
    ) -> List[str]:
        """Retrospective metadata query: who talked to ``ip`` recently?

        Alert evasion is not metadata evasion: connection records are kept
        for the metadata window (30 days under the NSA profile), so an
        analyst who later learns that ``ip`` is interesting can ask this
        question about the past.  The stealthy techniques reduce *alert*
        risk; this query is the residual exposure an honest risk analysis
        must mention (see EXPERIMENTS.md caveats).
        """
        self.flush()
        if window is None:
            window = self.profile.metadata_retention
        users = set()
        for flow in self.store.flows_touching(ip):
            if now - flow.last_seen > window:
                continue
            for endpoint in (flow.key.src, flow.key.dst):
                if endpoint == ip or self.attribution is None:
                    continue
                user = self.attribution.user_of(endpoint)
                if user is not None:
                    users.add(user)
        return sorted(users)

    def summary(self) -> Dict[str, object]:
        """Byte accounting for experiment E4."""
        self.flush()
        return {
            "packets_seen": self.packets_seen,
            "bytes_seen": self.store.bytes_seen,
            "bytes_discarded_stage1": self.bytes_discarded,
            "discard_fraction": self.discard_fraction(),
            "bytes_retained_content": self.store.bytes_retained,
            "retained_fraction": self.store.retained_fraction(),
            "retained_alerts": len(self.store.alerts),
            "flow_records": len(self.store.flows),
            "discarded_by_class": dict(self.discarded_by_class),
            "retained_by_class": dict(self.retained_by_class),
        }
