"""Retention stores: content, connection metadata, and alerts.

The storage asymmetry is the paper's first exploitable difference
(Section 2.2, "Storage requirements"): a surveillance system must keep
history to track users, and history has a byte budget and expiry windows.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from ..packets import FiveTuple
from ..rules import Alert
from .profile import SurveillanceProfile

__all__ = ["ContentRecord", "FlowMetadata", "StoredAlert", "RetentionStore"]


@dataclass
class ContentRecord:
    """A captured packet's content (sized, not byte-hoarded, for memory)."""

    time: float
    src: str
    dst: str
    size: int
    summary: str


@dataclass
class FlowMetadata:
    """A NetFlow/CDR-style connection record."""

    key: FiveTuple
    first_seen: float
    last_seen: float
    packets: int = 0
    bytes: int = 0


@dataclass
class StoredAlert:
    """A retained, user-attributable alert."""

    time: float
    alert: Alert
    user: Optional[str]
    origin_ip: Optional[str]  # ground-truth origin, for evaluation only


class RetentionStore:
    """Byte-budgeted, window-expiring storage for a surveillance system.

    ``budget_bytes(now)`` enforces the storage-fraction constraint: retained
    content may never exceed ``profile.storage_fraction`` of the bytes the
    tap has seen.  Oldest content is evicted first, exactly the behaviour
    that makes old measurement traffic unprosecutable.
    """

    def __init__(self, profile: SurveillanceProfile) -> None:
        self.profile = profile
        self.content: Deque[ContentRecord] = deque()
        self.flows: Dict[FiveTuple, FlowMetadata] = {}
        self.alerts: List[StoredAlert] = []
        self.bytes_seen = 0
        self.bytes_retained = 0
        self.bytes_evicted_for_budget = 0
        self.bytes_expired = 0

    # -- ingest -----------------------------------------------------------------

    def observe_volume(self, size: int) -> None:
        """Account every observed byte (retained or not)."""
        self.bytes_seen += size

    def store_content(self, record: ContentRecord) -> None:
        if not self.profile.captures_content:
            return
        self.content.append(record)
        self.bytes_retained += record.size
        self._enforce_budget()

    def store_flow(self, key: FiveTuple, now: float, size: int) -> None:
        flow = self.flows.get(key)
        if flow is None:
            flow = FlowMetadata(key=key, first_seen=now, last_seen=now)
            self.flows[key] = flow
        flow.last_seen = now
        flow.packets += 1
        flow.bytes += size

    def store_alert(self, stored: StoredAlert) -> None:
        self.alerts.append(stored)

    # -- expiry and budget ------------------------------------------------------

    def _enforce_budget(self) -> None:
        budget = self.profile.storage_fraction * self.bytes_seen
        while self.content and self.bytes_retained > budget:
            evicted = self.content.popleft()
            self.bytes_retained -= evicted.size
            self.bytes_evicted_for_budget += evicted.size

    def expire(self, now: float) -> None:
        """Apply the retention windows."""
        content_cutoff = now - self.profile.content_retention
        while self.content and self.content[0].time < content_cutoff:
            expired = self.content.popleft()
            self.bytes_retained -= expired.size
            self.bytes_expired += expired.size
        metadata_cutoff = now - self.profile.metadata_retention
        stale = [key for key, flow in self.flows.items() if flow.last_seen < metadata_cutoff]
        for key in stale:
            del self.flows[key]
        alert_cutoff = now - self.profile.alert_retention
        self.alerts = [stored for stored in self.alerts if stored.time >= alert_cutoff]

    # -- queries -------------------------------------------------------------------

    def retained_fraction(self) -> float:
        """Fraction of observed volume currently retained as content."""
        return self.bytes_retained / self.bytes_seen if self.bytes_seen else 0.0

    def content_mentioning(self, text: str) -> List[ContentRecord]:
        return [record for record in self.content if text in record.summary]

    def flows_touching(self, ip: str) -> List[FlowMetadata]:
        return [
            flow
            for flow in self.flows.values()
            if ip in (flow.key.src, flow.key.dst)
        ]

    def alerts_for_user(self, user: str) -> List[StoredAlert]:
        return [stored for stored in self.alerts if stored.user == user]
