"""Surveillance system sizing profiles.

Constants come straight from the paper's Section 2.1: the NSA (as of 2009)
could retain only 7.5 % of traffic received, stored content for three days
and connection metadata for 30; the campus network kept flow records for
about 36 hours and IDS alerts for about a year.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SurveillanceProfile", "NSA_PROFILE", "CAMPUS_PROFILE"]

DAY = 86_400.0
HOUR = 3_600.0


@dataclass(frozen=True)
class SurveillanceProfile:
    """Retention and capacity parameters for a surveillance deployment."""

    name: str
    #: Fraction of observed volume the system can afford to retain.
    storage_fraction: float
    #: Full-content retention window (seconds).
    content_retention: float
    #: Connection-metadata retention window (seconds).
    metadata_retention: float
    #: Alert retention window (seconds).
    alert_retention: float
    #: Whether full content is captured at all.
    captures_content: bool = True
    #: How many users the analyst stage can investigate per day.
    analyst_capacity_per_day: int = 10

    def __post_init__(self) -> None:
        if not 0 < self.storage_fraction <= 1:
            raise ValueError("storage_fraction must be in (0, 1]")


#: The NSA model from the TEMPORA / MVR disclosures cited in the paper.
NSA_PROFILE = SurveillanceProfile(
    name="nsa",
    storage_fraction=0.075,
    content_retention=3 * DAY,
    metadata_retention=30 * DAY,
    alert_retention=365 * DAY,
    captures_content=True,
    analyst_capacity_per_day=10,
)

#: The campus-IDS model: no full capture, ~36 h flow records, 1 y alerts.
CAMPUS_PROFILE = SurveillanceProfile(
    name="campus",
    storage_fraction=0.075,
    content_retention=0.0,
    metadata_retention=36 * HOUR,
    alert_retention=365 * DAY,
    captures_content=False,
    analyst_capacity_per_day=5,
)
