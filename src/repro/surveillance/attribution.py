"""User attribution: turning alerts into suspect rankings.

Surveillance is user-focused (paper Section 2.2, difference #3): the system
cares *who* generated traffic.  Attribution maps a packet's claimed source
address to a user identity — which is exactly the mapping IP spoofing
corrupts.  The evaluation uses the attribution confidence and entropy to
quantify how much cover traffic dilutes suspicion (experiments E6/E9).
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from .storage import StoredAlert

__all__ = ["AttributionEngine", "SuspectReport"]


@dataclass
class SuspectReport:
    """The attribution picture for one category of alerts."""

    counts: Dict[str, int]
    total: int

    @property
    def suspects(self) -> List[str]:
        """Users ordered by alert volume, most-suspicious first."""
        return [user for user, _count in
                sorted(self.counts.items(), key=lambda kv: (-kv[1], kv[0]))]

    def confidence(self, user: str) -> float:
        """Fraction of attributable alerts pointing at ``user``."""
        if self.total == 0:
            return 0.0
        return self.counts.get(user, 0) / self.total

    def top_confidence(self) -> float:
        if not self.counts:
            return 0.0
        return max(self.counts.values()) / self.total

    def entropy(self) -> float:
        """Shannon entropy (bits) of the suspect distribution.

        0 bits means one user explains everything (certain attribution);
        log2(N) means the alerts spread uniformly over N users — the goal
        of the cover-traffic techniques.
        """
        if self.total == 0:
            return 0.0
        entropy = 0.0
        for count in self.counts.values():
            p = count / self.total
            entropy -= p * math.log2(p)
        return entropy


class AttributionEngine:
    """Maps source IPs to users and aggregates alert attribution."""

    def __init__(self, user_lookup: Callable[[str], Optional[str]]) -> None:
        self._user_lookup = user_lookup

    @classmethod
    def from_network(cls, network) -> "AttributionEngine":
        """Attribute by the simulated network's host->user mapping."""

        def lookup(ip: str) -> Optional[str]:
            host = network.owner_of(ip)
            return host.user if host is not None else None

        return cls(lookup)

    def user_of(self, ip: str) -> Optional[str]:
        return self._user_lookup(ip)

    def report(self, alerts: List[StoredAlert]) -> SuspectReport:
        """Aggregate stored alerts into a suspect distribution."""
        counts = Counter(
            stored.user for stored in alerts if stored.user is not None
        )
        return SuspectReport(counts=dict(counts), total=sum(counts.values()))

    def report_for_sids(self, alerts: List[StoredAlert], sids) -> SuspectReport:
        """A suspect report restricted to specific rule sids."""
        sid_set = set(sids)
        subset = [stored for stored in alerts if stored.alert.sid in sid_set]
        return self.report(subset)
