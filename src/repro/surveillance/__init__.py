"""Reference surveillance system (NSA / campus-IDS model)."""

from .analyst import Analyst, Investigation
from .attribution import AttributionEngine, SuspectReport
from .classify import TrafficClass, classify_alerts, classify_packet
from .normalizer import TTLAnomaly, TTLNormalizer
from .profile import CAMPUS_PROFILE, NSA_PROFILE, SurveillanceProfile
from .storage import ContentRecord, FlowMetadata, RetentionStore, StoredAlert
from .system import SurveillanceSystem

__all__ = [
    "Analyst",
    "AttributionEngine",
    "CAMPUS_PROFILE",
    "ContentRecord",
    "FlowMetadata",
    "Investigation",
    "NSA_PROFILE",
    "RetentionStore",
    "StoredAlert",
    "SurveillanceProfile",
    "SuspectReport",
    "SurveillanceSystem",
    "TTLAnomaly",
    "TTLNormalizer",
    "TrafficClass",
    "classify_alerts",
    "classify_packet",
]
