"""Traffic normalization — the countermeasure the paper anticipates (§4.2).

"Traffic normalization may be able to identify odd TTL values in our
packets, but these approaches come at a high cost; for example, they may
require disabling traceroute and ping" (Handley et al., USENIX Security
2001).  This middlebox implements both halves so the trade-off can be
measured:

- **detect**: flag transiting packets whose TTL is anomalously low for
  their position (the signature of TTL-limited mimicry replies);
- **normalize**: additionally rewrite low TTLs up to a floor, which
  defeats TTL-limiting — the reply now reaches the spoofed client, whose
  replay RST corrupts the mimicry — but simultaneously breaks every
  legitimate hop-limited diagnostic (traceroute, low-TTL probing) crossing
  the tap, which is the deployment cost the paper cites.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..packets import ICMP_ECHO_REQUEST, IPPacket
from ..netsim.middlebox import Action, Middlebox, TapContext

__all__ = ["TTLAnomaly", "TTLNormalizer"]


@dataclass
class TTLAnomaly:
    """One flagged low-TTL packet."""

    time: float
    src: str
    dst: str
    ttl: int


class TTLNormalizer(Middlebox):
    """Flags (and optionally rewrites) anomalously low TTLs.

    ``floor`` is the minimum TTL considered plausible for traffic at this
    tap; real deployments pick it from observed initial-TTL fingerprints
    minus expected path length.
    """

    name = "ttl-normalizer"

    def __init__(self, floor: int = 8, normalize: bool = True) -> None:
        if floor < 1:
            raise ValueError("floor must be >= 1")
        self.floor = floor
        self.normalize = normalize
        self.anomalies: List[TTLAnomaly] = []
        self.packets_normalized = 0
        #: Legitimate hop-limited diagnostics destroyed by normalization —
        #: the cost side of the trade-off.
        self.diagnostics_broken = 0

    def sees_own_injections(self) -> bool:
        return True  # never injects

    def process(self, packet: IPPacket, ctx: TapContext) -> Action:
        if packet.ttl >= self.floor:
            return Action.PASS
        self.anomalies.append(
            TTLAnomaly(time=ctx.now, src=packet.src, dst=packet.dst, ttl=packet.ttl)
        )
        if self.normalize:
            # A low-TTL ICMP echo is a traceroute-style probe whose entire
            # purpose is to expire in the network; "fixing" it breaks it.
            if packet.icmp is not None and packet.icmp.icmp_type == ICMP_ECHO_REQUEST:
                self.diagnostics_broken += 1
            packet.ttl = self.floor
            self.packets_normalized += 1
        return Action.PASS

    def flagged_sources(self) -> List[str]:
        """Distinct sources of anomalous-TTL packets, most recent last."""
        seen: List[str] = []
        for anomaly in self.anomalies:
            if anomaly.src not in seen:
                seen.append(anomaly.src)
        return seen
