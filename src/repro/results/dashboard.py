"""``repro dashboard``: the analysis document as one static HTML page.

Everything is inline — CSS in a ``<style>`` block, charts as inline SVG,
palette swapped for dark mode via CSS custom properties and
``prefers-color-scheme`` — so the output file opens from disk with no
network access and references no external URL (the CI smoke job greps
for exactly that).  There is no JavaScript: hover detail rides native
SVG ``<title>`` tooltips.

Chart discipline (matching the repo's other renderers): a single axis
per chart, categorical hues assigned in fixed order and never cycled,
2px lines with visible point markers, a legend whenever two or more
series share a plot, and all text in text-color tokens rather than
series colors.  The renderer is deterministic: same analysis document,
same bytes.
"""

from __future__ import annotations

from html import escape
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["render_dashboard"]

#: Categorical series hues, fixed assignment order (light mode / dark
#: mode variants — the CSS swaps the custom properties, the SVG marks
#: just reference ``var(--s0)`` …).  A ninth series folds into "other";
#: sweep grids here never get close.
SERIES_LIGHT = ("#2a78d6", "#eb6834", "#1baf7a", "#eda100",
                "#e87ba4", "#008300", "#4a3aa7", "#e34948")
SERIES_DARK = ("#3987e5", "#d95926", "#199e70", "#c98500",
               "#d55181", "#008300", "#9085e9", "#e66767")

_CSS = """
:root {
  --surface: #fcfcfb; --panel: #f4f4f2; --line: #dddcd6;
  --text: #0b0b0b; --muted: #52514e;
  --s0: #2a78d6; --s1: #eb6834; --s2: #1baf7a; --s3: #eda100;
  --s4: #e87ba4; --s5: #008300; --s6: #4a3aa7; --s7: #e34948;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface: #1a1a19; --panel: #242422; --line: #3a3a37;
    --text: #ffffff; --muted: #c3c2b7;
    --s0: #3987e5; --s1: #d95926; --s2: #199e70; --s3: #c98500;
    --s4: #d55181; --s5: #008300; --s6: #9085e9; --s7: #e66767;
  }
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 24px; background: var(--surface); color: var(--text);
  font: 14px/1.5 system-ui, sans-serif; max-width: 960px;
}
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 28px 0 8px; }
.sub { color: var(--muted); margin: 0 0 16px; }
.tiles { display: flex; gap: 12px; flex-wrap: wrap; margin: 16px 0; }
.tile {
  background: var(--panel); border-radius: 8px; padding: 12px 16px;
  min-width: 120px;
}
.tile .num { font-size: 22px; font-weight: 600; }
.tile .cap { color: var(--muted); font-size: 12px; }
table { border-collapse: collapse; width: 100%; }
th, td { text-align: left; padding: 4px 10px 4px 0; white-space: nowrap; }
th { color: var(--muted); font-weight: 500; border-bottom: 1px solid var(--line); }
td.n, th.n { text-align: right; }
.legend { display: flex; gap: 16px; flex-wrap: wrap; margin: 4px 0 8px; }
.legend span { display: inline-flex; align-items: center; gap: 6px; color: var(--text); }
.swatch { width: 10px; height: 10px; border-radius: 3px; display: inline-block; }
svg { display: block; }
svg text { fill: var(--muted); font: 11px system-ui, sans-serif; }
.grid { stroke: var(--line); stroke-width: 1; }
.axis { stroke: var(--muted); stroke-width: 1; }
.note { color: var(--muted); font-size: 12px; }
"""


def _fmt(value: object, places: int = 3) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.{places}f}"
    return str(value)


def _tile(caption: str, value: object) -> str:
    return (
        f'<div class="tile"><div class="num">{escape(str(value))}</div>'
        f'<div class="cap">{escape(caption)}</div></div>'
    )


def _table(headers: Sequence[str], rows: Sequence[Sequence[object]],
           numeric_from: int = 1) -> str:
    numeric = ' class="n"'
    head = "".join(
        f"<th{numeric if i >= numeric_from else ''}>{escape(h)}</th>"
        for i, h in enumerate(headers)
    )
    body = []
    for row in rows:
        cells = "".join(
            f"<td{numeric if i >= numeric_from else ''}>"
            f"{escape(str(cell))}</td>"
            for i, cell in enumerate(row)
        )
        body.append(f"<tr>{cells}</tr>")
    return (
        f"<table><thead><tr>{head}</tr></thead>"
        f"<tbody>{''.join(body)}</tbody></table>"
    )


def _legend(names: Sequence[str]) -> str:
    items = "".join(
        f'<span><i class="swatch" style="background:var(--s{i % 8})"></i>'
        f"{escape(name)}</span>"
        for i, name in enumerate(names)
    )
    return f'<div class="legend">{items}</div>'


def _curve_chart(curves: Dict[str, Dict[str, List[List[object]]]]) -> str:
    """False-block rate vs loss, one line per (technique, retry)."""
    series: List[Tuple[str, List[Tuple[float, float, int]]]] = []
    for technique in sorted(curves):
        for retry in sorted(curves[technique]):
            points = [(float(l), float(r), int(n))
                      for l, r, n in curves[technique][retry]]
            series.append((f"{technique} / {retry}", sorted(points)))
    if not series:
        return '<p class="note">no ground-truth-open rows; no curves to plot.</p>'
    if len(series) > 8:
        dropped = len(series) - 8
        series = series[:8]
        note = (f'<p class="note">showing the first 8 of '
                f"{8 + dropped} (technique, retry) series.</p>")
    else:
        note = ""

    width, height = 680, 300
    left, right, top, bottom = 56, 16, 12, 40
    plot_w, plot_h = width - left - right, height - top - bottom
    xs = [x for _, pts in series for x, _, _ in pts]
    ys = [y for _, pts in series for _, y, _ in pts]
    x_lo, x_hi = min(xs), max(xs)
    if x_hi == x_lo:
        x_lo, x_hi = x_lo - 0.01, x_hi + 0.01
    y_hi = max(max(ys), 0.05) * 1.15

    def px(x: float) -> float:
        return left + (x - x_lo) / (x_hi - x_lo) * plot_w

    def py(y: float) -> float:
        return top + plot_h - (y / y_hi) * plot_h

    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" role="img" '
        'aria-label="false-block rate versus loss">',
    ]
    # recessive horizontal grid + y tick labels
    for i in range(5):
        frac = i / 4
        y = top + plot_h - frac * plot_h
        parts.append(
            f'<line class="grid" x1="{left}" y1="{y:.1f}" '
            f'x2="{left + plot_w}" y2="{y:.1f}"/>'
        )
        parts.append(
            f'<text x="{left - 8}" y="{y + 4:.1f}" text-anchor="end">'
            f"{frac * y_hi:.3f}</text>"
        )
    # x axis + tick labels at the swept loss values
    parts.append(
        f'<line class="axis" x1="{left}" y1="{top + plot_h}" '
        f'x2="{left + plot_w}" y2="{top + plot_h}"/>'
    )
    for x in sorted(set(xs)):
        parts.append(
            f'<text x="{px(x):.1f}" y="{top + plot_h + 18}" '
            f'text-anchor="middle">{x:g}</text>'
        )
    parts.append(
        f'<text x="{left + plot_w / 2:.1f}" y="{height - 6}" '
        'text-anchor="middle">loss rate</text>'
    )
    for idx, (name, pts) in enumerate(series):
        color = f"var(--s{idx})"
        coords = " ".join(f"{px(x):.1f},{py(y):.1f}" for x, y, _ in pts)
        parts.append(
            f'<polyline points="{coords}" fill="none" stroke="{color}" '
            'stroke-width="2" stroke-linecap="round" '
            'stroke-linejoin="round"/>'
        )
        for x, y, n in pts:
            parts.append(
                f'<circle cx="{px(x):.1f}" cy="{py(y):.1f}" r="4" '
                f'fill="{color}" stroke="var(--surface)" stroke-width="2">'
                f"<title>{escape(name)}\nloss {x:g}: "
                f"false-block {y:.3f} ({n} open rows)</title></circle>"
            )
    parts.append("</svg>")
    return _legend([name for name, _ in series]) + "".join(parts) + note


def _verdict_chart(by_verdict: Dict[str, int]) -> str:
    """Horizontal bars, single sequential hue, one per verdict."""
    if not by_verdict:
        return '<p class="note">no rows.</p>'
    entries = sorted(by_verdict.items())
    biggest = max(count for _, count in entries)
    bar_h, gap, left, right = 20, 8, 150, 70
    width = 680
    plot_w = width - left - right
    height = len(entries) * (bar_h + gap) + gap
    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" role="img" aria-label="rows per verdict">'
    ]
    for i, (verdict, count) in enumerate(entries):
        y = gap + i * (bar_h + gap)
        w = max(plot_w * count / biggest, 2)
        parts.append(
            f'<text x="{left - 8}" y="{y + bar_h - 5}" text-anchor="end">'
            f"{escape(verdict)}</text>"
        )
        parts.append(
            f'<rect x="{left}" y="{y}" width="{w:.1f}" height="{bar_h}" '
            f'rx="4" fill="var(--s0)"><title>{escape(verdict)}: '
            f"{count} rows</title></rect>"
        )
        parts.append(
            f'<text x="{left + w + 6:.1f}" y="{y + bar_h - 5}">{count}</text>'
        )
    parts.append("</svg>")
    return "".join(parts)


def render_dashboard(
    analysis: Dict[str, object],
    title: str = "Campaign measurement dashboard",
    subtitle: str = "",
) -> str:
    """The analysis document as one self-contained HTML page."""
    tally: Dict[str, int] = analysis["classification_tally"]
    tiles = [
        _tile("record rows", analysis["rows"]),
        _tile("sweep points", analysis["points"]),
        _tile("techniques", len(analysis["matrix"])),
        _tile("targets censored", tally.get("censored", 0)),
        _tile("path anomalies", tally.get("path-anomaly", 0)),
    ]

    class_rows = []
    for entry in analysis["classification"]:
        def _cell(stats: Optional[dict]) -> str:
            if stats is None:
                return "-"
            return (f"{stats['blocked']}b / {stats['accessible']}a / "
                    f"{stats['inconclusive']}i")
        class_rows.append([
            entry["technique"], entry["target"], entry["classification"],
            _fmt(entry["confidence"]),
            _cell(entry.get("censored")), _cell(entry.get("clean")),
        ])

    matrix_rows = [
        [technique, _fmt(c["detects"]), _fmt(c["accuracy"]),
         _fmt(c["false_block_rate"]), _fmt(c["evasion"]),
         _fmt(c["mean_attempts"], 2), _fmt(c["mean_confidence"]), c["rows"]]
        for technique, c in analysis["matrix"].items()
    ]

    censor_rows = [
        [censor, technique, _fmt(c["detects"]), _fmt(c["accuracy"]),
         _fmt(c["false_block_rate"]), _fmt(c["evasion"]), c["rows"]]
        for censor, by_technique in analysis.get("censor_matrix", {}).items()
        for technique, c in by_technique.items()
    ]

    latency_rows = [
        [technique, c["count"], _fmt(c["p50"]), _fmt(c["p90"]), _fmt(c["p99"])]
        for technique, c in analysis["latency"].items()
    ]

    sections = [
        f"<h1>{escape(title)}</h1>",
        f'<p class="sub">{escape(subtitle)}</p>' if subtitle else "",
        f'<div class="tiles">{"".join(tiles)}</div>',
        "<h2>Rows per verdict</h2>",
        _verdict_chart(analysis["by_verdict"]),
        "<h2>False-block rate vs loss</h2>",
        '<p class="note">One series per (technique, retry policy) over '
        "ground-truth-open targets; hover a point for the sample size.</p>",
        _curve_chart(analysis["false_block_curves"]),
        "<h2>Vantage-differential classification</h2>",
        '<p class="note">Per-vantage cells read blocked / accessible / '
        "inconclusive rows.</p>",
        _table(
            ["technique", "target", "class", "conf",
             "censored vantage", "clean vantage"],
            class_rows, numeric_from=3,
        ),
        "<h2>Accuracy / evasion matrix</h2>",
        _table(
            ["technique", "detects", "accuracy", "false-block", "evasion",
             "attempts", "conf", "rows"],
            matrix_rows,
        ),
    ]
    if censor_rows:
        sections += [
            "<h2>Per-censor accuracy / evasion</h2>",
            '<p class="note">Censored-vantage rows only, grouped by the '
            "censor-model family that enforced on the path.</p>",
            _table(
                ["censor", "technique", "detects", "accuracy", "false-block",
                 "evasion", "rows"],
                censor_rows, numeric_from=2,
            ),
        ]
    if latency_rows:
        sections += [
            "<h2>Sim-time to verdict</h2>",
            '<p class="note">Histogram quantiles; error is at most one '
            "bucket width.</p>",
            _table(["technique", "verdicts", "p50 (s)", "p90 (s)", "p99 (s)"],
                   latency_rows),
        ]

    body = "\n".join(part for part in sections if part)
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en">\n<head>\n<meta charset="utf-8">\n'
        '<meta name="viewport" content="width=device-width, initial-scale=1">\n'
        f"<title>{escape(title)}</title>\n"
        f"<style>{_CSS}</style>\n</head>\n<body>\n{body}\n</body>\n</html>\n"
    )
