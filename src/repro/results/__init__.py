"""Per-measurement records and the streaming analysis pipeline.

The sweep runner's merged metrics answer "how many" — this package
answers "which ones".  Every measurement attempt a campaign executes
becomes one row in a deterministic, byte-stable JSONL record file
(:mod:`.record`), and the analysis layer (:mod:`.analyze`) folds those
rows — streamed one at a time, never materialized — into
vantage-differential target classifications, per-technique
accuracy/evasion matrices, false-block curves, and latency quantiles.
:mod:`.report` renders that analysis as text/JSON (``repro report``) and
:mod:`.dashboard` as a self-contained static HTML page with inline SVG
charts (``repro dashboard``).
"""

from .analyze import RecordAnalysis, analyze_records
from .dashboard import render_dashboard
from .record import (
    RECORD_SCHEMA,
    ROW_FIELDS,
    iter_rows,
    read_header,
    rows_from_point,
    summarize_rows,
    write_records,
)
from .report import build_analysis, records_path, render_report_text

__all__ = [
    "RECORD_SCHEMA",
    "ROW_FIELDS",
    "RecordAnalysis",
    "analyze_records",
    "build_analysis",
    "iter_rows",
    "read_header",
    "records_path",
    "render_dashboard",
    "render_report_text",
    "rows_from_point",
    "summarize_rows",
    "write_records",
]
