"""Streaming analysis over measurement records: classification, matrices,
false-block curves, latency quantiles.

The consumer side of the record sink.  :class:`RecordAnalysis` is an
online aggregator: feed it rows one at a time (straight off the
generator reader) and its state stays bounded by the number of
*distinct* targets, techniques, and grid cells — never by the number of
rows.  That is the memory contract the ≥100k-row streaming test pins:
a million-row record file analyzes in the footprint of its vocabulary.

What falls out at :meth:`~RecordAnalysis.as_dict` time:

- **Vantage-differential classification** — for every (technique,
  target) pair, compare the verdict mass observed from the simulated
  censored vantage against the clean vantage and call the target
  ``censored`` (blocked only where the censor enforces), ``accessible``
  (reachable from both), ``path-anomaly`` (blocked even with no censor:
  loss or outage, the paper's false-block confound), ``inconsistent``
  (the vantages disagree in the wrong direction), or an
  ``unconfirmed-*`` class when only one vantage measured it.  Each call
  carries a confidence: the verdict-agreement fraction weighted by rows.
- **Figure-1-style matrix** — per technique: detection rate over
  ground-truth-blocked targets at the censored vantage, overall
  accuracy, false-block rate over ground-truth-open targets, and the
  MVR-evasion fraction recovered from the rows' point-level ``evaded``
  stamps — the paper's accuracy/evasion trade-off, computed from
  records instead of re-running anything.
- **False-block curves** — false-block rate as a function of the loss
  axis, one curve per (technique, retry policy): the safety argument
  for retries, straight from campaign data.
- **Latency quantiles** — per-technique sim-time-to-verdict p50/p90/p99
  via :meth:`repro.obs.metrics.Histogram.quantile` (±bucket-width
  error, documented there).

Ground truth comes from the controlled world: the blocked/control
target name lists the evaluation harness wires into every environment.
A target is truly blocked exactly when a blocked name matches it *and*
the row measured from the censored vantage.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..analysis.metrics import ConfusionCounts
from ..core.evaluation import BLOCKED_TARGETS_FULL, CONTROL_TARGETS_FULL
from ..core.results import Verdict
from ..obs.metrics import Histogram

__all__ = ["RecordAnalysis", "analyze_records", "BLOCKING_VERDICTS"]

#: Verdict strings that indicate blocking (the row-level mirror of
#: :meth:`Verdict.indicates_blocking`).
BLOCKING_VERDICTS = frozenset(
    v.value for v in Verdict if v.indicates_blocking
)

_INCONCLUSIVE = Verdict.INCONCLUSIVE.value

#: Sim-time-to-verdict buckets: probe RTTs are milliseconds, retry
#: schedules stretch to tens of simulated seconds, campaign durations to
#: minutes.
LATENCY_BUCKETS = (0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 15.0, 60.0, 300.0, float("inf"))


def _new_vantage_stats() -> Dict[str, float]:
    return {
        "rows": 0, "blocked": 0, "accessible": 0, "inconclusive": 0,
        "confidence_sum": 0.0, "attempts_sum": 0,
    }


def _majority(stats: Mapping[str, float]) -> Tuple[Optional[str], float, int]:
    """(majority side, agreement fraction, conclusive rows) for one vantage."""
    conclusive = stats["blocked"] + stats["accessible"]
    if not conclusive:
        return None, 0.0, 0
    if stats["blocked"] >= stats["accessible"]:
        return "blocked", stats["blocked"] / conclusive, conclusive
    return "accessible", stats["accessible"] / conclusive, conclusive


class RecordAnalysis:
    """Online aggregator over record rows; bounded-memory by design.

    Every piece of state is keyed by vocabulary — (technique, target)
    pairs, (technique, retry, loss) grid cells, technique names — so
    memory is O(distinct keys), independent of how many rows stream
    through :meth:`add`.  Nothing here ever holds a row list.
    """

    def __init__(
        self,
        blocked_targets: Optional[Sequence[str]] = None,
        control_targets: Optional[Sequence[str]] = None,
    ) -> None:
        self.blocked_names: Tuple[str, ...] = tuple(
            blocked_targets if blocked_targets is not None
            else list(BLOCKED_TARGETS_FULL) + ["blocked-service"]
        )
        self.control_names: Tuple[str, ...] = tuple(
            control_targets if control_targets is not None
            else list(CONTROL_TARGETS_FULL) + ["control-service", "server"]
        )
        self.rows = 0
        self.points = 0  # rows with seq == 0: one per point that produced output
        self.by_verdict: Dict[str, int] = {}
        #: (technique, target) -> vantage -> verdict-mass stats
        self._targets: Dict[Tuple[str, str], Dict[str, Dict[str, float]]] = {}
        #: (technique, retry, loss) -> confusion over ground-truth cells
        self._cells: Dict[Tuple[str, str, float], ConfusionCounts] = {}
        #: technique -> aggregate counters for the matrix
        self._tech: Dict[str, Dict[str, float]] = {}
        #: technique -> overall confusion (accuracy column)
        self._tech_confusion: Dict[str, ConfusionCounts] = {}
        #: (censor family, technique) -> aggregate counters, fed only by
        #: rows where a censor model actually enforced (censor != "none")
        self._censor_tech: Dict[Tuple[str, str], Dict[str, float]] = {}
        #: (censor family, technique) -> confusion for the same rows
        self._censor_confusion: Dict[Tuple[str, str], ConfusionCounts] = {}
        #: background-load aggregates, fed once per point (seq == 0) by
        #: rows from points that ran under synthetic population cover
        self._background = {
            "points_with_population": 0,
            "max_population": 0,
            "background_bytes_total": 0,
        }
        #: one shared histogram, labeled by technique
        self._latency = Histogram(
            "verdict_latency", "sim-time to verdict", ("technique",),
            buckets=LATENCY_BUCKETS,
        )

    # -- ground truth ---------------------------------------------------------

    def truly_blocked(self, target: str, vantage: str) -> Optional[bool]:
        """Ground truth for one row, or ``None`` when the target is not
        in the controlled world's name lists (unknown targets cannot be
        scored, only classified)."""
        if any(name in target for name in self.blocked_names):
            return vantage == "censored"
        if any(name in target for name in self.control_names):
            return False
        return None

    # -- streaming ingest -----------------------------------------------------

    def add(self, row: Mapping[str, object]) -> None:
        """Fold one record row into the aggregates."""
        technique = row["technique"]
        vantage = row["vantage"]
        target = row["target"]
        verdict = row["verdict"]
        blocked = verdict in BLOCKING_VERDICTS
        inconclusive = verdict == _INCONCLUSIVE

        self.rows += 1
        if row["seq"] == 0:
            self.points += 1
            population = int(row.get("population", 0) or 0)
            if population:
                self._background["points_with_population"] += 1
                if population > self._background["max_population"]:
                    self._background["max_population"] = population
                self._background["background_bytes_total"] += int(
                    row.get("background_bytes", 0) or 0
                )
        self.by_verdict[verdict] = self.by_verdict.get(verdict, 0) + 1

        stats = (
            self._targets.setdefault((technique, target), {})
            .setdefault(vantage, _new_vantage_stats())
        )
        stats["rows"] += 1
        stats["confidence_sum"] += row["confidence"]
        stats["attempts_sum"] += row["attempts"]
        if inconclusive:
            stats["inconclusive"] += 1
        elif blocked:
            stats["blocked"] += 1
        else:
            stats["accessible"] += 1

        tech = self._tech.setdefault(technique, {
            "rows": 0, "points": 0, "confidence_sum": 0.0, "attempts_sum": 0,
            "evaded_points": 0, "evasion_points": 0,
        })
        tech["rows"] += 1
        tech["confidence_sum"] += row["confidence"]
        tech["attempts_sum"] += row["attempts"]
        if row["seq"] == 0:
            tech["points"] += 1
            if row.get("evaded") is not None:
                tech["evasion_points"] += 1
                tech["evaded_points"] += int(bool(row["evaded"]))

        censor = row.get("censor", "none")
        if censor and censor != "none":
            ct = self._censor_tech.setdefault((censor, technique), {
                "rows": 0, "points": 0,
                "evaded_points": 0, "evasion_points": 0,
            })
            ct["rows"] += 1
            if row["seq"] == 0:
                ct["points"] += 1
                if row.get("evaded") is not None:
                    ct["evasion_points"] += 1
                    ct["evaded_points"] += int(bool(row["evaded"]))

        self._latency.observe((technique,), row["latency"])

        truth = self.truly_blocked(target, vantage)
        if truth is not None:
            cell = self._cells.setdefault(
                (technique, row["retry"], row["loss"]), ConfusionCounts()
            )
            overall = self._tech_confusion.setdefault(technique, ConfusionCounts())
            counts_list = [cell, overall]
            if censor and censor != "none":
                counts_list.append(
                    self._censor_confusion.setdefault(
                        (censor, technique), ConfusionCounts()
                    )
                )
            for counts in counts_list:
                if inconclusive:
                    counts.inconclusive += 1
                elif truth and blocked:
                    counts.true_positive += 1
                elif truth and not blocked:
                    counts.false_negative += 1
                elif not truth and blocked:
                    counts.false_positive += 1
                else:
                    counts.true_negative += 1

    def extend(self, rows: Iterable[Mapping[str, object]]) -> "RecordAnalysis":
        for row in rows:
            self.add(row)
        return self

    # -- derived views --------------------------------------------------------

    def classify(self) -> List[Dict[str, object]]:
        """Vantage-differential classification, one entry per
        (technique, target), sorted for deterministic output."""
        out: List[Dict[str, object]] = []
        for (technique, target) in sorted(self._targets):
            vantages = self._targets[(technique, target)]
            cen = vantages.get("censored")
            cln = vantages.get("clean")
            cen_side, cen_frac, cen_n = _majority(cen) if cen else (None, 0.0, 0)
            cln_side, cln_frac, cln_n = _majority(cln) if cln else (None, 0.0, 0)

            if cen_side is None and cln_side is None:
                label = "inconclusive"
            elif cen_side is not None and cln_side is not None:
                if cen_side == "blocked" and cln_side == "accessible":
                    label = "censored"
                elif cen_side == "blocked" and cln_side == "blocked":
                    label = "path-anomaly"
                elif cen_side == "accessible" and cln_side == "accessible":
                    label = "accessible"
                else:
                    label = "inconsistent"
            elif cen_side is not None:
                label = ("unconfirmed-censored" if cen_side == "blocked"
                         else "accessible")
            else:
                label = ("path-anomaly" if cln_side == "blocked"
                         else "unconfirmed-accessible")

            conclusive = cen_n + cln_n
            confidence = (
                (cen_frac * cen_n + cln_frac * cln_n) / conclusive
                if conclusive else 0.0
            )
            entry: Dict[str, object] = {
                "technique": technique,
                "target": target,
                "classification": label,
                "confidence": round(confidence, 6),
            }
            for name, stats in (("censored", cen), ("clean", cln)):
                if stats is None:
                    continue
                entry[name] = {
                    "rows": stats["rows"],
                    "blocked": stats["blocked"],
                    "accessible": stats["accessible"],
                    "inconclusive": stats["inconclusive"],
                    "mean_confidence": round(
                        stats["confidence_sum"] / stats["rows"], 6
                    ) if stats["rows"] else 0.0,
                }
            out.append(entry)
        return out

    def matrix(self) -> Dict[str, Dict[str, object]]:
        """The Figure-1-style accuracy/evasion matrix, per technique."""
        out: Dict[str, Dict[str, object]] = {}
        for technique in sorted(self._tech):
            tech = self._tech[technique]
            confusion = self._tech_confusion.get(technique, ConfusionCounts())
            detects = (
                confusion.recall
                if confusion.true_positive + confusion.false_negative else None
            )
            evasion = (
                tech["evaded_points"] / tech["evasion_points"]
                if tech["evasion_points"] else None
            )
            out[technique] = {
                "rows": tech["rows"],
                "points": tech["points"],
                "detects": None if detects is None else round(detects, 6),
                "accuracy": round(confusion.accuracy, 6),
                "false_block_rate": round(confusion.false_block_rate, 6),
                "evasion": None if evasion is None else round(evasion, 6),
                "mean_attempts": round(tech["attempts_sum"] / tech["rows"], 6),
                "mean_confidence": round(tech["confidence_sum"] / tech["rows"], 6),
                "scored": confusion.total,
            }
        return out

    def censor_matrix(self) -> Dict[str, Dict[str, Dict[str, object]]]:
        """Per-censor accuracy/evasion matrix:
        ``censor family -> technique -> cells``.

        Built only from rows where a censor model enforced
        (``censor != "none"``): detection rate over ground-truth-blocked
        targets, accuracy, false-block rate, and MVR evasion recovered
        from the point-level ``evaded`` stamps — the "which technique
        survives which censor family" view.  Empty for campaigns that
        never ran a censored vantage.
        """
        out: Dict[str, Dict[str, Dict[str, object]]] = {}
        for (censor, technique) in sorted(self._censor_tech):
            ct = self._censor_tech[(censor, technique)]
            confusion = self._censor_confusion.get(
                (censor, technique), ConfusionCounts()
            )
            detects = (
                confusion.recall
                if confusion.true_positive + confusion.false_negative else None
            )
            evasion = (
                ct["evaded_points"] / ct["evasion_points"]
                if ct["evasion_points"] else None
            )
            out.setdefault(censor, {})[technique] = {
                "rows": ct["rows"],
                "points": ct["points"],
                "detects": None if detects is None else round(detects, 6),
                "accuracy": round(confusion.accuracy, 6),
                "false_block_rate": round(confusion.false_block_rate, 6),
                "evasion": None if evasion is None else round(evasion, 6),
                "scored": confusion.total,
            }
        return out

    def false_block_curves(self) -> Dict[str, Dict[str, List[List[object]]]]:
        """``technique -> retry -> [[loss, false_block_rate, open_rows]]``.

        One curve per (technique, retry policy), sampled at the loss
        rates the campaign actually swept; ``open_rows`` is the number
        of ground-truth-open rows behind each sample (the denominator
        that makes a 0.0 at n=2 mean less than a 0.0 at n=2000).
        """
        curves: Dict[str, Dict[str, List[List[object]]]] = {}
        for (technique, retry, loss) in sorted(self._cells):
            counts = self._cells[(technique, retry, loss)]
            open_rows = counts.false_positive + counts.true_negative
            if not open_rows:
                continue
            curves.setdefault(technique, {}).setdefault(retry, []).append(
                [loss, round(counts.false_block_rate, 6), open_rows]
            )
        return curves

    def latency_summary(self) -> Dict[str, Dict[str, object]]:
        """Per-technique sim-time-to-verdict quantiles (±bucket width)."""
        out: Dict[str, Dict[str, object]] = {}
        for technique in sorted(self._tech):
            labels = (technique,)
            count = self._latency.count(labels)
            if not count:
                continue
            out[technique] = {
                "count": count,
                "p50": round(self._latency.quantile(0.50, labels), 6),
                "p90": round(self._latency.quantile(0.90, labels), 6),
                "p99": round(self._latency.quantile(0.99, labels), 6),
            }
        return out

    def as_dict(self) -> Dict[str, object]:
        """The full JSON-ready analysis document (deterministic)."""
        classification = self.classify()
        tally: Dict[str, int] = {}
        for entry in classification:
            label = entry["classification"]
            tally[label] = tally.get(label, 0) + 1
        return {
            "rows": self.rows,
            "points": self.points,
            "background": dict(self._background),
            "by_verdict": dict(sorted(self.by_verdict.items())),
            "classification": classification,
            "classification_tally": dict(sorted(tally.items())),
            "matrix": self.matrix(),
            "censor_matrix": self.censor_matrix(),
            "false_block_curves": self.false_block_curves(),
            "latency": self.latency_summary(),
        }


def analyze_records(rows: Iterable[Mapping[str, object]], **kwargs) -> Dict[str, object]:
    """Stream ``rows`` through a fresh analysis; return its document."""
    return RecordAnalysis(**kwargs).extend(rows).as_dict()
