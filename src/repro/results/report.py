"""``repro report``: render the streaming analysis as text or JSON.

Thin orchestration over :mod:`.record` and :mod:`.analyze`: locate the
campaign's record file by prefix, stream it through a
:class:`~.analyze.RecordAnalysis` (one row in memory at a time), and
render the resulting document as aligned text tables (the same
:func:`~repro.analysis.report.render_table` the rest of the CLI uses)
or as canonical JSON.  Both renderings are deterministic: same record
file, same bytes.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..analysis.report import render_table
from .analyze import RecordAnalysis
from .record import iter_rows

__all__ = ["records_path", "build_analysis", "render_report_text"]


def records_path(prefix: str) -> str:
    """The record-file path a campaign run at ``prefix`` writes."""
    return f"{prefix}.records.jsonl"


def build_analysis(prefix: str) -> Dict[str, object]:
    """Stream ``PREFIX.records.jsonl`` into the analysis document."""
    return RecordAnalysis().extend(iter_rows(records_path(prefix))).as_dict()


def _fmt(value, places: int = 3) -> str:
    """Fixed-precision cell formatting ('-' for not-applicable)."""
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.{places}f}"
    return str(value)


def render_report_text(analysis: Dict[str, object], title: str = "") -> str:
    """The full text report: classification, matrix, curves, latency."""
    sections: List[str] = []
    if title:
        sections.append(title)

    tally = ", ".join(
        f"{label}={count}"
        for label, count in analysis["classification_tally"].items()
    )
    sections.append(
        f"rows: {analysis['rows']}  points: {analysis['points']}  "
        f"classes: {tally or '-'}"
    )

    class_rows = []
    for entry in analysis["classification"]:
        cen = entry.get("censored")
        cln = entry.get("clean")

        def cell(stats: Optional[dict]) -> str:
            if stats is None:
                return "-"
            return f"{stats['blocked']}b/{stats['accessible']}a/{stats['inconclusive']}i"

        class_rows.append([
            entry["technique"], entry["target"], entry["classification"],
            _fmt(entry["confidence"]), cell(cen), cell(cln),
        ])
    sections.append(render_table(
        ["technique", "target", "class", "conf", "censored-vantage", "clean-vantage"],
        class_rows,
        title="\nvantage-differential classification (rows: blocked/accessible/inconclusive)",
    ))

    matrix_rows = [
        [
            technique,
            _fmt(cells["detects"]), _fmt(cells["accuracy"]),
            _fmt(cells["false_block_rate"]), _fmt(cells["evasion"]),
            _fmt(cells["mean_attempts"], 2), _fmt(cells["mean_confidence"]),
            cells["rows"],
        ]
        for technique, cells in analysis["matrix"].items()
    ]
    sections.append(render_table(
        ["technique", "detects", "accuracy", "false-block", "evasion",
         "attempts", "conf", "rows"],
        matrix_rows,
        title="\naccuracy/evasion matrix (Figure-1 criteria, from records)",
    ))

    censor_rows = []
    for censor, by_technique in analysis.get("censor_matrix", {}).items():
        for technique, cells in by_technique.items():
            censor_rows.append([
                censor, technique,
                _fmt(cells["detects"]), _fmt(cells["accuracy"]),
                _fmt(cells["false_block_rate"]), _fmt(cells["evasion"]),
                cells["rows"],
            ])
    if censor_rows:
        sections.append(render_table(
            ["censor", "technique", "detects", "accuracy", "false-block",
             "evasion", "rows"],
            censor_rows,
            title="\nper-censor accuracy/evasion matrix (censored-vantage rows)",
        ))

    curve_rows = []
    for technique, by_retry in analysis["false_block_curves"].items():
        for retry, samples in by_retry.items():
            for loss, rate, n in samples:
                curve_rows.append(
                    [technique, retry, _fmt(loss), _fmt(rate), n]
                )
    if curve_rows:
        sections.append(render_table(
            ["technique", "retry", "loss", "false-block", "open-rows"],
            curve_rows, title="\nfalse-block curves",
        ))

    latency_rows = [
        [technique, cells["count"], _fmt(cells["p50"]), _fmt(cells["p90"]),
         _fmt(cells["p99"])]
        for technique, cells in analysis["latency"].items()
    ]
    if latency_rows:
        sections.append(render_table(
            ["technique", "verdicts", "p50 (s)", "p90 (s)", "p99 (s)"],
            latency_rows,
            title="\nsim-time to verdict (histogram quantiles, ±bucket width)",
        ))

    return "\n".join(sections) + "\n"
