"""The measurement-record schema and its byte-stable JSONL sink/reader.

One row per measurement verdict a campaign produced: which technique
asked, from which vantage, against which censor model and target, what
it concluded and with how much evidence.  Rows are born in the sweep
workers (:func:`rows_from_point` runs where the point's results still
exist), ride the campaign journal inside the point record — so they
survive crashes and resumes for free — and are rendered to
``PREFIX.records.jsonl`` in grid-index order at merge time.  Because the
render order is the grid order (never completion order) and every line
is canonical JSON, serial, work-stealing, and kill-then-resumed
campaigns produce ``cmp``-identical record files; the determinism tests
and the CI smoke job enforce exactly that.

The file layout mirrors the campaign journal: line 1 is a header
pinning the record schema and the spec's content hash, every later line
is one bare row object.  :func:`iter_rows` is a generator over that
file — it holds one line at a time, which is the memory contract the
streaming analysis layer (and its memory-bounded test) is built on.
"""

from __future__ import annotations

import os
from json import loads
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from ..obs.export import canonical_json

__all__ = [
    "RECORD_SCHEMA",
    "ROW_FIELDS",
    "iter_rows",
    "read_header",
    "rows_from_point",
    "summarize_rows",
    "write_records",
]

#: Record-file schema version; bumped only for incompatible row changes.
#: v2 added the background-load columns (``background_bytes``,
#: ``population``) for points that ran under synthetic cover traffic.
RECORD_SCHEMA = 2

#: Every row carries exactly these keys (canonical JSON sorts them, so
#: this tuple is also the documented column order of the sink).
ROW_FIELDS = (
    "attempts",          # probe attempts folded into this verdict
    "background_bytes",  # background wire bytes (both tiers) the point's
                         # population generated during the run; 0 when none
    "censor",            # censor family enforcing on the path (a registered
                         # censor-model name, e.g. "gfc", or "none")
    "confidence",        # verdict confidence in [0, 1]
    "evaded",            # point-level MVR evasion (null where no MVR exists)
    "latency",           # sim-time seconds from technique start to verdict
    "loss",              # marginal loss rate of the point's impairment model
    "point",             # grid index of the sweep point this row came from
    "population",        # synthetic background-population size (users), 0=none
    "reason",            # technique detail string (drop/verdict reason)
    "retry",             # retry-policy axis value
    "seed",              # seed-axis value
    "seq",               # row's position within the point's result list
    "target",            # domain / "ip:port" / service label
    "technique",         # technique axis value
    "topology",          # topology axis value
    "vantage",           # "censored" | "clean"
    "verdict",           # Verdict enum value string
)


def rows_from_point(
    point: Mapping[str, object],
    results: Iterable[Mapping[str, object]],
    vantage: str,
    censor: str,
    evaded: Optional[bool],
    background_bytes: int = 0,
) -> List[Dict[str, object]]:
    """Build the point's record rows from its serialized results.

    Runs inside the worker, where the point's results (and their sim
    timestamps) still exist; everything a row carries is a plain JSON
    scalar so the rows cross the pool boundary and the journal
    unchanged.  ``evaded`` is the point-level surveillance outcome
    (``None`` when the topology has no MVR to evade), stamped onto every
    row so the evasion column of the Figure-1 matrix can be recovered
    from records alone.
    """
    rows: List[Dict[str, object]] = []
    for seq, result in enumerate(results):
        rows.append({
            "attempts": result["attempts"],
            "background_bytes": background_bytes,
            "censor": censor,
            "confidence": result["confidence"],
            "evaded": evaded,
            "latency": result["time"],
            "loss": point["loss"],
            "point": point["index"],
            "population": point.get("population", 0),
            "reason": result["detail"],
            "retry": point["retry"],
            "seed": point["seed"],
            "seq": seq,
            "target": result["target"],
            "technique": point["technique"],
            "topology": point["topology"],
            "vantage": vantage,
            "verdict": result["verdict"],
        })
    return rows


def write_records(
    path: str,
    spec_hash: str,
    rows: Iterable[Mapping[str, object]],
) -> Dict[str, object]:
    """Render the record file atomically; return the sink summary.

    Rows are written in the order given (the runner supplies grid-index
    order), one canonical-JSON line each, to a temp file that replaces
    ``path`` only once complete — the record file is never observable
    half-written.  The returned summary (row count and per-verdict
    histogram) is what the runner cross-checks against the merged
    counters for conservation.
    """
    parent = os.path.dirname(os.path.abspath(path))
    if parent:
        os.makedirs(parent, exist_ok=True)
    temp = f"{path}.tmp"
    total = 0
    by_verdict: Dict[str, int] = {}
    with open(temp, "w", encoding="utf-8") as fh:
        fh.write(canonical_json({
            "kind": "header",
            "schema": RECORD_SCHEMA,
            "spec_hash": spec_hash,
            "fields": list(ROW_FIELDS),
        }))
        fh.write("\n")
        for row in rows:
            fh.write(canonical_json(row))
            fh.write("\n")
            total += 1
            verdict = row["verdict"]
            by_verdict[verdict] = by_verdict.get(verdict, 0) + 1
    os.replace(temp, path)
    return {"rows": total, "by_verdict": dict(sorted(by_verdict.items()))}


def summarize_rows(rows: Iterable[Mapping[str, object]]) -> Dict[str, object]:
    """The :func:`write_records` summary without writing anything.

    Keeps the report's ``records`` section identical whether or not a
    sink path was configured, so enabling the sink never changes report
    bytes.
    """
    total = 0
    by_verdict: Dict[str, int] = {}
    for row in rows:
        total += 1
        verdict = row["verdict"]
        by_verdict[verdict] = by_verdict.get(verdict, 0) + 1
    return {"rows": total, "by_verdict": dict(sorted(by_verdict.items()))}


def read_header(path: str) -> Dict[str, object]:
    """Parse and validate the record file's header line."""
    with open(path, "r", encoding="utf-8") as fh:
        line = fh.readline()
    try:
        header = loads(line)
    except ValueError as exc:
        raise ValueError(f"{path}: not a record file (bad header line)") from exc
    if not isinstance(header, dict) or header.get("kind") != "header":
        raise ValueError(f"{path}: not a record file (missing header)")
    if header.get("schema") != RECORD_SCHEMA:
        raise ValueError(
            f"{path}: record schema {header.get('schema')!r} "
            f"(this reader speaks {RECORD_SCHEMA})"
        )
    return header


def iter_rows(path: str) -> Iterator[Dict[str, object]]:
    """Stream the record file's rows, one dict at a time.

    A generator over the open file: the header line is validated, then
    each later line is parsed and yielded individually — memory use is
    one line, independent of file size, which is what lets the analysis
    layer chew through millions of rows.  Blank trailing lines are
    tolerated; anything else unparseable raises (record files are
    rendered atomically, so a torn file is corruption, not a crash
    artifact to shrug off).
    """
    with open(path, "r", encoding="utf-8") as fh:
        header = fh.readline()
        parsed = loads(header)
        if not isinstance(parsed, dict) or parsed.get("kind") != "header":
            raise ValueError(f"{path}: not a record file (missing header)")
        if parsed.get("schema") != RECORD_SCHEMA:
            raise ValueError(
                f"{path}: record schema {parsed.get('schema')!r} "
                f"(this reader speaks {RECORD_SCHEMA})"
            )
        for line in fh:
            if not line.strip():
                continue
            yield loads(line)
