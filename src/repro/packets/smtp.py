"""SMTP command/reply modelling and RFC 822-style message building.

The spam measurement method (paper Section 3.1, Method #2) completes a real
SMTP dialog so that, on the wire, its traffic is indistinguishable from a
spam bot's delivery attempt.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["SMTPCommand", "SMTPReply", "EmailMessage"]

CRLF = "\r\n"


@dataclass(frozen=True)
class SMTPCommand:
    """A client-side SMTP command line.

    Frozen, so ``to_bytes`` memoizes unconditionally — no invalidation.
    """

    verb: str
    argument: str = ""
    _wire: Optional[bytes] = field(default=None, init=False, repr=False, compare=False)

    def to_bytes(self) -> bytes:
        wire = self._wire
        if wire is not None:
            return wire
        line = self.verb if not self.argument else f"{self.verb} {self.argument}"
        wire = (line + CRLF).encode("latin-1")
        object.__setattr__(self, "_wire", wire)
        return wire

    @classmethod
    def from_bytes(cls, data: bytes) -> "SMTPCommand":
        line = data.decode("latin-1").rstrip(CRLF)
        verb, _, argument = line.partition(" ")
        return cls(verb=verb.upper(), argument=argument.strip())


@dataclass(frozen=True)
class SMTPReply:
    """A server-side SMTP reply line.

    Frozen, so ``to_bytes`` memoizes unconditionally — no invalidation.
    """

    code: int
    text: str = ""
    _wire: Optional[bytes] = field(default=None, init=False, repr=False, compare=False)

    def to_bytes(self) -> bytes:
        wire = self._wire
        if wire is not None:
            return wire
        wire = f"{self.code} {self.text}{CRLF}".encode("latin-1")
        object.__setattr__(self, "_wire", wire)
        return wire

    @classmethod
    def from_bytes(cls, data: bytes) -> "SMTPReply":
        line = data.decode("latin-1").rstrip(CRLF)
        code_text, _, text = line.partition(" ")
        return cls(code=int(code_text), text=text)

    @property
    def is_positive(self) -> bool:
        return 200 <= self.code < 400


@dataclass
class EmailMessage:
    """A minimal RFC 822 message with headers and a text body.

    ``to_bytes`` is memoized; rebinding a field invalidates the cache, but
    mutating ``extra_headers`` in place does not — call
    :meth:`_invalidate_wire` afterwards (or rebind the dict).
    """

    sender: str
    recipient: str
    subject: str = ""
    body: str = ""
    extra_headers: Dict[str, str] = field(default_factory=dict)
    _wire: Optional[bytes] = field(default=None, init=False, repr=False, compare=False)

    def __setattr__(self, name, value) -> None:
        object.__setattr__(self, name, value)
        object.__setattr__(self, "_wire", None)

    def _invalidate_wire(self) -> None:
        """Drop the memoized wire image after in-place header mutation."""
        object.__setattr__(self, "_wire", None)

    def to_text(self) -> str:
        headers = {
            "From": self.sender,
            "To": self.recipient,
            "Subject": self.subject,
            **self.extra_headers,
        }
        head = "".join(f"{key}: {value}{CRLF}" for key, value in headers.items())
        return head + CRLF + self.body

    def to_bytes(self) -> bytes:
        wire = self._wire
        if wire is not None:
            return wire
        wire = self.to_text().encode("utf-8")
        object.__setattr__(self, "_wire", wire)
        return wire

    @classmethod
    def from_text(cls, text: str) -> "EmailMessage":
        head, _, body = text.partition(CRLF + CRLF)
        headers: Dict[str, str] = {}
        for line in head.split(CRLF):
            key, _, value = line.partition(":")
            if key:
                headers[key.strip()] = value.strip()
        known = {"From", "To", "Subject"}
        return cls(
            sender=headers.get("From", ""),
            recipient=headers.get("To", ""),
            subject=headers.get("Subject", ""),
            body=body,
            extra_headers={k: v for k, v in headers.items() if k not in known},
        )

    def words(self) -> List[str]:
        """Lower-cased tokens of subject + body, for spam-filter features."""
        import re

        return re.findall(r"[a-z0-9$!']+", (self.subject + " " + self.body).lower())


def dialog_script(message: EmailMessage, helo_name: str = "mail.example.com") -> List[SMTPCommand]:
    """The client command sequence that delivers ``message``."""
    return [
        SMTPCommand("HELO", helo_name),
        SMTPCommand("MAIL", f"FROM:<{message.sender}>"),
        SMTPCommand("RCPT", f"TO:<{message.recipient}>"),
        SMTPCommand("DATA"),
    ]
