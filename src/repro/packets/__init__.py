"""Packet construction and parsing substrate (a self-contained mini-scapy).

The paper's measurements require a client platform "with the ability to
construct raw packets" (Section 1); this package is that ability.  All
layers serialize to genuine wire bytes with valid checksums so that rule
engines, reassemblers, and taps operate on the same representation a real
IDS would.
"""

from .addressing import (
    compile_network,
    hosts_of,
    in_network,
    int_to_ip,
    int_to_ip_cached,
    ip_to_int,
    ip_to_int_cached,
    is_valid_ip,
    network_of,
    parse_cidr,
    same_prefix,
)
from .checksum import (
    checksum_from_sum,
    fold_sum,
    internet_checksum,
    pseudo_header,
    pseudo_sum,
    raw_sum,
    verify_checksum,
)
from .dns import (
    DNSMessage,
    DNSQuestion,
    DNSRecord,
    QTYPE_A,
    QTYPE_CNAME,
    QTYPE_MX,
    QTYPE_NS,
    QTYPE_TXT,
    RCODE_NXDOMAIN,
    RCODE_OK,
    RCODE_REFUSED,
    RCODE_SERVFAIL,
    qtype_name,
)
from .flow import FiveTuple, canonical_flow, flow_of
from .fragment import FragmentReassembler, fragment
from .http import HTTPRequest, HTTPResponse, parse_http_payload
from .icmp import (
    ICMP_DEST_UNREACH,
    ICMP_ECHO_REPLY,
    ICMP_ECHO_REQUEST,
    ICMP_TIME_EXCEEDED,
    ICMPMessage,
)
from .ip import IP_HEADER_LEN, IPPacket, PROTO_ICMP, PROTO_TCP, PROTO_UDP
from .smtp import EmailMessage, SMTPCommand, SMTPReply
from .tls import ClientHello, ServerHello, sni_of, tls_alert
from .tcp import ACK, FIN, PSH, RST, SYN, TCPSegment, URG
from .udp import UDPDatagram

__all__ = [
    "ACK",
    "DNSMessage",
    "DNSQuestion",
    "DNSRecord",
    "ClientHello",
    "EmailMessage",
    "FIN",
    "FiveTuple",
    "FragmentReassembler",
    "HTTPRequest",
    "HTTPResponse",
    "ICMPMessage",
    "ICMP_DEST_UNREACH",
    "ICMP_ECHO_REPLY",
    "ICMP_ECHO_REQUEST",
    "ICMP_TIME_EXCEEDED",
    "IPPacket",
    "IP_HEADER_LEN",
    "PROTO_ICMP",
    "PROTO_TCP",
    "PROTO_UDP",
    "PSH",
    "QTYPE_A",
    "QTYPE_CNAME",
    "QTYPE_MX",
    "QTYPE_NS",
    "QTYPE_TXT",
    "RCODE_NXDOMAIN",
    "RCODE_OK",
    "RCODE_REFUSED",
    "RCODE_SERVFAIL",
    "RST",
    "SMTPCommand",
    "SMTPReply",
    "ServerHello",
    "SYN",
    "TCPSegment",
    "UDPDatagram",
    "URG",
    "canonical_flow",
    "flow_of",
    "fragment",
    "checksum_from_sum",
    "compile_network",
    "fold_sum",
    "hosts_of",
    "in_network",
    "int_to_ip",
    "int_to_ip_cached",
    "internet_checksum",
    "ip_to_int",
    "ip_to_int_cached",
    "is_valid_ip",
    "network_of",
    "parse_cidr",
    "parse_http_payload",
    "pseudo_header",
    "pseudo_sum",
    "qtype_name",
    "raw_sum",
    "same_prefix",
    "sni_of",
    "tls_alert",
    "verify_checksum",
]
