"""UDP datagram model."""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from .addressing import ip_to_int
from .checksum import internet_checksum, pseudo_header

__all__ = ["UDPDatagram", "UDP_HEADER_LEN"]

UDP_HEADER_LEN = 8
PROTO_UDP = 17


@dataclass
class UDPDatagram:
    """A UDP datagram; ``payload`` carries application bytes."""

    sport: int
    dport: int
    payload: bytes = b""
    metadata: dict = field(default_factory=dict, repr=False, compare=False)

    def wire_length(self) -> int:
        """Length of ``to_bytes()`` without serializing."""
        return UDP_HEADER_LEN + len(self.payload)

    def to_bytes(self, src_ip: str, dst_ip: str) -> bytes:
        """Serialize with a valid checksum over the IPv4 pseudo-header."""
        length = UDP_HEADER_LEN + len(self.payload)
        header = struct.pack("!HHHH", self.sport, self.dport, length, 0)
        pseudo = pseudo_header(ip_to_int(src_ip), ip_to_int(dst_ip), PROTO_UDP, length)
        cksum = internet_checksum(pseudo + header + self.payload)
        if cksum == 0:  # RFC 768: transmitted as all-ones when computed zero
            cksum = 0xFFFF
        return header[:6] + struct.pack("!H", cksum) + self.payload

    @classmethod
    def from_bytes(cls, data: bytes) -> "UDPDatagram":
        if len(data) < UDP_HEADER_LEN:
            raise ValueError("truncated UDP header")
        sport, dport, length, _cksum = struct.unpack("!HHHH", data[:UDP_HEADER_LEN])
        return cls(sport=sport, dport=dport, payload=data[UDP_HEADER_LEN:length])
