"""UDP datagram model.

Serialization is cached exactly like :class:`repro.packets.tcp.TCPSegment`:
memoized per (src, dst) pair, invalidated by field writes, seeded by
``IPPacket.from_bytes`` with the parsed source bytes (validated lazily).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Optional, Tuple

from .checksum import checksum_from_sum, fold_sum, pseudo_sum, raw_sum

__all__ = ["UDPDatagram", "UDP_HEADER_LEN"]

UDP_HEADER_LEN = 8
PROTO_UDP = 17

_oset = object.__setattr__


@dataclass(init=False, slots=True)
class UDPDatagram:
    """A UDP datagram; ``payload`` carries application bytes."""

    sport: int
    dport: int
    payload: bytes = b""
    metadata: dict = field(default_factory=dict, repr=False, compare=False)
    _wire: Optional[bytes] = field(default=None, init=False, repr=False, compare=False)
    _wire_key: Optional[Tuple[str, str]] = field(
        default=None, init=False, repr=False, compare=False
    )
    _seed: Optional[bytes] = field(default=None, init=False, repr=False, compare=False)
    _seed_key: Optional[Tuple[str, str]] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __init__(
        self,
        sport: int,
        dport: int,
        payload: bytes = b"",
        metadata: Optional[dict] = None,
    ) -> None:
        _oset(self, "sport", sport)
        _oset(self, "dport", dport)
        _oset(self, "payload", payload)
        _oset(self, "metadata", {} if metadata is None else metadata)
        _oset(self, "_wire", None)
        _oset(self, "_wire_key", None)
        _oset(self, "_seed", None)
        _oset(self, "_seed_key", None)

    def __setattr__(self, name, value) -> None:
        _oset(self, name, value)
        _oset(self, "_wire", None)
        _oset(self, "_seed", None)

    def wire_length(self) -> int:
        """Length of ``to_bytes()`` without serializing."""
        return UDP_HEADER_LEN + len(self.payload)

    def to_bytes(self, src_ip: str, dst_ip: str) -> bytes:
        """Serialize with a valid checksum over the IPv4 pseudo-header.

        Memoized per (src, dst) pair; field writes invalidate the cache.
        """
        key = (src_ip, dst_ip)
        if self._wire is not None and self._wire_key == key:
            return self._wire
        seed = self._seed
        if seed is not None and self._seed_key == key:
            _oset(self, "_seed", None)
            if self._seed_checksum_ok(seed, src_ip, dst_ip):
                _oset(self, "_wire", seed)
                _oset(self, "_wire_key", key)
                return seed
        payload = self.payload
        length = UDP_HEADER_LEN + len(payload)
        header = bytearray(UDP_HEADER_LEN)
        struct.pack_into("!HHHH", header, 0, self.sport, self.dport, length, 0)
        cksum = checksum_from_sum(
            pseudo_sum(src_ip, dst_ip, PROTO_UDP)
            + length
            + raw_sum(header)
            + raw_sum(payload)
        )
        if cksum == 0:  # RFC 768: transmitted as all-ones when computed zero
            cksum = 0xFFFF
        struct.pack_into("!H", header, 6, cksum)
        wire = bytes(header) + payload
        _oset(self, "_wire", wire)
        _oset(self, "_wire_key", key)
        return wire

    def _seed_checksum_ok(self, seed: bytes, src_ip: str, dst_ip: str) -> bool:
        # Fast path as in TCPSegment._seed_checksum_ok: whole-buffer sum
        # folds to 0xFFFF iff the stored checksum is congruent to ours.  A
        # stored 0xFFFF is ambiguous (it may stand in for a computed 0, per
        # RFC 768) and takes the exact path; a stored 0 never seeds at all.
        stored = seed[6] << 8 | seed[7]
        if stored != 0xFFFF:
            total = pseudo_sum(src_ip, dst_ip, PROTO_UDP) + len(seed) + raw_sum(seed)
            return fold_sum(total) == 0xFFFF
        mv = memoryview(seed)
        computed = checksum_from_sum(
            pseudo_sum(src_ip, dst_ip, PROTO_UDP)
            + len(seed)
            + raw_sum(mv[:6])
            + raw_sum(mv[8:])
        )
        if computed == 0:
            computed = 0xFFFF
        return computed == stored

    @staticmethod
    def _seedable(data: bytes) -> bool:
        """Structural test: the length field must cover the datagram exactly
        (re-serialization drops trailing bytes) and the checksum must not be
        the no-checksum sentinel 0, which we never emit."""
        return (data[4] << 8 | data[5]) == len(data) and (data[6] | data[7]) != 0

    @classmethod
    def from_bytes(cls, data: bytes) -> "UDPDatagram":
        if len(data) < UDP_HEADER_LEN:
            raise ValueError("truncated UDP header")
        sport, dport, length, _cksum = struct.unpack_from("!HHHH", data)
        # object.__new__ fast path; see TCPSegment.from_bytes.
        dgram = object.__new__(cls)
        _oset(dgram, "sport", sport)
        _oset(dgram, "dport", dport)
        _oset(dgram, "payload", data[UDP_HEADER_LEN:length])
        _oset(dgram, "metadata", {})
        _oset(dgram, "_wire", None)
        _oset(dgram, "_wire_key", None)
        _oset(dgram, "_seed", None)
        _oset(dgram, "_seed_key", None)
        return dgram

    def _copy_shared(self) -> "UDPDatagram":
        """Structural copy sharing the (immutable) cached wire image."""
        new = object.__new__(UDPDatagram)
        _oset(new, "sport", self.sport)
        _oset(new, "dport", self.dport)
        _oset(new, "payload", self.payload)
        _oset(new, "metadata", {})
        _oset(new, "_wire", self._wire)
        _oset(new, "_wire_key", self._wire_key)
        _oset(new, "_seed", self._seed)
        _oset(new, "_seed_key", self._seed_key)
        return new
