"""DNS message encoding/decoding (RFC 1035 subset).

Supports the record types the paper's measurements use — A for direct
resolution and spam-method A lookups, MX for the spam method's mail-server
lookups — plus NS/CNAME/TXT for realistic zones.  Name compression is
implemented on decode (the GFC injector and resolvers both re-serialize
answers, so encode emits uncompressed names for simplicity and determinism).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Optional

from .addressing import int_to_ip, ip_to_int

__all__ = [
    "DNSQuestion",
    "DNSRecord",
    "DNSMessage",
    "QTYPE_A",
    "QTYPE_NS",
    "QTYPE_CNAME",
    "QTYPE_MX",
    "QTYPE_TXT",
    "RCODE_OK",
    "RCODE_NXDOMAIN",
    "RCODE_SERVFAIL",
    "RCODE_REFUSED",
    "qtype_name",
]

QTYPE_A = 1
QTYPE_NS = 2
QTYPE_CNAME = 5
QTYPE_MX = 15
QTYPE_TXT = 16

RCODE_OK = 0
RCODE_SERVFAIL = 2
RCODE_NXDOMAIN = 3
RCODE_REFUSED = 5

_QTYPE_NAMES = {
    QTYPE_A: "A",
    QTYPE_NS: "NS",
    QTYPE_CNAME: "CNAME",
    QTYPE_MX: "MX",
    QTYPE_TXT: "TXT",
}

CLASS_IN = 1


def qtype_name(qtype: int) -> str:
    """Human-readable name for a query type."""
    return _QTYPE_NAMES.get(qtype, f"TYPE{qtype}")


def _normalize(name: str) -> str:
    return name.rstrip(".").lower()


def _encode_name(name: str) -> bytes:
    out = bytearray()
    for label in _normalize(name).split("."):
        if not label:
            continue
        raw = label.encode("ascii")
        if len(raw) > 63:
            raise ValueError(f"DNS label too long: {label!r}")
        out.append(len(raw))
        out += raw
    out.append(0)
    return bytes(out)


def _decode_name(data: bytes, offset: int) -> tuple[str, int]:
    """Decode a possibly-compressed name; return (name, next_offset)."""
    labels: List[str] = []
    jumped = False
    next_offset = offset
    seen = set()
    while True:
        if offset >= len(data):
            raise ValueError("truncated DNS name")
        length = data[offset]
        if length & 0xC0 == 0xC0:  # compression pointer
            if offset + 1 >= len(data):
                raise ValueError("truncated DNS compression pointer")
            pointer = ((length & 0x3F) << 8) | data[offset + 1]
            if pointer in seen:
                raise ValueError("DNS compression loop")
            seen.add(pointer)
            if not jumped:
                next_offset = offset + 2
                jumped = True
            offset = pointer
            continue
        if length == 0:
            if not jumped:
                next_offset = offset + 1
            break
        offset += 1
        labels.append(data[offset : offset + length].decode("ascii"))
        offset += length
    return ".".join(labels), next_offset


@dataclass(frozen=True)
class DNSQuestion:
    """A question-section entry."""

    name: str
    qtype: int = QTYPE_A
    qclass: int = CLASS_IN

    def key(self) -> tuple[str, int]:
        return _normalize(self.name), self.qtype


@dataclass(frozen=True)
class DNSRecord:
    """A resource record.

    ``data`` is type-specific: an IPv4 string for A, a host name for
    NS/CNAME, ``(preference, exchange)`` for MX, and a text string for TXT.
    """

    name: str
    rtype: int
    data: object
    ttl: int = 300
    rclass: int = CLASS_IN

    def rdata_bytes(self) -> bytes:
        if self.rtype == QTYPE_A:
            return struct.pack("!I", ip_to_int(str(self.data)))
        if self.rtype in (QTYPE_NS, QTYPE_CNAME):
            return _encode_name(str(self.data))
        if self.rtype == QTYPE_MX:
            preference, exchange = self.data  # type: ignore[misc]
            return struct.pack("!H", int(preference)) + _encode_name(str(exchange))
        if self.rtype == QTYPE_TXT:
            raw = str(self.data).encode("utf-8")
            return bytes([len(raw)]) + raw
        raise ValueError(f"unsupported record type: {self.rtype}")

    @classmethod
    def parse_rdata(cls, rtype: int, data: bytes, offset: int, rdlen: int) -> object:
        if rtype == QTYPE_A:
            (value,) = struct.unpack("!I", data[offset : offset + 4])
            return int_to_ip(value)
        if rtype in (QTYPE_NS, QTYPE_CNAME):
            name, _ = _decode_name(data, offset)
            return name
        if rtype == QTYPE_MX:
            (preference,) = struct.unpack("!H", data[offset : offset + 2])
            exchange, _ = _decode_name(data, offset + 2)
            return (preference, exchange)
        if rtype == QTYPE_TXT:
            length = data[offset]
            return data[offset + 1 : offset + 1 + length].decode("utf-8")
        return bytes(data[offset : offset + rdlen])


@dataclass(slots=True)
class DNSMessage:
    """A full DNS message (header + question/answer/authority sections).

    ``to_bytes`` is memoized; rebinding a field invalidates the cache, but
    mutating a section list in place does not — call :meth:`_invalidate_wire`
    after in-place mutation (or rebind, e.g. ``msg.answers = [*msg.answers,
    record]``).  ``from_bytes`` does not seed the cache: parsed input may use
    name compression, which encode deliberately never emits.
    """

    txid: int = 0
    is_response: bool = False
    rcode: int = RCODE_OK
    recursion_desired: bool = True
    recursion_available: bool = False
    authoritative: bool = False
    questions: List[DNSQuestion] = field(default_factory=list)
    answers: List[DNSRecord] = field(default_factory=list)
    authority: List[DNSRecord] = field(default_factory=list)
    additional: List[DNSRecord] = field(default_factory=list)
    _wire: Optional[bytes] = field(default=None, init=False, repr=False, compare=False)

    def __setattr__(self, name, value) -> None:
        object.__setattr__(self, name, value)
        object.__setattr__(self, "_wire", None)

    def _invalidate_wire(self) -> None:
        """Drop the memoized wire image after in-place section mutation."""
        object.__setattr__(self, "_wire", None)

    @classmethod
    def query(cls, name: str, qtype: int = QTYPE_A, txid: int = 0) -> "DNSMessage":
        """Build a standard recursive query for ``name``."""
        return cls(txid=txid, questions=[DNSQuestion(name=name, qtype=qtype)])

    def reply(
        self,
        answers: Optional[List[DNSRecord]] = None,
        rcode: int = RCODE_OK,
        authoritative: bool = True,
    ) -> "DNSMessage":
        """Build a response echoing this query's txid and question."""
        return DNSMessage(
            txid=self.txid,
            is_response=True,
            rcode=rcode,
            recursion_desired=self.recursion_desired,
            recursion_available=True,
            authoritative=authoritative,
            questions=list(self.questions),
            answers=list(answers or []),
        )

    @property
    def question(self) -> Optional[DNSQuestion]:
        """The first question, or None for a malformed empty message."""
        return self.questions[0] if self.questions else None

    def a_records(self) -> List[str]:
        """All A-record addresses in the answer section."""
        return [str(r.data) for r in self.answers if r.rtype == QTYPE_A]

    def mx_records(self) -> List[tuple[int, str]]:
        """All (preference, exchange) MX pairs in the answer section."""
        return [tuple(r.data) for r in self.answers if r.rtype == QTYPE_MX]  # type: ignore[list-item]

    # -- wire format ---------------------------------------------------------

    def to_bytes(self) -> bytes:
        wire = self._wire
        if wire is not None:
            return wire
        flags = 0
        if self.is_response:
            flags |= 0x8000
        if self.authoritative:
            flags |= 0x0400
        if self.recursion_desired:
            flags |= 0x0100
        if self.recursion_available:
            flags |= 0x0080
        flags |= self.rcode & 0xF
        out = bytearray(
            struct.pack(
                "!HHHHHH",
                self.txid,
                flags,
                len(self.questions),
                len(self.answers),
                len(self.authority),
                len(self.additional),
            )
        )
        for question in self.questions:
            out += _encode_name(question.name)
            out += struct.pack("!HH", question.qtype, question.qclass)
        for record in self.answers + self.authority + self.additional:
            out += _encode_name(record.name)
            rdata = record.rdata_bytes()
            out += struct.pack(
                "!HHIH", record.rtype, record.rclass, record.ttl, len(rdata)
            )
            out += rdata
        wire = bytes(out)
        object.__setattr__(self, "_wire", wire)
        return wire

    @classmethod
    def from_bytes(cls, data: bytes) -> "DNSMessage":
        if len(data) < 12:
            raise ValueError("truncated DNS header")
        txid, flags, qd, an, ns, ar = struct.unpack("!HHHHHH", data[:12])
        msg = cls(
            txid=txid,
            is_response=bool(flags & 0x8000),
            rcode=flags & 0xF,
            recursion_desired=bool(flags & 0x0100),
            recursion_available=bool(flags & 0x0080),
            authoritative=bool(flags & 0x0400),
        )
        offset = 12
        for _ in range(qd):
            name, offset = _decode_name(data, offset)
            qtype, qclass = struct.unpack("!HH", data[offset : offset + 4])
            offset += 4
            msg.questions.append(DNSQuestion(name=name, qtype=qtype, qclass=qclass))
        for section, count in ((msg.answers, an), (msg.authority, ns), (msg.additional, ar)):
            for _ in range(count):
                name, offset = _decode_name(data, offset)
                rtype, rclass, ttl, rdlen = struct.unpack(
                    "!HHIH", data[offset : offset + 10]
                )
                offset += 10
                value = DNSRecord.parse_rdata(rtype, data, offset, rdlen)
                offset += rdlen
                section.append(
                    DNSRecord(name=name, rtype=rtype, data=value, ttl=ttl, rclass=rclass)
                )
        return msg
