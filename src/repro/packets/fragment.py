"""IPv4 fragmentation and reassembly.

Fragmentation matters to censorship measurement twice over: the classic
evasion literature (Clayton et al., Khattak et al.) probes whether the
censor reassembles IP fragments before matching, and end hosts must
reassemble correctly for fragmented measurements to work at all.

``fragment`` splits a packet into wire-faithful fragments (8-byte-aligned
offsets, MF flag, shared ident); ``FragmentReassembler`` rebuilds the
original from fragments arriving in any order, with a timeout for
incomplete groups.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .ip import IPPacket, IP_HEADER_LEN

__all__ = ["fragment", "FragmentReassembler"]

MF_FLAG = 0x1  # "more fragments"
DF_FLAG = 0x2  # "don't fragment"


def fragment(packet: IPPacket, mtu: int) -> List[IPPacket]:
    """Split ``packet`` into fragments that fit ``mtu`` bytes on the wire.

    Returns ``[packet]`` unchanged when it already fits.  Raises if the
    packet has DF set and does not fit (the sender would instead receive
    ICMP fragmentation-needed in a fuller model).
    """
    if mtu < IP_HEADER_LEN + 8:
        raise ValueError(f"mtu {mtu} cannot carry any payload")
    body = packet.payload_bytes()
    if IP_HEADER_LEN + len(body) <= mtu:
        return [packet]
    if packet.flags & DF_FLAG:
        raise ValueError("packet has DF set but exceeds the MTU")

    # Fragment payload sizes must be multiples of 8 (offset is in units
    # of 8 bytes), except for the final fragment.
    chunk = (mtu - IP_HEADER_LEN) // 8 * 8
    fragments: List[IPPacket] = []
    offset = 0
    while offset < len(body):
        piece = body[offset : offset + chunk]
        last = offset + len(piece) >= len(body)
        fragments.append(
            IPPacket(
                src=packet.src,
                dst=packet.dst,
                payload=piece,
                protocol=packet.protocol,
                ttl=packet.ttl,
                ident=packet.ident,
                tos=packet.tos,
                flags=0 if last else MF_FLAG,
                frag_offset=offset // 8,
            )
        )
        offset += len(piece)
    return fragments


@dataclass
class _Group:
    """Fragments collected for one (src, dst, protocol, ident) key."""

    first_seen: float
    pieces: Dict[int, bytes] = field(default_factory=dict)  # offset-> bytes
    total_length: Optional[int] = None  # known once the last fragment arrives
    template: Optional[IPPacket] = None

    def add(self, packet: IPPacket) -> None:
        body = (
            packet.payload
            if isinstance(packet.payload, (bytes, bytearray))
            else packet.payload_bytes()
        )
        self.pieces[packet.frag_offset * 8] = bytes(body)
        if not packet.flags & MF_FLAG:
            self.total_length = packet.frag_offset * 8 + len(body)
        if self.template is None or packet.frag_offset == 0:
            self.template = packet

    def complete(self) -> bool:
        if self.total_length is None:
            return False
        covered = 0
        for offset in sorted(self.pieces):
            if offset > covered:
                return False  # hole
            covered = max(covered, offset + len(self.pieces[offset]))
        return covered >= self.total_length

    def assemble(self) -> bytes:
        out = bytearray(self.total_length or 0)
        for offset, piece in self.pieces.items():
            out[offset : offset + len(piece)] = piece
        return bytes(out)


class FragmentReassembler:
    """Rebuilds original packets from fragments (host or middlebox side)."""

    def __init__(self, timeout: float = 30.0) -> None:
        self.timeout = timeout
        self._groups: Dict[Tuple[str, str, int, int], _Group] = {}
        self.reassembled = 0
        self.expired = 0

    def feed(self, packet: IPPacket, now: float) -> Optional[IPPacket]:
        """Offer a packet; returns the reassembled original when complete.

        Non-fragment packets come straight back.  Fragments are buffered
        until their group completes; expired groups are dropped.
        """
        self._expire(now)
        if packet.frag_offset == 0 and not packet.flags & MF_FLAG:
            return packet  # not a fragment
        key = (packet.src, packet.dst, packet.protocol, packet.ident)
        group = self._groups.get(key)
        if group is None:
            group = _Group(first_seen=now)
            self._groups[key] = group
        group.add(packet)
        if not group.complete():
            return None
        del self._groups[key]
        self.reassembled += 1
        body = group.assemble()
        rebuilt_wire = IPPacket(
            src=packet.src,
            dst=packet.dst,
            payload=body,
            protocol=packet.protocol,
            ttl=packet.ttl,
            ident=packet.ident,
            tos=packet.tos,
            flags=DF_FLAG,
            frag_offset=0,
        ).to_bytes()
        return IPPacket.from_bytes(rebuilt_wire)

    def _expire(self, now: float) -> None:
        stale = [
            key for key, group in self._groups.items()
            if now - group.first_seen > self.timeout
        ]
        for key in stale:
            del self._groups[key]
            self.expired += 1

    @property
    def pending_groups(self) -> int:
        return len(self._groups)
