"""TCP segment model with real flag semantics and checksums.

Serialization is cached: the first ``to_bytes`` for a given (src, dst) pair
memoizes the wire image, field writes invalidate it, and ``from_bytes``
(via :meth:`repro.packets.ip.IPPacket.from_bytes`) seeds it with the parsed
source bytes so parse→forward→capture round-trips serialize zero times.
See ``docs/ARCHITECTURE.md`` ("Wire-cache invariants") for the mutation
protocol when adding fields.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Optional, Tuple

from .checksum import checksum_from_sum, fold_sum, pseudo_sum, raw_sum

__all__ = [
    "TCPSegment",
    "FIN",
    "SYN",
    "RST",
    "PSH",
    "ACK",
    "URG",
    "TCP_HEADER_LEN",
]

FIN = 0x01
SYN = 0x02
RST = 0x04
PSH = 0x08
ACK = 0x10
URG = 0x20

_FLAG_NAMES = [("F", FIN), ("S", SYN), ("R", RST), ("P", PSH), ("A", ACK), ("U", URG)]

TCP_HEADER_LEN = 20
PROTO_TCP = 6

_oset = object.__setattr__


@dataclass(init=False, slots=True)
class TCPSegment:
    """A TCP segment; ``payload`` carries application bytes."""

    sport: int
    dport: int
    seq: int = 0
    ack: int = 0
    flags: int = 0
    window: int = 65535
    urgent: int = 0
    payload: bytes = b""
    options: bytes = b""
    metadata: dict = field(default_factory=dict, repr=False, compare=False)
    #: Validated wire image for ``_wire_key``'s (src, dst) pair.
    _wire: Optional[bytes] = field(default=None, init=False, repr=False, compare=False)
    _wire_key: Optional[Tuple[str, str]] = field(
        default=None, init=False, repr=False, compare=False
    )
    #: Parse-seeded wire candidate; checksum-validated lazily on first use.
    _seed: Optional[bytes] = field(default=None, init=False, repr=False, compare=False)
    _seed_key: Optional[Tuple[str, str]] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __init__(
        self,
        sport: int,
        dport: int,
        seq: int = 0,
        ack: int = 0,
        flags: int = 0,
        window: int = 65535,
        urgent: int = 0,
        payload: bytes = b"",
        options: bytes = b"",
        metadata: Optional[dict] = None,
    ) -> None:
        _oset(self, "sport", sport)
        _oset(self, "dport", dport)
        _oset(self, "seq", seq)
        _oset(self, "ack", ack)
        _oset(self, "flags", flags)
        _oset(self, "window", window)
        _oset(self, "urgent", urgent)
        _oset(self, "payload", payload)
        _oset(self, "options", options)
        _oset(self, "metadata", {} if metadata is None else metadata)
        _oset(self, "_wire", None)
        _oset(self, "_wire_key", None)
        _oset(self, "_seed", None)
        _oset(self, "_seed_key", None)

    def __setattr__(self, name, value) -> None:
        # Dirty tracking: any field write invalidates both the memoized wire
        # image and any parse-seeded candidate.
        _oset(self, name, value)
        _oset(self, "_wire", None)
        _oset(self, "_seed", None)

    # -- flag helpers --------------------------------------------------------

    def has(self, mask: int) -> bool:
        """Return True if every flag bit in ``mask`` is set."""
        return self.flags & mask == mask

    @property
    def is_syn(self) -> bool:
        return self.has(SYN) and not self.has(ACK)

    @property
    def is_synack(self) -> bool:
        return self.has(SYN | ACK)

    @property
    def is_rst(self) -> bool:
        return self.has(RST)

    @property
    def is_fin(self) -> bool:
        return self.has(FIN)

    @property
    def is_ack_only(self) -> bool:
        return self.flags == ACK and not self.payload

    def flag_names(self) -> str:
        """Render flags as e.g. ``"SA"`` for SYN+ACK (nmap/tcpdump style)."""
        return "".join(name for name, bit in _FLAG_NAMES if self.flags & bit)

    # -- wire format ---------------------------------------------------------

    def header_len(self) -> int:
        pad = (-len(self.options)) % 4
        return TCP_HEADER_LEN + len(self.options) + pad

    def wire_length(self) -> int:
        """Length of ``to_bytes()`` without serializing."""
        return self.header_len() + len(self.payload)

    def to_bytes(self, src_ip: str, dst_ip: str) -> bytes:
        """Serialize with a valid checksum over the IPv4 pseudo-header.

        Memoized per (src, dst) pair; field writes invalidate the cache.
        """
        key = (src_ip, dst_ip)
        if self._wire is not None and self._wire_key == key:
            return self._wire
        seed = self._seed
        if seed is not None and self._seed_key == key:
            _oset(self, "_seed", None)
            if self._seed_checksum_ok(seed, src_ip, dst_ip):
                _oset(self, "_wire", seed)
                _oset(self, "_wire_key", key)
                return seed
        payload = self.payload
        opts = self.options + b"\x00" * ((-len(self.options)) % 4)
        header_len = TCP_HEADER_LEN + len(opts)
        header = bytearray(header_len)
        struct.pack_into(
            "!HHIIBBHHH",
            header,
            0,
            self.sport,
            self.dport,
            self.seq & 0xFFFFFFFF,
            self.ack & 0xFFFFFFFF,
            (header_len // 4) << 4,
            self.flags,
            self.window,
            0,
            self.urgent,
        )
        header[TCP_HEADER_LEN:] = opts
        cksum = checksum_from_sum(
            pseudo_sum(src_ip, dst_ip, PROTO_TCP)
            + header_len
            + len(payload)
            + raw_sum(header)
            + raw_sum(payload)
        )
        struct.pack_into("!H", header, 16, cksum)
        wire = bytes(header) + payload
        _oset(self, "_wire", wire)
        _oset(self, "_wire_key", key)
        return wire

    def _seed_checksum_ok(self, seed: bytes, src_ip: str, dst_ip: str) -> bool:
        """Does the parsed source image carry exactly the checksum we'd emit?

        Fast path: a correct ones-complement checksum makes the sum over the
        whole segment (checksum field included) fold to 0xFFFF, so one
        contiguous ``raw_sum`` suffices.  That test cannot tell 0x0000 from
        0xFFFF (they are congruent mod 0xFFFF), so those two stored values
        take the exact skip-the-field computation instead.
        """
        stored = seed[16] << 8 | seed[17]
        if stored != 0 and stored != 0xFFFF:
            total = pseudo_sum(src_ip, dst_ip, PROTO_TCP) + len(seed) + raw_sum(seed)
            return fold_sum(total) == 0xFFFF
        mv = memoryview(seed)
        computed = checksum_from_sum(
            pseudo_sum(src_ip, dst_ip, PROTO_TCP)
            + len(seed)
            + raw_sum(mv[:16])
            + raw_sum(mv[18:])
        )
        return computed == stored

    @staticmethod
    def _seedable(data: bytes) -> bool:
        """Structural test: would re-serializing the parse reproduce ``data``
        byte for byte (checksum aside, which is validated lazily)?  The
        reserved nibble must be clear and the data offset sane."""
        return data[12] & 0x0F == 0 and TCP_HEADER_LEN <= (data[12] >> 4) * 4 <= len(data)

    @classmethod
    def from_bytes(cls, data: bytes) -> "TCPSegment":
        if len(data) < TCP_HEADER_LEN:
            raise ValueError("truncated TCP header")
        sport, dport, seq, ack, off_bits, flags, window, _cksum, urgent = (
            struct.unpack_from("!HHIIBBHHH", data)
        )
        header_len = (off_bits >> 4) * 4
        # Built via object.__new__ rather than the constructor: parsing is
        # the hot path and skipping __init__'s call/kwarg overhead is worth
        # the duplication.
        seg = object.__new__(cls)
        _oset(seg, "sport", sport)
        _oset(seg, "dport", dport)
        _oset(seg, "seq", seq)
        _oset(seg, "ack", ack)
        _oset(seg, "flags", flags)
        _oset(seg, "window", window)
        _oset(seg, "urgent", urgent)
        _oset(seg, "payload", data[header_len:])
        _oset(seg, "options", data[TCP_HEADER_LEN:header_len])
        _oset(seg, "metadata", {})
        _oset(seg, "_wire", None)
        _oset(seg, "_wire_key", None)
        _oset(seg, "_seed", None)
        _oset(seg, "_seed_key", None)
        return seg

    def _copy_shared(self) -> "TCPSegment":
        """Structural copy sharing the (immutable) cached wire image."""
        new = object.__new__(TCPSegment)
        _oset(new, "sport", self.sport)
        _oset(new, "dport", self.dport)
        _oset(new, "seq", self.seq)
        _oset(new, "ack", self.ack)
        _oset(new, "flags", self.flags)
        _oset(new, "window", self.window)
        _oset(new, "urgent", self.urgent)
        _oset(new, "payload", self.payload)
        _oset(new, "options", self.options)
        _oset(new, "metadata", {})
        _oset(new, "_wire", self._wire)
        _oset(new, "_wire_key", self._wire_key)
        _oset(new, "_seed", self._seed)
        _oset(new, "_seed_key", self._seed_key)
        return new
