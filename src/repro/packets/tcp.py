"""TCP segment model with real flag semantics and checksums."""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from .addressing import ip_to_int
from .checksum import internet_checksum, pseudo_header

__all__ = [
    "TCPSegment",
    "FIN",
    "SYN",
    "RST",
    "PSH",
    "ACK",
    "URG",
    "TCP_HEADER_LEN",
]

FIN = 0x01
SYN = 0x02
RST = 0x04
PSH = 0x08
ACK = 0x10
URG = 0x20

_FLAG_NAMES = [("F", FIN), ("S", SYN), ("R", RST), ("P", PSH), ("A", ACK), ("U", URG)]

TCP_HEADER_LEN = 20
PROTO_TCP = 6


@dataclass
class TCPSegment:
    """A TCP segment; ``payload`` carries application bytes."""

    sport: int
    dport: int
    seq: int = 0
    ack: int = 0
    flags: int = 0
    window: int = 65535
    urgent: int = 0
    payload: bytes = b""
    options: bytes = b""
    metadata: dict = field(default_factory=dict, repr=False, compare=False)

    # -- flag helpers --------------------------------------------------------

    def has(self, mask: int) -> bool:
        """Return True if every flag bit in ``mask`` is set."""
        return self.flags & mask == mask

    @property
    def is_syn(self) -> bool:
        return self.has(SYN) and not self.has(ACK)

    @property
    def is_synack(self) -> bool:
        return self.has(SYN | ACK)

    @property
    def is_rst(self) -> bool:
        return self.has(RST)

    @property
    def is_fin(self) -> bool:
        return self.has(FIN)

    @property
    def is_ack_only(self) -> bool:
        return self.flags == ACK and not self.payload

    def flag_names(self) -> str:
        """Render flags as e.g. ``"SA"`` for SYN+ACK (nmap/tcpdump style)."""
        return "".join(name for name, bit in _FLAG_NAMES if self.flags & bit)

    # -- wire format ---------------------------------------------------------

    def header_len(self) -> int:
        pad = (-len(self.options)) % 4
        return TCP_HEADER_LEN + len(self.options) + pad

    def wire_length(self) -> int:
        """Length of ``to_bytes()`` without serializing."""
        return self.header_len() + len(self.payload)

    def to_bytes(self, src_ip: str, dst_ip: str) -> bytes:
        """Serialize with a valid checksum over the IPv4 pseudo-header."""
        opts = self.options + b"\x00" * ((-len(self.options)) % 4)
        data_offset = (TCP_HEADER_LEN + len(opts)) // 4
        header = struct.pack(
            "!HHIIBBHHH",
            self.sport,
            self.dport,
            self.seq & 0xFFFFFFFF,
            self.ack & 0xFFFFFFFF,
            data_offset << 4,
            self.flags,
            self.window,
            0,
            self.urgent,
        )
        segment = header + opts + self.payload
        pseudo = pseudo_header(
            ip_to_int(src_ip), ip_to_int(dst_ip), PROTO_TCP, len(segment)
        )
        cksum = internet_checksum(pseudo + segment)
        return segment[:16] + struct.pack("!H", cksum) + segment[18:]

    @classmethod
    def from_bytes(cls, data: bytes) -> "TCPSegment":
        if len(data) < TCP_HEADER_LEN:
            raise ValueError("truncated TCP header")
        sport, dport, seq, ack, off_bits, flags, window, _cksum, urgent = struct.unpack(
            "!HHIIBBHHH", data[:TCP_HEADER_LEN]
        )
        header_len = (off_bits >> 4) * 4
        options = data[TCP_HEADER_LEN:header_len]
        return cls(
            sport=sport,
            dport=dport,
            seq=seq,
            ack=ack,
            flags=flags,
            window=window,
            urgent=urgent,
            payload=data[header_len:],
            options=options,
        )
