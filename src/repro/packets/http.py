"""HTTP/1.1 request and response modelling.

The DDoS measurement method (paper Section 3.1, Method #3) and the overt
HTTP baseline both speak this; the censor's HTTP filter matches on the
serialized request line and Host header, exactly as the GFC does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["HTTPRequest", "HTTPResponse", "parse_http_payload"]

CRLF = "\r\n"


def _render_headers(headers: Dict[str, str]) -> str:
    return "".join(f"{key}: {value}{CRLF}" for key, value in headers.items())


def _parse_headers(lines: list[str]) -> Dict[str, str]:
    headers: Dict[str, str] = {}
    for line in lines:
        if not line:
            break
        key, _, value = line.partition(":")
        headers[key.strip()] = value.strip()
    return headers


@dataclass(slots=True)
class HTTPRequest:
    """An HTTP request; ``to_bytes`` yields the exact wire text.

    ``to_bytes`` is memoized; rebinding a field invalidates the cache, but
    mutating the ``headers`` dict in place does not — call
    :meth:`_invalidate_wire` afterwards (or rebind the dict).
    """

    method: str = "GET"
    path: str = "/"
    host: str = ""
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    version: str = "HTTP/1.1"
    _wire: Optional[bytes] = field(default=None, init=False, repr=False, compare=False)

    def __setattr__(self, name, value) -> None:
        object.__setattr__(self, name, value)
        object.__setattr__(self, "_wire", None)

    def _invalidate_wire(self) -> None:
        """Drop the memoized wire image after in-place header mutation."""
        object.__setattr__(self, "_wire", None)

    def to_bytes(self) -> bytes:
        wire = self._wire
        if wire is not None:
            return wire
        headers = dict(self.headers)
        if self.host and "Host" not in headers:
            headers = {"Host": self.host, **headers}
        if self.body and "Content-Length" not in headers:
            headers["Content-Length"] = str(len(self.body))
        text = (
            f"{self.method} {self.path} {self.version}{CRLF}"
            f"{_render_headers(headers)}{CRLF}"
        )
        wire = text.encode("latin-1") + self.body
        object.__setattr__(self, "_wire", wire)
        return wire

    @classmethod
    def from_bytes(cls, data: bytes) -> "HTTPRequest":
        head, _, body = data.partition(b"\r\n\r\n")
        lines = head.decode("latin-1", errors="replace").split(CRLF)
        try:
            method, path, version = lines[0].split(" ", 2)
        except ValueError:
            raise ValueError(f"malformed HTTP request line: {lines[0]!r}") from None
        headers = _parse_headers(lines[1:])
        return cls(
            method=method,
            path=path,
            host=headers.get("Host", ""),
            headers=headers,
            body=body,
            version=version,
        )

    @property
    def url(self) -> str:
        return f"http://{self.host}{self.path}"


@dataclass(slots=True)
class HTTPResponse:
    """An HTTP response.

    Memoization matches :class:`HTTPRequest`: rebinds invalidate, in-place
    ``headers`` mutation requires :meth:`_invalidate_wire`.
    """

    status: int = 200
    reason: str = "OK"
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    version: str = "HTTP/1.1"
    _wire: Optional[bytes] = field(default=None, init=False, repr=False, compare=False)

    def __setattr__(self, name, value) -> None:
        object.__setattr__(self, name, value)
        object.__setattr__(self, "_wire", None)

    def _invalidate_wire(self) -> None:
        """Drop the memoized wire image after in-place header mutation."""
        object.__setattr__(self, "_wire", None)

    def to_bytes(self) -> bytes:
        wire = self._wire
        if wire is not None:
            return wire
        headers = dict(self.headers)
        headers.setdefault("Content-Length", str(len(self.body)))
        text = (
            f"{self.version} {self.status} {self.reason}{CRLF}"
            f"{_render_headers(headers)}{CRLF}"
        )
        wire = text.encode("latin-1") + self.body
        object.__setattr__(self, "_wire", wire)
        return wire

    @classmethod
    def from_bytes(cls, data: bytes) -> "HTTPResponse":
        head, _, body = data.partition(b"\r\n\r\n")
        lines = head.decode("latin-1", errors="replace").split(CRLF)
        parts = lines[0].split(" ", 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/"):
            raise ValueError(f"malformed HTTP status line: {lines[0]!r}")
        reason = parts[2] if len(parts) == 3 else ""
        return cls(
            status=int(parts[1]),
            reason=reason,
            headers=_parse_headers(lines[1:]),
            body=body,
            version=parts[0],
        )

    @classmethod
    def block_page(cls, message: str = "This content is blocked") -> "HTTPResponse":
        """The censor's injected block page (403)."""
        body = f"<html><body><h1>403 Forbidden</h1><p>{message}</p></body></html>"
        return cls(
            status=403,
            reason="Forbidden",
            headers={"Content-Type": "text/html"},
            body=body.encode(),
        )


def parse_http_payload(data: bytes) -> Optional[object]:
    """Best-effort parse of a TCP payload as an HTTP request or response.

    Returns an ``HTTPRequest``, ``HTTPResponse``, or None when the payload
    is not HTTP — middleboxes use this to sniff application content without
    assuming well-known ports.
    """
    if data.startswith(b"HTTP/"):
        try:
            return HTTPResponse.from_bytes(data)
        except (ValueError, IndexError):
            return None
    first_word = data.split(b" ", 1)[0]
    if first_word in (b"GET", b"POST", b"HEAD", b"PUT", b"DELETE", b"OPTIONS"):
        try:
            return HTTPRequest.from_bytes(data)
        except (ValueError, IndexError):
            return None
    return None
