"""Flow identification: 5-tuples and direction-insensitive flow keys.

Both the censor's TCP reassembler and the surveillance system's metadata
store index traffic by flow, mirroring how Snort's stream preprocessor and
NetFlow-style collectors work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .ip import IPPacket, PROTO_ICMP, PROTO_TCP, PROTO_UDP

__all__ = ["FiveTuple", "flow_of", "canonical_flow"]


@dataclass(frozen=True, order=True)
class FiveTuple:
    """A directed flow identifier."""

    src: str
    sport: int
    dst: str
    dport: int
    protocol: int

    def reversed(self) -> "FiveTuple":
        """The same flow seen from the other direction."""
        return FiveTuple(self.dst, self.dport, self.src, self.sport, self.protocol)

    def canonical(self) -> "FiveTuple":
        """A direction-insensitive key: the lexicographically smaller side first."""
        forward = (self.src, self.sport)
        backward = (self.dst, self.dport)
        return self if forward <= backward else self.reversed()

    @property
    def proto_name(self) -> str:
        return {PROTO_TCP: "tcp", PROTO_UDP: "udp", PROTO_ICMP: "icmp"}.get(
            self.protocol, str(self.protocol)
        )

    def __str__(self) -> str:
        return (
            f"{self.proto_name} {self.src}:{self.sport} -> {self.dst}:{self.dport}"
        )


def flow_of(packet: IPPacket) -> Optional[FiveTuple]:
    """Extract the directed 5-tuple from a packet, or None for non-TCP/UDP."""
    if packet.tcp is not None:
        return FiveTuple(
            packet.src, packet.tcp.sport, packet.dst, packet.tcp.dport, PROTO_TCP
        )
    if packet.udp is not None:
        return FiveTuple(
            packet.src, packet.udp.sport, packet.dst, packet.udp.dport, PROTO_UDP
        )
    if packet.icmp is not None:
        return FiveTuple(packet.src, 0, packet.dst, 0, PROTO_ICMP)
    return None


def canonical_flow(packet: IPPacket) -> Optional[FiveTuple]:
    """Direction-insensitive flow key for a packet."""
    directed = flow_of(packet)
    return directed.canonical() if directed is not None else None
