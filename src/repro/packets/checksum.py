"""Internet checksum (RFC 1071) and pseudo-header helpers.

Both the censorship and surveillance reference systems match on real packet
bytes, so the packet layer computes genuine ones-complement checksums: a
middlebox (or a test) can verify that injected packets are well formed the
same way a real IDS preprocessor would.
"""

from __future__ import annotations

import struct

__all__ = ["internet_checksum", "pseudo_header", "verify_checksum"]


def internet_checksum(data: bytes) -> int:
    """Compute the 16-bit ones-complement checksum over ``data``.

    Odd-length input is zero-padded on the right, per RFC 1071.
    """
    if len(data) % 2:
        data += b"\x00"
    total = 0
    for (word,) in struct.iter_unpack("!H", data):
        total += word
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def pseudo_header(src_ip: int, dst_ip: int, protocol: int, length: int) -> bytes:
    """Build the IPv4 pseudo-header used by TCP/UDP checksums."""
    return struct.pack("!IIBBH", src_ip, dst_ip, 0, protocol, length)


def verify_checksum(data: bytes) -> bool:
    """Return True if ``data`` (checksum field included) sums to zero."""
    return internet_checksum(data) == 0
