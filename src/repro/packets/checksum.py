"""Internet checksum (RFC 1071) and pseudo-header helpers.

Both the censorship and surveillance reference systems match on real packet
bytes, so the packet layer computes genuine ones-complement checksums: a
middlebox (or a test) can verify that injected packets are well formed the
same way a real IDS preprocessor would.

The summation is vectorized rather than a per-word Python loop:

- Small buffers (under :data:`_ARRAY_CUTOFF` bytes — i.e. most packets) are
  summed as a native ``array('H')`` in host byte order; the folded result is
  byte-swapped back into network order.  Ones-complement sums commute with
  byte swapping (RFC 1071 §2(B): ``swap(x) ≡ 256·x (mod 0xFFFF)``), so the
  swapped sum is exact, not approximate.
- Large buffers are read with a single ``int.from_bytes`` and folded by
  repeated halving (each split point a multiple of 16 bits, so congruence
  mod 0xFFFF is preserved), which is O(n) big-int work in C.

Odd-length input folds its trailing byte arithmetically — the buffer is
never copied to append a pad byte.

The unfolded accumulator (:func:`raw_sum`) is public so callers can combine
partial sums — a cached pseudo-header, a header with its checksum field
skipped, a payload — and fold exactly once (:func:`checksum_from_sum`).
Every partial range must start at an even offset within the checksummed
region, or the 16-bit word alignment breaks.
"""

from __future__ import annotations

import struct
import sys
from array import array

from .addressing import ip_to_int

__all__ = [
    "checksum_from_sum",
    "fold_sum",
    "internet_checksum",
    "pseudo_header",
    "pseudo_sum",
    "raw_sum",
    "verify_checksum",
]

_LITTLE_ENDIAN = sys.byteorder == "little"

#: Below this size the ``array('H')`` path wins; above it ``int.from_bytes``
#: with halving folds does (measured crossover is ~150-300 B on CPython).
_ARRAY_CUTOFF = 256


def fold_sum(total: int) -> int:
    """Fold an unfolded accumulator to a 16-bit ones-complement sum.

    Splits at a multiple of 16 bits near the midpoint each round, so huge
    big-int accumulators collapse in O(total bits) work instead of the
    O(bits^2) a fixed 16-bit shift would cost.
    """
    while total > 0xFFFF:
        half = ((total.bit_length() + 31) // 32) * 16
        total = (total >> half) + (total & ((1 << half) - 1))
    return total


def checksum_from_sum(total: int) -> int:
    """Final checksum for an accumulated :func:`raw_sum` total."""
    return ~fold_sum(total) & 0xFFFF


def raw_sum(data) -> int:
    """Unfolded accumulator congruent (mod 0xFFFF) to the big-endian 16-bit
    word sum of ``data`` (odd length zero-padded on the right, per RFC 1071).

    Accepts ``bytes``, ``bytearray``, or ``memoryview``.  Results from
    even-offset sub-ranges of a buffer may be added together and folded once.
    """
    length = len(data)
    if length >= _ARRAY_CUTOFF:
        if length & 1:
            mv = memoryview(data)
            return int.from_bytes(mv[: length - 1], "big") + (data[-1] << 8)
        return int.from_bytes(data, "big")
    words = array("H")
    if length & 1:
        words.frombytes(memoryview(data)[: length - 1])
        total = sum(words) + (data[-1] if _LITTLE_ENDIAN else data[-1] << 8)
    else:
        words.frombytes(data)
        total = sum(words)
    if _LITTLE_ENDIAN:
        total = fold_sum(total)
        return ((total & 0xFF) << 8) | (total >> 8)
    return total


def internet_checksum(data) -> int:
    """Compute the 16-bit ones-complement checksum over ``data``.

    Odd-length input is zero-padded on the right, per RFC 1071 (handled
    arithmetically; the buffer is not copied).
    """
    return ~fold_sum(raw_sum(data)) & 0xFFFF


def pseudo_header(src_ip: int, dst_ip: int, protocol: int, length: int) -> bytes:
    """Build the IPv4 pseudo-header used by TCP/UDP checksums."""
    return struct.pack("!IIBBH", src_ip, dst_ip, 0, protocol, length)


#: (src_ip, dst_ip, protocol) -> partial sum of the pseudo-header minus its
#: length field.  Conversations reuse the same address pair for every
#: segment, so the pseudo-header contribution is computed once per flow
#: direction instead of once per packet.
_PSEUDO_SUM_CACHE: dict = {}
_PSEUDO_SUM_CACHE_MAX = 65536


def pseudo_sum(src_ip: str, dst_ip: str, protocol: int) -> int:
    """Cached pseudo-header partial sum (everything except the length field).

    Add the 16-bit segment length and the transport bytes' :func:`raw_sum`,
    then finish with :func:`checksum_from_sum`.
    """
    key = (src_ip, dst_ip, protocol)
    total = _PSEUDO_SUM_CACHE.get(key)
    if total is None:
        src = ip_to_int(src_ip)
        dst = ip_to_int(dst_ip)
        total = (src >> 16) + (src & 0xFFFF) + (dst >> 16) + (dst & 0xFFFF) + protocol
        if len(_PSEUDO_SUM_CACHE) >= _PSEUDO_SUM_CACHE_MAX:
            _PSEUDO_SUM_CACHE.clear()
        _PSEUDO_SUM_CACHE[key] = total
    return total


def verify_checksum(data) -> bool:
    """Return True if ``data`` (checksum field included) sums to zero."""
    return internet_checksum(data) == 0
