"""Minimal TLS records: ClientHello with SNI, ServerHello, fatal alerts.

Modern HTTPS censorship keys on the plaintext SNI field of the ClientHello
— the GFC resets TLS flows whose SNI names a blocked domain.  This module
builds wire-plausible TLS handshake records (correct record/handshake
framing, real SNI extension layout) so byte-matching rule engines see the
hostname exactly where a real IDS would.

Only the fields censorship measurement touches are modelled; there is no
cryptography here.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Optional

__all__ = [
    "ClientHello",
    "ServerHello",
    "tls_alert",
    "sni_of",
    "TLS_HANDSHAKE",
    "TLS_ALERT",
]

TLS_HANDSHAKE = 0x16
TLS_ALERT = 0x15
TLS_VERSION_1_2 = b"\x03\x03"
HANDSHAKE_CLIENT_HELLO = 0x01
HANDSHAKE_SERVER_HELLO = 0x02
EXT_SERVER_NAME = 0x0000


def _record(content_type: int, body: bytes) -> bytes:
    return bytes([content_type]) + TLS_VERSION_1_2 + struct.pack("!H", len(body)) + body


def _handshake(handshake_type: int, body: bytes) -> bytes:
    return bytes([handshake_type]) + len(body).to_bytes(3, "big") + body


@dataclass(slots=True)
class ClientHello:
    """A ClientHello with an SNI extension.

    ``to_bytes`` is memoized; rebinding a field invalidates the cache.
    """

    server_name: str
    random: bytes = b"\x00" * 32
    session_id: bytes = b""
    cipher_suites: bytes = b"\x13\x01\x13\x02\xc0\x2f"  # plausible modern set
    _wire: Optional[bytes] = field(default=None, init=False, repr=False, compare=False)

    def __setattr__(self, name, value) -> None:
        object.__setattr__(self, name, value)
        object.__setattr__(self, "_wire", None)

    def to_bytes(self) -> bytes:
        wire = self._wire
        if wire is not None:
            return wire
        name = self.server_name.encode("ascii")
        # SNI extension: list(type=host_name(0), length-prefixed name).
        sni_entry = b"\x00" + struct.pack("!H", len(name)) + name
        sni_list = struct.pack("!H", len(sni_entry)) + sni_entry
        extension = struct.pack("!HH", EXT_SERVER_NAME, len(sni_list)) + sni_list
        extensions = struct.pack("!H", len(extension)) + extension
        body = (
            TLS_VERSION_1_2
            + self.random[:32].ljust(32, b"\x00")
            + bytes([len(self.session_id)]) + self.session_id
            + struct.pack("!H", len(self.cipher_suites)) + self.cipher_suites
            + b"\x01\x00"  # compression methods: null
            + extensions
        )
        wire = _record(TLS_HANDSHAKE, _handshake(HANDSHAKE_CLIENT_HELLO, body))
        object.__setattr__(self, "_wire", wire)
        return wire

    @classmethod
    def from_bytes(cls, data: bytes) -> "ClientHello":
        name = sni_of(data)
        if name is None:
            raise ValueError("no SNI extension found")
        return cls(server_name=name)


@dataclass(slots=True)
class ServerHello:
    """A minimal ServerHello record (enough to signal 'handshake began').

    ``to_bytes`` is memoized; rebinding a field invalidates the cache.
    """

    random: bytes = b"\x01" * 32
    _wire: Optional[bytes] = field(default=None, init=False, repr=False, compare=False)

    def __setattr__(self, name, value) -> None:
        object.__setattr__(self, name, value)
        object.__setattr__(self, "_wire", None)

    def to_bytes(self) -> bytes:
        wire = self._wire
        if wire is not None:
            return wire
        body = (
            TLS_VERSION_1_2
            + self.random[:32].ljust(32, b"\x00")
            + b"\x00"          # empty session id
            + b"\x13\x01"      # chosen cipher
            + b"\x00"          # null compression
        )
        wire = _record(TLS_HANDSHAKE, _handshake(HANDSHAKE_SERVER_HELLO, body))
        object.__setattr__(self, "_wire", wire)
        return wire

    @classmethod
    def is_server_hello(cls, data: bytes) -> bool:
        return (
            len(data) >= 6
            and data[0] == TLS_HANDSHAKE
            and data[5] == HANDSHAKE_SERVER_HELLO
        )


def tls_alert(description: int = 40) -> bytes:
    """A fatal TLS alert record (default: handshake_failure)."""
    return _record(TLS_ALERT, bytes([2, description]))


def sni_of(data: bytes) -> Optional[str]:
    """Extract the SNI host name from a ClientHello record, or None.

    Tolerant parser: walks the record/handshake framing and the extension
    list the way a middlebox does.
    """
    try:
        if data[0] != TLS_HANDSHAKE or data[5] != HANDSHAKE_CLIENT_HELLO:
            return None
        offset = 9  # record header (5) + handshake header (4)
        offset += 2 + 32  # version + random
        session_len = data[offset]
        offset += 1 + session_len
        (cipher_len,) = struct.unpack("!H", data[offset : offset + 2])
        offset += 2 + cipher_len
        compression_len = data[offset]
        offset += 1 + compression_len
        (extensions_len,) = struct.unpack("!H", data[offset : offset + 2])
        offset += 2
        end = offset + extensions_len
        while offset + 4 <= end:
            ext_type, ext_len = struct.unpack("!HH", data[offset : offset + 4])
            offset += 4
            if ext_type == EXT_SERVER_NAME:
                # list length (2), entry type (1), name length (2), name.
                (name_len,) = struct.unpack("!H", data[offset + 3 : offset + 5])
                name = data[offset + 5 : offset + 5 + name_len]
                return name.decode("ascii")
            offset += ext_len
        return None
    except (IndexError, struct.error, UnicodeDecodeError):
        return None
