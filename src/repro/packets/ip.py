"""IPv4 packet model.

``IPPacket`` is the unit that traverses the simulated network.  Its payload
is a transport-layer object (``TCPSegment``, ``UDPDatagram``,
``ICMPMessage``) or raw bytes; ``to_bytes``/``from_bytes`` round-trip the
real wire format so rule engines can match on bytes when they want to.

The wire path is zero-recompute (docs/ARCHITECTURE.md, "Wire-cache
invariants"):

- ``to_bytes()`` memoizes the full wire image; any field write invalidates
  it (dirty tracking in ``__setattr__``).
- The packet's cache is tied to the transport's by *object identity*: the
  memoized image is reused only while the transport returns the exact
  ``bytes`` object that was embedded in it, so mutating the transport (which
  invalidates the transport's own cache) transparently invalidates the
  packet's image too.
- ``from_bytes()`` seeds both layers with the parsed source bytes, so a
  parse→forward→capture round-trip serializes zero times.  Seeds are
  promoted to the cache lazily, on first ``to_bytes()``, after verifying
  the source checksum matches what serialization would emit — corrupted
  input parses fine but never masquerades as our own serialization.
- ``copy()`` is a structural copy that shares the cached wire image
  (immutable ``bytes``), instead of the old ``to_bytes``/``from_bytes``
  round-trip.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Optional, Union

from .addressing import int_to_ip_cached, ip_to_int_cached
from .checksum import checksum_from_sum, fold_sum, raw_sum

__all__ = ["IPPacket", "PROTO_ICMP", "PROTO_TCP", "PROTO_UDP", "IP_HEADER_LEN"]

PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17

IP_HEADER_LEN = 20
DEFAULT_TTL = 64

_oset = object.__setattr__

# The transport classes are imported lazily (ip.py loads before them in the
# package) but cached after the first lookup: re-running ``from .tcp import
# TCPSegment`` on every ``packet.tcp`` access dominated the rule-engine
# profile before this cache existed.
_TRANSPORT_CLASSES = None


def _transport_classes():
    global _TRANSPORT_CLASSES
    if _TRANSPORT_CLASSES is None:
        from .icmp import ICMPMessage
        from .tcp import TCPSegment
        from .udp import UDPDatagram

        _TRANSPORT_CLASSES = (TCPSegment, UDPDatagram, ICMPMessage)
    return _TRANSPORT_CLASSES


@dataclass(init=False, slots=True)
class IPPacket:
    """An IPv4 packet with a typed transport payload.

    The payload may be a transport object or raw ``bytes``.  When the payload
    is an object, ``protocol`` is derived from its class unless explicitly
    set; when it is bytes, ``protocol`` must be given.
    """

    src: str
    dst: str
    payload: Union["object", bytes] = b""
    ttl: int = DEFAULT_TTL
    protocol: Optional[int] = None
    ident: int = 0
    tos: int = 0
    flags: int = 2  # DF set, like most modern stacks
    frag_offset: int = 0
    metadata: dict = field(default_factory=dict, repr=False, compare=False)
    #: Validated full wire image, valid while the transport still serializes
    #: to the exact ``_wire_body`` object it was built from.
    _wire: Optional[bytes] = field(default=None, init=False, repr=False, compare=False)
    _wire_body: Optional[bytes] = field(
        default=None, init=False, repr=False, compare=False
    )
    #: Parse-seeded wire candidate (header checksum validated lazily).
    _seed: Optional[bytes] = field(default=None, init=False, repr=False, compare=False)
    _seed_body: Optional[bytes] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __init__(
        self,
        src: str,
        dst: str,
        payload: Union["object", bytes] = b"",
        ttl: int = DEFAULT_TTL,
        protocol: Optional[int] = None,
        ident: int = 0,
        tos: int = 0,
        flags: int = 2,
        frag_offset: int = 0,
        metadata: Optional[dict] = None,
    ) -> None:
        _oset(self, "src", src)
        _oset(self, "dst", dst)
        _oset(self, "payload", payload)
        _oset(self, "ttl", ttl)
        _oset(self, "ident", ident)
        _oset(self, "tos", tos)
        _oset(self, "flags", flags)
        _oset(self, "frag_offset", frag_offset)
        _oset(self, "metadata", {} if metadata is None else metadata)
        if protocol is None:
            protocol = self._infer_protocol()
        _oset(self, "protocol", protocol)
        _oset(self, "_wire", None)
        _oset(self, "_wire_body", None)
        _oset(self, "_seed", None)
        _oset(self, "_seed_body", None)

    def __setattr__(self, name, value) -> None:
        # Dirty tracking: any field write invalidates the memoized wire
        # image and any parse-seeded candidate.  (Transport mutation is
        # covered separately, by the body identity check in ``to_bytes``.)
        _oset(self, name, value)
        _oset(self, "_wire", None)
        _oset(self, "_seed", None)

    def _infer_protocol(self) -> int:
        TCPSegment, UDPDatagram, ICMPMessage = _transport_classes()

        if isinstance(self.payload, TCPSegment):
            return PROTO_TCP
        if isinstance(self.payload, UDPDatagram):
            return PROTO_UDP
        if isinstance(self.payload, ICMPMessage):
            return PROTO_ICMP
        if isinstance(self.payload, (bytes, bytearray)):
            raise ValueError("protocol must be set when payload is raw bytes")
        raise TypeError(f"unsupported payload type: {type(self.payload)!r}")

    # -- wire format -------------------------------------------------------

    def payload_bytes(self) -> bytes:
        """Serialize the payload, computing transport checksums.

        Raw ``bytes`` payloads are returned as-is (they are immutable), so
        repeated calls yield the identical object — the property the wire
        cache's identity check relies on.
        """
        payload = self.payload
        if type(payload) is bytes:
            return payload
        if isinstance(payload, bytearray):
            return bytes(payload)
        return payload.to_bytes(self.src, self.dst)

    def wire_length(self) -> int:
        """Length of ``to_bytes()`` without materializing (or checksumming)
        the wire bytes — the cheap path for byte-budget accounting."""
        if isinstance(self.payload, (bytes, bytearray)):
            return IP_HEADER_LEN + len(self.payload)
        return IP_HEADER_LEN + self.payload.wire_length()

    def to_bytes(self) -> bytes:
        """Serialize to the IPv4 wire format with a valid header checksum.

        Memoized: the first call pays for serialization, later calls return
        the cached image until a field write (here or in the transport)
        invalidates it.
        """
        body = self.payload_bytes()
        wire = self._wire
        if wire is not None and body is self._wire_body:
            return wire
        seed = self._seed
        if seed is not None:
            _oset(self, "_seed", None)
            if body is self._seed_body and self._seed_checksum_ok(seed):
                _oset(self, "_wire", seed)
                _oset(self, "_wire_body", body)
                return seed
        total_len = IP_HEADER_LEN + len(body)
        header = bytearray(IP_HEADER_LEN)
        struct.pack_into(
            "!BBHHHBBHII",
            header,
            0,
            (4 << 4) | (IP_HEADER_LEN // 4),
            self.tos,
            total_len,
            self.ident,
            (self.flags << 13) | self.frag_offset,
            self.ttl,
            self.protocol,
            0,
            ip_to_int_cached(self.src),
            ip_to_int_cached(self.dst),
        )
        struct.pack_into("!H", header, 10, checksum_from_sum(raw_sum(header)))
        wire = bytes(header) + body
        _oset(self, "_wire", wire)
        _oset(self, "_wire_body", body)
        return wire

    def _seed_checksum_ok(self, seed: bytes) -> bool:
        # Fast path as in TCPSegment._seed_checksum_ok; 0x0000/0xFFFF stored
        # values are congruent and need the exact skip-the-field check.
        stored = seed[10] << 8 | seed[11]
        mv = memoryview(seed)
        if stored != 0 and stored != 0xFFFF:
            return fold_sum(raw_sum(mv[:IP_HEADER_LEN])) == 0xFFFF
        computed = checksum_from_sum(raw_sum(mv[:10]) + raw_sum(mv[12:IP_HEADER_LEN]))
        return computed == stored

    @classmethod
    def from_bytes(cls, data: bytes) -> "IPPacket":
        """Parse wire bytes into an ``IPPacket`` with a typed payload.

        When the source bytes are byte-faithfully re-serializable (20-byte
        header, consistent lengths), they seed the wire caches of both the
        packet and its transport payload, so the parsed packet serializes
        zero times until mutated.
        """
        if len(data) < IP_HEADER_LEN:
            raise ValueError("truncated IPv4 header")
        (
            ver_ihl,
            tos,
            total_len,
            ident,
            flags_frag,
            ttl,
            protocol,
            _cksum,
            src_i,
            dst_i,
        ) = struct.unpack_from("!BBHHHBBHII", data)
        if ver_ihl >> 4 != 4:
            raise ValueError("not an IPv4 packet")
        ihl = (ver_ihl & 0xF) * 4
        body = data[ihl:total_len]
        payload: Union[object, bytes]
        TCPSegment, UDPDatagram, ICMPMessage = _transport_classes()

        if protocol == PROTO_TCP:
            payload = TCPSegment.from_bytes(body)
        elif protocol == PROTO_UDP:
            payload = UDPDatagram.from_bytes(body)
        elif protocol == PROTO_ICMP:
            payload = ICMPMessage.from_bytes(body)
        else:
            payload = body
        src = int_to_ip_cached(src_i)
        dst = int_to_ip_cached(dst_i)
        # object.__new__ fast path; see TCPSegment.from_bytes.
        packet = object.__new__(cls)
        _oset(packet, "src", src)
        _oset(packet, "dst", dst)
        _oset(packet, "payload", payload)
        _oset(packet, "ttl", ttl)
        _oset(packet, "protocol", protocol)
        _oset(packet, "ident", ident)
        _oset(packet, "tos", tos)
        _oset(packet, "flags", flags_frag >> 13)
        _oset(packet, "frag_offset", flags_frag & 0x1FFF)
        _oset(packet, "metadata", {})
        _oset(packet, "_wire", None)
        _oset(packet, "_wire_body", None)
        _oset(packet, "_seed", None)
        _oset(packet, "_seed_body", None)
        # Seed the wire caches with the source image (validated lazily).
        if (
            ihl == IP_HEADER_LEN
            and IP_HEADER_LEN <= total_len <= len(data)
            and isinstance(body, bytes)
        ):
            if payload is body:
                seedable = True  # raw payload is emitted verbatim
            elif payload._seedable(body):
                seedable = True
                _oset(payload, "_seed", body)
                if protocol != PROTO_ICMP:
                    _oset(payload, "_seed_key", (src, dst))
            else:
                seedable = False
            if seedable:
                if total_len == len(data) and type(data) is bytes:
                    wire = data  # the common case: no trailing slack to trim
                else:
                    wire = bytes(data[:total_len])
                _oset(packet, "_seed", wire)
                _oset(packet, "_seed_body", body)
        return packet

    # -- convenience -------------------------------------------------------

    @property
    def tcp(self):
        """The TCP payload, or None."""
        return self.payload if isinstance(self.payload, _transport_classes()[0]) else None

    @property
    def udp(self):
        """The UDP payload, or None."""
        return self.payload if isinstance(self.payload, _transport_classes()[1]) else None

    @property
    def icmp(self):
        """The ICMP payload, or None."""
        return self.payload if isinstance(self.payload, _transport_classes()[2]) else None

    def copy(self) -> "IPPacket":
        """Structural copy sharing the cached wire image.

        Transport payloads are copied as objects (so in-place mutation of
        the copy — TTL decrements, header rewrites — never leaks into the
        original), but the immutable cached ``bytes`` are shared, so copies
        serialize for free.  Matching the old parse-based copy, ``metadata``
        starts fresh on both the packet and its transport.
        """
        payload = self.payload
        if not isinstance(payload, (bytes, bytearray)):
            payload = payload._copy_shared()
        elif isinstance(payload, bytearray):
            payload = bytes(payload)
        new = object.__new__(IPPacket)
        _oset(new, "src", self.src)
        _oset(new, "dst", self.dst)
        _oset(new, "payload", payload)
        _oset(new, "ttl", self.ttl)
        _oset(new, "protocol", self.protocol)
        _oset(new, "ident", self.ident)
        _oset(new, "tos", self.tos)
        _oset(new, "flags", self.flags)
        _oset(new, "frag_offset", self.frag_offset)
        _oset(new, "metadata", {})
        _oset(new, "_wire", self._wire)
        _oset(new, "_wire_body", self._wire_body)
        _oset(new, "_seed", self._seed)
        _oset(new, "_seed_body", self._seed_body)
        return new

    def summary(self) -> str:
        """One-line human-readable description, for logs and debugging."""
        proto = {PROTO_TCP: "TCP", PROTO_UDP: "UDP", PROTO_ICMP: "ICMP"}.get(
            self.protocol, str(self.protocol)
        )
        detail = ""
        if self.tcp is not None:
            detail = f" {self.tcp.sport}->{self.tcp.dport} [{self.tcp.flag_names()}]"
        elif self.udp is not None:
            detail = f" {self.udp.sport}->{self.udp.dport}"
        return f"IP {self.src} -> {self.dst} {proto}{detail} ttl={self.ttl}"
