"""IPv4 packet model.

``IPPacket`` is the unit that traverses the simulated network.  Its payload
is a transport-layer object (``TCPSegment``, ``UDPDatagram``,
``ICMPMessage``) or raw bytes; ``to_bytes``/``from_bytes`` round-trip the
real wire format so rule engines can match on bytes when they want to.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Optional, Union

from .addressing import int_to_ip, ip_to_int
from .checksum import internet_checksum

__all__ = ["IPPacket", "PROTO_ICMP", "PROTO_TCP", "PROTO_UDP", "IP_HEADER_LEN"]

PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17

IP_HEADER_LEN = 20
DEFAULT_TTL = 64

# The transport classes are imported lazily (ip.py loads before them in the
# package) but cached after the first lookup: re-running ``from .tcp import
# TCPSegment`` on every ``packet.tcp`` access dominated the rule-engine
# profile before this cache existed.
_TRANSPORT_CLASSES = None


def _transport_classes():
    global _TRANSPORT_CLASSES
    if _TRANSPORT_CLASSES is None:
        from .icmp import ICMPMessage
        from .tcp import TCPSegment
        from .udp import UDPDatagram

        _TRANSPORT_CLASSES = (TCPSegment, UDPDatagram, ICMPMessage)
    return _TRANSPORT_CLASSES


@dataclass
class IPPacket:
    """An IPv4 packet with a typed transport payload.

    The payload may be a transport object or raw ``bytes``.  When the payload
    is an object, ``protocol`` is derived from its class unless explicitly
    set; when it is bytes, ``protocol`` must be given.
    """

    src: str
    dst: str
    payload: Union["object", bytes] = b""
    ttl: int = DEFAULT_TTL
    protocol: Optional[int] = None
    ident: int = 0
    tos: int = 0
    flags: int = 2  # DF set, like most modern stacks
    frag_offset: int = 0
    metadata: dict = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.protocol is None:
            self.protocol = self._infer_protocol()

    def _infer_protocol(self) -> int:
        TCPSegment, UDPDatagram, ICMPMessage = _transport_classes()

        if isinstance(self.payload, TCPSegment):
            return PROTO_TCP
        if isinstance(self.payload, UDPDatagram):
            return PROTO_UDP
        if isinstance(self.payload, ICMPMessage):
            return PROTO_ICMP
        if isinstance(self.payload, (bytes, bytearray)):
            raise ValueError("protocol must be set when payload is raw bytes")
        raise TypeError(f"unsupported payload type: {type(self.payload)!r}")

    # -- wire format -------------------------------------------------------

    def payload_bytes(self) -> bytes:
        """Serialize the payload, computing transport checksums."""
        if isinstance(self.payload, (bytes, bytearray)):
            return bytes(self.payload)
        return self.payload.to_bytes(self.src, self.dst)

    def wire_length(self) -> int:
        """Length of ``to_bytes()`` without materializing (or checksumming)
        the wire bytes — the cheap path for byte-budget accounting."""
        if isinstance(self.payload, (bytes, bytearray)):
            return IP_HEADER_LEN + len(self.payload)
        return IP_HEADER_LEN + self.payload.wire_length()

    def to_bytes(self) -> bytes:
        """Serialize to the IPv4 wire format with a valid header checksum."""
        body = self.payload_bytes()
        total_len = IP_HEADER_LEN + len(body)
        ver_ihl = (4 << 4) | (IP_HEADER_LEN // 4)
        flags_frag = (self.flags << 13) | self.frag_offset
        header = struct.pack(
            "!BBHHHBBHII",
            ver_ihl,
            self.tos,
            total_len,
            self.ident,
            flags_frag,
            self.ttl,
            self.protocol,
            0,
            ip_to_int(self.src),
            ip_to_int(self.dst),
        )
        cksum = internet_checksum(header)
        header = header[:10] + struct.pack("!H", cksum) + header[12:]
        return header + body

    @classmethod
    def from_bytes(cls, data: bytes) -> "IPPacket":
        """Parse wire bytes into an ``IPPacket`` with a typed payload."""
        if len(data) < IP_HEADER_LEN:
            raise ValueError("truncated IPv4 header")
        (
            ver_ihl,
            tos,
            total_len,
            ident,
            flags_frag,
            ttl,
            protocol,
            _cksum,
            src_i,
            dst_i,
        ) = struct.unpack("!BBHHHBBHII", data[:IP_HEADER_LEN])
        if ver_ihl >> 4 != 4:
            raise ValueError("not an IPv4 packet")
        ihl = (ver_ihl & 0xF) * 4
        body = data[ihl:total_len]
        payload: Union[object, bytes]
        TCPSegment, UDPDatagram, ICMPMessage = _transport_classes()

        if protocol == PROTO_TCP:
            payload = TCPSegment.from_bytes(body)
        elif protocol == PROTO_UDP:
            payload = UDPDatagram.from_bytes(body)
        elif protocol == PROTO_ICMP:
            payload = ICMPMessage.from_bytes(body)
        else:
            payload = body
        return cls(
            src=int_to_ip(src_i),
            dst=int_to_ip(dst_i),
            payload=payload,
            ttl=ttl,
            protocol=protocol,
            ident=ident,
            tos=tos,
            flags=flags_frag >> 13,
            frag_offset=flags_frag & 0x1FFF,
        )

    # -- convenience -------------------------------------------------------

    @property
    def tcp(self):
        """The TCP payload, or None."""
        return self.payload if isinstance(self.payload, _transport_classes()[0]) else None

    @property
    def udp(self):
        """The UDP payload, or None."""
        return self.payload if isinstance(self.payload, _transport_classes()[1]) else None

    @property
    def icmp(self):
        """The ICMP payload, or None."""
        return self.payload if isinstance(self.payload, _transport_classes()[2]) else None

    def copy(self) -> "IPPacket":
        """Deep-ish copy: payload objects are re-parsed from wire bytes."""
        return IPPacket.from_bytes(self.to_bytes())

    def summary(self) -> str:
        """One-line human-readable description, for logs and debugging."""
        proto = {PROTO_TCP: "TCP", PROTO_UDP: "UDP", PROTO_ICMP: "ICMP"}.get(
            self.protocol, str(self.protocol)
        )
        detail = ""
        if self.tcp is not None:
            detail = f" {self.tcp.sport}->{self.tcp.dport} [{self.tcp.flag_names()}]"
        elif self.udp is not None:
            detail = f" {self.udp.sport}->{self.udp.dport}"
        return f"IP {self.src} -> {self.dst} {proto}{detail} ttl={self.ttl}"
