"""IPv4 address helpers used across the packet layer and the simulator.

Addresses travel through the library as plain dotted-quad strings (what a
user types) and are packed to 32-bit integers only at serialization time.
"""

from __future__ import annotations

__all__ = [
    "ip_to_int",
    "ip_to_int_cached",
    "int_to_ip",
    "int_to_ip_cached",
    "parse_cidr",
    "compile_network",
    "in_network",
    "network_of",
    "same_prefix",
    "hosts_of",
    "is_valid_ip",
]


def ip_to_int(addr: str) -> int:
    """Convert a dotted-quad IPv4 string to a 32-bit integer."""
    parts = addr.split(".")
    if len(parts) != 4:
        raise ValueError(f"invalid IPv4 address: {addr!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"invalid IPv4 octet in {addr!r}")
        value = (value << 8) | octet
    return value


def int_to_ip(value: int) -> str:
    """Convert a 32-bit integer to a dotted-quad IPv4 string."""
    if not 0 <= value <= 0xFFFFFFFF:
        raise ValueError(f"IPv4 integer out of range: {value}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


# Simulations re-send the same handful of endpoint addresses millions of
# times; memoizing the string→int conversion takes it off the per-packet
# hot path.  The cap only guards against pathological address churn.
_IP_INT_CACHE: dict = {}
_IP_INT_CACHE_MAX = 1 << 16


def ip_to_int_cached(addr: str) -> int:
    """``ip_to_int`` with memoization for hot-path callers."""
    value = _IP_INT_CACHE.get(addr)
    if value is None:
        value = ip_to_int(addr)
        if len(_IP_INT_CACHE) >= _IP_INT_CACHE_MAX:
            _IP_INT_CACHE.clear()
        _IP_INT_CACHE[addr] = value
    return value


# The reverse direction runs once per parsed packet (twice, in fact: src
# and dst), against the same small endpoint set, so it gets the same memo
# treatment as ``ip_to_int_cached``.
_INT_IP_CACHE: dict = {}


def int_to_ip_cached(value: int) -> str:
    """``int_to_ip`` with memoization for hot-path callers."""
    addr = _INT_IP_CACHE.get(value)
    if addr is None:
        addr = int_to_ip(value)
        if len(_INT_IP_CACHE) >= _IP_INT_CACHE_MAX:
            _INT_IP_CACHE.clear()
        _INT_IP_CACHE[value] = addr
    return addr


def is_valid_ip(addr: str) -> bool:
    """Return True if ``addr`` parses as a dotted-quad IPv4 address."""
    try:
        ip_to_int(addr)
    except (ValueError, AttributeError):
        return False
    return True


def parse_cidr(cidr: str) -> tuple[int, int]:
    """Parse ``a.b.c.d/len`` into (network_int, prefix_len)."""
    try:
        base, prefix_text = cidr.split("/")
    except ValueError:
        raise ValueError(f"invalid CIDR (missing '/'): {cidr!r}") from None
    prefix = int(prefix_text)
    if not 0 <= prefix <= 32:
        raise ValueError(f"invalid prefix length in {cidr!r}")
    mask = 0xFFFFFFFF << (32 - prefix) & 0xFFFFFFFF if prefix else 0
    return ip_to_int(base) & mask, prefix


def compile_network(entry: str) -> tuple[int, int]:
    """Compile an IP or CIDR string to a ``(network_int, mask)`` pair.

    An address ``a`` is inside iff ``ip_to_int(a) & mask == network_int``;
    a bare host address compiles to a /32.  This is the precomputed form
    the rule matchers test against, replacing per-match string parsing.
    """
    if "/" in entry:
        network, prefix = parse_cidr(entry)
        mask = 0xFFFFFFFF << (32 - prefix) & 0xFFFFFFFF if prefix else 0
        return network, mask
    return ip_to_int(entry), 0xFFFFFFFF


def in_network(addr: str, cidr: str) -> bool:
    """Return True if ``addr`` falls inside the ``cidr`` network."""
    network, prefix = parse_cidr(cidr)
    mask = 0xFFFFFFFF << (32 - prefix) & 0xFFFFFFFF if prefix else 0
    return ip_to_int(addr) & mask == network


def network_of(addr: str, prefix: int) -> str:
    """Return the CIDR network containing ``addr`` at ``prefix`` length."""
    mask = 0xFFFFFFFF << (32 - prefix) & 0xFFFFFFFF if prefix else 0
    return f"{int_to_ip(ip_to_int(addr) & mask)}/{prefix}"


def same_prefix(a: str, b: str, prefix: int) -> bool:
    """Return True if ``a`` and ``b`` share the same ``prefix``-bit network."""
    mask = 0xFFFFFFFF << (32 - prefix) & 0xFFFFFFFF if prefix else 0
    return ip_to_int(a) & mask == ip_to_int(b) & mask


def hosts_of(cidr: str, count: int, start: int = 1):
    """Yield up to ``count`` host addresses from ``cidr``, starting at offset.

    Offsets are relative to the network address, so ``start=1`` skips the
    network address itself.
    """
    network, prefix = parse_cidr(cidr)
    size = 1 << (32 - prefix)
    if start + count > size:
        raise ValueError(f"{cidr} holds fewer than {start + count} addresses")
    for offset in range(start, start + count):
        yield int_to_ip(network + offset)
