"""ICMP message model (echo, destination unreachable, time exceeded).

Time-exceeded matters here: the stateful-mimicry technique (Section 4.1 of
the paper) TTL-limits replies so they die inside the network, and routers in
the simulator emit real ICMP time-exceeded messages when that happens.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from .checksum import internet_checksum

__all__ = [
    "ICMPMessage",
    "ICMP_ECHO_REPLY",
    "ICMP_DEST_UNREACH",
    "ICMP_ECHO_REQUEST",
    "ICMP_TIME_EXCEEDED",
]

ICMP_ECHO_REPLY = 0
ICMP_DEST_UNREACH = 3
ICMP_ECHO_REQUEST = 8
ICMP_TIME_EXCEEDED = 11


@dataclass
class ICMPMessage:
    """An ICMP message.

    For error messages (unreachable / time exceeded), ``payload`` holds the
    offending packet's IP header + first 8 bytes, per RFC 792.
    """

    icmp_type: int
    code: int = 0
    ident: int = 0
    sequence: int = 0
    payload: bytes = b""
    metadata: dict = field(default_factory=dict, repr=False, compare=False)

    def wire_length(self) -> int:
        """Length of ``to_bytes()`` without serializing."""
        return 8 + len(self.payload)

    def to_bytes(self, src_ip: str = "", dst_ip: str = "") -> bytes:
        """Serialize; ICMP checksums do not use a pseudo-header."""
        header = struct.pack(
            "!BBHHH", self.icmp_type, self.code, 0, self.ident, self.sequence
        )
        cksum = internet_checksum(header + self.payload)
        return header[:2] + struct.pack("!H", cksum) + header[4:] + self.payload

    @classmethod
    def from_bytes(cls, data: bytes) -> "ICMPMessage":
        if len(data) < 8:
            raise ValueError("truncated ICMP message")
        icmp_type, code, _cksum, ident, sequence = struct.unpack("!BBHHH", data[:8])
        return cls(
            icmp_type=icmp_type,
            code=code,
            ident=ident,
            sequence=sequence,
            payload=data[8:],
        )

    @classmethod
    def time_exceeded(cls, original: bytes) -> "ICMPMessage":
        """Build a TTL-expired error quoting the original packet."""
        return cls(icmp_type=ICMP_TIME_EXCEEDED, code=0, payload=original[:28])

    @classmethod
    def dest_unreachable(cls, original: bytes, code: int = 1) -> "ICMPMessage":
        """Build a destination-unreachable error (default: host unreachable)."""
        return cls(icmp_type=ICMP_DEST_UNREACH, code=code, payload=original[:28])

    @classmethod
    def echo_request(cls, ident: int = 0, sequence: int = 0, data: bytes = b"") -> "ICMPMessage":
        return cls(ICMP_ECHO_REQUEST, 0, ident, sequence, data)

    @classmethod
    def echo_reply(cls, request: "ICMPMessage") -> "ICMPMessage":
        return cls(ICMP_ECHO_REPLY, 0, request.ident, request.sequence, request.payload)
