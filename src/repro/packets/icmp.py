"""ICMP message model (echo, destination unreachable, time exceeded).

Time-exceeded matters here: the stateful-mimicry technique (Section 4.1 of
the paper) TTL-limits replies so they die inside the network, and routers in
the simulator emit real ICMP time-exceeded messages when that happens.

Serialization is cached like the other transports; ICMP checksums use no
pseudo-header, so the cache is not keyed by addresses.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Optional

from .checksum import checksum_from_sum, fold_sum, raw_sum

__all__ = [
    "ICMPMessage",
    "ICMP_ECHO_REPLY",
    "ICMP_DEST_UNREACH",
    "ICMP_ECHO_REQUEST",
    "ICMP_TIME_EXCEEDED",
]

ICMP_ECHO_REPLY = 0
ICMP_DEST_UNREACH = 3
ICMP_ECHO_REQUEST = 8
ICMP_TIME_EXCEEDED = 11

_oset = object.__setattr__


@dataclass(init=False, slots=True)
class ICMPMessage:
    """An ICMP message.

    For error messages (unreachable / time exceeded), ``payload`` holds the
    offending packet's IP header + first 8 bytes, per RFC 792.
    """

    icmp_type: int
    code: int = 0
    ident: int = 0
    sequence: int = 0
    payload: bytes = b""
    metadata: dict = field(default_factory=dict, repr=False, compare=False)
    _wire: Optional[bytes] = field(default=None, init=False, repr=False, compare=False)
    _seed: Optional[bytes] = field(default=None, init=False, repr=False, compare=False)

    def __init__(
        self,
        icmp_type: int,
        code: int = 0,
        ident: int = 0,
        sequence: int = 0,
        payload: bytes = b"",
        metadata: Optional[dict] = None,
    ) -> None:
        _oset(self, "icmp_type", icmp_type)
        _oset(self, "code", code)
        _oset(self, "ident", ident)
        _oset(self, "sequence", sequence)
        _oset(self, "payload", payload)
        _oset(self, "metadata", {} if metadata is None else metadata)
        _oset(self, "_wire", None)
        _oset(self, "_seed", None)

    def __setattr__(self, name, value) -> None:
        _oset(self, name, value)
        _oset(self, "_wire", None)
        _oset(self, "_seed", None)

    def wire_length(self) -> int:
        """Length of ``to_bytes()`` without serializing."""
        return 8 + len(self.payload)

    def to_bytes(self, src_ip: str = "", dst_ip: str = "") -> bytes:
        """Serialize; ICMP checksums do not use a pseudo-header.

        Memoized; field writes invalidate the cache.  The address arguments
        keep the transport-serialization signature and are unused.
        """
        wire = self._wire
        if wire is not None:
            return wire
        seed = self._seed
        if seed is not None:
            _oset(self, "_seed", None)
            if self._seed_checksum_ok(seed):
                _oset(self, "_wire", seed)
                return seed
        payload = self.payload
        header = bytearray(8)
        struct.pack_into(
            "!BBHHH", header, 0, self.icmp_type, self.code, 0, self.ident, self.sequence
        )
        cksum = checksum_from_sum(raw_sum(header) + raw_sum(payload))
        struct.pack_into("!H", header, 2, cksum)
        wire = bytes(header) + payload
        _oset(self, "_wire", wire)
        return wire

    def _seed_checksum_ok(self, seed: bytes) -> bool:
        # Fast path as in TCPSegment._seed_checksum_ok; 0x0000/0xFFFF stored
        # values are congruent and need the exact skip-the-field check.
        stored = seed[2] << 8 | seed[3]
        if stored != 0 and stored != 0xFFFF:
            return fold_sum(raw_sum(seed)) == 0xFFFF
        mv = memoryview(seed)
        computed = checksum_from_sum(raw_sum(mv[:2]) + raw_sum(mv[4:]))
        return computed == stored

    @staticmethod
    def _seedable(data: bytes) -> bool:
        return True  # every parsed field re-serializes into the same place

    @classmethod
    def from_bytes(cls, data: bytes) -> "ICMPMessage":
        if len(data) < 8:
            raise ValueError("truncated ICMP message")
        icmp_type, code, _cksum, ident, sequence = struct.unpack_from("!BBHHH", data)
        # object.__new__ fast path; see TCPSegment.from_bytes.
        msg = object.__new__(cls)
        _oset(msg, "icmp_type", icmp_type)
        _oset(msg, "code", code)
        _oset(msg, "ident", ident)
        _oset(msg, "sequence", sequence)
        _oset(msg, "payload", data[8:])
        _oset(msg, "metadata", {})
        _oset(msg, "_wire", None)
        _oset(msg, "_seed", None)
        return msg

    def _copy_shared(self) -> "ICMPMessage":
        """Structural copy sharing the (immutable) cached wire image."""
        new = object.__new__(ICMPMessage)
        _oset(new, "icmp_type", self.icmp_type)
        _oset(new, "code", self.code)
        _oset(new, "ident", self.ident)
        _oset(new, "sequence", self.sequence)
        _oset(new, "payload", self.payload)
        _oset(new, "metadata", {})
        _oset(new, "_wire", self._wire)
        _oset(new, "_seed", self._seed)
        return new

    @classmethod
    def time_exceeded(cls, original: bytes) -> "ICMPMessage":
        """Build a TTL-expired error quoting the original packet."""
        return cls(icmp_type=ICMP_TIME_EXCEEDED, code=0, payload=original[:28])

    @classmethod
    def dest_unreachable(cls, original: bytes, code: int = 1) -> "ICMPMessage":
        """Build a destination-unreachable error (default: host unreachable)."""
        return cls(icmp_type=ICMP_DEST_UNREACH, code=code, payload=original[:28])

    @classmethod
    def echo_request(cls, ident: int = 0, sequence: int = 0, data: bytes = b"") -> "ICMPMessage":
        return cls(ICMP_ECHO_REQUEST, 0, ident, sequence, data)

    @classmethod
    def echo_reply(cls, request: "ICMPMessage") -> "ICMPMessage":
        return cls(ICMP_ECHO_REPLY, 0, request.ident, request.sequence, request.payload)
