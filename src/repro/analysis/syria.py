"""Synthetic Syria censorship-log analysis (paper Section 2.2 / E5).

Chaabane et al. (IMC 2014) analyzed two days of leaked Syrian proxy logs
and found 1.57 % of the population accessed at least one censored site —
"far too many people for the surveillance system to pursue."  The real
logs are not distributable, so this module generates a synthetic population
calibrated to that statistic and reproduces the infeasibility computation.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List

__all__ = [
    "SYRIA_CENSORED_USER_FRACTION",
    "LogEntry",
    "SyriaLogGenerator",
    "LogAnalysis",
    "analyze_logs",
]

#: The published statistic the generator is calibrated against.
SYRIA_CENSORED_USER_FRACTION = 0.0157

TWO_DAYS = 2 * 86_400.0


@dataclass
class LogEntry:
    """One proxy-log line."""

    time: float
    user: str
    domain: str
    censored: bool


@dataclass
class LogAnalysis:
    """The quantities the infeasibility argument needs."""

    population: int
    total_requests: int
    censored_requests: int
    users_touching_censored: int

    @property
    def censored_user_fraction(self) -> float:
        return self.users_touching_censored / self.population if self.population else 0.0

    def pursuit_burden(self, analyst_capacity_per_day: int, days: float = 2.0) -> float:
        """How many analyst-days it would take to pursue every flagged user."""
        capacity = analyst_capacity_per_day * days
        if capacity <= 0:
            return math.inf
        return self.users_touching_censored / capacity


class SyriaLogGenerator:
    """Generates a synthetic two-day log with a calibrated censored rate.

    Each user draws a request count from a heavy-tailed (lognormal)
    distribution; each request is censored with probability ``p`` chosen so
    that the expected fraction of users with >= 1 censored request matches
    the target.
    """

    def __init__(
        self,
        population: int,
        rng: random.Random,
        target_fraction: float = SYRIA_CENSORED_USER_FRACTION,
        mean_log_requests: float = 3.0,
        sigma_log_requests: float = 1.0,
        duration: float = TWO_DAYS,
    ) -> None:
        if population <= 0:
            raise ValueError("population must be positive")
        self.population = population
        self.rng = rng
        self.target_fraction = target_fraction
        self.mean_log_requests = mean_log_requests
        self.sigma_log_requests = sigma_log_requests
        self.duration = duration
        self._request_counts = [
            max(1, int(rng.lognormvariate(mean_log_requests, sigma_log_requests)))
            for _ in range(population)
        ]
        self.per_request_censored_probability = self._calibrate()

    def _fraction_for(self, p: float) -> float:
        """E[fraction of users with >=1 censored request] given p."""
        return sum(1 - (1 - p) ** count for count in self._request_counts) / self.population

    def _calibrate(self) -> float:
        """Bisect p so the expected censored-user fraction hits the target."""
        lo, hi = 0.0, 1.0
        for _ in range(60):
            mid = (lo + hi) / 2
            if self._fraction_for(mid) < self.target_fraction:
                lo = mid
            else:
                hi = mid
        return (lo + hi) / 2

    def generate(
        self,
        censored_domains: List[str] = None,
        open_domains: List[str] = None,
    ) -> List[LogEntry]:
        """Materialize the full log."""
        censored_domains = censored_domains or ["twitter.com", "youtube.com", "facebook.com"]
        open_domains = open_domains or ["example.org", "news.example.net", "weather.gov"]
        entries: List[LogEntry] = []
        p = self.per_request_censored_probability
        for index, count in enumerate(self._request_counts):
            user = f"user{index}"
            for _ in range(count):
                censored = self.rng.random() < p
                entries.append(
                    LogEntry(
                        time=self.rng.uniform(0, self.duration),
                        user=user,
                        domain=self.rng.choice(
                            censored_domains if censored else open_domains
                        ),
                        censored=censored,
                    )
                )
        entries.sort(key=lambda entry: entry.time)
        return entries


def analyze_logs(entries: List[LogEntry], population: int) -> LogAnalysis:
    """Compute the infeasibility statistics over a log."""
    censored_users = {entry.user for entry in entries if entry.censored}
    return LogAnalysis(
        population=population,
        total_requests=len(entries),
        censored_requests=sum(1 for entry in entries if entry.censored),
        users_touching_censored=len(censored_users),
    )
