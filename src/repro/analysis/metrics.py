"""Detection metrics for measurement techniques.

Scores verdicts against ground truth (the controlled censor policy) the way
the paper's evaluation does, plus standard precision/recall for benches
that sweep parameters, the false-block rate that motivates retrying
policies (a lost SYN/ACK is not censorship), and per-direction link
accounting reports with packet-conservation checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Sequence, Tuple

from ..core.results import MeasurementResult, Verdict

__all__ = [
    "ConfusionCounts",
    "score_results",
    "accuracy_table_row",
    "false_block_curve",
    "link_report",
    "run_report",
]


@dataclass
class ConfusionCounts:
    """Binary blocked/accessible confusion matrix."""

    true_positive: int = 0  # blocked target, blocking verdict
    false_negative: int = 0  # blocked target, accessible verdict
    true_negative: int = 0  # open target, accessible verdict
    false_positive: int = 0  # open target, blocking verdict
    inconclusive: int = 0

    @property
    def total(self) -> int:
        return (
            self.true_positive
            + self.false_negative
            + self.true_negative
            + self.false_positive
            + self.inconclusive
        )

    @property
    def accuracy(self) -> float:
        if self.total == 0:
            return 0.0
        return (self.true_positive + self.true_negative) / self.total

    @property
    def precision(self) -> float:
        denominator = self.true_positive + self.false_positive
        return self.true_positive / denominator if denominator else 0.0

    @property
    def recall(self) -> float:
        denominator = self.true_positive + self.false_negative
        return self.true_positive / denominator if denominator else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if p + r else 0.0

    @property
    def false_block_rate(self) -> float:
        """Fraction of actually-open targets reported blocked (FP rate).

        The harm metric for lossy paths: every false block is a target a
        deployment would wrongly list as censored.
        """
        denominator = self.false_positive + self.true_negative
        return self.false_positive / denominator if denominator else 0.0


def score_results(
    results: Iterable[MeasurementResult],
    ground_truth_blocked: Mapping[str, bool],
) -> ConfusionCounts:
    """Score results against a target -> is-blocked ground-truth map.

    Targets are matched by substring so ``"twitter.com"`` ground truth
    matches a result labelled ``"twitter.com:80"``.
    """
    counts = ConfusionCounts()
    for result in results:
        truth = None
        for target, blocked in ground_truth_blocked.items():
            if target in result.target:
                truth = blocked
                break
        if truth is None:
            continue
        if result.verdict is Verdict.INCONCLUSIVE:
            counts.inconclusive += 1
        elif truth and result.blocked:
            counts.true_positive += 1
        elif truth and not result.blocked:
            counts.false_negative += 1
        elif not truth and result.blocked:
            counts.false_positive += 1
        else:
            counts.true_negative += 1
    return counts


def accuracy_table_row(technique: str, counts: ConfusionCounts) -> str:
    """One formatted row of an accuracy table."""
    return (
        f"{technique:<20} acc={counts.accuracy:.3f} prec={counts.precision:.3f} "
        f"rec={counts.recall:.3f} f1={counts.f1:.3f} n={counts.total}"
    )


def false_block_curve(
    loss_rates: Sequence[float],
    run_at_loss: Callable[[float], ConfusionCounts],
) -> List[Tuple[float, float]]:
    """False-block rate as a function of path loss rate.

    ``run_at_loss`` runs one experiment (typically a scan of known-open
    targets over an impaired link) at the given loss rate and returns its
    confusion counts.  The resulting ``(loss_rate, false_block_rate)``
    points are the paper-style safety curve: a single-shot measurement's
    curve climbs with loss while a retrying policy's stays near zero.
    """
    return [
        (loss, run_at_loss(loss).false_block_rate) for loss in loss_rates
    ]


def link_report(links: Iterable) -> Dict[str, Dict[str, object]]:
    """Per-direction accounting for each link, with conservation checks.

    Accepts :class:`~repro.netsim.link.Link` objects and returns, per
    link and direction, the offered/carried/lost/duplicated counters plus
    whether ``offered == carried - duplicated + lost`` holds.  A
    ``conserved = False`` entry means the link's bookkeeping is broken,
    not that the network misbehaved.
    """
    report: Dict[str, Dict[str, object]] = {}
    for link in links:
        name = f"{link.a.name}<->{link.b.name}"
        directions: Dict[str, object] = {}
        for direction, stats in link.stats.items():
            entry = stats.as_dict()
            entry["loss_rate"] = (
                stats.packets_lost / stats.packets_offered
                if stats.packets_offered
                else 0.0
            )
            entry["conserved"] = stats.conserved
            directions[direction] = entry
        directions["conserved"] = all(
            stats.conserved for stats in link.stats.values()
        )
        report[name] = directions
    return report


def run_report(
    registry=None,
    sim=None,
    links: Iterable = (),
    surveillance=None,
) -> Dict[str, object]:
    """Fold observability snapshots into one JSON-ready run report.

    The bridge between the obs layer and the existing report path: pass
    whichever pieces the run had and get one deterministic dict —
    ``metrics`` (a :meth:`MetricsRegistry.snapshot`), ``simulator``
    (:meth:`Simulator.stats`), ``links`` (:func:`link_report`), and
    ``surveillance`` (:meth:`SurveillanceSystem.summary`).  Sections for
    pieces not supplied are omitted rather than emitted empty.
    """
    report: Dict[str, object] = {}
    if registry is not None:
        report["metrics"] = registry.snapshot()
    if sim is not None:
        report["simulator"] = sim.stats()
    links = list(links)
    if links:
        report["links"] = link_report(links)
    if surveillance is not None:
        report["surveillance"] = surveillance.summary()
    return report
