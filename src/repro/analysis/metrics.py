"""Detection metrics for measurement techniques.

Scores verdicts against ground truth (the controlled censor policy) the way
the paper's evaluation does, plus standard precision/recall for benches
that sweep parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from ..core.results import MeasurementResult, Verdict

__all__ = ["ConfusionCounts", "score_results", "accuracy_table_row"]


@dataclass
class ConfusionCounts:
    """Binary blocked/accessible confusion matrix."""

    true_positive: int = 0  # blocked target, blocking verdict
    false_negative: int = 0  # blocked target, accessible verdict
    true_negative: int = 0  # open target, accessible verdict
    false_positive: int = 0  # open target, blocking verdict
    inconclusive: int = 0

    @property
    def total(self) -> int:
        return (
            self.true_positive
            + self.false_negative
            + self.true_negative
            + self.false_positive
            + self.inconclusive
        )

    @property
    def accuracy(self) -> float:
        if self.total == 0:
            return 0.0
        return (self.true_positive + self.true_negative) / self.total

    @property
    def precision(self) -> float:
        denominator = self.true_positive + self.false_positive
        return self.true_positive / denominator if denominator else 0.0

    @property
    def recall(self) -> float:
        denominator = self.true_positive + self.false_negative
        return self.true_positive / denominator if denominator else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if p + r else 0.0


def score_results(
    results: Iterable[MeasurementResult],
    ground_truth_blocked: Mapping[str, bool],
) -> ConfusionCounts:
    """Score results against a target -> is-blocked ground-truth map.

    Targets are matched by substring so ``"twitter.com"`` ground truth
    matches a result labelled ``"twitter.com:80"``.
    """
    counts = ConfusionCounts()
    for result in results:
        truth = None
        for target, blocked in ground_truth_blocked.items():
            if target in result.target:
                truth = blocked
                break
        if truth is None:
            continue
        if result.verdict is Verdict.INCONCLUSIVE:
            counts.inconclusive += 1
        elif truth and result.blocked:
            counts.true_positive += 1
        elif truth and not result.blocked:
            counts.false_negative += 1
        elif not truth and result.blocked:
            counts.false_positive += 1
        else:
            counts.true_negative += 1
    return counts


def accuracy_table_row(technique: str, counts: ConfusionCounts) -> str:
    """One formatted row of an accuracy table."""
    return (
        f"{technique:<20} acc={counts.accuracy:.3f} prec={counts.precision:.3f} "
        f"rec={counts.recall:.3f} f1={counts.f1:.3f} n={counts.total}"
    )
