"""Empirical CDFs and terminal rendering (for the Figure 2 reproduction)."""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterable, List, Tuple

__all__ = ["EmpiricalCDF", "ascii_cdf"]


class EmpiricalCDF:
    """An empirical cumulative distribution over a sample."""

    def __init__(self, samples: Iterable[float]) -> None:
        self.samples: List[float] = sorted(samples)
        if not self.samples:
            raise ValueError("CDF needs at least one sample")

    def __len__(self) -> int:
        return len(self.samples)

    def at(self, value: float) -> float:
        """P(X <= value)."""
        return bisect_right(self.samples, value) / len(self.samples)

    def quantile(self, q: float) -> float:
        """The q-th quantile (0 <= q <= 1)."""
        if not 0 <= q <= 1:
            raise ValueError("quantile must be in [0, 1]")
        index = min(len(self.samples) - 1, max(0, int(q * len(self.samples))))
        return self.samples[index]

    @property
    def median(self) -> float:
        return self.quantile(0.5)

    @property
    def min(self) -> float:
        return self.samples[0]

    @property
    def max(self) -> float:
        return self.samples[-1]

    def points(self, steps: int = 50) -> List[Tuple[float, float]]:
        """(value, fraction) pairs suitable for plotting."""
        lo, hi = self.samples[0], self.samples[-1]
        if hi == lo:
            return [(lo, 1.0)]
        step = (hi - lo) / steps
        return [(lo + i * step, self.at(lo + i * step)) for i in range(steps + 1)]


def ascii_cdf(
    cdf: EmpiricalCDF,
    width: int = 60,
    height: int = 12,
    x_label: str = "value",
    title: str = "",
) -> str:
    """Render a CDF as ASCII art (the benches' Figure 2 output)."""
    lo, hi = cdf.min, cdf.max
    span = hi - lo or 1.0
    rows = []
    if title:
        rows.append(title)
    for row in range(height, -1, -1):
        frac = row / height
        line = [f"{frac:4.2f} |"]
        for col in range(width + 1):
            value = lo + span * col / width
            line.append("#" if cdf.at(value) >= frac else " ")
        rows.append("".join(line))
    rows.append("     +" + "-" * (width + 1))
    rows.append(f"      {lo:<10.1f}{x_label:^{max(0, width - 20)}}{hi:>10.1f}")
    return "\n".join(rows)
