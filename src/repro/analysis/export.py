"""Result export: OONI-style JSON records for downstream analysis.

Measurement platforms ship results as line-delimited JSON documents; this
module serializes :class:`~repro.core.results.MeasurementResult` and
:class:`~repro.core.risk.RiskAssessment` objects the same way so campaign
output can leave the library without pickling Python objects.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional

from ..core.results import MeasurementResult, Verdict
from ..core.risk import RiskAssessment

__all__ = [
    "result_to_record",
    "results_to_jsonl",
    "records_from_jsonl",
    "risk_to_record",
    "campaign_document",
]

SCHEMA_VERSION = "repro-0.1"


def result_to_record(result: MeasurementResult) -> Dict[str, object]:
    """Serialize one result to a JSON-safe dict."""
    return {
        "schema": SCHEMA_VERSION,
        "kind": "measurement",
        "technique": result.technique,
        "target": result.target,
        "verdict": result.verdict.value,
        "blocked": result.blocked,
        "time": result.time,
        "detail": result.detail,
        "samples": result.samples,
        "evidence": _jsonable(result.evidence),
    }


def risk_to_record(risk: RiskAssessment) -> Dict[str, object]:
    """Serialize a risk assessment to a JSON-safe dict."""
    return {
        "schema": SCHEMA_VERSION,
        "kind": "risk",
        "technique": risk.technique,
        "attributed_alerts": risk.attributed_alerts,
        "true_origin_alerts": risk.true_origin_alerts,
        "suspect_rank": risk.suspect_rank,
        "attribution_confidence": risk.attribution_confidence,
        "suspect_entropy": risk.suspect_entropy,
        "investigated": risk.investigated,
        "evaded": risk.evaded,
        "risk_score": risk.risk_score(),
    }


def results_to_jsonl(results: Iterable[MeasurementResult]) -> str:
    """Render results as line-delimited JSON."""
    return "\n".join(json.dumps(result_to_record(r), sort_keys=True) for r in results)


def records_from_jsonl(text: str) -> List[Dict[str, object]]:
    """Parse line-delimited JSON back into records (schema-checked)."""
    records = []
    for line_number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        record = json.loads(line)
        if record.get("schema") != SCHEMA_VERSION:
            raise ValueError(
                f"line {line_number}: unknown schema {record.get('schema')!r}"
            )
        records.append(record)
    return records


def campaign_document(
    results_by_technique: Dict[str, List[MeasurementResult]],
    risks: Optional[List[RiskAssessment]] = None,
    metadata: Optional[Dict[str, object]] = None,
) -> str:
    """One JSON document summarizing a whole campaign."""
    document = {
        "schema": SCHEMA_VERSION,
        "kind": "campaign",
        "metadata": _jsonable(metadata or {}),
        "techniques": {
            name: [result_to_record(r) for r in results]
            for name, results in results_by_technique.items()
        },
        "risks": [risk_to_record(r) for r in (risks or [])],
        "summary": {
            name: _verdict_histogram(results)
            for name, results in results_by_technique.items()
        },
    }
    return json.dumps(document, sort_keys=True, indent=2)


def _verdict_histogram(results: List[MeasurementResult]) -> Dict[str, int]:
    histogram: Dict[str, int] = {}
    for result in results:
        histogram[result.verdict.value] = histogram.get(result.verdict.value, 0) + 1
    return histogram


def _jsonable(value):
    """Best-effort conversion of evidence values to JSON-safe types."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(v) for v in value]
    if isinstance(value, bytes):
        return value.decode("latin-1")
    if isinstance(value, Verdict):
        return value.value
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)
