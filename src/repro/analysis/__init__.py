"""Analysis: metrics, CDFs, Syria log analysis, ethics arithmetic, tables."""

from .cdf import EmpiricalCDF, ascii_cdf
from .export import (
    campaign_document,
    records_from_jsonl,
    result_to_record,
    results_to_jsonl,
    risk_to_record,
)
from .ethics import (
    LoadComparison,
    OpenResolverStats,
    SCHOMP_2013,
    load_comparison,
    spoofed_query_load,
)
from .metrics import (
    ConfusionCounts,
    accuracy_table_row,
    false_block_curve,
    link_report,
    run_report,
    score_results,
)
from .report import render_table
from .stats import Summary, summarize_samples, wilson_interval
from .syria import (
    LogAnalysis,
    LogEntry,
    SYRIA_CENSORED_USER_FRACTION,
    SyriaLogGenerator,
    analyze_logs,
)

__all__ = [
    "ConfusionCounts",
    "EmpiricalCDF",
    "LoadComparison",
    "LogAnalysis",
    "LogEntry",
    "OpenResolverStats",
    "SCHOMP_2013",
    "SYRIA_CENSORED_USER_FRACTION",
    "SyriaLogGenerator",
    "accuracy_table_row",
    "analyze_logs",
    "campaign_document",
    "ascii_cdf",
    "false_block_curve",
    "link_report",
    "load_comparison",
    "records_from_jsonl",
    "render_table",
    "result_to_record",
    "results_to_jsonl",
    "risk_to_record",
    "run_report",
    "Summary",
    "score_results",
    "summarize_samples",
    "spoofed_query_load",
    "wilson_interval",
]
