"""Text-table rendering shared by the benchmark harness and examples."""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["render_table"]


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = "") -> str:
    """Render an aligned plain-text table.

    Columns are sized to their widest cell; numeric cells are right-aligned,
    text left-aligned — good enough for bench output that mirrors the
    paper's tables.
    """
    text_rows: List[List[str]] = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str], numeric_mask: Sequence[bool]) -> str:
        parts = []
        for cell, width, numeric in zip(cells, widths, numeric_mask):
            parts.append(cell.rjust(width) if numeric else cell.ljust(width))
        return "  ".join(parts)

    numeric_masks = [
        [_is_numeric(cell) for cell in row] for row in text_rows
    ]
    out = []
    if title:
        out.append(title)
    out.append(line(list(headers), [False] * len(headers)))
    out.append("  ".join("-" * width for width in widths))
    for row, mask in zip(text_rows, numeric_masks):
        out.append(line(row, mask))
    return "\n".join(out)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def _is_numeric(cell: str) -> bool:
    try:
        float(cell)
    except ValueError:
        return False
    return True
