"""Small statistics helpers for repeated-trial analyses.

Dependency-free (no scipy): sample mean/stddev and Wilson score intervals
for proportions, which is what the loss/robustness benches need to report
false-positive rates honestly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Tuple

__all__ = ["Summary", "summarize_samples", "wilson_interval"]

#: z for a 95 % two-sided normal interval.
Z_95 = 1.959963984540054


@dataclass(frozen=True)
class Summary:
    """Mean / spread summary of a numeric sample."""

    count: int
    mean: float
    stddev: float
    minimum: float
    maximum: float

    def ci95_halfwidth(self) -> float:
        """Half-width of the normal-approximation 95 % CI of the mean."""
        if self.count < 2:
            return float("inf")
        return Z_95 * self.stddev / math.sqrt(self.count)

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.4g} ± {self.ci95_halfwidth():.3g} "
            f"(sd {self.stddev:.3g}, range {self.minimum:.4g}..{self.maximum:.4g})"
        )


def summarize_samples(samples: Iterable[float]) -> Summary:
    """Compute a :class:`Summary` (sample standard deviation, n-1)."""
    values: List[float] = list(samples)
    if not values:
        raise ValueError("cannot summarize an empty sample")
    count = len(values)
    mean = sum(values) / count
    if count > 1:
        variance = sum((v - mean) ** 2 for v in values) / (count - 1)
    else:
        variance = 0.0
    return Summary(
        count=count,
        mean=mean,
        stddev=math.sqrt(variance),
        minimum=min(values),
        maximum=max(values),
    )


def wilson_interval(successes: int, trials: int, z: float = Z_95) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Behaves sensibly at 0/n and n/n (unlike the Wald interval), which is
    exactly where evasion results live: "0 of 6 runs false-blocked" still
    carries honest uncertainty.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes must be within [0, trials]")
    p = successes / trials
    denom = 1 + z * z / trials
    center = (p + z * z / (2 * trials)) / denom
    half = (
        z * math.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials)) / denom
    )
    # Exact endpoints at the boundaries (floating point otherwise leaves
    # the point estimate epsilon-outside the interval).
    low = 0.0 if successes == 0 else max(0.0, center - half)
    high = 1.0 if successes == trials else min(1.0, center + half)
    return (low, high)
