"""Scale-out sweep execution with a deterministic merge.

``SweepRunner`` expands a :class:`~repro.runner.spec.SweepSpec` into its
grid, executes the points — serially or across a
``ProcessPoolExecutor`` — and folds the per-point records into one
report whose bytes depend only on the spec, never on the worker count,
scheduling order, or wall clock.  That invariant is what the
``--workers 1`` vs ``--workers 4`` byte-identity tests (and the CI
smoke job) pin down, and it falls out of three rules:

1. every point runs in a fresh simulator + metrics registry seeded from
   the point parameters alone (see :mod:`.worker`);
2. the report lists points in grid order and contains no execution
   metadata (wall time and worker counts are printed, not reported);
3. worker metrics merge through :meth:`MetricsRegistry.merge`, whose
   counter-sum / gauge-max / histogram-elementwise semantics make the
   fold order-insensitive and equal to a shared serial registry.

Crash isolation: exceptions inside a point are contained (and retried)
by the worker itself; a worker *process* death breaks the whole pool,
so the runner falls back to a salvage pass that re-runs the affected
points one per fresh single-worker pool — a point that keeps killing
its process exhausts its retry budget and is recorded as failed, and
the sweep still completes.
"""

from __future__ import annotations

from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from typing import Dict, List, Optional

from ..analysis.metrics import run_report
from ..obs import MetricsRegistry
from .shard import ShardPlanner
from .spec import SweepPoint, SweepSpec
from .worker import run_shard

__all__ = ["SweepRunner"]


class SweepRunner:
    """Executes a sweep spec and assembles the merged report."""

    def __init__(
        self,
        spec: SweepSpec,
        workers: int = 1,
        serial: bool = False,
        max_point_retries: int = 1,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1 (got {workers})")
        self.spec = spec
        self.workers = workers
        self.serial = serial or workers == 1
        self.max_point_retries = max_point_retries
        #: merged registry from the last :meth:`run`, for render_text etc.
        self.merged_registry: Optional[MetricsRegistry] = None

    # -- execution paths ------------------------------------------------------

    def _run_serial(self, points: List[SweepPoint]) -> Dict[int, dict]:
        records = run_shard(
            [point.as_dict() for point in points],
            self.max_point_retries,
            in_process=True,
        )
        return {record["index"]: record for record in records}

    def _run_pool(self, points: List[SweepPoint]) -> Dict[int, dict]:
        shards = ShardPlanner(self.workers).plan(points)
        outcomes: Dict[int, dict] = {}
        dead_shards = []
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            futures = {
                pool.submit(
                    run_shard,
                    [point.as_dict() for point in shard.points],
                    self.max_point_retries,
                ): shard
                for shard in shards
            }
            # wait() rather than as_completed(): when a worker process
            # dies the executor marks *every* outstanding future broken,
            # and we want to collect whatever finished plus the full
            # casualty list in one pass.
            done, _ = wait(futures, return_when=FIRST_EXCEPTION)
            for future in futures:
                shard = futures[future]
                try:
                    for record in future.result():
                        outcomes[record["index"]] = record
                except BaseException:
                    dead_shards.append(shard)

        # Salvage pass: a dead shard may have finished some points before
        # the crash, but their records died with the process — re-running
        # them is pure waste-of-work, never a correctness risk, because
        # points are deterministic functions of their parameters.
        for shard in dead_shards:
            for point in shard.points:
                outcomes[point.index] = self._run_point_quarantined(point)
        return outcomes

    def _run_point_quarantined(self, point: SweepPoint) -> dict:
        """Re-run one point of a crashed shard, one fresh pool per attempt.

        Isolating each attempt in its own single-worker pool means a
        point that hard-kills its process (``os._exit``, OOM) costs one
        pool, not the sweep; after the retry budget it is recorded as
        failed with a normalized error (process deaths carry no
        traceback to report).
        """
        attempts_allowed = 1 + self.max_point_retries
        for attempt in range(1, attempts_allowed + 1):
            try:
                with ProcessPoolExecutor(max_workers=1) as pool:
                    records = pool.submit(run_shard, [point.as_dict()], 0).result()
                records[0]["attempts_used"] = attempt
                return records[0]
            except BaseException:
                continue
        return {
            "index": point.index,
            "params": point.as_dict(),
            "status": "failed",
            "attempts_used": attempts_allowed,
            "error": "worker process died while running this point",
        }

    # -- merge ---------------------------------------------------------------

    def run(self) -> Dict[str, object]:
        """Execute the grid and return the merged, JSON-ready report."""
        points = self.spec.points()
        if self.serial:
            outcomes = self._run_serial(points)
        else:
            outcomes = self._run_pool(points)

        records = [outcomes[index] for index in sorted(outcomes)]
        merged = MetricsRegistry()
        verdicts: Dict[str, int] = {}
        failed = []
        for record in records:
            if record["status"] != "ok":
                failed.append(record["index"])
                continue
            merged.merge(record["report"]["metrics"])
            for verdict, count in record.get("verdicts", {}).items():
                verdicts[verdict] = verdicts.get(verdict, 0) + count
        self.merged_registry = merged

        return {
            "spec": self.spec.as_dict(),
            "points": records,
            "merged": run_report(registry=merged),
            "summary": {
                "points": len(points),
                "ok": len(records) - len(failed),
                "failed": len(failed),
                "failed_points": failed,
                "verdicts": dict(sorted(verdicts.items())),
            },
        }
