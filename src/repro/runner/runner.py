"""Resumable campaign execution with a deterministic merge.

``SweepRunner`` expands a :class:`~repro.runner.spec.SweepSpec` into its
grid, executes the points — serially, across statically pre-assigned
shards, or through a work-stealing pool — and folds the per-point
records into one report whose bytes depend only on the spec, never on
the worker count, dispatch mode, scheduling order, wall clock, or how
many crash/resume cycles the campaign took.  That invariant is what the
serial vs ``--workers 4`` vs kill-then-resume byte-identity tests (and
the CI smoke jobs) pin down, and it falls out of four rules:

1. every point runs in a fresh simulator + metrics registry seeded from
   the point parameters alone (see :mod:`.worker`);
2. the report lists points in grid order and contains no execution
   metadata (wall time, worker counts, and resume provenance are
   printed or journaled, never reported);
3. worker metrics merge through :meth:`MetricsRegistry.merge` — in grid
   order, never completion order — whose counter-sum / gauge-max /
   histogram-elementwise semantics make the fold equal to a shared
   serial registry;
4. journaled records are canonical JSON, which round-trips the record
   (and its metrics snapshot) byte-exactly, so a record read back from
   a checkpoint merges identically to the in-memory record it saved.

**Campaign service**: give the runner a :class:`~.store.CampaignStore`
and every finished point is journaled the moment its record arrives (in
completion order — the journal is an execution artifact, so order there
is free).  A later run with ``resume=True`` loads the journal, executes
only missing or previously-failed points, and merges journaled snapshots
with fresh ones into the same bytes an uninterrupted run produces.  A
``partial_path`` makes the in-flight campaign inspectable: the runner
atomically rewrites a small progress document every ``partial_every``
completions.

**Dispatch**: ``"stealing"`` (default for pools) submits each point as
its own pool task, so idle workers pull the next point off the shared
queue the moment they finish — point costs vary wildly across loss
rates and retry policies, and static shards strand cheap points behind
a shard-mate whale.  ``"round-robin"`` keeps the original static
pre-assignment (one task per shard), retained because comparing the two
modes byte-for-byte is itself a regression test.

Crash isolation: exceptions inside a point are contained (and retried)
by the worker itself, and unpicklable results become failed records
naming the point (see :func:`.worker.run_shard`); a worker *process*
death breaks the whole pool, so the runner falls back to a salvage pass
that re-runs the affected points one per fresh single-worker pool — a
point that keeps killing its process exhausts its retry budget and is
recorded as failed, and the sweep still completes.
"""

from __future__ import annotations

import os
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, Iterator, List, Optional

from ..analysis.metrics import run_report
from ..obs import MetricsRegistry
from ..obs.export import write_json
from ..results.record import summarize_rows, write_records
from .shard import QueuePlanner, ShardPlanner
from .spec import SweepPoint, SweepSpec
from .store import CampaignStore
from .worker import run_shard

__all__ = ["SweepRunner", "DISPATCH_MODES"]

DISPATCH_MODES = ("stealing", "round-robin")


class SweepRunner:
    """Executes a sweep spec — possibly across several process lifetimes —
    and assembles the merged report."""

    def __init__(
        self,
        spec: SweepSpec,
        workers: int = 1,
        serial: bool = False,
        max_point_retries: int = 1,
        dispatch: str = "stealing",
        store: Optional[CampaignStore] = None,
        partial_path: Optional[str] = None,
        partial_every: int = 1,
        record_path: Optional[str] = None,
        progress: Optional[Callable[[Dict[str, object]], None]] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1 (got {workers})")
        if dispatch not in DISPATCH_MODES:
            raise ValueError(
                f"unknown dispatch mode {dispatch!r} (choose from {DISPATCH_MODES})"
            )
        if partial_every < 1:
            raise ValueError(f"partial_every must be >= 1 (got {partial_every})")
        self.spec = spec
        self.workers = workers
        self.serial = serial or workers == 1
        self.max_point_retries = max_point_retries
        self.dispatch = dispatch
        self.store = store
        self.partial_path = partial_path
        self.partial_every = partial_every
        #: where to render the measurement-record file (None = no sink;
        #: the report's ``records`` summary is computed either way, so
        #: enabling the sink never changes report bytes).
        self.record_path = record_path
        #: called with a small progress event after every finished point;
        #: an execution-side channel (like the journal), never reported.
        self.progress = progress
        #: merged registry from the last :meth:`run`, for render_text etc.
        self.merged_registry: Optional[MetricsRegistry] = None
        #: grid indexes restored from the journal on the last run.
        self.resumed_indexes: List[int] = []
        #: grid indexes actually executed on the last run.
        self.executed_indexes: List[int] = []
        self._since_partial = 0
        self._progress_failed = 0
        self._progress_sim = 0.0

    # -- execution paths ------------------------------------------------------

    def _execute_serial(self, pending: List[SweepPoint], outcomes: Dict[int, dict]) -> None:
        # One run_shard call per point (not one for the whole list) so the
        # journal advances point by point, same as the pool paths.
        for point in pending:
            record = run_shard(
                [point.as_dict()], self.max_point_retries, in_process=True,
            )[0]
            self._record(outcomes, record)

    def _execute_round_robin(self, pending: List[SweepPoint], outcomes: Dict[int, dict]) -> None:
        """Static pre-assignment: one pool task per shard."""
        shards = ShardPlanner(self.workers).plan(pending)
        dead_shards = []
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            futures = {
                pool.submit(
                    run_shard,
                    [point.as_dict() for point in shard.points],
                    self.max_point_retries,
                ): shard
                for shard in shards
            }
            for future in as_completed(futures):
                shard = futures[future]
                try:
                    for record in future.result():
                        self._record(outcomes, record)
                except BaseException:
                    # A worker death breaks every outstanding future; the
                    # casualties are collected here and salvaged below.
                    dead_shards.append(shard)

        # Salvage pass: a dead shard may have finished some points before
        # the crash, but their records died with the process — re-running
        # them is pure waste-of-work, never a correctness risk, because
        # points are deterministic functions of their parameters.
        for shard in dead_shards:
            for point in shard.points:
                self._record(outcomes, self._run_point_quarantined(point))

    def _execute_stealing(self, pending: List[SweepPoint], outcomes: Dict[int, dict]) -> None:
        """Shared-queue dispatch: one pool task per point.

        The pool's task queue *is* the steal target: workers pull the
        next point the moment they finish, so a pathologically slow
        point occupies one worker while the rest drain the remainder of
        the grid.  The queue is seeded most-expensive-first
        (:class:`QueuePlanner`) to keep the tail short.
        """
        order = QueuePlanner().order(pending)
        quarantined: List[SweepPoint] = []
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            futures = {
                pool.submit(run_shard, [point.as_dict()], self.max_point_retries): point
                for point in order
            }
            for future in as_completed(futures):
                point = futures[future]
                try:
                    self._record(outcomes, future.result()[0])
                except BrokenProcessPool:
                    # One dead process breaks the pool; every unfinished
                    # point lands here and is salvaged below.
                    quarantined.append(point)
                except BaseException:
                    # The task itself raised (per-point dispatch, so the
                    # culprit is known).  run_shard contains point
                    # exceptions and pickling poison, so this is an
                    # exotic failure — record it against the point.
                    self._record(outcomes, {
                        "index": point.index,
                        "params": point.as_dict(),
                        "status": "failed",
                        "attempts_used": 1,
                        "error": traceback.format_exc(limit=8),
                    })
        for point in sorted(quarantined, key=lambda p: p.index):
            self._record(outcomes, self._run_point_quarantined(point))

    def _run_point_quarantined(self, point: SweepPoint) -> dict:
        """Re-run one point of a crashed pool, one fresh pool per attempt.

        Isolating each attempt in its own single-worker pool means a
        point that hard-kills its process (``os._exit``, OOM) costs one
        pool, not the sweep; after the retry budget it is recorded as
        failed.  A quarantined point that *raises* instead of dying gets
        its actual traceback recorded against its index — a process
        death and a reproducible error must not be conflated.
        """
        attempts_allowed = 1 + self.max_point_retries
        for attempt in range(1, attempts_allowed + 1):
            try:
                with ProcessPoolExecutor(max_workers=1) as pool:
                    records = pool.submit(run_shard, [point.as_dict()], 0).result()
                records[0]["attempts_used"] = attempt
                return records[0]
            except BrokenProcessPool:
                continue
            except BaseException:
                return {
                    "index": point.index,
                    "params": point.as_dict(),
                    "status": "failed",
                    "attempts_used": attempt,
                    "error": traceback.format_exc(limit=8),
                }
        return {
            "index": point.index,
            "params": point.as_dict(),
            "status": "failed",
            "attempts_used": attempts_allowed,
            "error": "worker process died while running this point",
        }

    # -- journal + streaming merge --------------------------------------------

    def _record(self, outcomes: Dict[int, dict], record: dict) -> None:
        """Accept one finished record: journal it, refresh the partial."""
        outcomes[record["index"]] = record
        self.executed_indexes.append(record["index"])
        if self.store is not None:
            self.store.append(record)
        self._emit_progress(outcomes, record)
        if self.partial_path is not None:
            self._since_partial += 1
            if self._since_partial >= self.partial_every:
                self._since_partial = 0
                self._write_partial(outcomes)

    def _emit_progress(self, outcomes: Dict[int, dict], record: dict) -> None:
        """Feed the live progress channel, if one is attached.

        Execution-side only (like the journal): nothing here may leak
        into the report, so byte-identity across quiet and chatty runs
        is trivially preserved.
        """
        if record.get("status") != "ok":
            self._progress_failed += 1
        else:
            self._progress_sim += record["params"]["duration"]
        if self.progress is None:
            return
        self.progress({
            "index": record["index"],
            "status": record.get("status", "?"),
            "done": len(outcomes),
            "total": len(self.spec),
            "failed": self._progress_failed,
            "sim_cost": self._progress_sim,
        })

    def _write_partial(self, outcomes: Dict[int, dict]) -> None:
        """Atomically rewrite the in-flight progress document.

        Small on purpose: spec identity, per-point status, and the
        incrementally merged metrics — enough to watch a campaign
        converge (or a point fail) without touching the journal.  The
        write-to-temp-then-rename keeps the file parseable at every
        instant; it never holds a torn JSON document.
        """
        total = len(self.spec)
        statuses = {
            str(index): outcomes[index].get("status", "?")
            for index in sorted(outcomes)
        }
        merged = MetricsRegistry()
        for index in sorted(outcomes):
            record = outcomes[index]
            if record.get("status") == "ok":
                merged.merge(record["report"]["metrics"])
        document = {
            "spec": self.spec.as_dict(),
            "spec_hash": self.spec.content_hash(),
            "points_total": total,
            "points_done": len(outcomes),
            "statuses": statuses,
            "merged_metrics": merged.snapshot(),
        }
        temp = f"{self.partial_path}.tmp"
        write_json(temp, document)
        os.replace(temp, self.partial_path)

    # -- merge ---------------------------------------------------------------

    def run(self) -> Dict[str, object]:
        """Execute (or finish) the grid and return the merged report."""
        points = self.spec.points()
        outcomes: Dict[int, dict] = {}
        self.resumed_indexes = []
        self.executed_indexes = []
        self._since_partial = 0
        self._progress_failed = 0
        self._progress_sim = 0.0

        if self.store is not None and self.store.records:
            done = self.store.done()
            for index in sorted(done):
                record = self.store.records[index]
                outcomes[index] = record
                # Seed the progress counters so a resumed campaign's live
                # line starts from where the journal left off.
                if record.get("status") != "ok":
                    self._progress_failed += 1
                else:
                    self._progress_sim += record["params"]["duration"]
            self.resumed_indexes = sorted(done)
        pending = [p for p in points if p.index not in outcomes]

        if self.serial:
            self._execute_serial(pending, outcomes)
        elif self.dispatch == "round-robin":
            self._execute_round_robin(pending, outcomes)
        else:
            self._execute_stealing(pending, outcomes)

        records = [outcomes[index] for index in sorted(outcomes)]
        merged = MetricsRegistry()
        verdicts: Dict[str, int] = {}
        failed = []
        for record in records:
            if record["status"] != "ok":
                failed.append(record["index"])
                continue
            merged.merge(record["report"]["metrics"])
            for verdict, count in record.get("verdicts", {}).items():
                verdicts[verdict] = verdicts.get(verdict, 0) + count
        self.merged_registry = merged

        sink = self._render_records(records, merged, verdicts)

        # The campaign is complete: the partial progress document has
        # served its purpose (the report supersedes it).
        if self.partial_path is not None and os.path.exists(self.partial_path):
            os.remove(self.partial_path)

        return {
            "spec": self.spec.as_dict(),
            "points": records,
            "merged": run_report(registry=merged),
            "summary": {
                "points": len(points),
                "ok": len(records) - len(failed),
                "failed": len(failed),
                "failed_points": failed,
                "records": sink,
                "verdicts": dict(sorted(verdicts.items())),
            },
        }

    def _iter_record_rows(self, records: List[dict]) -> Iterator[dict]:
        """Stream every measurement-record row in grid order.

        ``records`` is already sorted by grid index and each point's rows
        carry their in-point ``seq``, so the concatenation is the one
        canonical row order — the same regardless of worker count,
        dispatch mode, or how many crash/resume cycles produced the
        point records.
        """
        for record in records:
            if record.get("status") != "ok":
                continue
            for row in record.get("records", ()):
                yield row

    def _render_records(
        self,
        records: List[dict],
        merged: MetricsRegistry,
        verdicts: Dict[str, int],
    ) -> Dict[str, object]:
        """Write the record file (if a sink is attached) and cross-check.

        The summary is computed whether or not a sink path is set, so the
        report's bytes never depend on the flag.  ``conserved`` is the
        observability cross-check: the sink's row count must equal the
        merged ``measurement_rows_total`` counter (each row was counted
        exactly once, in the worker where it was born), and the sink's
        per-verdict histogram must equal the report's verdict summary
        (every verdict became exactly one row).
        """
        rows = self._iter_record_rows(records)
        if self.record_path is not None:
            sink = write_records(
                self.record_path, self.spec.content_hash(), rows
            )
        else:
            sink = summarize_rows(rows)
        counted = merged.counter(
            "measurement_rows_total",
            "measurement-record rows produced",
            ("technique", "verdict"),
        ).total()
        sink["conserved"] = (
            counted == sink["rows"]
            and sink["by_verdict"] == dict(sorted(verdicts.items()))
        )
        return sink
