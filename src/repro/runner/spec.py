"""Declarative sweep specifications: a cartesian grid of scenario points.

A :class:`SweepSpec` names the axes the survey-scale experiments sweep —
seeds, loss models, retry policies, techniques, topologies — and expands
them into a deterministic, fully ordered list of :class:`SweepPoint`\\ s.
Every point carries a simulator seed derived from the spec's base seed
via :func:`~repro.netsim.impairment.mix_seed`, so the grid's randomness
is a pure function of the spec: the same spec always produces the same
points, no matter how many workers later execute them or in what order.

Specs load from JSON or TOML files (``repro sweep grid.json``) or build
programmatically; both paths go through the same validation.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field, fields
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..censor import censor_families
from ..core.evaluation import TECHNIQUES
from ..core.measurement import RetryPolicy
from ..netsim.impairment import mix_seed

__all__ = ["SweepPoint", "SweepSpec", "TOPOLOGIES", "VANTAGES", "parse_retry_policy"]

#: Topologies a sweep point can run in.  ``three-node`` is the minimal
#: client–middlebox–server path (scan-only, cheap — the false-block-curve
#: workload); ``censored-as`` is the full Figure-1 censored AS.
TOPOLOGIES = ("three-node", "censored-as")

#: Techniques the three-node topology supports (no censor, no population).
THREE_NODE_TECHNIQUES = ("scan",)

#: Vantage-axis values: ``censored`` runs the point inside the censored
#: AS with the censor enforcing, ``clean`` runs the same point with the
#: censor disabled — the simulated analogue of measuring from inside vs
#: outside the censored network.  A spec that lists both gets every
#: scenario measured from both vantages, which is what the
#: vantage-differential classifier in :mod:`repro.results` consumes.
VANTAGES = ("censored", "clean")


def parse_retry_policy(name: str, timeout: float = 1.0) -> RetryPolicy:
    """Parse a retry-policy axis value into a :class:`RetryPolicy`.

    ``"single-shot"`` is the paper's one-probe behaviour; ``"retry-N"``
    probes up to N times with the default backoff.
    """
    if name == "single-shot":
        return RetryPolicy.single_shot(timeout=timeout)
    if name.startswith("retry-"):
        try:
            attempts = int(name[len("retry-"):])
        except ValueError:
            raise ValueError(f"bad retry policy {name!r}: retry-N needs an integer N")
        if attempts < 2:
            raise ValueError(f"bad retry policy {name!r}: retry-N needs N >= 2")
        return RetryPolicy(max_attempts=attempts, timeout=timeout)
    raise ValueError(
        f"unknown retry policy {name!r} (expected 'single-shot' or 'retry-N')"
    )


@dataclass(frozen=True)
class SweepPoint:
    """One fully resolved scenario in a sweep grid.

    ``index`` is the point's position in the spec's canonical grid order
    and ``sim_seed`` its derived simulator seed — both are functions of
    the spec alone, which is what makes sharded execution reproducible.
    """

    index: int
    sim_seed: int
    seed: int  # the seed-axis value this point came from
    technique: str
    topology: str
    loss: float
    burst: float
    retry: str
    duration: float
    port_count: int
    censored: bool
    cover: int
    #: vantage-axis value ("censored" | "clean"), or "" for legacy specs
    #: that pin the condition with the ``censored`` flag alone
    vantage: str = ""
    #: censor-axis value (a registered censor-family name), or "" for
    #: legacy specs, which run the default "gfc" model
    censor: str = ""
    #: synthetic background-population size (tiered-fidelity users), or 0
    #: for no background population (the legacy grid)
    population: int = 0
    #: crash-injection hook for tests/CI: "" (none), "exception", "exit",
    #: or "unpicklable" (the record refuses to cross the pool boundary)
    fail: str = ""
    #: artificial wall-clock cost (seconds slept before the scenario) —
    #: the cost-skew hook the work-stealing starvation tests use.  It
    #: burns real time without touching the simulation, so a point's
    #: results are identical with or without it.
    delay: float = 0.0

    def retry_policy(self) -> RetryPolicy:
        return parse_retry_policy(self.retry)

    def censor_name(self) -> str:
        """The censor family this point runs against ("gfc" for legacy
        points with no censor-axis value)."""
        return self.censor or "gfc"

    def vantage_name(self) -> str:
        """The vantage this point measures from (``censored`` | ``clean``).

        Explicit vantage-axis values win; legacy points ("" vantage)
        derive it from the topology and the ``censored`` flag — a
        three-node path has no censor anywhere, so it is always clean.
        """
        if self.topology == "three-node":
            return "clean"
        if self.vantage:
            return self.vantage
        return "censored" if self.censored else "clean"

    def effective_censored(self) -> bool:
        """Whether the censor enforces for this point's run."""
        return self.topology == "censored-as" and self.vantage_name() == "censored"

    def as_dict(self) -> Dict[str, object]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SweepPoint":
        return cls(**data)


@dataclass
class SweepSpec:
    """A cartesian grid of scenario parameters.

    Axes (each a sequence; the grid is their product, in this fixed
    order): ``seeds`` × ``techniques`` × ``topologies`` × ``loss_rates``
    × ``retry_policies``.  The remaining fields are per-point constants.
    """

    name: str = "sweep"
    base_seed: int = 0
    seeds: Tuple[int, ...] = (0,)
    techniques: Tuple[str, ...] = ("scan",)
    topologies: Tuple[str, ...] = ("three-node",)
    loss_rates: Tuple[float, ...] = (0.0,)
    retry_policies: Tuple[str, ...] = ("single-shot",)
    #: optional vantage axis ("censored" / "clean"); empty keeps the
    #: legacy single-condition grid controlled by the ``censored`` flag.
    #: When non-empty it is the fastest-varying axis and overrides
    #: ``censored`` per point — list both values to get every scenario
    #: measured from both vantages for differential classification.
    vantages: Tuple[str, ...] = ()
    #: optional censor axis (registered censor-family names, see
    #: :func:`repro.censor.censor_families`); empty keeps the legacy
    #: default-"gfc" grid.  When non-empty it is the fastest-varying
    #: axis (after ``vantages``) and each point runs against that
    #: family — the "which technique survives which censor" sweep.
    censors: Tuple[str, ...] = ()
    #: optional background-population axis (synthetic tiered-fidelity
    #: user counts; 0 = no population).  When non-empty it is the
    #: fastest-varying axis (after ``censors``); each point stands up
    #: that many simulated users of hybrid-fidelity cover traffic.
    #: Needs the censored-as topology (the population gateways attach to
    #: its switch/routers).
    populations: Tuple[int, ...] = ()
    #: Gilbert–Elliott mean burst length for lossy points.
    burst: float = 5.0
    #: simulated-seconds budget per point.
    duration: float = 120.0
    #: ports per scan target (three-node topology).
    port_count: int = 100
    #: censor on/off (censored-as topology).
    censored: bool = True
    #: spoofed-cover host count (censored-as techniques that use cover).
    cover: int = 8
    #: grid-index -> fail mode ("exception" | "exit" | "unpicklable"),
    #: for crash-isolation tests and the CI smoke job.
    inject_failures: Dict[int, str] = field(default_factory=dict)
    #: grid-index -> wall-clock seconds of artificial per-point cost, for
    #: the work-stealing starvation/skew tests (delays change wall time,
    #: never simulation outcomes).
    inject_delays: Dict[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.seeds = tuple(self.seeds)
        self.techniques = tuple(self.techniques)
        self.topologies = tuple(self.topologies)
        self.loss_rates = tuple(self.loss_rates)
        self.retry_policies = tuple(self.retry_policies)
        self.vantages = tuple(self.vantages)
        self.censors = tuple(self.censors)
        self.populations = tuple(int(count) for count in self.populations)
        self.inject_failures = {
            int(index): mode for index, mode in dict(self.inject_failures).items()
        }
        self.inject_delays = {
            int(index): float(delay)
            for index, delay in dict(self.inject_delays).items()
        }
        self._validate()

    def _validate(self) -> None:
        for axis_name in ("seeds", "techniques", "topologies", "loss_rates",
                          "retry_policies"):
            if not getattr(self, axis_name):
                raise ValueError(f"sweep axis {axis_name!r} must be non-empty")
        for technique in self.techniques:
            if technique not in TECHNIQUES:
                raise ValueError(
                    f"unknown technique {technique!r} (choose from {TECHNIQUES})"
                )
        for topology in self.topologies:
            if topology not in TOPOLOGIES:
                raise ValueError(
                    f"unknown topology {topology!r} (choose from {TOPOLOGIES})"
                )
        if "three-node" in self.topologies:
            unsupported = [t for t in self.techniques
                           if t not in THREE_NODE_TECHNIQUES]
            if unsupported:
                raise ValueError(
                    f"three-node topology only supports {THREE_NODE_TECHNIQUES}; "
                    f"got {unsupported} (use topology 'censored-as' for these)"
                )
        for loss in self.loss_rates:
            if not 0.0 <= loss < 1.0:
                raise ValueError(f"loss rate {loss} outside [0, 1)")
        for policy in self.retry_policies:
            parse_retry_policy(policy)  # raises on bad names
        for vantage in self.vantages:
            if vantage not in VANTAGES:
                raise ValueError(
                    f"unknown vantage {vantage!r} (choose from {VANTAGES})"
                )
        if "censored" in self.vantages and "three-node" in self.topologies:
            raise ValueError(
                "the 'censored' vantage needs the censored-as topology; "
                "three-node paths have no censor to enforce"
            )
        known_censors = censor_families()
        for censor in self.censors:
            if censor not in known_censors:
                raise ValueError(
                    f"unknown censor family {censor!r} "
                    f"(choose from {known_censors})"
                )
        if self.censors and "three-node" in self.topologies:
            raise ValueError(
                "the censors axis needs the censored-as topology; "
                "three-node paths have no censor tap to swap"
            )
        for count in self.populations:
            if count < 0:
                raise ValueError(f"population sizes must be >= 0 (got {count})")
        if any(self.populations) and "three-node" in self.topologies:
            raise ValueError(
                "the populations axis needs the censored-as topology; "
                "three-node paths have nowhere to attach the population gateways"
            )
        for mode in self.inject_failures.values():
            if mode not in ("exception", "exit", "unpicklable"):
                raise ValueError(f"unknown fail mode {mode!r}")
        for delay in self.inject_delays.values():
            if delay < 0:
                raise ValueError(f"inject_delays values must be >= 0 (got {delay})")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.port_count < 1:
            raise ValueError("port_count must be >= 1")

    def __len__(self) -> int:
        return (len(self.seeds) * len(self.techniques) * len(self.topologies)
                * len(self.loss_rates) * len(self.retry_policies)
                * max(1, len(self.vantages)) * max(1, len(self.censors))
                * max(1, len(self.populations)))

    def points(self) -> List[SweepPoint]:
        """Expand the grid into its canonical ordered point list.

        The order is the axes' cartesian product with ``seeds`` slowest
        and ``retry_policies`` fastest (``vantages``, when present, is
        faster still, ``censors`` faster than that, and ``populations``
        fastest of all); ``sim_seed`` mixes the base seed, the seed-axis
        value, and the grid index so every point gets an independent
        deterministic RNG stream.  An empty ``vantages`` (or ``censors``,
        or ``populations``) axis expands to a single legacy point per
        cell, so pre-existing specs keep their exact grid order and
        indexes.
        """
        out: List[SweepPoint] = []
        grid = itertools.product(
            self.seeds, self.techniques, self.topologies,
            self.loss_rates, self.retry_policies,
            self.vantages or ("",),
            self.censors or ("",),
            self.populations or (0,),
        )
        for index, (seed, technique, topology, loss, retry, vantage,
                    censor, population) in enumerate(grid):
            out.append(SweepPoint(
                index=index,
                sim_seed=mix_seed(self.base_seed, seed, index),
                seed=seed,
                technique=technique,
                topology=topology,
                loss=loss,
                burst=self.burst,
                retry=retry,
                vantage=vantage,
                censor=censor,
                population=population,
                duration=self.duration,
                port_count=self.port_count,
                censored=self.censored,
                cover=self.cover,
                fail=self.inject_failures.get(index, ""),
                delay=self.inject_delays.get(index, 0.0),
            ))
        return out

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready form, embedded verbatim in sweep reports."""
        return {
            "name": self.name,
            "base_seed": self.base_seed,
            "seeds": list(self.seeds),
            "techniques": list(self.techniques),
            "topologies": list(self.topologies),
            "loss_rates": list(self.loss_rates),
            "retry_policies": list(self.retry_policies),
            "vantages": list(self.vantages),
            "censors": list(self.censors),
            "populations": list(self.populations),
            "burst": self.burst,
            "duration": self.duration,
            "port_count": self.port_count,
            "censored": self.censored,
            "cover": self.cover,
            "inject_failures": {
                str(index): mode
                for index, mode in sorted(self.inject_failures.items())
            },
            "inject_delays": {
                str(index): delay
                for index, delay in sorted(self.inject_delays.items())
            },
        }

    def content_hash(self) -> str:
        """A stable digest of the grid this spec denotes.

        Campaign journals are keyed by this hash: a checkpoint is only
        resumable against the *identical* spec, because point indexes
        (and derived seeds) are positions in this spec's grid — any edit
        renumbers the grid and silently mis-attributes journaled
        records.  Hashing the canonical JSON of :meth:`as_dict` makes
        the digest independent of how the spec was loaded (JSON, TOML,
        constructed in code) and of dict ordering.
        """
        canonical = json.dumps(
            self.as_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    @classmethod
    def from_mapping(cls, data: Mapping[str, object]) -> "SweepSpec":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown sweep spec keys: {sorted(unknown)}")
        return cls(**dict(data))

    @classmethod
    def load(cls, path: str) -> "SweepSpec":
        """Load a spec from a ``.json`` or ``.toml`` file."""
        if path.endswith(".toml"):
            try:
                import tomllib
            except ImportError as exc:  # pragma: no cover - py<3.11
                raise RuntimeError(
                    "TOML specs need Python 3.11+ (tomllib); use JSON instead"
                ) from exc
            with open(path, "rb") as fh:
                data = tomllib.load(fh)
        else:
            with open(path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        return cls.from_mapping(data)
