"""Campaign journal: an append-only JSONL checkpoint of sweep progress.

A sweep campaign at survey scale (scenario-pack × loss × retry grids run
to millions of points) outlives any single process, so the runner
journals every finished point to ``PREFIX.journal.jsonl`` the moment its
record arrives.  :class:`CampaignStore` owns that file:

- **Line 1 is a header** carrying the spec's content hash (see
  :meth:`SweepSpec.content_hash`).  A journal whose hash does not match
  the spec being run is *stale* — the grid it checkpointed no longer
  exists — and is discarded wholesale rather than half-trusted.
- **Every later line is one executed point**: its grid ``index``, a
  cumulative ``executions`` count for that index (the resume property
  tests assert it stays 1 for points that were never lost), and the
  full JSON record the worker produced.  Lines are canonical JSON, so a
  journaled record merges byte-identically to the in-memory record it
  checkpointed (pinned by ``tests/runner/test_resume.py``).
- **The tail may be torn.**  A crash can land mid-``write``; on load,
  the last line is trusted only if it parses *and* ends in a newline,
  and everything from the first bad byte on is truncated before the
  file is reopened for appending.  Losing the torn point is safe: the
  resume pass simply re-executes it, and points are pure functions of
  their parameters.

Appends ``flush()`` to the OS after every line, so a SIGKILL (the
crash-recovery harness, an OOM kill, a pre-empted spot VM) loses at most
the line being written — exactly the torn tail the loader tolerates.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional, Set

from ..obs.export import canonical_json

__all__ = ["CampaignStore"]

#: Journal schema version; bumped only for incompatible layout changes.
#: 2: point records carry their measurement-record rows (``records``) —
#: a schema-1 journal would resume into a campaign that silently renders
#: an empty record file, so it is discarded instead.
SCHEMA = 2


class CampaignStore:
    """Owns one campaign journal file: load-or-create, append, query.

    ``resume=False`` always starts a fresh journal (truncating any old
    file at ``path``); ``resume=True`` loads whatever valid prefix is on
    disk — unless the header's ``spec_hash`` disagrees with ours, in
    which case the checkpoint belongs to a different grid and is
    discarded.

    ``kill_after`` is a fault-injection hook for the crash-recovery
    tests and the CI kill-and-resume smoke (the journal-layer analogue
    of ``SweepSpec.inject_failures``): after that many appends the
    process dies via ``os._exit`` — uncatchable, like the SIGKILL it
    stands in for — optionally leaving a torn half-line behind
    (``kill_torn=True``) to exercise the truncated-tail path end to end.
    """

    def __init__(
        self,
        path: str,
        spec_hash: str,
        resume: bool = False,
        kill_after: Optional[int] = None,
        kill_torn: bool = False,
    ) -> None:
        self.path = path
        self.spec_hash = spec_hash
        self.kill_after = kill_after
        self.kill_torn = kill_torn
        #: grid index -> the latest journaled record for that point.
        self.records: Dict[int, dict] = {}
        #: grid index -> cumulative executions journaled for that point.
        self.executions: Dict[int, int] = {}
        #: appends performed by *this* process (drives ``kill_after``).
        self.appended = 0
        self.resumed = False

        valid_bytes = 0
        if resume and os.path.exists(path):
            valid_bytes = self._load()
        if valid_bytes:
            # Drop the torn tail (if any) before appending after it.
            with open(path, "r+b") as fh:
                fh.truncate(valid_bytes)
            self._fh = open(path, "a", encoding="utf-8")
            self.resumed = True
        else:
            parent = os.path.dirname(os.path.abspath(path))
            if parent:
                os.makedirs(parent, exist_ok=True)
            self._fh = open(path, "w", encoding="utf-8")
            self._write_line({
                "kind": "header", "schema": SCHEMA, "spec_hash": spec_hash,
            })

    # -- loading ---------------------------------------------------------------

    def _load(self) -> int:
        """Parse the journal's valid prefix; return its byte length.

        Stops at the first line that is torn (no trailing newline) or
        unparseable; returns 0 — "start fresh" — when the header is
        missing, malformed, from another schema, or hashes a different
        spec.
        """
        with open(self.path, "rb") as fh:
            data = fh.read()
        good = 0
        header_seen = False
        for raw in data.splitlines(keepends=True):
            if not raw.endswith(b"\n"):
                break
            try:
                entry = json.loads(raw)
            except ValueError:
                break
            if not isinstance(entry, dict):
                break
            if not header_seen:
                if (entry.get("kind") != "header"
                        or entry.get("schema") != SCHEMA
                        or entry.get("spec_hash") != self.spec_hash):
                    self.records.clear()
                    self.executions.clear()
                    return 0
                header_seen = True
            elif entry.get("kind") == "point":
                index = int(entry["index"])
                self.records[index] = entry["record"]
                self.executions[index] = int(entry.get("executions", 1))
            good += len(raw)
        if not header_seen:
            return 0
        return good

    # -- queries ---------------------------------------------------------------

    def done(self) -> Set[int]:
        """Indexes whose latest journaled record completed ``"ok"``.

        Failed points are journaled too (so a campaign's failure history
        survives restarts) but deliberately *not* done: a resume re-runs
        them, and their fresh record supersedes the journaled one.
        """
        return {
            index for index, record in self.records.items()
            if record.get("status") == "ok"
        }

    def __len__(self) -> int:
        return len(self.records)

    # -- appends ---------------------------------------------------------------

    def append(self, record: dict) -> None:
        """Journal one finished point record (any completion order)."""
        index = int(record["index"])
        count = self.executions.get(index, 0) + 1
        self._write_line({
            "kind": "point", "index": index, "executions": count,
            "record": record,
        })
        self.executions[index] = count
        self.records[index] = record
        self.appended += 1
        if self.kill_after is not None and self.appended >= self.kill_after:
            self._die()

    def _write_line(self, entry: dict) -> None:
        self._fh.write(canonical_json(entry))
        self._fh.write("\n")
        # One flush per point pushes the line into the OS: from here on
        # it survives the death of this process (though not of the host).
        self._fh.flush()

    def _die(self) -> None:  # pragma: no cover - exits the process
        if self.kill_torn:
            # Leave a half-written point line behind: the resume loader
            # must prove it drops exactly this tail and nothing else.
            self._fh.write('{"kind":"point","index":0,"executions":1,"rec')
            self._fh.flush()
        os._exit(137)

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "CampaignStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
