"""Shard planning: split a sweep grid into per-worker point lists.

The planner is pure bookkeeping — no randomness, no load measurement —
so the shard layout is a function of (point list, worker count) alone.
Points are dealt round-robin by grid index, which balances shard sizes
to within one point and interleaves the grid axes across workers (a
contiguous split would hand one worker all the high-loss points of an
ordered grid, serializing the slowest scenarios behind each other).

Because every point carries its own derived seed and workers rebuild
their simulators from the point parameters alone, *any* assignment of
points to workers produces identical per-point results; sharding only
decides wall-clock balance, never outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from .spec import SweepPoint

__all__ = ["Shard", "ShardPlanner"]


@dataclass(frozen=True)
class Shard:
    """One worker's slice of the grid."""

    worker_id: int
    points: Tuple[SweepPoint, ...]

    def __len__(self) -> int:
        return len(self.points)


class ShardPlanner:
    """Deals sweep points across ``workers`` shards, round-robin."""

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1 (got {workers})")
        self.workers = workers

    def plan(self, points: Sequence[SweepPoint]) -> List[Shard]:
        """Shards in worker-id order; empty shards are dropped."""
        shards = []
        for worker_id in range(self.workers):
            assigned = tuple(points[worker_id::self.workers])
            if assigned:
                shards.append(Shard(worker_id=worker_id, points=assigned))
        return shards
