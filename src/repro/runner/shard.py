"""Dispatch planning: who runs which sweep points, in what order.

Two planners, both pure bookkeeping — no randomness, no load
measurement — so their layouts are functions of (point list, worker
count) alone:

- :class:`ShardPlanner` pre-assigns points round-robin by grid index
  (``points[w::workers]``), the original static dispatch.  Balanced in
  *count* but blind to *cost*: a shard that drew several high-loss,
  high-retry points serializes them behind each other while its
  siblings idle.
- :class:`QueuePlanner` orders points for a shared queue that workers
  pull from as they finish — work stealing.  Point costs vary wildly
  across the grid (a lossy censored-as point with retries simulates
  orders of magnitude more events than a clean three-node scan), and a
  pull queue adapts to that skew without measuring anything.  The
  planner's only job is the *initial* order: most expensive first
  (longest-processing-time heuristic), so the grid's whales start
  immediately instead of landing last on an otherwise-drained queue.

Because every point carries its own derived seed and workers rebuild
their simulators from the point parameters alone, *any* assignment of
points to workers — static shards, stolen queue slots, a resume pass
running leftovers — produces identical per-point results; dispatch only
decides wall-clock balance, never outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from .spec import SweepPoint, parse_retry_policy

__all__ = ["Shard", "ShardPlanner", "QueuePlanner", "estimate_cost"]


@dataclass(frozen=True)
class Shard:
    """One worker's slice of the grid."""

    worker_id: int
    points: Tuple[SweepPoint, ...]

    def __len__(self) -> int:
        return len(self.points)


class ShardPlanner:
    """Deals sweep points across ``workers`` shards, round-robin."""

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1 (got {workers})")
        self.workers = workers

    def plan(self, points: Sequence[SweepPoint]) -> List[Shard]:
        """Shards in worker-id order; empty shards are dropped."""
        shards = []
        for worker_id in range(self.workers):
            assigned = tuple(points[worker_id::self.workers])
            if assigned:
                shards.append(Shard(worker_id=worker_id, points=assigned))
        return shards


def estimate_cost(point: SweepPoint) -> float:
    """A relative wall-clock cost estimate for one sweep point.

    Only the *ordering* this induces matters (the queue planner sorts by
    it); the scale is arbitrary.  The drivers, in observed order of
    impact: the censored-as topology simulates a whole AS rather than
    three hosts; loss multiplies event counts through retransmission and
    timer churn; extra measurement attempts replay the probe schedule;
    and ports × duration bound the raw probe volume.  A background
    population adds flow-arrival events proportional to users × duration
    (plus packet expansion for the tap-crossing share), easily dominating
    the measurement itself on large points — without this term the
    work-stealing queue would schedule population whales last and
    serialize the whole sweep behind them.
    """
    attempts = parse_retry_policy(point.retry).max_attempts
    base = 6.0 if point.topology == "censored-as" else 1.0
    loss_factor = 1.0 + 12.0 * point.loss
    retry_factor = 1.0 + 0.6 * (attempts - 1)
    cost = base * loss_factor * retry_factor * point.port_count * point.duration
    if point.population:
        cost += 2.0 * point.population * point.duration
    if point.delay:
        # injected wall-clock skew dwarfs simulated cost by construction;
        # weight it high enough that a delayed point always sorts first
        cost += 1e9 * point.delay
    return cost


class QueuePlanner:
    """Orders points for the shared work-stealing queue.

    Descending estimated cost, grid index as the deterministic
    tie-break.  The order affects only scheduling: results are merged by
    grid index regardless of completion order, so a wrong cost estimate
    costs wall-clock, never bytes.
    """

    def order(self, points: Sequence[SweepPoint]) -> List[SweepPoint]:
        return sorted(points, key=lambda p: (-estimate_cost(p), p.index))
