"""Scale-out scenario sweeps: declarative grids, resumable campaigns,
work-stealing execution, deterministic merge.

The campaign service the ROADMAP's resumable-sweep item asks for:
:class:`SweepSpec` declares a cartesian grid of scenario parameters
(and content-hashes it), :class:`CampaignStore` journals every finished
point to an append-only JSONL checkpoint, :class:`QueuePlanner` /
:class:`ShardPlanner` plan work-stealing or static dispatch, and
:class:`SweepRunner` executes the grid — serially or on a process pool,
fresh or resumed from a journal — and folds per-point metrics into one
snapshot byte-identical to an uninterrupted serial run.  See
``docs/ARCHITECTURE.md`` ("The sweep runner" / "Resumable campaigns")
for the design.
"""

from .runner import DISPATCH_MODES, SweepRunner
from .shard import QueuePlanner, Shard, ShardPlanner, estimate_cost
from .spec import TOPOLOGIES, SweepPoint, SweepSpec, parse_retry_policy
from .store import CampaignStore
from .worker import run_point, run_shard

__all__ = [
    "CampaignStore",
    "DISPATCH_MODES",
    "QueuePlanner",
    "Shard",
    "ShardPlanner",
    "SweepPoint",
    "SweepSpec",
    "SweepRunner",
    "TOPOLOGIES",
    "estimate_cost",
    "parse_retry_policy",
    "run_point",
    "run_shard",
]
