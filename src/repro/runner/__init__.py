"""Scale-out scenario sweeps: declarative grids, sharded execution,
deterministic merge.

The embarrassingly parallel layer the ROADMAP's sharding/batching item
asks for: :class:`SweepSpec` declares a cartesian grid of scenario
parameters, :class:`ShardPlanner` deals the grid across workers, and
:class:`SweepRunner` executes it — serially or on a process pool — and
folds per-worker metrics into one snapshot byte-identical to a serial
run.  See ``docs/ARCHITECTURE.md`` ("Sweep runner") for the design.
"""

from .runner import SweepRunner
from .shard import Shard, ShardPlanner
from .spec import TOPOLOGIES, SweepPoint, SweepSpec, parse_retry_policy
from .worker import run_point, run_shard

__all__ = [
    "Shard",
    "ShardPlanner",
    "SweepPoint",
    "SweepSpec",
    "SweepRunner",
    "TOPOLOGIES",
    "parse_retry_policy",
    "run_point",
    "run_shard",
]
