"""Sweep worker: executes grid points in an isolated simulator + registry.

``run_point`` is the whole unit of isolation: it builds a fresh
:class:`~repro.netsim.engine.Simulator` (seeded from the point alone), a
fresh :class:`~repro.obs.MetricsRegistry` installed only for the scope of
the run, executes the scenario, and returns a JSON-ready record — no
state leaks between points, so a point's record is identical whether it
runs in-process, in a pool worker, or on the third retry after a sibling
crashed.  ``run_shard`` wraps a worker's point list with per-point
exception containment and a bounded retry budget.

Both functions take and return plain dicts (not dataclasses) so they
cross the ``ProcessPoolExecutor`` pickle boundary without dragging
simulator objects along.
"""

from __future__ import annotations

import os
import pickle
import re
import time
import traceback
from typing import Dict, List, Mapping, Optional

from ..analysis.metrics import run_report
from ..core.evaluation import build_environment, technique_factory
from ..core.measurement import MeasurementContext
from ..core.results import summarize
from ..core.risk import assess_risk
from ..core.scanning import ScanMeasurement, ScanTarget
from ..netsim import WebServer, build_three_node, burst_loss_profile
from ..obs import MetricsRegistry, use_registry
from ..results.record import rows_from_point
from .spec import SweepPoint

__all__ = ["run_point", "run_shard"]


def _impairment_profile(point: SweepPoint):
    return burst_loss_profile(
        marginal=point.loss, mean_burst_length=point.burst, jitter=0.001
    )


def _serialize_results(results) -> List[Dict[str, object]]:
    return [
        {
            "target": result.target,
            "verdict": result.verdict.value,
            "detail": result.detail,
            "time": result.time,
            "samples": result.samples,
            "attempts": result.attempts,
            "confidence": result.confidence,
        }
        for result in results
    ]


def _record_rows(
    point: SweepPoint,
    results: List[Dict[str, object]],
    registry: MetricsRegistry,
    censor: str,
    evaded: Optional[bool],
    background_bytes: int = 0,
) -> List[Dict[str, object]]:
    """Build the point's measurement-record rows and count them.

    Runs before the registry snapshot is taken, so the
    ``measurement_rows_total`` counter it bumps rides the merged metrics —
    that counter's total equaling the record sink's row count is the
    conservation cross-check the runner's report carries.
    """
    rows = rows_from_point(
        point.as_dict(), results, point.vantage_name(), censor, evaded,
        background_bytes=background_bytes,
    )
    counter = registry.counter(
        "measurement_rows_total",
        "measurement-record rows produced",
        ("technique", "verdict"),
    )
    for row in rows:
        counter.inc((row["technique"], row["verdict"]))
    return rows


def _run_three_node(point: SweepPoint, registry: MetricsRegistry) -> Dict[str, object]:
    """The false-block-curve workload: scan a known-open server over an
    (optionally) impaired path with no censor anywhere."""
    topo = build_three_node(seed=point.sim_seed)
    WebServer(topo.server)
    if point.loss > 0.0:
        topo.network.impair_all_links(_impairment_profile(point))
    ctx = MeasurementContext(client=topo.client, retry_policy=point.retry_policy())
    technique = ScanMeasurement(
        ctx,
        [ScanTarget(topo.server.ip, [80], "server")],
        port_count=point.port_count,
        probe_interval=0.005,
        timeout=1.0,
    )
    technique.start()
    topo.sim.run(until=topo.sim.now + point.duration)
    results = _serialize_results(technique.results)
    # No censor and no MVR anywhere in this topology: censor="none",
    # evasion not applicable.
    rows = _record_rows(point, results, registry, censor="none", evaded=None)
    return {
        "results": results,
        "verdicts": summarize(technique.results),
        "technique_done": technique.done,
        "records": rows,
        "report": run_report(
            registry=registry, sim=topo.sim, links=topo.network.links
        ),
    }


def _run_censored_as(point: SweepPoint, registry: MetricsRegistry) -> Dict[str, object]:
    """The Figure-1 workload: one technique inside the full censored AS."""
    censored = point.effective_censored()
    env = build_environment(
        censored=censored,
        seed=point.sim_seed,
        censor=point.censor_name(),
        synthetic_users=point.population,
    )
    if point.loss > 0.0:
        env.topo.network.impair_all_links(_impairment_profile(point))
    env.ctx.retry_policy = point.retry_policy()
    technique = technique_factory(point.technique, point.cover)(env)
    if env.population is not None:
        # Background cover runs for the whole measurement window; hybrid
        # fidelity expands only the tap-crossing share to packets.
        env.population.start(point.duration)
    technique.start()
    env.run(duration=point.duration)
    results = _serialize_results(technique.results)
    # Point-level evasion verdict for the record rows: read-only
    # (run_analyst=False) so probing the risk model never perturbs the
    # surveillance summary the report already carries.
    risk = assess_risk(
        env.surveillance,
        technique=technique.name,
        measurer_user=env.topo.measurement_client.user or "measurer",
        measurer_ip=env.topo.measurement_client.ip,
        run_analyst=False,
    )
    # Record rows carry the enforcing model's family name; a clean
    # vantage has nothing enforcing (every family is inert under a
    # disabled policy), so its rows keep the legacy "none".
    rows = _record_rows(
        point, results, registry,
        censor=point.censor_name() if censored else "none",
        evaded=risk.evaded,
        background_bytes=(
            env.population.bytes_total() if env.population is not None else 0
        ),
    )
    return {
        "results": results,
        "verdicts": summarize(technique.results),
        "technique_done": technique.done,
        "censor_events": len(env.censor.events),
        "records": rows,
        "risk": {
            "attributed_alerts": risk.attributed_alerts,
            "attribution_confidence": risk.attribution_confidence,
            "evaded": risk.evaded,
        },
        "report": run_report(
            registry=registry,
            sim=env.sim,
            links=env.topo.network.links,
            surveillance=env.surveillance,
        ),
    }


def run_point(point_data: Mapping[str, object], in_process: bool = False) -> Dict[str, object]:
    """Execute one sweep point and return its JSON-ready record.

    ``in_process`` softens the ``fail="exit"`` injection into an
    exception: serial mode runs points in the parent process, where an
    ``os._exit`` would kill the sweep itself instead of a worker.
    """
    point = SweepPoint.from_dict(point_data)
    if point.delay:
        # inject_delays cost-skew hook: burn wall-clock without touching
        # the simulation, so dispatch order is the only thing that moves
        time.sleep(point.delay)
    if point.fail == "exit" and not in_process:
        os._exit(41)  # simulate a hard worker death (OOM-kill, segfault)
    if point.fail == "unpicklable":
        # A record whose payload cannot cross the pool's pickle boundary
        # (the shape of a metric/result object leaking a lock, a lambda,
        # a socket).  run_shard's picklability guard must turn this into
        # a failed record *naming this point* — the regression for
        # treating result-pickling errors as anonymous shard deaths.
        return {
            "index": point.index,
            "params": point.as_dict(),
            "status": "ok",
            "poison": lambda: None,
        }
    if point.fail:
        raise RuntimeError(f"injected failure at sweep point {point.index}")

    registry = MetricsRegistry()
    with use_registry(registry):
        if point.topology == "three-node":
            payload = _run_three_node(point, registry)
        else:
            payload = _run_censored_as(point, registry)
    record: Dict[str, object] = {
        "index": point.index,
        "params": point.as_dict(),
        "status": "ok",
    }
    record.update(payload)
    return record


def _unpicklable_error(record: Dict[str, object]) -> Optional[str]:
    """Return an error message if ``record`` cannot cross the pool boundary.

    A worker whose *result* fails to pickle used to surface as an
    anonymous executor exception — indistinguishable from the point
    itself failing, and naming no point at all.  Checking picklability
    where the record is born (the worker still knows which point it
    belongs to) turns that into an ordinary failed record.  Runs in
    serial mode too, so serial and pooled sweeps of the same spec stay
    byte-identical even for poisoned records.
    """
    try:
        pickle.dumps(record)
        return None
    except Exception as exc:
        # Scrub memory addresses from the message ("<function <lambda> at
        # 0x7f...>"): error records are part of the report, and reports
        # must stay byte-identical across runs and execution modes.
        detail = re.sub(r"0x[0-9a-fA-F]+", "0x..", str(exc))
        return (
            f"result for sweep point {record['index']} could not be "
            f"pickled and cannot cross the worker boundary: "
            f"{type(exc).__name__}: {detail}"
        )


def run_shard(
    shard_points: List[Mapping[str, object]],
    max_point_retries: int = 1,
    in_process: bool = False,
) -> List[Dict[str, object]]:
    """Run a worker's points with per-point containment.

    A point that raises is retried up to ``max_point_retries`` times and
    then recorded as ``status="failed"`` with the traceback — one broken
    scenario never takes down the rest of the shard.  A point whose
    *record* is unpicklable is failed immediately (no retries: the
    poison is deterministic) with an error naming the point.  (A point
    that kills the whole process is the parent's problem; see
    :meth:`SweepRunner._run_point_quarantined`.)
    """
    records = []
    for point_data in shard_points:
        attempts_allowed = 1 + max_point_retries
        for attempt in range(1, attempts_allowed + 1):
            try:
                record = run_point(point_data, in_process=in_process)
                record["attempts_used"] = attempt
                poison = _unpicklable_error(record)
                if poison is not None:
                    record = {
                        "index": point_data["index"],
                        "params": dict(point_data),
                        "status": "failed",
                        "attempts_used": attempt,
                        "error": poison,
                    }
                break
            except Exception:
                if attempt == attempts_allowed:
                    record = {
                        "index": point_data["index"],
                        "params": dict(point_data),
                        "status": "failed",
                        "attempts_used": attempt,
                        "error": traceback.format_exc(limit=8),
                    }
        records.append(record)
    return records
