"""Command-line interface: run the paper's experiments from a shell.

Usage::

    python -m repro matrix                 # E1 accuracy/evasion matrix
    python -m repro vantage                # per-domain blocking matrix
    python -m repro risk --technique spam  # one technique + risk report
    python -m repro syria --population 50000
    python -m repro sav --clients 20000
    python -m repro ethics --prefix 16
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import List, Optional

from .analysis import (
    SyriaLogGenerator,
    analyze_logs,
    load_comparison,
    render_table,
)
from .censor import censor_families
from .core import (
    DDoSMeasurement,
    OvertHTTPMeasurement,
    SpamMeasurement,
    StatelessSpoofedDNSMeasurement,
    assess_risk,
    build_environment,
    evaluate_technique,
)
from .core.evaluation import (
    BLOCKED_TARGETS,
    BLOCKED_TARGETS_FULL,
    CONTROL_TARGETS,
    CONTROL_TARGETS_FULL,
    TECHNIQUES,
    technique_factory as _technique_factory,
)
from .netsim import http_get, resolve
from .obs import MetricsRegistry, Tracer, use_registry, use_tracer, write_json
from .spoofing import BEVERLY_PROFILE, feasibility_summary, sample_scopes


def cmd_matrix(args: argparse.Namespace) -> int:
    targets = BLOCKED_TARGETS + CONTROL_TARGETS
    factories = {
        "overt-http": lambda env: OvertHTTPMeasurement(env.ctx, targets),
        "scan": _technique_factory("scan", cover=args.cover),
        "spam": lambda env: SpamMeasurement(env.ctx, targets),
        "ddos": lambda env: DDoSMeasurement(env.ctx, targets, requests_per_target=25),
        "spoofed-dns": lambda env: StatelessSpoofedDNSMeasurement(
            env.ctx, targets, env.cover_ips(args.cover)
        ),
    }
    rows = []
    for name, factory in factories.items():
        blocked = ["blocked-service"] if name == "scan" else None
        control = ["control-service"] if name == "scan" else None
        outcome = evaluate_technique(
            factory, name, blocked_targets=blocked, control_targets=control,
            seed=args.seed, run_duration=args.duration,
        )
        rows.append([
            name,
            "yes" if outcome.detects_censorship else "NO",
            outcome.accuracy,
            "yes" if outcome.evades_surveillance else "NO",
            "SUCCESS" if outcome.successful else "fails-evasion",
        ])
    print(render_table(
        ["technique", "detects", "accuracy", "evades", "verdict"],
        rows, title="accuracy/evasion matrix (censor on/off)",
    ))
    return 0


def cmd_vantage(args: argparse.Namespace) -> int:
    env = build_environment(censored=not args.open, seed=args.seed,
                            censor=args.censor)
    domains = args.domains or list(BLOCKED_TARGETS_FULL)[:5] + CONTROL_TARGETS_FULL[:2]
    observations = {}
    for domain in domains:
        if domain not in env.ctx.expected_addresses:
            print(f"warning: {domain} not hosted in the simulated world; skipping",
                  file=sys.stderr)
            continue
        observations[domain] = {}
        resolve(env.ctx.client, env.ctx.resolver_ip, domain,
                callback=lambda r, d=domain: observations[d].__setitem__("dns", r))
        http_get(env.ctx.client, env.ctx.expected_addresses[domain], domain,
                 callback=lambda r, d=domain: observations[d].__setitem__("http", r))
    env.run(duration=args.duration)

    poison = env.censor.policy.poison_ip
    rows = []
    for domain, obs in observations.items():
        poisoned = obs["dns"].addresses == [poison]
        rows.append([
            domain,
            "INJECTED" if poisoned else (",".join(obs["dns"].addresses) or obs["dns"].status),
            obs["http"].status,
            "BLOCKED" if poisoned or obs["http"].status in ("reset", "timeout") else "open",
        ])
    print(render_table(["domain", "DNS answer", "direct HTTP", "verdict"], rows,
                       title="vantage study from inside the AS"))
    return 0


def cmd_risk(args: argparse.Namespace) -> int:
    env = build_environment(censored=True, seed=args.seed, censor=args.censor)
    env.surveillance.analyst.escalation_threshold = args.threshold
    technique = _technique_factory(args.technique, args.cover)(env)
    technique.start()
    env.run(duration=args.duration)

    print(f"results ({len(technique.results)}):")
    for result in technique.results[: args.max_results]:
        print(f"  {result}")
    if len(technique.results) > args.max_results:
        print(f"  ... and {len(technique.results) - args.max_results} more")

    risk = assess_risk(env.surveillance, args.technique, "measurer",
                       env.topo.measurement_client.ip, now=env.sim.now)
    print(render_table(
        ["metric", "value"],
        [
            ["attributed alerts", risk.attributed_alerts],
            ["true-origin alerts", risk.true_origin_alerts],
            ["attribution confidence", risk.attribution_confidence],
            ["suspect entropy (bits)", risk.suspect_entropy],
            ["investigated", str(risk.investigated)],
            ["risk score", risk.risk_score()],
            ["evaded (paper criterion)", str(risk.evaded)],
        ],
        title="\nsurveillance risk assessment",
    ))
    return 0


def cmd_deck(args: argparse.Namespace) -> int:
    from .core.platform import MeasurementPlatform

    env = build_environment(censored=not args.open, seed=args.seed,
                            censor=args.censor)
    platform = MeasurementPlatform(env, posture=args.posture, cover_size=args.cover)
    domains = args.domains or list(BLOCKED_TARGETS_FULL)[:5] + CONTROL_TARGETS_FULL[:2]
    report = platform.run_deck(domains, duration=args.duration)

    rows = []
    for test_name, results in report.results_by_test.items():
        for result in results:
            rows.append([test_name, result.target, result.verdict.value])
    print(render_table(["test", "target", "verdict"], rows,
                       title=f"deck results ({args.posture} posture)"))
    print(f"\nblocked domains: {', '.join(report.blocked_domains()) or '(none)'}")
    risk = report.risk
    print(
        f"risk: {risk.attributed_alerts} attributed alert(s), confidence "
        f"{risk.attribution_confidence:.2f}, evaded={risk.evaded}"
    )
    if args.json:
        print("\n" + report.to_json())
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Run one technique fully instrumented; export trace + metrics files.

    Produces ``PREFIX.trace.json`` (Chrome trace-event format — open in
    chrome://tracing or https://ui.perfetto.dev), ``PREFIX.trace.jsonl``
    (one event per line), and ``PREFIX.metrics.json`` (the folded run
    report).  Exports are deterministic: same seed, same bytes.
    """
    from .analysis.metrics import run_report

    registry = MetricsRegistry()
    categories = set(args.categories) if args.categories else None
    tracer = Tracer(categories=categories)
    with use_registry(registry), use_tracer(tracer):
        env = build_environment(censored=not args.open, seed=args.seed,
                                censor=args.censor)
        tracer.bind_clock(lambda: env.sim.now)
        technique = _technique_factory(args.technique, args.cover)(env)
        technique.start()
        env.run(duration=args.duration)
    unfinished = tracer.finalize()

    chrome_path = tracer.write_chrome(f"{args.out}.trace.json")
    jsonl_path = tracer.write_jsonl(f"{args.out}.trace.jsonl")
    report = run_report(
        registry=registry,
        sim=env.sim,
        links=env.topo.network.links,
        surveillance=env.surveillance,
    )
    metrics_path = write_json(f"{args.out}.metrics.json", report)

    print(f"technique: {args.technique}  seed={args.seed}  "
          f"simulated {env.sim.now:.1f}s")
    print(f"results: {len(technique.results)}  "
          f"trace events: {len(tracer.events)}"
          + (f"  (force-closed {unfinished} open span(s))" if unfinished else ""))
    print(f"wrote {chrome_path}  <- load this in chrome://tracing or Perfetto")
    print(f"wrote {jsonl_path}")
    print(f"wrote {metrics_path}")
    return 0


def _sweep_progress_printer(stream):
    """One live, carriage-return-updated progress line on ``stream``.

    Fed by :class:`SweepRunner`'s progress callback, once per journaled
    record — an execution-side channel only, so enabling it can never
    perturb the byte-stable output files.
    """
    def emit(event) -> None:
        stream.write(
            f"\r[sweep] {event['done']}/{event['total']} points"
            f"  failed {event['failed']}"
            f"  sim {event['sim_cost']:.0f}s "
        )
        stream.flush()
    return emit


def cmd_sweep(args: argparse.Namespace) -> int:
    """Run (or resume) a scenario-sweep campaign across worker processes.

    Writes ``PREFIX.report.json`` (spec + per-point records + merged
    metrics), ``PREFIX.metrics.json`` (the merged snapshot alone), and
    ``PREFIX.records.jsonl`` (one row per measurement verdict, for
    ``repro report`` / ``repro dashboard``), and journals every finished
    point to ``PREFIX.journal.jsonl`` as it completes.  While the
    campaign is in flight, ``PREFIX.partial.json`` holds an atomically
    rewritten progress document.  The final files are byte-identical for
    any worker count, dispatch mode, or number of kill/``--resume``
    cycles — the report deliberately contains no execution metadata — so
    ``--serial`` output can be ``cmp``-ed against a ``--workers N`` or
    kill-then-resume run (the CI smoke jobs do exactly that).
    """
    import time as _time

    from .results import records_path
    from .runner import CampaignStore, SweepRunner, SweepSpec

    spec = SweepSpec.load(args.spec)
    prefix = args.resume if args.resume is not None else args.out
    store = None
    if not args.no_journal:
        store = CampaignStore(
            f"{prefix}.journal.jsonl",
            spec.content_hash(),
            resume=args.resume is not None,
            kill_after=args.kill_after,
        )
        if args.resume is not None and not store.resumed:
            print(
                f"note: no resumable checkpoint at {store.path} "
                "(missing, or journaled by a different spec); running the "
                "full grid",
                file=sys.stderr,
            )
    # The live progress line wants a human terminal: off when stderr is
    # piped (logs would fill with \r frames) or under --quiet.
    live = sys.stderr.isatty() and not args.quiet
    runner = SweepRunner(
        spec,
        workers=args.workers,
        serial=args.serial,
        max_point_retries=args.point_retries,
        dispatch=args.dispatch,
        store=store,
        partial_path=f"{prefix}.partial.json",
        partial_every=args.partial_every,
        record_path=records_path(prefix),
        progress=_sweep_progress_printer(sys.stderr) if live else None,
    )
    start = _time.perf_counter()
    try:
        report = runner.run()
    finally:
        if live:
            sys.stderr.write("\n")
            sys.stderr.flush()
        if store is not None:
            store.close()
    wall = _time.perf_counter() - start

    report_path = write_json(f"{prefix}.report.json", report)
    metrics_path = write_json(f"{prefix}.metrics.json", report["merged"]["metrics"])

    summary = report["summary"]
    if runner.serial:
        mode = "serial"
    else:
        mode = f"{args.workers} workers ({args.dispatch})"
    records = summary["records"]
    rows = [
        ["spec", spec.name],
        ["spec hash", spec.content_hash()],
        ["grid points", summary["points"]],
        ["ok", summary["ok"]],
        ["failed", summary["failed"]],
        ["record rows", records["rows"]],
        ["rows conserved", "yes" if records["conserved"] else "NO"],
        ["verdicts", ", ".join(f"{k}={v}" for k, v in summary["verdicts"].items())
         or "-"],
        ["mode", mode],
        ["wall clock", f"{wall:.2f}s"],
    ]
    if runner.resumed_indexes:
        rows.insert(3, ["resumed from journal", len(runner.resumed_indexes)])
        rows.insert(4, ["executed this run", len(runner.executed_indexes)])
    print(render_table(
        ["metric", "value"],
        rows,
        title=f"sweep: {spec.name} ({len(spec)} points)",
    ))
    if summary["failed"]:
        print(f"failed points: {summary['failed_points']}", file=sys.stderr)
    print(f"wrote {report_path}")
    print(f"wrote {metrics_path}")
    print(f"wrote {records_path(prefix)}")
    if args.strict and summary["failed"]:
        return 1
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Streaming analysis over a campaign's measurement records.

    Reads ``PREFIX.records.jsonl`` one row at a time (memory stays
    bounded by the vocabulary of techniques/targets/grid cells, never
    the row count) and prints the vantage-differential classification,
    the Figure-1-style accuracy/evasion matrix, the false-block curves,
    and the latency quantiles — as text tables or, with ``--json``, as
    one canonical JSON document.
    """
    from .obs.export import canonical_json
    from .results import build_analysis, records_path, render_report_text

    path = records_path(args.prefix)
    try:
        analysis = build_analysis(args.prefix)
    except FileNotFoundError:
        print(f"error: no record file at {path} — run "
              f"`repro sweep SPEC --out {args.prefix}` first", file=sys.stderr)
        return 1
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(canonical_json(analysis))
    else:
        print(render_report_text(analysis, title=f"campaign records: {path}"))
    return 0


def cmd_dashboard(args: argparse.Namespace) -> int:
    """Render a campaign's records as one self-contained HTML page."""
    from .results import (
        build_analysis,
        read_header,
        records_path,
        render_dashboard,
    )

    path = records_path(args.prefix)
    try:
        header = read_header(path)
        analysis = build_analysis(args.prefix)
    except FileNotFoundError:
        print(f"error: no record file at {path} — run "
              f"`repro sweep SPEC --out {args.prefix}` first", file=sys.stderr)
        return 1
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    html = render_dashboard(
        analysis, subtitle=f"spec {header['spec_hash']}"
    )
    out = args.out if args.out else f"{args.prefix}.dashboard.html"
    with open(out, "w", encoding="utf-8") as fh:
        fh.write(html)
    print(f"wrote {out}")
    return 0


def cmd_syria(args: argparse.Namespace) -> int:
    generator = SyriaLogGenerator(population=args.population,
                                  rng=random.Random(args.seed))
    analysis = analyze_logs(generator.generate(), args.population)
    print(render_table(
        ["metric", "value"],
        [
            ["population", analysis.population],
            ["requests (2 days)", analysis.total_requests],
            ["users touching censored content", analysis.users_touching_censored],
            ["fraction (paper: 0.0157)", analysis.censored_user_fraction],
            [f"analyst-days @ {args.capacity}/day", analysis.pursuit_burden(args.capacity)],
        ],
        title="Syria-log infeasibility analysis",
    ))
    return 0


def cmd_sav(args: argparse.Namespace) -> int:
    scopes = sample_scopes(random.Random(args.seed), args.clients, BEVERLY_PROFILE)
    summary = feasibility_summary(scopes)
    print(render_table(
        ["metric", "measured", "paper"],
        [
            ["clients", summary["total"], "-"],
            ["can spoof within /24", summary["frac_slash24"], 0.77],
            ["can spoof within /16", summary["frac_slash16"], 0.11],
        ],
        title="spoofing feasibility (Beverly et al. model)",
    ))
    return 0


def cmd_ethics(args: argparse.Namespace) -> int:
    comparison = load_comparison(prefix_length=args.prefix,
                                 queries_per_ip=args.queries_per_ip)
    print(render_table(
        ["metric", "value"],
        [
            [f"queries for a /{args.prefix} sweep", comparison.spoofed_queries],
            ["open forwarders (Schomp et al.)", comparison.open_forwarders],
            ["queries per open forwarder", comparison.queries_per_forwarder_equivalent],
            ["vs open-recursive population", comparison.fraction_of_recursive_population],
        ],
        title="measurement load vs. open-resolver practice",
    ))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Can Censorship Measurements Be Safe(r)?' (HotNets 2015)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # Every subcommand accepts --metrics-out: main() installs a registry
    # around the run and snapshots it to the given path afterwards.
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="write a metrics-registry snapshot (JSON) after the run",
    )

    matrix = sub.add_parser("matrix", help="run the E1 accuracy/evasion matrix",
                            parents=[common])
    matrix.add_argument("--seed", type=int, default=0)
    matrix.add_argument("--duration", type=float, default=60.0)
    matrix.add_argument("--cover", type=int, default=8)
    matrix.set_defaults(func=cmd_matrix)

    vantage = sub.add_parser("vantage", help="per-domain blocking matrix from inside the AS",
                             parents=[common])
    vantage.add_argument("--seed", type=int, default=0)
    vantage.add_argument("--duration", type=float, default=30.0)
    vantage.add_argument("--open", action="store_true", help="disable the censor")
    vantage.add_argument("--censor", choices=censor_families(), default="gfc",
                         help="censor-model family at the border (default: gfc)")
    vantage.add_argument("--domains", nargs="*", help="domains to probe")
    vantage.set_defaults(func=cmd_vantage)

    risk = sub.add_parser("risk", help="run one technique and assess measurer risk",
                          parents=[common])
    risk.add_argument("--technique", choices=TECHNIQUES, default="spam")
    risk.add_argument("--censor", choices=censor_families(), default="gfc",
                      help="censor-model family at the border (default: gfc)")
    risk.add_argument("--seed", type=int, default=0)
    risk.add_argument("--duration", type=float, default=90.0)
    risk.add_argument("--cover", type=int, default=11)
    risk.add_argument("--threshold", type=int, default=1,
                      help="analyst escalation threshold")
    risk.add_argument("--max-results", type=int, default=10)
    risk.set_defaults(func=cmd_risk)

    deck = sub.add_parser("deck", help="run the OONI-style test deck at a risk posture",
                          parents=[common])
    deck.add_argument("--posture", choices=("overt", "stealthy", "paranoid"),
                      default="stealthy")
    deck.add_argument("--seed", type=int, default=0)
    deck.add_argument("--duration", type=float, default=120.0)
    deck.add_argument("--cover", type=int, default=11)
    deck.add_argument("--open", action="store_true", help="disable the censor")
    deck.add_argument("--censor", choices=censor_families(), default="gfc",
                      help="censor-model family at the border (default: gfc)")
    deck.add_argument("--domains", nargs="*")
    deck.add_argument("--json", action="store_true",
                      help="also print the full JSON campaign document")
    deck.set_defaults(func=cmd_deck)

    trace = sub.add_parser(
        "trace",
        help="run one technique fully instrumented; export a Perfetto trace",
    )
    trace.add_argument("--technique", choices=TECHNIQUES, default="scan")
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--duration", type=float, default=90.0)
    trace.add_argument("--cover", type=int, default=11)
    trace.add_argument("--open", action="store_true", help="disable the censor")
    trace.add_argument("--censor", choices=censor_families(), default="gfc",
                       help="censor-model family at the border (default: gfc)")
    trace.add_argument("--out", default="run", metavar="PREFIX",
                       help="output prefix (PREFIX.trace.json / .trace.jsonl / .metrics.json)")
    trace.add_argument("--categories", nargs="*", metavar="CAT",
                       help="limit tracing to categories "
                            "(measurement, tcp, rules; default: all)")
    trace.set_defaults(func=cmd_trace)

    sweep = sub.add_parser(
        "sweep",
        help="run or resume a scenario-sweep campaign across worker processes",
    )
    sweep.add_argument("spec", metavar="SPEC",
                       help="sweep spec file (.json or .toml)")
    sweep.add_argument("--workers", type=int, default=1, metavar="N",
                       help="worker processes (default 1)")
    sweep.add_argument("--serial", action="store_true",
                       help="run every point in-process (no pool)")
    sweep.add_argument("--dispatch", choices=("stealing", "round-robin"),
                       default="stealing",
                       help="pool dispatch: shared work-stealing queue "
                            "(default) or static round-robin shards")
    sweep.add_argument("--point-retries", type=int, default=1, metavar="N",
                       help="retries per failing point before marking it failed")
    sweep.add_argument("--out", default="sweep", metavar="PREFIX",
                       help="output prefix (PREFIX.report.json / "
                            "PREFIX.metrics.json / PREFIX.journal.jsonl)")
    sweep.add_argument("--resume", metavar="PREFIX", default=None,
                       help="resume the campaign journaled at "
                            "PREFIX.journal.jsonl: execute only missing or "
                            "failed points, write outputs at PREFIX "
                            "(a journal from a different spec is discarded)")
    sweep.add_argument("--no-journal", action="store_true",
                       help="skip the campaign journal (run is not resumable)")
    sweep.add_argument("--partial-every", type=int, default=8, metavar="N",
                       help="rewrite PREFIX.partial.json every N finished "
                            "points (default 8)")
    sweep.add_argument("--kill-after", type=int, default=None, metavar="N",
                       help="fault injection for crash-recovery tests/CI: "
                            "hard-kill this process after N journaled points")
    sweep.add_argument("--strict", action="store_true",
                       help="exit 1 if any point failed")
    sweep.add_argument("--quiet", action="store_true",
                       help="suppress the live progress line (it is also "
                            "off automatically when stderr is not a TTY)")
    sweep.set_defaults(func=cmd_sweep)

    report = sub.add_parser(
        "report",
        help="streaming analysis over a campaign's measurement records",
    )
    report.add_argument("prefix", metavar="PREFIX",
                        help="campaign output prefix (reads PREFIX.records.jsonl)")
    report.add_argument("--json", action="store_true",
                        help="print the analysis as canonical JSON instead "
                             "of text tables")
    report.set_defaults(func=cmd_report)

    dashboard = sub.add_parser(
        "dashboard",
        help="render a campaign's records as a self-contained HTML page",
    )
    dashboard.add_argument("prefix", metavar="PREFIX",
                           help="campaign output prefix "
                                "(reads PREFIX.records.jsonl)")
    dashboard.add_argument("--out", metavar="PATH", default=None,
                           help="output path (default PREFIX.dashboard.html)")
    dashboard.set_defaults(func=cmd_dashboard)

    syria = sub.add_parser("syria", help="Syria-log infeasibility analysis",
                           parents=[common])
    syria.add_argument("--population", type=int, default=50_000)
    syria.add_argument("--capacity", type=int, default=10)
    syria.add_argument("--seed", type=int, default=0)
    syria.set_defaults(func=cmd_syria)

    sav = sub.add_parser("sav", help="spoofing feasibility statistics",
                         parents=[common])
    sav.add_argument("--clients", type=int, default=20_000)
    sav.add_argument("--seed", type=int, default=0)
    sav.set_defaults(func=cmd_sav)

    ethics = sub.add_parser("ethics", help="measurement-load arithmetic",
                            parents=[common])
    ethics.add_argument("--prefix", type=int, default=16)
    ethics.add_argument("--queries-per-ip", type=int, default=1)
    ethics.set_defaults(func=cmd_ethics)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    metrics_out = getattr(args, "metrics_out", None)
    if metrics_out:
        registry = MetricsRegistry()
        with use_registry(registry):
            status = args.func(args)
        write_json(metrics_out, registry.snapshot())
        print(f"wrote {metrics_out}", file=sys.stderr)
        return status
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
