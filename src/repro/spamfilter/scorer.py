"""The Proofpoint-analogue spam scorer: message -> score in [0, 100].

A weighted-logistic content scorer.  Absolute calibration does not matter
for the reproduction; what Figure 2 needs is that spam-cloaked measurement
messages land decisively in the spam range (the paper's CDF sits in the
high-score region) while normal mail does not.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict

from ..packets import EmailMessage
from .features import SpamFeatures, extract_features

__all__ = ["SpamScorer", "DEFAULT_WEIGHTS", "SPAM_THRESHOLD"]

#: Score at or above which the filter classifies a message as spam.
SPAM_THRESHOLD = 50.0

DEFAULT_WEIGHTS: Dict[str, float] = {
    "phrase_hits": 0.30,
    "caps_ratio": 2.0,
    "exclamations": 0.15,
    "urls": 0.35,
    "money_mentions": 0.40,
    "domain_mismatch": 0.6,
    "subject_shouting": 0.7,
    "bias": -2.6,
}


@dataclass
class SpamScorer:
    """Deterministic feature-weighted scorer."""

    weights: Dict[str, float] = field(default_factory=lambda: dict(DEFAULT_WEIGHTS))

    def raw_score(self, features: SpamFeatures) -> float:
        """The pre-squash linear score."""
        w = self.weights
        return (
            w["phrase_hits"] * min(features.phrase_hits, 12)
            + w["caps_ratio"] * features.caps_ratio
            + w["exclamations"] * min(features.exclamations, 10)
            + w["urls"] * min(features.urls, 6)
            + w["money_mentions"] * min(features.money_mentions, 6)
            + w["domain_mismatch"] * features.domain_mismatch
            + w["subject_shouting"] * features.subject_shouting
            + w["bias"]
        )

    def score(self, message: EmailMessage) -> float:
        """Score in [0, 100]; higher is spammier."""
        raw = self.raw_score(extract_features(message))
        return 100.0 / (1.0 + math.exp(-raw))

    def is_spam(self, message: EmailMessage, threshold: float = SPAM_THRESHOLD) -> bool:
        return self.score(message) >= threshold
