"""Proofpoint-analogue spam filter and synthetic mail corpora."""

from .corpus import (
    HAM_SUBJECTS,
    SPAM_SUBJECTS,
    generate_ham,
    generate_spam,
    measurement_spam_email,
)
from .features import SPAM_PHRASES, SpamFeatures, extract_features
from .scorer import DEFAULT_WEIGHTS, SPAM_THRESHOLD, SpamScorer

__all__ = [
    "DEFAULT_WEIGHTS",
    "HAM_SUBJECTS",
    "SPAM_PHRASES",
    "SPAM_SUBJECTS",
    "SPAM_THRESHOLD",
    "SpamFeatures",
    "SpamScorer",
    "extract_features",
    "generate_ham",
    "generate_spam",
    "measurement_spam_email",
]
