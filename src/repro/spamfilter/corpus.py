"""Synthetic mail corpora: spam templates, ham templates, and the
measurement-cloaking builder.

``measurement_spam_email`` is what the spam measurement technique (paper
Method #2) actually sends: a message that any commercial filter scores as
spam, so the surveillance MVR classes the whole transaction as commodity
spam-bot output and discards it.
"""

from __future__ import annotations

import random
from typing import List

from ..packets import EmailMessage

__all__ = [
    "generate_spam",
    "generate_ham",
    "measurement_spam_email",
    "SPAM_SUBJECTS",
    "HAM_SUBJECTS",
]

SPAM_SUBJECTS = [
    "YOU ARE A WINNER - CLAIM YOUR PRIZE",
    "Act now! Limited time offer inside",
    "CHEAP MEDS no prescription needed",
    "Re: your $5,000,000 inheritance",
    "URGENT: wire transfer waiting",
    "Lose weight fast - 100% guaranteed miracle",
    "FREE casino cash bonus - click here",
    "Refinance today, no obligation",
]

SPAM_BODIES = [
    (
        "Dear friend! You have been selected as our lottery WINNER!!! "
        "Claim your prize of $1,000,000 now at http://win.example-prizes.biz "
        "This is a risk free, 100% guaranteed special offer. Act now! "
        "Click here to unsubscribe."
    ),
    (
        "Get cheap meds online NOW! Viagra and miracle weight loss pills, "
        "special offer, order now at www.cheap-meds-4u.example! "
        "No obligation, earn money as a reseller! Limited time!!!"
    ),
    (
        "URGENT business proposal. I am contacting you about an inheritance "
        "of $5,000,000 USD in Nigeria. Send a wire transfer of $200 for "
        "processing. This is 100% guaranteed and risk free! Act now!"
    ),
    (
        "CONGRATULATIONS!!! FREE casino cash bonus waiting for you. "
        "Click here http://casino.example-bonus.biz to claim $500 now! "
        "Winner winner! Limited time special offer, no obligation!"
    ),
]

SPAM_SENDERS = [
    "promo@example-prizes.biz",
    "deals@cheap-meds-4u.example",
    "barrister@example-lagos.example",
    "bonus@casino-example.biz",
]

HAM_SUBJECTS = [
    "Meeting notes from Tuesday",
    "Re: quarterly report draft",
    "Lunch on Friday?",
    "Homework 3 clarification",
    "Build failure on branch main",
    "Photos from the hike",
]

HAM_BODIES = [
    (
        "Hi, attaching the notes from Tuesday's meeting. The main action "
        "item is to review the draft by Thursday. Let me know if you have "
        "questions. Thanks!"
    ),
    (
        "Hello professor, for problem 2 of homework 3, should we assume the "
        "network is reliable, or do we need to handle packet loss? Thanks."
    ),
    (
        "The nightly build failed on main with a linker error in the "
        "simulator module. I bisected it to yesterday's refactor. Can you "
        "take a look when you get a chance?"
    ),
    (
        "Great seeing everyone this weekend. I uploaded the photos from the "
        "hike to the shared album. The view from the ridge came out really "
        "well."
    ),
]

HAM_SENDERS = [
    "alice@university.edu",
    "bob@university.edu",
    "carol@company.example",
    "dave@university.edu",
]


def generate_spam(rng: random.Random, count: int, recipient: str = "victim@example.com") -> List[EmailMessage]:
    """Sample ``count`` spam messages from the template pool."""
    messages = []
    for _ in range(count):
        subject = rng.choice(SPAM_SUBJECTS)
        body = rng.choice(SPAM_BODIES)
        messages.append(
            EmailMessage(
                sender=rng.choice(SPAM_SENDERS),
                recipient=recipient,
                subject=subject,
                body=body,
                extra_headers={"Reply-To": "reply@different-domain.example"},
            )
        )
    return messages


def generate_ham(rng: random.Random, count: int, recipient: str = "colleague@university.edu") -> List[EmailMessage]:
    """Sample ``count`` legitimate messages from the template pool."""
    messages = []
    for _ in range(count):
        messages.append(
            EmailMessage(
                sender=rng.choice(HAM_SENDERS),
                recipient=recipient,
                subject=rng.choice(HAM_SUBJECTS),
                body=rng.choice(HAM_BODIES),
            )
        )
    return messages


def measurement_spam_email(
    rng: random.Random, target_domain: str, mailbox: str = "info"
) -> EmailMessage:
    """Build the spam-cloaked measurement message for ``target_domain``.

    The recipient is an address at the (potentially censored) target; the
    content is drawn from the spam pool so filters — and therefore the
    surveillance MVR — classify the transaction as bulk spam.
    """
    return EmailMessage(
        sender=rng.choice(SPAM_SENDERS),
        recipient=f"{mailbox}@{target_domain}",
        subject=rng.choice(SPAM_SUBJECTS),
        body=rng.choice(SPAM_BODIES),
        extra_headers={"Reply-To": "reply@different-domain.example"},
    )
