"""Feature extraction for the spam scorer.

Features mirror the classic content signals commercial filters (the paper
used the university's Proofpoint deployment) weigh: spammy phrases,
shouting, URLs, money talk, and header oddities.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict

from ..packets import EmailMessage

__all__ = ["SpamFeatures", "extract_features", "SPAM_PHRASES"]

SPAM_PHRASES = [
    "free",
    "winner",
    "viagra",
    "act now",
    "limited time",
    "click here",
    "no obligation",
    "risk free",
    "100% guaranteed",
    "earn money",
    "weight loss",
    "cheap meds",
    "casino",
    "lottery",
    "prize",
    "urgent",
    "wire transfer",
    "nigeria",
    "inheritance",
    "refinance",
    "enlargement",
    "miracle",
    "unsubscribe",
    "special offer",
    "order now",
    "cash bonus",
]

_URL_RE = re.compile(r"https?://[^\s>]+|www\.[^\s>]+", re.IGNORECASE)
_MONEY_RE = re.compile(r"[$€£]\s?\d[\d,\.]*|\d+\s?(?:dollars|usd|eur)", re.IGNORECASE)


@dataclass
class SpamFeatures:
    """Numeric features for one message."""

    phrase_hits: int
    caps_ratio: float
    exclamations: int
    urls: int
    money_mentions: int
    domain_mismatch: bool
    subject_shouting: bool
    body_length: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "phrase_hits": float(self.phrase_hits),
            "caps_ratio": self.caps_ratio,
            "exclamations": float(self.exclamations),
            "urls": float(self.urls),
            "money_mentions": float(self.money_mentions),
            "domain_mismatch": float(self.domain_mismatch),
            "subject_shouting": float(self.subject_shouting),
            "body_length": float(self.body_length),
        }


def _domain_of(address: str) -> str:
    _, _, domain = address.partition("@")
    return domain.strip(" <>").lower()


def extract_features(message: EmailMessage) -> SpamFeatures:
    """Compute content and header features for ``message``."""
    text = f"{message.subject}\n{message.body}"
    lowered = text.lower()

    phrase_hits = sum(lowered.count(phrase) for phrase in SPAM_PHRASES)

    letters = [char for char in text if char.isalpha()]
    caps = sum(1 for char in letters if char.isupper())
    caps_ratio = caps / len(letters) if letters else 0.0

    sender_domain = _domain_of(message.sender)
    claimed_domain = _domain_of(message.extra_headers.get("Reply-To", message.sender))
    domain_mismatch = bool(
        sender_domain and claimed_domain and sender_domain != claimed_domain
    )

    subject_letters = [char for char in message.subject if char.isalpha()]
    subject_shouting = bool(subject_letters) and all(
        char.isupper() for char in subject_letters
    )

    return SpamFeatures(
        phrase_hits=phrase_hits,
        caps_ratio=caps_ratio,
        exclamations=text.count("!"),
        urls=len(_URL_RE.findall(text)),
        money_mentions=len(_MONEY_RE.findall(text)),
        domain_mismatch=domain_mismatch,
        subject_shouting=subject_shouting,
        body_length=len(message.body),
    )
