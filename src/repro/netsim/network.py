"""The network: nodes, links, routing, and hop-by-hop packet forwarding.

Routing uses shortest-path next-hop tables computed once after topology
construction.  Forwarding applies, at every transit node: SAV (routers),
TTL decrement with ICMP time-exceeded (routers), then each attached tap in
order — the same pipeline a packet crosses on the paper's OVS switch with
its censor and MVR Snort instances.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

from typing import Sequence

from ..packets import IPPacket
from .engine import Simulator
from .impairment import ImpairmentModel, mix_seed
from .link import Link
from .middlebox import Action, TapContext
from .node import Host, Node
from .stack import NetworkStack

__all__ = ["Network"]


def _ip_to_int(ip: str) -> int:
    """Dotted-quad IPv4 → 32-bit integer (raises ValueError on junk)."""
    parts = ip.split(".")
    if len(parts) != 4:
        raise ValueError(f"not an IPv4 address: {ip!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"not an IPv4 address: {ip!r}")
        value = (value << 8) | octet
    return value


class Network:
    """A simulated internetwork bound to a :class:`Simulator`."""

    def __init__(self, sim: Simulator, default_latency: float = 0.001) -> None:
        self.sim = sim
        self.default_latency = default_latency
        self.nodes: Dict[str, Node] = {}
        self.links: List[Link] = []
        self._adjacency: Dict[str, List[Link]] = {}
        self._ip_owner: Dict[str, Host] = {}
        self._next_hop: Dict[str, Dict[str, str]] = {}
        self._routes_dirty = True
        self.dropped_no_route = 0
        #: Prefix routes: (mask, network, prefix_len, gateway host), kept
        #: longest-prefix-first.  Lets population traffic address millions
        #: of synthetic users without a Host object per user — anything in
        #: the prefix is delivered to (or materialized from) the gateway.
        self._prefix_routes: List[Tuple[int, int, int, Host]] = []
        self._prefix_cache: Dict[str, Optional[Host]] = {}
        #: (src_name, dst_name) -> does the routed path cross any tap?
        #: The fidelity boundary for population traffic; invalidated on
        #: route rebuilds and tap attachment.
        self._tap_path_cache: Dict[Tuple[str, str], bool] = {}

    # -- topology construction ----------------------------------------------

    def add(self, node: Node) -> Node:
        """Attach a node; hosts get a protocol stack bound to the simulator."""
        if node.name in self.nodes:
            raise ValueError(f"duplicate node name: {node.name}")
        node.network = self
        self.nodes[node.name] = node
        self._adjacency[node.name] = []
        if isinstance(node, Host):
            if node.ip in self._ip_owner:
                raise ValueError(f"duplicate host IP: {node.ip}")
            self._ip_owner[node.ip] = node
            node.stack = NetworkStack(node, self.sim)
        self._routes_dirty = True
        return node

    def connect(
        self, a: Node, b: Node, latency: Optional[float] = None, loss: float = 0.0
    ) -> Link:
        """Create a bidirectional link between two attached nodes."""
        for node in (a, b):
            if node.name not in self.nodes:
                raise ValueError(f"{node.name} is not attached to this network")
        link = Link(
            a,
            b,
            latency if latency is not None else self.default_latency,
            loss=loss,
            # Each link gets its own RNG stream derived from the simulation
            # seed and its ordinal, so impairments are deterministic without
            # consuming (and thereby perturbing) the simulator's shared rng.
            seed=mix_seed(self.sim.seed, len(self.links)),
        )
        self.links.append(link)
        self._adjacency[a.name].append(link)
        self._adjacency[b.name].append(link)
        self._routes_dirty = True
        return link

    def impair_all_links(
        self, models: Sequence[ImpairmentModel], direction: str = "both"
    ) -> None:
        """Install an impairment profile on every link (cloned per direction).

        The blunt instrument for "make the whole network hostile" — e.g.
        running the full evaluation scenario under 5% burst loss.
        """
        for link in self.links:
            link.impair(models, direction=direction)

    def host(self, name: str) -> Host:
        """Look up a host by name (raises KeyError with a clear message)."""
        node = self.nodes.get(name)
        if not isinstance(node, Host):
            raise KeyError(f"no host named {name!r}")
        return node

    def add_prefix_route(self, cidr: str, gateway: Host) -> None:
        """Deliver every address inside ``cidr`` to ``gateway``.

        Exact host IPs always win over prefixes, and longer prefixes win
        over shorter ones.  Registration order breaks prefix-length ties
        deterministically (first registered wins).
        """
        network, sep, length = cidr.partition("/")
        if not sep:
            raise ValueError(f"prefix route needs CIDR notation, got {cidr!r}")
        prefix_len = int(length)
        if not 0 <= prefix_len <= 32:
            raise ValueError(f"prefix length out of range: {cidr!r}")
        mask = ((1 << prefix_len) - 1) << (32 - prefix_len) if prefix_len else 0
        net_int = _ip_to_int(network)
        if net_int & ~mask & 0xFFFFFFFF:
            raise ValueError(f"host bits set in prefix route: {cidr!r}")
        if gateway.name not in self.nodes:
            raise ValueError(f"{gateway.name} is not attached to this network")
        self._prefix_routes.append((mask, net_int, prefix_len, gateway))
        self._prefix_routes.sort(key=lambda entry: -entry[2])
        self._prefix_cache.clear()

    def owner_of(self, ip: str) -> Optional[Host]:
        """The host owning ``ip`` (exact, then longest prefix), or None."""
        owner = self._ip_owner.get(ip)
        if owner is not None or not self._prefix_routes:
            return owner
        try:
            return self._prefix_cache[ip]
        except KeyError:
            pass
        resolved: Optional[Host] = None
        try:
            ip_int = _ip_to_int(ip)
        except ValueError:
            ip_int = None
        if ip_int is not None:
            for mask, net_int, _length, gateway in self._prefix_routes:
                if ip_int & mask == net_int:
                    resolved = gateway
                    break
        self._prefix_cache[ip] = resolved
        return resolved

    def _build_routes(self) -> None:
        """All-pairs next-hop tables via BFS (uniform edge weight)."""
        self._next_hop = {}
        for source_name in self.nodes:
            table: Dict[str, str] = {}
            visited = {source_name}
            queue = deque([source_name])
            first_hop: Dict[str, str] = {}
            while queue:
                current = queue.popleft()
                for link in self._adjacency[current]:
                    neighbor = link.other_end(self.nodes[current]).name
                    if neighbor in visited:
                        continue
                    visited.add(neighbor)
                    first_hop[neighbor] = (
                        neighbor if current == source_name else first_hop[current]
                    )
                    table[neighbor] = first_hop[neighbor]
                    queue.append(neighbor)
            self._next_hop[source_name] = table
        self._routes_dirty = False
        self._tap_path_cache.clear()

    # -- path analysis (the tiered-fidelity boundary) ------------------------

    def path_nodes(self, src_name: str, dst_name: str) -> List[str]:
        """Node names along the routed path, endpoints included."""
        if self._routes_dirty:
            self._build_routes()
        path = [src_name]
        current = src_name
        while current != dst_name:
            hop = self._next_hop[current].get(dst_name)
            if hop is None:
                raise ValueError(f"no route from {src_name} to {dst_name}")
            path.append(hop)
            current = hop
        return path

    def path_crosses_tap(self, src_name: str, dst_name: str) -> bool:
        """Does the routed path cross any node carrying a tap?

        This is the fidelity decision for population traffic: flows on
        tap-free paths advance as aggregate events; flows that would be
        observed must be expanded to byte-accurate packets.  Results are
        cached per (src, dst) pair; the cache is dropped whenever routes
        are rebuilt or a tap is attached, so the answer is always current.
        """
        if self._routes_dirty:
            self._build_routes()
        key = (src_name, dst_name)
        try:
            return self._tap_path_cache[key]
        except KeyError:
            pass
        crosses = any(
            self.nodes[name].taps for name in self.path_nodes(src_name, dst_name)
        )
        self._tap_path_cache[key] = crosses
        return crosses

    def _invalidate_tap_paths(self) -> None:
        """Called by ``Node.add_tap``: tap placement changed underneath us."""
        self._tap_path_cache.clear()

    # -- forwarding ----------------------------------------------------------

    def originate(self, packet: IPPacket, at: Node, delay: float = 0.0) -> None:
        """Introduce a packet into the network at ``at``.

        Used both by hosts sending traffic and by taps injecting packets
        mid-path (censor RSTs, poisoned DNS answers).
        """
        if self._routes_dirty:
            self._build_routes()
        self.sim.at_uncancellable(delay, lambda: self._forward_from(packet, at))

    def _forward_from(self, packet: IPPacket, node: Node) -> None:
        """Send ``packet`` one hop from ``node`` toward its destination."""
        owner = self.owner_of(packet.dst)
        if owner is None:
            self.dropped_no_route += 1
            return
        if owner is node:
            owner.deliver(packet)
            return
        hop_name = self._next_hop[node.name].get(owner.name)
        if hop_name is None:
            self.dropped_no_route += 1
            return
        link = self._find_link(node.name, hop_name)
        fate = link.transmit(
            packet.wire_length(), self.sim.now, link.direction_from(node)
        )
        if fate.dropped:
            return
        next_node = self.nodes[hop_name]
        delays = fate.delays
        # Hop events are fire-and-forget (nothing ever cancels an in-flight
        # packet), so the uncancellable fast path skips Timer allocation.
        self.sim.at_uncancellable(
            link.latency + delays[0], lambda: self._arrive(packet, next_node)
        )
        for extra in delays[1:]:
            # Duplicate copies get their own packet object: downstream
            # routers mutate TTL in place, so copies must not share state.
            duplicate = packet.copy()
            duplicate.metadata.update(packet.metadata)
            self.sim.at_uncancellable(
                link.latency + extra,
                lambda p=duplicate: self._arrive(p, next_node),
            )

    def _find_link(self, a_name: str, b_name: str) -> Link:
        for link in self._adjacency[a_name]:
            if link.other_end(self.nodes[a_name]).name == b_name:
                return link
        raise RuntimeError(f"no link between {a_name} and {b_name}")

    def _arrive(self, packet: IPPacket, node: Node) -> None:
        """Process a packet arriving at ``node`` and keep forwarding it."""
        node.packets_seen += 1
        if isinstance(node, Host):
            node.deliver(packet)
            return

        # Routers: source-address validation, then TTL handling.
        if getattr(node, "decrements_ttl", False):
            if not node.sav_permits(packet):  # type: ignore[attr-defined]
                node.sav_drops += 1  # type: ignore[attr-defined]
                node.packets_dropped += 1
                return
            packet.ttl -= 1
            if packet.ttl <= 0:
                node.ttl_drops += 1  # type: ignore[attr-defined]
                node.packets_dropped += 1
                if getattr(node, "send_time_exceeded", False):
                    self._emit_time_exceeded(packet, node)
                return

        # Taps, in attachment order (censor before/after MVR is topology
        # configuration, matching the paper's two Snort instances).
        ctx = TapContext(self, node, self.sim.now)
        for tap in node.taps:
            if (
                packet.metadata.get("injected_by") == getattr(tap, "name", None)
                and not tap.sees_own_injections()
            ):
                continue
            action = tap.process(packet, ctx)
            if action is Action.DROP:
                node.packets_dropped += 1
                return

        self._forward_from(packet, node)

    def _emit_time_exceeded(self, packet: IPPacket, node: Node) -> None:
        from ..packets import ICMPMessage

        # Routers have no address of their own in this model; the error is
        # attributed to the router by name in metadata for diagnostics.
        reply = IPPacket(
            src=packet.dst,  # stand-in: model lacks router interface IPs
            dst=packet.src,
            payload=ICMPMessage.time_exceeded(packet.to_bytes()),
        )
        reply.metadata["time_exceeded_at"] = node.name
        reply.metadata["injected_by"] = f"router:{node.name}"
        self.originate(reply, node)

    # -- introspection --------------------------------------------------------

    def total_bytes_carried(self) -> int:
        return sum(link.bytes_carried for link in self.links)

    def total_packets_carried(self) -> int:
        return sum(link.packets_carried for link in self.links)
