"""The network: nodes, links, routing, and hop-by-hop packet forwarding.

Routing uses shortest-path next-hop tables computed once after topology
construction.  Forwarding applies, at every transit node: SAV (routers),
TTL decrement with ICMP time-exceeded (routers), then each attached tap in
order — the same pipeline a packet crosses on the paper's OVS switch with
its censor and MVR Snort instances.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional

from typing import Sequence

from ..packets import IPPacket
from .engine import Simulator
from .impairment import ImpairmentModel, mix_seed
from .link import Link
from .middlebox import Action, TapContext
from .node import Host, Node
from .stack import NetworkStack

__all__ = ["Network"]


class Network:
    """A simulated internetwork bound to a :class:`Simulator`."""

    def __init__(self, sim: Simulator, default_latency: float = 0.001) -> None:
        self.sim = sim
        self.default_latency = default_latency
        self.nodes: Dict[str, Node] = {}
        self.links: List[Link] = []
        self._adjacency: Dict[str, List[Link]] = {}
        self._ip_owner: Dict[str, Host] = {}
        self._next_hop: Dict[str, Dict[str, str]] = {}
        self._routes_dirty = True
        self.dropped_no_route = 0

    # -- topology construction ----------------------------------------------

    def add(self, node: Node) -> Node:
        """Attach a node; hosts get a protocol stack bound to the simulator."""
        if node.name in self.nodes:
            raise ValueError(f"duplicate node name: {node.name}")
        node.network = self
        self.nodes[node.name] = node
        self._adjacency[node.name] = []
        if isinstance(node, Host):
            if node.ip in self._ip_owner:
                raise ValueError(f"duplicate host IP: {node.ip}")
            self._ip_owner[node.ip] = node
            node.stack = NetworkStack(node, self.sim)
        self._routes_dirty = True
        return node

    def connect(
        self, a: Node, b: Node, latency: Optional[float] = None, loss: float = 0.0
    ) -> Link:
        """Create a bidirectional link between two attached nodes."""
        for node in (a, b):
            if node.name not in self.nodes:
                raise ValueError(f"{node.name} is not attached to this network")
        link = Link(
            a,
            b,
            latency if latency is not None else self.default_latency,
            loss=loss,
            # Each link gets its own RNG stream derived from the simulation
            # seed and its ordinal, so impairments are deterministic without
            # consuming (and thereby perturbing) the simulator's shared rng.
            seed=mix_seed(self.sim.seed, len(self.links)),
        )
        self.links.append(link)
        self._adjacency[a.name].append(link)
        self._adjacency[b.name].append(link)
        self._routes_dirty = True
        return link

    def impair_all_links(
        self, models: Sequence[ImpairmentModel], direction: str = "both"
    ) -> None:
        """Install an impairment profile on every link (cloned per direction).

        The blunt instrument for "make the whole network hostile" — e.g.
        running the full evaluation scenario under 5% burst loss.
        """
        for link in self.links:
            link.impair(models, direction=direction)

    def host(self, name: str) -> Host:
        """Look up a host by name (raises KeyError with a clear message)."""
        node = self.nodes.get(name)
        if not isinstance(node, Host):
            raise KeyError(f"no host named {name!r}")
        return node

    def owner_of(self, ip: str) -> Optional[Host]:
        """The host owning ``ip``, or None if unassigned."""
        return self._ip_owner.get(ip)

    def _build_routes(self) -> None:
        """All-pairs next-hop tables via BFS (uniform edge weight)."""
        self._next_hop = {}
        for source_name in self.nodes:
            table: Dict[str, str] = {}
            visited = {source_name}
            queue = deque([source_name])
            first_hop: Dict[str, str] = {}
            while queue:
                current = queue.popleft()
                for link in self._adjacency[current]:
                    neighbor = link.other_end(self.nodes[current]).name
                    if neighbor in visited:
                        continue
                    visited.add(neighbor)
                    first_hop[neighbor] = (
                        neighbor if current == source_name else first_hop[current]
                    )
                    table[neighbor] = first_hop[neighbor]
                    queue.append(neighbor)
            self._next_hop[source_name] = table
        self._routes_dirty = False

    # -- forwarding ----------------------------------------------------------

    def originate(self, packet: IPPacket, at: Node, delay: float = 0.0) -> None:
        """Introduce a packet into the network at ``at``.

        Used both by hosts sending traffic and by taps injecting packets
        mid-path (censor RSTs, poisoned DNS answers).
        """
        if self._routes_dirty:
            self._build_routes()
        self.sim.at(delay, lambda: self._forward_from(packet, at))

    def _forward_from(self, packet: IPPacket, node: Node) -> None:
        """Send ``packet`` one hop from ``node`` toward its destination."""
        owner = self._ip_owner.get(packet.dst)
        if owner is None:
            self.dropped_no_route += 1
            return
        if owner is node:
            owner.deliver(packet)
            return
        hop_name = self._next_hop[node.name].get(owner.name)
        if hop_name is None:
            self.dropped_no_route += 1
            return
        link = self._find_link(node.name, hop_name)
        fate = link.transmit(
            packet.wire_length(), self.sim.now, link.direction_from(node)
        )
        if fate.dropped:
            return
        next_node = self.nodes[hop_name]
        delays = fate.delays
        self.sim.at(link.latency + delays[0], lambda: self._arrive(packet, next_node))
        for extra in delays[1:]:
            # Duplicate copies get their own packet object: downstream
            # routers mutate TTL in place, so copies must not share state.
            duplicate = packet.copy()
            duplicate.metadata.update(packet.metadata)
            self.sim.at(
                link.latency + extra,
                lambda p=duplicate: self._arrive(p, next_node),
            )

    def _find_link(self, a_name: str, b_name: str) -> Link:
        for link in self._adjacency[a_name]:
            if link.other_end(self.nodes[a_name]).name == b_name:
                return link
        raise RuntimeError(f"no link between {a_name} and {b_name}")

    def _arrive(self, packet: IPPacket, node: Node) -> None:
        """Process a packet arriving at ``node`` and keep forwarding it."""
        node.packets_seen += 1
        if isinstance(node, Host):
            node.deliver(packet)
            return

        # Routers: source-address validation, then TTL handling.
        if getattr(node, "decrements_ttl", False):
            if not node.sav_permits(packet):  # type: ignore[attr-defined]
                node.sav_drops += 1  # type: ignore[attr-defined]
                node.packets_dropped += 1
                return
            packet.ttl -= 1
            if packet.ttl <= 0:
                node.ttl_drops += 1  # type: ignore[attr-defined]
                node.packets_dropped += 1
                if getattr(node, "send_time_exceeded", False):
                    self._emit_time_exceeded(packet, node)
                return

        # Taps, in attachment order (censor before/after MVR is topology
        # configuration, matching the paper's two Snort instances).
        ctx = TapContext(self, node, self.sim.now)
        for tap in node.taps:
            if (
                packet.metadata.get("injected_by") == getattr(tap, "name", None)
                and not tap.sees_own_injections()
            ):
                continue
            action = tap.process(packet, ctx)
            if action is Action.DROP:
                node.packets_dropped += 1
                return

        self._forward_from(packet, node)

    def _emit_time_exceeded(self, packet: IPPacket, node: Node) -> None:
        from ..packets import ICMPMessage

        # Routers have no address of their own in this model; the error is
        # attributed to the router by name in metadata for diagnostics.
        reply = IPPacket(
            src=packet.dst,  # stand-in: model lacks router interface IPs
            dst=packet.src,
            payload=ICMPMessage.time_exceeded(packet.to_bytes()),
        )
        reply.metadata["time_exceeded_at"] = node.name
        reply.metadata["injected_by"] = f"router:{node.name}"
        self.originate(reply, node)

    # -- introspection --------------------------------------------------------

    def total_bytes_carried(self) -> int:
        return sum(link.bytes_carried for link in self.links)

    def total_packets_carried(self) -> int:
        return sum(link.packets_carried for link in self.links)
