"""Discrete-event network simulator (the Mininet-testbed substitute).

Provides the event engine, network graph with hop-by-hop forwarding, host
protocol stacks (TCP/UDP/ICMP), middlebox tap points, application servers
(DNS, HTTP, SMTP), and the paper's reference topologies.
"""

from .capture import CapturedPacket, PacketCapture, dns_only, tcp_only
from .dnssrv import DNSResult, DNSServer, Zone, resolve
from .engine import Simulator, Timer
from .flows import FIDELITY_MODES, AggregateFlow, FlowFidelityEngine
from .impairment import (
    BandwidthLimit,
    Duplication,
    GilbertElliottLoss,
    ImpairedPath,
    ImpairmentModel,
    IndependentLoss,
    LatencyJitter,
    PacketFate,
    Reordering,
    burst_loss_profile,
    mix_seed,
)
from .link import DirectionStats, Link
from .mailsrv import MailServer, SMTPResult, send_mail
from .middlebox import Action, Middlebox, TapContext
from .multicountry import CountryAS, TwoCountryTopology, build_two_country
from .network import Network
from .node import Host, Node, Router, Switch
from .resolver import CacheEntry, CachingResolver
from .stack import NetworkStack, TCPConnection
from .tlssrv import TLSResult, TLSServer, tls_probe
from .topology import (
    CLIENT_AS_CIDR,
    CensoredASTopology,
    ThreeNodeTopology,
    build_censored_as,
    build_three_node,
)
from .websrv import HTTPResult, WebServer, http_get

__all__ = [
    "Action",
    "AggregateFlow",
    "FIDELITY_MODES",
    "FlowFidelityEngine",
    "BandwidthLimit",
    "CacheEntry",
    "CachingResolver",
    "DirectionStats",
    "Duplication",
    "GilbertElliottLoss",
    "ImpairedPath",
    "ImpairmentModel",
    "IndependentLoss",
    "LatencyJitter",
    "PacketFate",
    "Reordering",
    "burst_loss_profile",
    "mix_seed",
    "CapturedPacket",
    "PacketCapture",
    "dns_only",
    "tcp_only",
    "CLIENT_AS_CIDR",
    "CensoredASTopology",
    "CountryAS",
    "DNSResult",
    "DNSServer",
    "HTTPResult",
    "Host",
    "Link",
    "MailServer",
    "Middlebox",
    "Network",
    "NetworkStack",
    "Node",
    "Router",
    "SMTPResult",
    "Simulator",
    "Switch",
    "TCPConnection",
    "TLSResult",
    "TLSServer",
    "TapContext",
    "ThreeNodeTopology",
    "Timer",
    "TwoCountryTopology",
    "WebServer",
    "Zone",
    "build_censored_as",
    "build_three_node",
    "build_two_country",
    "http_get",
    "resolve",
    "send_mail",
    "tls_probe",
]
