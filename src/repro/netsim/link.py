"""Point-to-point links with fixed latency and byte accounting."""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .node import Node

__all__ = ["Link"]


class Link:
    """A bidirectional link between two nodes.

    Delivery is FIFO per direction (the event queue breaks ties in
    scheduling order), so TCP segments arrive in order and the simulated
    stack needs no reordering logic.
    """

    def __init__(
        self, a: "Node", b: "Node", latency: float = 0.001, loss: float = 0.0
    ) -> None:
        if latency < 0:
            raise ValueError("latency must be non-negative")
        if not 0.0 <= loss < 1.0:
            raise ValueError("loss must be in [0, 1)")
        self.a = a
        self.b = b
        self.latency = latency
        #: Independent per-packet drop probability (no retransmission in
        #: the simulated TCP, so loss surfaces as timeouts — exactly the
        #: confound that makes single-shot probes unreliable and repeated
        #: sampling worthwhile, paper Method #3).
        self.loss = loss
        self.bytes_carried = 0
        self.packets_carried = 0
        self.packets_lost = 0

    def other_end(self, node: "Node") -> "Node":
        """The node on the far side of ``node``."""
        if node is self.a:
            return self.b
        if node is self.b:
            return self.a
        raise ValueError(f"{node!r} is not attached to this link")

    def connects(self, a: "Node", b: "Node") -> bool:
        return {self.a, self.b} == {a, b}

    def account(self, size: int) -> None:
        self.bytes_carried += size
        self.packets_carried += 1

    def __repr__(self) -> str:
        return f"Link({self.a.name} <-> {self.b.name}, {self.latency * 1000:.1f}ms)"
