"""Point-to-point links: latency, per-direction impairments, accounting.

A link carries packets in both directions, but real paths are rarely
symmetric — loss, queueing, and jitter differ per direction.  Each
direction therefore owns its own impairment pipeline (seeded RNG stream
included) and its own statistics, so analyses can report uplink and
downlink loss separately and tests can assert packet conservation
(offered = delivered − duplicated-extra + lost) per direction.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Dict, Iterable, Optional, Sequence

from ..obs.metrics import active_or_none
from .impairment import (
    DELIVER_CLEAN,
    DROPPED,
    ImpairedPath,
    ImpairmentModel,
    PacketFate,
    mix_seed,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .node import Node

__all__ = ["Link", "DirectionStats"]

#: Direction labels: "ab" is a->b (from ``Link.a`` toward ``Link.b``).
DIRECTIONS = ("ab", "ba")


class DirectionStats:
    """Per-direction packet/byte accounting.

    ``packets_offered`` counts transmission attempts entering the link;
    ``packets_carried`` counts delivered copies (duplicates included);
    ``packets_duplicated`` counts the *extra* copies only.  Conservation:
    ``offered == carried - duplicated + lost``.
    """

    __slots__ = (
        "packets_offered",
        "packets_carried",
        "packets_lost",
        "packets_duplicated",
        "bytes_carried",
    )

    def __init__(self) -> None:
        self.packets_offered = 0
        self.packets_carried = 0
        self.packets_lost = 0
        self.packets_duplicated = 0
        self.bytes_carried = 0

    @property
    def conserved(self) -> bool:
        return self.packets_offered == (
            self.packets_carried - self.packets_duplicated + self.packets_lost
        )

    def as_dict(self) -> Dict[str, int]:
        return {
            "packets_offered": self.packets_offered,
            "packets_carried": self.packets_carried,
            "packets_lost": self.packets_lost,
            "packets_duplicated": self.packets_duplicated,
            "bytes_carried": self.bytes_carried,
        }

    def __repr__(self) -> str:
        return (
            f"DirectionStats(offered={self.packets_offered}, "
            f"carried={self.packets_carried}, lost={self.packets_lost}, "
            f"dup={self.packets_duplicated})"
        )


class Link:
    """A bidirectional link between two nodes.

    Without impairments, delivery is FIFO per direction (the event queue
    breaks ties in scheduling order).  Impairment pipelines may drop,
    delay (reordering), or duplicate packets per direction; the TCP
    stack's retransmission and in-order delivery logic covers the rest.
    """

    def __init__(
        self,
        a: "Node",
        b: "Node",
        latency: float = 0.001,
        loss: float = 0.0,
        seed: int = 0,
    ) -> None:
        if latency < 0:
            raise ValueError("latency must be non-negative")
        if not 0.0 <= loss < 1.0:
            raise ValueError("loss must be in [0, 1)")
        self.a = a
        self.b = b
        self.latency = latency
        #: Independent per-packet drop probability, applied before any
        #: impairment pipeline — the simple knob for "this path is dirty".
        #: Loss surfaces as timeouts unless the stack retransmits, exactly
        #: the confound that makes single-shot probes unreliable and
        #: repeated sampling worthwhile (paper Method #3).
        self.loss = loss
        self.seed = seed
        self.stats: Dict[str, DirectionStats] = {
            direction: DirectionStats() for direction in DIRECTIONS
        }
        self._rng: Dict[str, random.Random] = {
            direction: random.Random(mix_seed(seed, index))
            for index, direction in enumerate(DIRECTIONS)
        }
        self._paths: Dict[str, Optional[ImpairedPath]] = {
            direction: None for direction in DIRECTIONS
        }
        # Resolved once at construction: None when observability is off,
        # so transmit() pays a single attribute check per packet.
        obs = active_or_none()
        self._obs = obs
        if obs is not None:
            self.obs_name = f"{a.name}<->{b.name}"
            self._m_offered = obs.counter(
                "link_packets_offered_total",
                "Transmission attempts entering a link direction",
                ("link", "direction"),
            )
            self._m_carried = obs.counter(
                "link_packets_carried_total",
                "Delivered copies (duplicates included) per link direction",
                ("link", "direction"),
            )
            self._m_dropped = obs.counter(
                "link_packets_dropped_total",
                "Drops per link direction, labeled by the impairment that "
                "dropped (or legacy_loss for the flat loss knob)",
                ("link", "direction", "reason"),
            )
            self._m_duplicated = obs.counter(
                "link_packets_duplicated_total",
                "Extra delivered copies per link direction",
                ("link", "direction"),
            )
            self._m_bytes = obs.counter(
                "link_bytes_carried_total",
                "Bytes delivered per link direction (duplicates included)",
                ("link", "direction"),
            )

    # -- impairment configuration -------------------------------------------

    def impair(
        self,
        models: Sequence[ImpairmentModel],
        direction: str = "both",
    ) -> "Link":
        """Install an impairment pipeline (cloned per direction).

        ``direction`` is ``"ab"``, ``"ba"``, or ``"both"``.  Models are
        cloned so each direction gets pristine state, and each pipeline
        draws from its own deterministic RNG stream.
        """
        for d in self._directions(direction):
            self._paths[d] = ImpairedPath(
                [model.clone() for model in models], rng=self._rng[d]
            )
        return self

    def clear_impairment(self, direction: str = "both") -> None:
        for d in self._directions(direction):
            self._paths[d] = None

    def impairment(self, direction: str) -> Optional[ImpairedPath]:
        return self._paths[direction]

    @staticmethod
    def _directions(direction: str) -> Iterable[str]:
        if direction == "both":
            return DIRECTIONS
        if direction not in DIRECTIONS:
            raise ValueError(f"direction must be 'ab', 'ba', or 'both', not {direction!r}")
        return (direction,)

    # -- topology helpers ----------------------------------------------------

    def other_end(self, node: "Node") -> "Node":
        """The node on the far side of ``node``."""
        if node is self.a:
            return self.b
        if node is self.b:
            return self.a
        raise ValueError(f"{node!r} is not attached to this link")

    def direction_from(self, node: "Node") -> str:
        """The direction label for traffic sent by ``node``."""
        if node is self.a:
            return "ab"
        if node is self.b:
            return "ba"
        raise ValueError(f"{node!r} is not attached to this link")

    def connects(self, a: "Node", b: "Node") -> bool:
        return {self.a, self.b} == {a, b}

    # -- transmission ---------------------------------------------------------

    def transmit(self, size: int, now: float, direction: str) -> PacketFate:
        """Rule on one packet entering the link; update accounting.

        Returns the packet's fate: empty delays = dropped, otherwise one
        extra delay per delivered copy (on top of ``latency``).
        """
        stats = self.stats[direction]
        stats.packets_offered += 1
        obs = self._obs
        if obs is not None:
            self._m_offered.inc((self.obs_name, direction))
        if self.loss and self._rng[direction].random() < self.loss:
            stats.packets_lost += 1
            if obs is not None:
                self._m_dropped.inc((self.obs_name, direction, "legacy_loss"))
            return DROPPED
        path = self._paths[direction]
        if path is None:
            stats.packets_carried += 1
            stats.bytes_carried += size
            if obs is not None:
                self._m_carried.inc((self.obs_name, direction))
                self._m_bytes.inc((self.obs_name, direction), size)
            return DELIVER_CLEAN
        fate = path.traverse(size, now)
        if fate.dropped:
            stats.packets_lost += 1
            if obs is not None:
                reason = path.last_drop_reason or "impairment"
                self._m_dropped.inc((self.obs_name, direction, reason))
            return fate
        copies = fate.copies
        stats.packets_carried += copies
        stats.packets_duplicated += copies - 1
        stats.bytes_carried += size * copies
        if obs is not None:
            self._m_carried.inc((self.obs_name, direction), copies)
            if copies > 1:
                self._m_duplicated.inc((self.obs_name, direction), copies - 1)
            self._m_bytes.inc((self.obs_name, direction), size * copies)
        return fate

    def account_flow(self, packets: int, size: int, direction: str) -> None:
        """Record an aggregate flow's traversal: ``packets`` packets and
        ``size`` total wire bytes cross this direction in one ledger entry.

        The flow-level fast path for population traffic far from any tap:
        no per-packet events, no impairment pipeline (aggregate flows are
        by definition unobserved, so their loss cannot change any tap
        observable), but the :class:`DirectionStats` conservation
        invariant still holds — everything offered is carried.
        """
        stats = self.stats[direction]
        stats.packets_offered += packets
        stats.packets_carried += packets
        stats.bytes_carried += size
        if self._obs is not None:
            self._m_offered.inc((self.obs_name, direction), packets)
            self._m_carried.inc((self.obs_name, direction), packets)
            self._m_bytes.inc((self.obs_name, direction), size)

    def account(self, size: int, direction: str = "ab") -> None:
        """Record an externally-decided delivery (legacy hook)."""
        stats = self.stats[direction]
        stats.packets_offered += 1
        stats.packets_carried += 1
        stats.bytes_carried += size
        if self._obs is not None:
            self._m_offered.inc((self.obs_name, direction))
            self._m_carried.inc((self.obs_name, direction))
            self._m_bytes.inc((self.obs_name, direction), size)

    # -- aggregate accounting (both directions) ------------------------------

    @property
    def bytes_carried(self) -> int:
        return sum(stats.bytes_carried for stats in self.stats.values())

    @property
    def packets_carried(self) -> int:
        return sum(stats.packets_carried for stats in self.stats.values())

    @property
    def packets_lost(self) -> int:
        return sum(stats.packets_lost for stats in self.stats.values())

    @property
    def packets_offered(self) -> int:
        return sum(stats.packets_offered for stats in self.stats.values())

    @property
    def packets_duplicated(self) -> int:
        return sum(stats.packets_duplicated for stats in self.stats.values())

    def __repr__(self) -> str:
        return f"Link({self.a.name} <-> {self.b.name}, {self.latency * 1000:.1f}ms)"
