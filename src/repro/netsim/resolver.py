"""A caching recursive resolver (the in-AS ISP resolver).

Real censored networks put a recursive resolver between clients and the
world, which changes the measurement picture in two ways this module makes
studyable:

- client queries to the local resolver never cross the border, so the
  censor only sees (and poisons) the resolver's *upstream* lookups;
- a poisoned upstream answer is **cached**, so one injection poisons every
  subsequent client for the record's TTL — censorship outlives the
  on-path event that caused it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..packets import DNSMessage, RCODE_OK, RCODE_SERVFAIL
from .node import Host

__all__ = ["CacheEntry", "CachingResolver"]

DNS_PORT = 53
NEGATIVE_TTL = 60.0


@dataclass
class CacheEntry:
    """One cached response."""

    message: DNSMessage
    expires: float

    def fresh(self, now: float) -> bool:
        return now < self.expires


class CachingResolver:
    """Recursive resolver app: cache first, then forward upstream."""

    def __init__(
        self,
        host: Host,
        upstream_ip: str,
        upstream_timeout: float = 2.0,
        max_cache: int = 10_000,
    ) -> None:
        self.host = host
        self.upstream_ip = upstream_ip
        self.upstream_timeout = upstream_timeout
        self.max_cache = max_cache
        self.cache: Dict[Tuple[str, int], CacheEntry] = {}
        self.hits = 0
        self.misses = 0
        self.upstream_queries = 0
        self.upstream_timeouts = 0
        assert host.stack is not None
        host.stack.udp_listen(DNS_PORT, self._on_query)

    @property
    def _sim(self):
        return self.host.stack.sim

    # -- serving -------------------------------------------------------------

    def _on_query(self, payload: bytes, src_ip: str, src_port: int, reply_fn) -> None:
        try:
            query = DNSMessage.from_bytes(payload)
        except (ValueError, IndexError):
            return
        question = query.question
        if question is None or query.is_response:
            return

        entry = self.cache.get(question.key())
        if entry is not None and entry.fresh(self._sim.now):
            self.hits += 1
            reply_fn(self._retag(entry.message, query).to_bytes())
            return
        self.misses += 1
        self._forward(query, reply_fn)

    def _forward(self, query: DNSMessage, reply_fn) -> None:
        question = query.question
        upstream_txid = self._sim.rng.randrange(0x10000)
        upstream = DNSMessage.query(question.name, qtype=question.qtype,
                                    txid=upstream_txid)
        self.upstream_queries += 1

        def on_reply(payload: bytes, _packet) -> None:
            try:
                response = DNSMessage.from_bytes(payload)
            except (ValueError, IndexError):
                return
            if response.txid != upstream_txid:
                return  # off-path junk that lost the txid lottery
            self._store(question.key(), response)
            reply_fn(self._retag(response, query).to_bytes())

        def on_timeout() -> None:
            self.upstream_timeouts += 1
            reply_fn(query.reply(answers=[], rcode=RCODE_SERVFAIL,
                                 authoritative=False).to_bytes())

        self.host.stack.udp_request(
            dst=self.upstream_ip,
            dport=DNS_PORT,
            payload=upstream.to_bytes(),
            on_reply=on_reply,
            on_timeout=on_timeout,
            timeout=self.upstream_timeout,
        )

    # -- cache ------------------------------------------------------------------

    def _store(self, key: Tuple[str, int], response: DNSMessage) -> None:
        if len(self.cache) >= self.max_cache and key not in self.cache:
            # Evict the entry expiring soonest.
            victim = min(self.cache, key=lambda k: self.cache[k].expires)
            del self.cache[victim]
        if response.rcode == RCODE_OK and response.answers:
            ttl = min(record.ttl for record in response.answers)
        else:
            ttl = NEGATIVE_TTL
        self.cache[key] = CacheEntry(
            message=response, expires=self._sim.now + ttl
        )

    def _retag(self, cached: DNSMessage, query: DNSMessage) -> DNSMessage:
        """Re-address a cached response to a new client's transaction."""
        return DNSMessage(
            txid=query.txid,
            is_response=True,
            rcode=cached.rcode,
            recursion_desired=query.recursion_desired,
            recursion_available=True,
            authoritative=False,
            questions=list(query.questions),
            answers=list(cached.answers),
            authority=list(cached.authority),
            additional=list(cached.additional),
        )

    def flush(self) -> int:
        """Drop all cache entries; returns how many were dropped."""
        count = len(self.cache)
        self.cache.clear()
        return count

    def cached_answer(self, name: str, qtype: int = 1) -> Optional[DNSMessage]:
        """Peek at the cache (fresh entries only)."""
        entry = self.cache.get((name.rstrip(".").lower(), qtype))
        if entry is not None and entry.fresh(self._sim.now):
            return entry.message
        return None
