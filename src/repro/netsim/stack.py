"""Per-host protocol stack: TCP state machine, UDP sockets, ICMP behaviour.

Faithfulness notes, because several paper techniques rely on real stack
behaviour:

- A TCP packet to a port with no listener or connection elicits a RST
  (closed-port behaviour).  This is what makes nmap-style SYN scans
  (Method #1) meaningful, and it is exactly the "replay" complication of
  Section 4.1: a spoofed client that receives a SYN/ACK for a connection it
  never opened answers with a RST.
- A UDP datagram to a closed port elicits ICMP port-unreachable.
- ICMP echo requests are answered, so TTL estimation via ping works.
- TCP retransmits: SYNs, data, and FINs that go unacknowledged are resent
  with exponential backoff (go-back-N, single timer per connection, a
  SYN-retry cap in ``NetworkStack.syn_retries``).  On a lossy or
  reordering link the stream still delivers exactly once and in order;
  only when retries exhaust does the application see ``timeout`` — which
  is what lets measurement code distinguish "the path is lossy" from
  "something is eating my packets".
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from ..obs.metrics import active_or_none
from ..obs.trace import active_tracer
from ..packets import (
    ACK,
    FIN,
    ICMP_DEST_UNREACH,
    ICMP_ECHO_REQUEST,
    ICMP_TIME_EXCEEDED,
    ICMPMessage,
    IPPacket,
    PSH,
    RST,
    SYN,
    TCPSegment,
    UDPDatagram,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import Simulator
    from .node import Host

__all__ = ["NetworkStack", "TCPConnection"]

EPHEMERAL_BASE = 32768
DEFAULT_CONNECT_TIMEOUT = 3.0

#: Retransmission defaults (simulated seconds).  RTTs in the reference
#: topologies are single-digit milliseconds, so a conservative fixed RTO
#: converges fast without per-connection RTT estimation.
DEFAULT_RTO_INITIAL = 0.5
DEFAULT_RTO_MAX = 4.0
DEFAULT_MAX_RETRANSMITS = 6
DEFAULT_SYN_RETRIES = 4

# TCP connection states (simplified RFC 793 machine; retransmission with
# go-back-N recovery covers loss and reordering introduced by impairments).
CLOSED = "CLOSED"
SYN_SENT = "SYN_SENT"
SYN_RCVD = "SYN_RCVD"
ESTABLISHED = "ESTABLISHED"
FIN_WAIT = "FIN_WAIT"
CLOSE_WAIT = "CLOSE_WAIT"
LAST_ACK = "LAST_ACK"
RESET = "RESET"

EventHandler = Callable[[str, bytes], None]


class _UnackedSegment:
    """One retransmittable segment awaiting acknowledgement."""

    __slots__ = ("seq", "seq_end", "flags", "payload")

    def __init__(self, seq: int, seq_end: int, flags: int, payload: bytes) -> None:
        self.seq = seq
        self.seq_end = seq_end
        self.flags = flags
        self.payload = payload


class TCPConnection:
    """One endpoint of a simulated TCP connection.

    The application receives events through ``handler(event, data)``:
    ``connected``, ``data``, ``fin``, ``closed``, ``reset``, ``timeout``,
    ``icmp_error``.
    """

    def __init__(
        self,
        stack: "NetworkStack",
        local_port: int,
        remote_ip: str,
        remote_port: int,
        handler: EventHandler,
        ttl: int = 64,
    ) -> None:
        self.stack = stack
        self.local_port = local_port
        self.remote_ip = remote_ip
        self.remote_port = remote_port
        self.handler = handler
        self.ttl = ttl
        self.state = CLOSED
        self.snd_nxt = 0
        self.rcv_nxt = 0
        self._pending_sends: List[bytes] = []
        self._connect_timer = None
        self.bytes_received = 0
        self.bytes_sent = 0
        # Retransmission machinery: unacked segments, one timer, backoff.
        self._unacked: List[_UnackedSegment] = []
        self._rtx_timer = None
        self._rtx_deadline = 0.0
        self._rto = stack.rto_initial
        self._rtx_count = 0
        self.retransmissions = 0
        #: Gate for the whole retransmission machinery; disabling it
        #: models a legacy stack where every loss surfaces as a timeout.
        self.retransmit_enabled = True
        #: Open trace span covering this flow (None when tracing is off).
        self._span = None

    def _begin_span(self, role: str) -> None:
        trace = self.stack._trace
        if trace is not None:
            self._span = trace.begin(
                f"{self.stack.host.name}:{self.local_port}"
                f"->{self.remote_ip}:{self.remote_port}",
                "tcp",
                track="tcp",
                role=role,
                host=self.stack.host.name,
            )

    # -- public API -----------------------------------------------------------

    @property
    def is_open(self) -> bool:
        return self.state == ESTABLISHED

    def send(self, data: bytes) -> None:
        """Send application data (buffered until the handshake completes)."""
        if self.state == ESTABLISHED:
            self._send_segment(PSH | ACK, payload=data)
            self.snd_nxt += len(data)
            self.bytes_sent += len(data)
        elif self.state in (SYN_SENT, SYN_RCVD):
            self._pending_sends.append(data)
        else:
            raise RuntimeError(f"cannot send in state {self.state}")

    def close(self) -> None:
        """Orderly close (FIN)."""
        if self.state == ESTABLISHED:
            self._send_segment(FIN | ACK)
            self.snd_nxt += 1
            self.state = FIN_WAIT
        elif self.state == CLOSE_WAIT:
            self._send_segment(FIN | ACK)
            self.snd_nxt += 1
            self.state = LAST_ACK
        elif self.state in (SYN_SENT, SYN_RCVD):
            self.abort()

    def abort(self) -> None:
        """Abortive close (RST)."""
        if self.state not in (CLOSED, RESET):
            self._send_segment(RST | ACK)
            self._finish(CLOSED, notify=None)

    # -- internals --------------------------------------------------------------

    def _send_segment(
        self,
        flags: int,
        payload: bytes = b"",
        seq: Optional[int] = None,
        register: bool = True,
    ) -> None:
        seq = self.snd_nxt if seq is None else seq
        segment = TCPSegment(
            sport=self.local_port,
            dport=self.remote_port,
            seq=seq,
            ack=self.rcv_nxt,
            flags=flags,
            payload=payload,
        )
        packet = IPPacket(
            src=self.stack.host.ip, dst=self.remote_ip, payload=segment, ttl=self.ttl
        )
        self.stack.host.send_ip(packet)
        # Anything that consumes sequence space (SYN, FIN, data) must be
        # retransmitted until acknowledged; pure ACKs and RSTs are not.
        seq_span = len(payload) + (1 if flags & (SYN | FIN) else 0)
        if register and seq_span and self.retransmit_enabled:
            self._unacked.append(
                _UnackedSegment(seq, seq + seq_span, flags, payload)
            )
            self._arm_rtx()

    def _start_connect(self, timeout: float) -> None:
        self._begin_span("client")
        self.snd_nxt = self.stack.sim.rng.randrange(1, 2**31)
        self.state = SYN_SENT
        self._send_segment(SYN)
        self.snd_nxt += 1
        self._connect_timer = self.stack.sim.at(timeout, self._connect_timed_out)

    def _connect_timed_out(self) -> None:
        if self.state in (SYN_SENT, SYN_RCVD):
            self._finish(CLOSED, notify="timeout")

    def _cancel_connect_timer(self) -> None:
        if self._connect_timer is not None:
            self._connect_timer.cancel()
            self._connect_timer = None

    # -- retransmission -------------------------------------------------------

    def _arm_rtx(self) -> None:
        """Ensure the (single) retransmission timer is running."""
        self._rtx_deadline = self.stack.sim.now + self._rto
        if self._rtx_timer is None:
            self._rtx_timer = self.stack.sim.at(self._rto, self._on_rtx_timer)

    def _on_rtx_timer(self) -> None:
        self._rtx_timer = None
        if not self._unacked:
            return
        now = self.stack.sim.now
        if now < self._rtx_deadline - 1e-12:
            # An ACK pushed the deadline forward since the timer was set.
            self._rtx_timer = self.stack.sim.at(
                self._rtx_deadline - now, self._on_rtx_timer
            )
            return
        limit = (
            self.stack.syn_retries
            if self.state in (SYN_SENT, SYN_RCVD)
            else self.stack.max_retransmits
        )
        if self._rtx_count >= limit:
            self.stack.retransmit_exhausted += 1
            if self.stack._obs is not None:
                kind = "syn" if self.state in (SYN_SENT, SYN_RCVD) else "data"
                self.stack._m_exhausted.inc((self.stack.host.name, kind))
            self._finish(CLOSED, notify="timeout")
            return
        self._rtx_count += 1
        resent = 0
        for entry in list(self._unacked):
            # Go-back-N: resend everything outstanding, oldest first.
            self.retransmissions += 1
            self.stack.retransmitted_segments += 1
            resent += 1
            self._send_segment(
                entry.flags, entry.payload, seq=entry.seq, register=False
            )
        if self.stack._obs is not None:
            self.stack._m_rtx.inc((self.stack.host.name,), resent)
            self.stack._m_backoff.inc((self.stack.host.name,))
        self._rto = min(self._rto * 2.0, self.stack.rto_max)
        self._rtx_deadline = now + self._rto
        self._rtx_timer = self.stack.sim.at(self._rto, self._on_rtx_timer)

    def _process_ack(self, ack: int) -> None:
        """Retire acknowledged segments; reset backoff on forward progress."""
        if not self._unacked:
            return
        remaining = [entry for entry in self._unacked if entry.seq_end > ack]
        if len(remaining) != len(self._unacked):
            self._unacked = remaining
            self._rtx_count = 0
            self._rto = self.stack.rto_initial
            if remaining:
                self._rtx_deadline = self.stack.sim.now + self._rto
            # An empty queue leaves the timer to expire as a no-op.

    def _finish(self, state: str, notify: Optional[str]) -> None:
        self._cancel_connect_timer()
        if self._rtx_timer is not None:
            self._rtx_timer.cancel()
            self._rtx_timer = None
        self._unacked.clear()
        self.state = state
        if self._span is not None:
            self._span.end(
                state=state,
                outcome=notify or "aborted",
                retransmissions=self.retransmissions,
                bytes_sent=self.bytes_sent,
                bytes_received=self.bytes_received,
            )
            self._span = None
        self.stack._forget(self)
        if notify is not None:
            self.handler(notify, b"")

    def _flush_pending(self) -> None:
        pending, self._pending_sends = self._pending_sends, []
        for data in pending:
            self.send(data)

    def on_segment(self, packet: IPPacket, segment: TCPSegment) -> None:
        """Advance the state machine on an arriving segment.

        Arrival order is no longer guaranteed: impaired links delay,
        duplicate, and reorder.  Cumulative-ACK processing plus the
        duplicate checks below keep the machine correct regardless.
        """
        if segment.is_rst:
            if self.state not in (CLOSED, RESET):
                self._finish(RESET, notify="reset")
            return
        if segment.has(ACK):
            self._process_ack(segment.ack)

        if self.state == SYN_SENT:
            if segment.is_synack:
                self.rcv_nxt = segment.seq + 1
                self._cancel_connect_timer()
                self.state = ESTABLISHED
                self._send_segment(ACK)
                self.handler("connected", b"")
                self._flush_pending()
            return

        if self.state == SYN_RCVD:
            if segment.is_syn and not segment.has(ACK):
                # Retransmitted SYN: our SYN/ACK was lost on the way back.
                # Passive opens answer on demand instead of running a timer,
                # so a half-open connection (raw-socket client, spoofed
                # handshake) can sit indefinitely — as before impairments.
                self._send_segment(SYN | ACK, seq=self.snd_nxt - 1, register=False)
                return
            if segment.has(ACK) and not segment.has(SYN):
                self._cancel_connect_timer()
                self.state = ESTABLISHED
                self.stack._accept(self)
                self._flush_pending()
                # The ACK completing the handshake may carry data.
                if segment.payload:
                    self._receive_data(segment)
            return

        if self.state in (ESTABLISHED, FIN_WAIT, CLOSE_WAIT):
            if segment.has(SYN):
                # A retransmitted SYN/ACK means our handshake ACK was lost;
                # answering it re-synchronizes the peer.
                self._send_segment(ACK)
                return
            if segment.payload:
                self._receive_data(segment)
            if segment.is_fin and segment.seq <= self.rcv_nxt:
                already_closing = self.state == CLOSE_WAIT
                self.rcv_nxt = max(
                    self.rcv_nxt, segment.seq + len(segment.payload) + 1
                )
                self._send_segment(ACK)
                if self.state == FIN_WAIT:
                    self._finish(CLOSED, notify="closed")
                elif not already_closing:  # duplicate FINs notify once
                    self.state = CLOSE_WAIT
                    self.handler("fin", b"")
            return

        if self.state == LAST_ACK:
            if segment.has(ACK):
                self._finish(CLOSED, notify="closed")
            return

    def _receive_data(self, segment: TCPSegment) -> None:
        if segment.seq != self.rcv_nxt:
            # A duplicate (retransmission, link duplication) or a segment
            # that overtook its predecessors on a reordering link — or an
            # injected segment (e.g. a censor RST race lost).  Re-ACK with
            # the cumulative position; go-back-N recovery fills any gap.
            self._send_segment(ACK)
            return
        self.rcv_nxt += len(segment.payload)
        self.bytes_received += len(segment.payload)
        self._send_segment(ACK)
        self.handler("data", segment.payload)


class _PendingUDP:
    """Bookkeeping for an in-flight UDP request awaiting a reply."""

    __slots__ = ("on_reply", "on_timeout", "timer", "remote")

    def __init__(self, on_reply, on_timeout, timer, remote) -> None:
        self.on_reply = on_reply
        self.on_timeout = on_timeout
        self.timer = timer
        self.remote = remote


class NetworkStack:
    """The per-host stack: owns sockets, connections, and sniffers."""

    def __init__(self, host: "Host", sim: "Simulator") -> None:
        self.host = host
        self.sim = sim
        self._sniffers: List[Callable[[IPPacket], None]] = []
        self._udp_listeners: Dict[int, Callable] = {}
        self._udp_pending: Dict[int, _PendingUDP] = {}
        self._tcp_listeners: Dict[int, Callable[[TCPConnection], None]] = {}
        self._tcp_conns: Dict[Tuple[int, str, int], TCPConnection] = {}
        self._next_ephemeral = EPHEMERAL_BASE
        #: Retransmission knobs shared by all connections on this host.
        self.rto_initial = DEFAULT_RTO_INITIAL
        self.rto_max = DEFAULT_RTO_MAX
        self.max_retransmits = DEFAULT_MAX_RETRANSMITS
        self.syn_retries = DEFAULT_SYN_RETRIES
        #: Aggregate retransmission accounting (per host).
        self.retransmitted_segments = 0
        self.retransmit_exhausted = 0
        # Observability, resolved once: hot paths check ``is not None``.
        obs = active_or_none()
        self._obs = obs
        if obs is not None:
            self._m_rtx = obs.counter(
                "tcp_retransmitted_segments_total",
                "Segments re-sent by the go-back-N machinery",
                ("host",),
            )
            self._m_backoff = obs.counter(
                "tcp_rto_backoffs_total",
                "RTO timer expiries that doubled the backoff",
                ("host",),
            )
            self._m_exhausted = obs.counter(
                "tcp_retransmit_exhausted_total",
                "Connections abandoned after the retry cap "
                "(kind: syn for handshakes, data after establishment)",
                ("host", "kind"),
            )
        tracer = active_tracer()
        self._trace = (
            tracer if tracer is not None and tracer.enabled_for("tcp") else None
        )
        self.respond_to_ping = True
        #: When False the host silently ignores unsolicited TCP (a firewalled
        #: host); default True models a normal end host.
        self.closed_port_rst = True
        #: Optional hook(local_port, remote_ip, remote_port) -> ISN for
        #: server-side connections.  A cooperative measurement server uses a
        #: keyed deterministic ISN so a client spoofing third-party sources
        #: can ACK a SYN/ACK it never sees (stateful mimicry, paper §4.1).
        self.isn_hook: Optional[Callable[[int, str, int], int]] = None
        from ..packets.fragment import FragmentReassembler

        self._fragments = FragmentReassembler()

    # -- port allocation -------------------------------------------------------

    def ephemeral_port(self) -> int:
        port = self._next_ephemeral
        self._next_ephemeral += 1
        if self._next_ephemeral > 60999:
            self._next_ephemeral = EPHEMERAL_BASE
        return port

    # -- sniffing ----------------------------------------------------------------

    def add_sniffer(self, callback: Callable[[IPPacket], None]) -> None:
        """Observe every packet delivered to this host (libpcap-style)."""
        self._sniffers.append(callback)

    def remove_sniffer(self, callback: Callable[[IPPacket], None]) -> None:
        self._sniffers.remove(callback)

    # -- UDP ------------------------------------------------------------------------

    def udp_listen(self, port: int, handler: Callable) -> None:
        """Serve UDP on ``port``; handler(payload, src_ip, src_port, reply_fn)."""
        if port in self._udp_listeners:
            raise ValueError(f"UDP port {port} already bound on {self.host.name}")
        self._udp_listeners[port] = handler

    def udp_request(
        self,
        dst: str,
        dport: int,
        payload: bytes,
        on_reply: Callable[[bytes, IPPacket], None],
        on_timeout: Optional[Callable[[], None]] = None,
        timeout: float = 2.0,
        sport: Optional[int] = None,
        ttl: int = 64,
    ) -> int:
        """Send a datagram and await the first reply to the chosen sport."""
        sport = sport if sport is not None else self.ephemeral_port()
        timer = self.sim.at(timeout, lambda: self._udp_timeout(sport))
        self._udp_pending[sport] = _PendingUDP(on_reply, on_timeout, timer, (dst, dport))
        packet = IPPacket(
            src=self.host.ip,
            dst=dst,
            payload=UDPDatagram(sport=sport, dport=dport, payload=payload),
            ttl=ttl,
        )
        self.host.send_ip(packet)
        return sport

    def udp_send(self, dst: str, dport: int, payload: bytes, sport: int = 0, ttl: int = 64) -> None:
        """Fire-and-forget datagram."""
        packet = IPPacket(
            src=self.host.ip,
            dst=dst,
            payload=UDPDatagram(sport=sport or self.ephemeral_port(), dport=dport, payload=payload),
            ttl=ttl,
        )
        self.host.send_ip(packet)

    def _udp_timeout(self, sport: int) -> None:
        pending = self._udp_pending.pop(sport, None)
        if pending is not None and pending.on_timeout is not None:
            pending.on_timeout()

    # -- TCP ---------------------------------------------------------------------------

    def tcp_listen(
        self,
        port: int,
        acceptor: Callable[[TCPConnection], None],
        reply_ttl: Optional[int] = None,
    ) -> None:
        """Accept connections on ``port``.

        ``acceptor(conn)`` fires when the handshake completes and must assign
        ``conn.handler`` to receive subsequent events.  ``reply_ttl`` limits
        the TTL of everything the server sends on such connections —
        including the SYN/ACK — which is how the stateful-mimicry measurement
        server makes its replies die inside the client AS (paper Figure 3b).
        """
        if port in self._tcp_listeners:
            raise ValueError(f"TCP port {port} already bound on {self.host.name}")
        self._tcp_listeners[port] = (acceptor, reply_ttl)

    def tcp_ports_open(self) -> List[int]:
        return sorted(self._tcp_listeners)

    def tcp_connect(
        self,
        dst: str,
        dport: int,
        handler: EventHandler,
        timeout: float = DEFAULT_CONNECT_TIMEOUT,
        sport: Optional[int] = None,
        ttl: int = 64,
        retransmit: bool = True,
    ) -> TCPConnection:
        """Open a connection; events arrive via ``handler``.

        ``retransmit=False`` disables the retransmission machinery for
        this connection, restoring the one-loss-equals-one-timeout
        behaviour lossy-path experiments rely on.
        """
        sport = sport if sport is not None else self.ephemeral_port()
        conn = TCPConnection(self, sport, dst, dport, handler, ttl=ttl)
        conn.retransmit_enabled = retransmit
        self._tcp_conns[(sport, dst, dport)] = conn
        conn._start_connect(timeout)
        return conn

    def _accept(self, conn: TCPConnection) -> None:
        entry = self._tcp_listeners.get(conn.local_port)
        if entry is not None:
            acceptor, _reply_ttl = entry
            acceptor(conn)

    def _forget(self, conn: TCPConnection) -> None:
        self._tcp_conns.pop((conn.local_port, conn.remote_ip, conn.remote_port), None)

    # -- dispatch ---------------------------------------------------------------------

    def handle(self, packet: IPPacket) -> None:
        """Entry point for every packet delivered to this host."""
        for sniffer in list(self._sniffers):
            sniffer(packet)
        if packet.dst != self.host.ip:
            return  # promiscuously sniffed but not ours
        if packet.frag_offset > 0 or packet.flags & 0x1:
            rebuilt = self._fragments.feed(packet, self.sim.now)
            if rebuilt is None:
                return  # waiting for the rest of the group
            packet = rebuilt
        if packet.tcp is not None:
            self._handle_tcp(packet, packet.tcp)
        elif packet.udp is not None:
            self._handle_udp(packet, packet.udp)
        elif packet.icmp is not None:
            self._handle_icmp(packet, packet.icmp)

    def _handle_tcp(self, packet: IPPacket, segment: TCPSegment) -> None:
        key = (segment.dport, packet.src, segment.sport)
        conn = self._tcp_conns.get(key)
        if conn is not None:
            conn.on_segment(packet, segment)
            return
        if segment.is_syn and segment.dport in self._tcp_listeners:
            _acceptor, reply_ttl = self._tcp_listeners[segment.dport]
            server_conn = TCPConnection(
                self,
                segment.dport,
                packet.src,
                segment.sport,
                handler=lambda event, data: None,  # replaced by acceptor
                ttl=reply_ttl if reply_ttl is not None else 64,
            )
            server_conn.state = SYN_RCVD
            server_conn._begin_span("server")
            server_conn.rcv_nxt = segment.seq + 1
            if self.isn_hook is not None:
                server_conn.snd_nxt = self.isn_hook(
                    segment.dport, packet.src, segment.sport
                )
            else:
                server_conn.snd_nxt = self.sim.rng.randrange(1, 2**31)
            self._tcp_conns[key] = server_conn
            # register=False: passive opens re-send the SYN/ACK when the
            # client retransmits its SYN (see SYN_RCVD in on_segment) rather
            # than on a timer, so half-open connections stay half-open.
            server_conn._send_segment(SYN | ACK, register=False)
            server_conn.snd_nxt += 1
            return
        if segment.is_rst:
            return  # never respond to a RST with a RST
        self._send_closed_port_rst(packet, segment)

    def _send_closed_port_rst(self, packet: IPPacket, segment: TCPSegment) -> None:
        """RFC 793 closed-port behaviour (also: spoofed-client replay RSTs)."""
        if not self.closed_port_rst:
            return
        if segment.has(ACK):
            reply = TCPSegment(
                sport=segment.dport,
                dport=segment.sport,
                seq=segment.ack,
                flags=RST,
            )
        else:
            reply = TCPSegment(
                sport=segment.dport,
                dport=segment.sport,
                seq=0,
                ack=segment.seq + len(segment.payload) + (1 if segment.is_syn else 0),
                flags=RST | ACK,
            )
        self.host.send_ip(IPPacket(src=self.host.ip, dst=packet.src, payload=reply))

    def _handle_udp(self, packet: IPPacket, datagram: UDPDatagram) -> None:
        listener = self._udp_listeners.get(datagram.dport)
        if listener is not None:
            def reply_fn(payload: bytes, ttl: int = 64) -> None:
                response = IPPacket(
                    src=self.host.ip,
                    dst=packet.src,
                    payload=UDPDatagram(
                        sport=datagram.dport, dport=datagram.sport, payload=payload
                    ),
                    ttl=ttl,
                )
                self.host.send_ip(response)

            listener(datagram.payload, packet.src, datagram.sport, reply_fn)
            return
        pending = self._udp_pending.pop(datagram.dport, None)
        if pending is not None:
            pending.timer.cancel()
            pending.on_reply(datagram.payload, packet)
            return
        # Closed UDP port: ICMP port unreachable (code 3).
        self.host.send_ip(self.host.icmp_unreachable(packet, code=3))

    def _handle_icmp(self, packet: IPPacket, message: ICMPMessage) -> None:
        if message.icmp_type == ICMP_ECHO_REQUEST and self.respond_to_ping:
            reply = IPPacket(
                src=self.host.ip, dst=packet.src, payload=ICMPMessage.echo_reply(message)
            )
            self.host.send_ip(reply)
            return
        if message.icmp_type in (ICMP_DEST_UNREACH, ICMP_TIME_EXCEEDED):
            self._dispatch_icmp_error(message)

    def _dispatch_icmp_error(self, message: ICMPMessage) -> None:
        """Route an ICMP error to the connection/query it quotes.

        The quote is only the IP header plus 8 transport bytes (RFC 792),
        so ports are extracted by hand rather than via full packet parsing.
        """
        import struct

        from ..packets import PROTO_TCP, PROTO_UDP
        from ..packets.addressing import int_to_ip

        quote = message.payload
        if len(quote) < 28:
            return
        protocol = quote[9]
        dst = int_to_ip(struct.unpack("!I", quote[16:20])[0])
        ihl = (quote[0] & 0xF) * 4
        sport, dport = struct.unpack("!HH", quote[ihl : ihl + 4])
        if protocol == PROTO_UDP:
            pending = self._udp_pending.pop(sport, None)
            if pending is not None:
                pending.timer.cancel()
                if pending.on_timeout is not None:
                    pending.on_timeout()
        elif protocol == PROTO_TCP:
            conn = self._tcp_conns.get((sport, dst, dport))
            if conn is not None:
                conn.handler("icmp_error", message.to_bytes())
