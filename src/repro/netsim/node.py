"""Node types: hosts (endpoints), switches, and routers.

Routers decrement TTL, emit ICMP time-exceeded, and enforce source-address
validation (SAV); switches forward transparently.  Either kind can carry
taps (censor, surveillance MVR) via the ``Middlebox`` interface.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from ..packets import ICMPMessage, IPPacket

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..spoofing.sav import SAVFilter
    from .network import Network
    from .stack import NetworkStack

__all__ = ["Node", "Host", "Switch", "Router"]


class Node:
    """Base network element; identified by a unique name."""

    forwards = False

    def __init__(self, name: str) -> None:
        self.name = name
        self.network: Optional["Network"] = None
        self.taps: List = []
        self.packets_seen = 0
        self.packets_dropped = 0

    def add_tap(self, tap) -> None:
        """Attach a middlebox that observes all transiting packets."""
        self.taps.append(tap)
        if self.network is not None:
            # Tap placement feeds the tiered-fidelity boundary; stale
            # reachability answers would let observable flows stay aggregate.
            self.network._invalidate_tap_paths()

    def counters(self) -> dict:
        """Introspection snapshot for analysis reports (subclasses extend)."""
        return {
            "packets_seen": self.packets_seen,
            "packets_dropped": self.packets_dropped,
        }

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class Switch(Node):
    """A transparent L2-style forwarder (no TTL decrement)."""

    forwards = True
    decrements_ttl = False


class Router(Node):
    """An L3 forwarder: decrements TTL and may enforce SAV.

    ``send_time_exceeded`` mirrors real router behaviour; the stateful
    mimicry technique depends on TTL-limited packets dying at routers.
    """

    forwards = True
    decrements_ttl = True

    def __init__(
        self,
        name: str,
        sav: Optional["SAVFilter"] = None,
        send_time_exceeded: bool = True,
    ) -> None:
        super().__init__(name)
        self.sav = sav
        self.send_time_exceeded = send_time_exceeded
        self.sav_drops = 0
        self.ttl_drops = 0

    def sav_permits(self, packet: IPPacket) -> bool:
        """Check claimed source against the true origin's spoofing scope."""
        if self.sav is None:
            return True
        origin = packet.metadata.get("origin_ip")
        if origin is None:  # packet from outside this AS or synthesized on-path
            return True
        return self.sav.permits(claimed_src=packet.src, true_src=origin)

    def counters(self) -> dict:
        snapshot = super().counters()
        snapshot["sav_drops"] = self.sav_drops
        snapshot["ttl_drops"] = self.ttl_drops
        return snapshot


class Host(Node):
    """An endpoint with one primary IP address and a protocol stack.

    The stack is created lazily by the network on attach so that hosts can
    be declared before the simulator exists.
    """

    forwards = False

    def __init__(self, name: str, ip: str, spoof_scope: Optional[int] = None) -> None:
        super().__init__(name)
        self.ip = ip
        #: Prefix length within which this host can spoof (None = cannot
        #: spoof at all beyond its own address; 0 = can spoof anything).
        #: Enforced by the AS edge router's SAV filter, not locally.
        self.spoof_scope = spoof_scope
        self.stack: Optional["NetworkStack"] = None
        self.user: Optional[str] = None  # identity used by surveillance attribution

    # -- convenience passthroughs to the stack ------------------------------

    def send_ip(self, packet: IPPacket) -> None:
        """Send a packet with this host's true source address."""
        packet.metadata["origin_ip"] = self.ip
        assert self.network is not None, f"{self.name} not attached to a network"
        self.network.originate(packet, self)

    def send_raw(self, packet: IPPacket) -> None:
        """Send a raw (possibly spoofed-source) packet.

        The true origin travels in metadata for SAV enforcement and for
        ground-truth accounting; rule engines never read metadata.
        """
        packet.metadata["origin_ip"] = self.ip
        assert self.network is not None, f"{self.name} not attached to a network"
        self.network.originate(packet, self)

    def deliver(self, packet: IPPacket) -> None:
        """Called by the network when a packet reaches this host."""
        self.packets_seen += 1
        if self.stack is not None:
            self.stack.handle(packet)

    def counters(self) -> dict:
        snapshot = super().counters()
        if self.stack is not None:
            snapshot["tcp_retransmissions"] = self.stack.retransmitted_segments
            snapshot["tcp_retry_exhausted"] = self.stack.retransmit_exhausted
        return snapshot

    def icmp_unreachable(self, original: IPPacket, code: int = 3) -> IPPacket:
        """Build a port/host-unreachable reply quoting ``original``."""
        return IPPacket(
            src=self.ip,
            dst=original.src,
            payload=ICMPMessage.dest_unreachable(original.to_bytes(), code=code),
        )
