"""Reference topologies.

``build_three_node`` reproduces the paper's controlled environment
(Figure 1): a client, a software switch carrying two IDS taps (one censor,
one surveillance MVR), and a server.

``build_censored_as`` is the country-scale analogue used for the Section 4
spoofing experiments and the vantage-point studies: a censored AS holding a
population of hosts plus one measurement client, a border router where the
censor and the surveillance tap sit, and external DNS/web/mail/measurement
servers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .engine import Simulator
from .network import Network
from .node import Host, Router, Switch

__all__ = [
    "ThreeNodeTopology",
    "CensoredASTopology",
    "build_three_node",
    "build_censored_as",
    "CLIENT_AS_CIDR",
]

CLIENT_AS_CIDR = "10.1.0.0/16"


@dataclass
class ThreeNodeTopology:
    """The paper's Figure 1 environment."""

    sim: Simulator
    network: Network
    client: Host
    server: Host
    switch: Switch

    def run(self, duration: Optional[float] = None) -> int:
        """Convenience: drain the event queue (optionally time-bounded)."""
        if duration is None:
            return self.sim.run()
        return self.sim.run_for(duration)


def build_three_node(seed: int = 0, latency: float = 0.005) -> ThreeNodeTopology:
    """Client — switch — server, with the switch ready to carry taps."""
    sim = Simulator(seed=seed)
    network = Network(sim, default_latency=latency)
    client = network.add(Host("client", "10.0.0.1"))
    server = network.add(Host("server", "192.0.2.10"))
    switch = network.add(Switch("s1"))
    network.connect(client, switch)
    network.connect(switch, server)
    return ThreeNodeTopology(sim=sim, network=network, client=client, server=server, switch=switch)


@dataclass
class CensoredASTopology:
    """A censored client AS plus the external internet.

    Packet path from a client host:
    host — access switch — internal router — border router (censor tap +
    surveillance tap) — transit router — external server.

    TTLs decrement at the three routers, so a server reply with
    ``ttl = 2`` entering at the transit router crosses the border (and its
    taps) and dies at the internal router — the paper's TTL-limiting trick.
    """

    sim: Simulator
    network: Network
    measurement_client: Host
    population: List[Host]
    access_switch: Switch
    internal_router: Router
    border_router: Router
    transit_router: Router
    dns_server: Host
    blocked_web: Host
    control_web: Host
    blocked_mail: Host
    control_mail: Host
    measurement_server: Host
    domains: Dict[str, str] = field(default_factory=dict)

    @property
    def all_clients(self) -> List[Host]:
        return [self.measurement_client] + self.population

    def run(self, duration: Optional[float] = None) -> int:
        if duration is None:
            return self.sim.run()
        return self.sim.run_for(duration)

    def hops_from_border_to_client(self) -> int:
        """Router hops from the border tap to any client host (for TTL math)."""
        return 1  # internal router only; the access switch is L2

    def reply_ttl_dying_inside(self) -> int:
        """A TTL that crosses the border taps but expires before clients.

        Counted from the measurement server: transit router (−1), border
        router (−1) — still alive at the border taps — then the internal
        router decrements to 0 and drops.
        """
        return 3


def build_censored_as(
    seed: int = 0,
    population_size: int = 20,
    sav_filter=None,
    latency: float = 0.002,
    spoof_scope: Optional[int] = 24,
) -> CensoredASTopology:
    """Build the censored-AS topology.

    ``sav_filter`` (a :class:`repro.spoofing.sav.SAVFilter` or None) is
    installed at the border router.  ``spoof_scope`` is recorded on each
    population host for the Beverly-style feasibility model.
    """
    sim = Simulator(seed=seed)
    network = Network(sim, default_latency=latency)

    access = network.add(Switch("access"))
    internal = network.add(Router("internal"))
    border = network.add(Router("border", sav=sav_filter))
    transit = network.add(Router("transit"))
    network.connect(access, internal)
    network.connect(internal, border)
    network.connect(border, transit, latency=latency * 5)  # international hop

    measurement_client = network.add(
        Host("mclient", "10.1.0.100", spoof_scope=spoof_scope)
    )
    measurement_client.user = "measurer"
    network.connect(measurement_client, access)

    population: List[Host] = []
    for index in range(population_size):
        host = network.add(
            Host(f"pop{index}", f"10.1.{1 + index // 250}.{1 + index % 250}",
                 spoof_scope=spoof_scope)
        )
        host.user = f"user{index}"
        network.connect(host, access)
        population.append(host)

    dns_server = network.add(Host("dns", "8.8.8.8"))
    blocked_web = network.add(Host("blockedweb", "203.0.113.10"))
    control_web = network.add(Host("controlweb", "203.0.113.20"))
    blocked_mail = network.add(Host("blockedmail", "203.0.113.11"))
    control_mail = network.add(Host("controlmail", "203.0.113.21"))
    measurement_server = network.add(Host("mserver", "198.51.100.50"))
    for server in (dns_server, blocked_web, control_web, blocked_mail, control_mail, measurement_server):
        network.connect(server, transit)

    # Keep the name universe aligned with the stock censor blocklist so the
    # same zone serves both blocked and control lookups.
    from ..rules.rulesets import BLOCKED_DOMAINS

    domains = {domain: blocked_web.ip for domain in BLOCKED_DOMAINS}
    domains.update(
        {
            "example.org": control_web.ip,
            "weather.gov": control_web.ip,
            "wikipedia.org": control_web.ip,
            "archive.org": control_web.ip,
        }
    )

    return CensoredASTopology(
        sim=sim,
        network=network,
        measurement_client=measurement_client,
        population=population,
        access_switch=access,
        internal_router=internal,
        border_router=border,
        transit_router=transit,
        dns_server=dns_server,
        blocked_web=blocked_web,
        control_web=control_web,
        blocked_mail=blocked_mail,
        control_mail=control_mail,
        measurement_server=measurement_server,
        domains=domains,
    )
