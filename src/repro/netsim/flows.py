"""Tiered-fidelity flow layer: aggregate flows that expand only at taps.

Population-scale background traffic cannot afford a packet event per hop
per user — but the paper's observables (rule hits, censor verdicts, MVR
retained bytes) are all measured *at taps*.  The fidelity boundary
exploits that: a flow whose routed path never crosses a tap advances as a
single flow-level event (link byte/packet accounting only), while a flow
that would be observed is expanded into byte-accurate packets before it
reaches the tap.  The contract that makes this safe:

* **Tier decision is deterministic and RNG-free.**  It depends only on
  the routed path and tap placement (``Network.path_crosses_tap``), so
  the flow schedule is identical across fidelity modes.
* **Templates plan exactly.**  ``AggregateFlow`` byte/packet totals are
  computed arithmetically by the traffic templates, and ``_expand``
  asserts that materialized wire bytes equal the plan — conservation is
  enforced at runtime, not just in tests.
* **Aggregate accounting preserves link invariants.**  Aggregate flows
  bump offered/carried/bytes equally (``Link.account_flow``), so
  ``DirectionStats.conserved`` holds trivially.  The accepted fidelity
  loss: aggregate flows bypass impairment pipelines — by definition they
  are unobserved, so their losses cannot change any tap observable.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Tuple

from ..obs.metrics import active_or_none

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .link import Link
    from .network import Network

__all__ = ["AggregateFlow", "FlowFidelityEngine", "FIDELITY_MODES"]

#: ``hybrid`` expands only tap-crossing flows (the point of this module);
#: ``full`` expands everything (the equivalence / fidelity baseline);
#: ``aggregate`` expands nothing (pure throughput ceiling, taps see nothing).
FIDELITY_MODES = ("hybrid", "full", "aggregate")


class AggregateFlow:
    """One background flow, planned at flow level.

    Byte/packet totals are *exact*: the template that created this flow
    guarantees that lazy materialization produces packets whose wire
    lengths sum to ``bytes_up + bytes_down`` — so the aggregate and
    expanded tiers account identical traffic onto the links they share.

    ``src_gateway``/``dst_gateway`` are node names: synthetic users are
    prefix-routed to gateway hosts rather than existing as ``Host``
    objects, which is what lets a population scale to millions.
    """

    __slots__ = (
        "flow_id",
        "kind",
        "src_ip",
        "dst_ip",
        "src_gateway",
        "dst_gateway",
        "duration",
        "packets_up",
        "bytes_up",
        "packets_down",
        "bytes_down",
        "template",
        "params",
    )

    def __init__(
        self,
        flow_id: int,
        kind: str,
        src_ip: str,
        dst_ip: str,
        src_gateway: str,
        dst_gateway: str,
        duration: float,
        packets_up: int,
        bytes_up: int,
        packets_down: int,
        bytes_down: int,
        template,
        params: Tuple = (),
    ) -> None:
        self.flow_id = flow_id
        self.kind = kind
        self.src_ip = src_ip
        self.dst_ip = dst_ip
        self.src_gateway = src_gateway
        self.dst_gateway = dst_gateway
        self.duration = duration
        self.packets_up = packets_up
        self.bytes_up = bytes_up
        self.packets_down = packets_down
        self.bytes_down = bytes_down
        self.template = template
        self.params = params

    @property
    def bytes_total(self) -> int:
        return self.bytes_up + self.bytes_down

    @property
    def packets_total(self) -> int:
        return self.packets_up + self.packets_down

    def __repr__(self) -> str:
        return (
            f"AggregateFlow(#{self.flow_id} {self.kind} "
            f"{self.src_ip}->{self.dst_ip}, {self.bytes_total}B)"
        )


class FlowFidelityEngine:
    """Routes flows to the aggregate or packet tier and keeps the ledger.

    One engine per simulation; the population generator submits every
    flow here at its start time.  The tier decision consumes no RNG and
    reads only (gateway pair, tap placement), so switching ``mode`` never
    perturbs the flow schedule — the property the tap-equivalence suite
    is built on.
    """

    def __init__(self, network: "Network", mode: str = "hybrid") -> None:
        if mode not in FIDELITY_MODES:
            raise ValueError(
                f"fidelity mode must be one of {FIDELITY_MODES}, not {mode!r}"
            )
        self.network = network
        self.sim = network.sim
        self.mode = mode
        self.flows_aggregate = 0
        self.flows_expanded = 0
        self.bytes_aggregate = 0
        self.bytes_materialized = 0
        self.packets_materialized = 0
        self._path_links: Dict[Tuple[str, str], List[Tuple["Link", str]]] = {}
        obs = active_or_none()
        self._obs = obs
        if obs is not None:
            self._m_flows = obs.counter(
                "population_flows_total",
                "Background flows advanced, by fidelity tier and workload kind",
                ("tier", "kind"),
            )
            self._m_bytes = obs.counter(
                "population_bytes_total",
                "Background wire bytes accounted, by fidelity tier and kind",
                ("tier", "kind"),
            )
            self._m_pkts = obs.counter(
                "population_packets_materialized_total",
                "Byte-accurate packets materialized for tap-crossing flows",
                ("kind",),
            )

    # -- tier decision -------------------------------------------------------

    def tier_of(self, flow: AggregateFlow) -> str:
        """``"expanded"`` or ``"aggregate"`` for this flow under ``mode``."""
        if self.mode == "full":
            return "expanded"
        if self.mode == "aggregate":
            return "aggregate"
        if self.network.path_crosses_tap(flow.src_gateway, flow.dst_gateway):
            return "expanded"
        return "aggregate"

    def submit(self, flow: AggregateFlow) -> None:
        """Advance ``flow`` (starting now) at the appropriate fidelity."""
        if self.tier_of(flow) == "expanded":
            self._expand(flow)
        else:
            self._advance_aggregate(flow)

    # -- aggregate tier ------------------------------------------------------

    def _links_between(self, src_name: str, dst_name: str) -> List[Tuple["Link", str]]:
        key = (src_name, dst_name)
        cached = self._path_links.get(key)
        if cached is not None:
            return cached
        network = self.network
        names = network.path_nodes(src_name, dst_name)
        links: List[Tuple["Link", str]] = []
        for a, b in zip(names, names[1:]):
            link = network._find_link(a, b)
            links.append((link, link.direction_from(network.nodes[a])))
        self._path_links[key] = links
        return links

    def _advance_aggregate(self, flow: AggregateFlow) -> None:
        self.flows_aggregate += 1
        self.bytes_aggregate += flow.bytes_total
        if self._obs is not None:
            self._m_flows.inc(("aggregate", flow.kind))
            self._m_bytes.inc(("aggregate", flow.kind), flow.bytes_total)
        links = self._links_between(flow.src_gateway, flow.dst_gateway)
        packets_up, bytes_up = flow.packets_up, flow.bytes_up
        packets_down, bytes_down = flow.packets_down, flow.bytes_down

        def complete() -> None:
            for link, forward in links:
                reverse = "ba" if forward == "ab" else "ab"
                if packets_up:
                    link.account_flow(packets_up, bytes_up, forward)
                if packets_down:
                    link.account_flow(packets_down, bytes_down, reverse)

        # One event per flow: all accounting lands when the flow completes.
        self.sim.at_uncancellable(max(flow.duration, 0.0), complete)

    # -- packet tier ---------------------------------------------------------

    def _expand(self, flow: AggregateFlow) -> None:
        self.flows_expanded += 1
        if self._obs is not None:
            self._m_flows.inc(("expanded", flow.kind))
        network = self.network
        nodes = network.nodes
        emitted_bytes = 0
        emitted_packets = 0
        for offset, origin_name, packet in flow.template.materialize(flow):
            emitted_bytes += packet.wire_length()
            emitted_packets += 1
            network.originate(packet, nodes[origin_name], delay=offset)
        if emitted_bytes != flow.bytes_total or emitted_packets != flow.packets_total:
            raise AssertionError(
                f"flow plan/materialization mismatch for {flow!r}: planned "
                f"{flow.packets_total}p/{flow.bytes_total}B, materialized "
                f"{emitted_packets}p/{emitted_bytes}B"
            )
        self.bytes_materialized += emitted_bytes
        self.packets_materialized += emitted_packets
        if self._obs is not None:
            self._m_bytes.inc(("expanded", flow.kind), emitted_bytes)
            self._m_pkts.inc((flow.kind,), emitted_packets)

    # -- introspection -------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        return {
            "flows_aggregate": self.flows_aggregate,
            "flows_expanded": self.flows_expanded,
            "bytes_aggregate": self.bytes_aggregate,
            "bytes_materialized": self.bytes_materialized,
            "packets_materialized": self.packets_materialized,
        }

    @property
    def bytes_total(self) -> int:
        """All background wire bytes accounted across both tiers."""
        return self.bytes_aggregate + self.bytes_materialized
