"""TLS server app and client probe over the simulated stack.

The handshake is mimicry-grade (see :mod:`repro.packets.tls`): the server
answers any ClientHello with a ServerHello, which is all a reachability
probe needs to observe — SNI censorship manifests *before* this point, as
an injected RST once the censor has seen the plaintext server name.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..packets.tls import ClientHello, ServerHello, sni_of
from .node import Host
from .stack import TCPConnection

__all__ = ["TLSServer", "TLSResult", "tls_probe"]

TLS_PORT = 443


class TLSServer:
    """Answers ClientHellos with ServerHellos; logs observed SNI values."""

    def __init__(self, host: Host, port: int = TLS_PORT) -> None:
        self.host = host
        self.port = port
        self.handshakes = 0
        self.sni_log: List[str] = []
        assert host.stack is not None
        host.stack.tcp_listen(port, self._accept)

    def _accept(self, conn: TCPConnection) -> None:
        buffer = bytearray()

        def handler(event: str, data: bytes) -> None:
            if event == "data":
                buffer.extend(data)
                name = sni_of(bytes(buffer))
                if name is not None:
                    self.handshakes += 1
                    self.sni_log.append(name)
                    conn.send(ServerHello().to_bytes())
                    buffer.clear()
            elif event == "fin":
                conn.close()

        conn.handler = handler


@dataclass
class TLSResult:
    """Outcome of one TLS reachability probe."""

    status: str  # "ok" | "reset" | "timeout" | "error"
    server_name: str = ""
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def tls_probe(
    client: Host,
    dst_ip: str,
    server_name: str,
    callback: Optional[Callable[[TLSResult], None]] = None,
    port: int = TLS_PORT,
    timeout: float = 3.0,
) -> None:
    """Send a ClientHello with ``server_name`` SNI; await the ServerHello."""
    assert client.stack is not None
    sim = client.stack.sim
    started = sim.now
    finished = {"done": False}

    def finish(status: str) -> None:
        if finished["done"]:
            return
        finished["done"] = True
        if callback is not None:
            callback(TLSResult(status=status, server_name=server_name,
                               elapsed=sim.now - started))

    def handler(event: str, data: bytes) -> None:
        if event == "connected":
            conn.send(ClientHello(server_name=server_name).to_bytes())
        elif event == "data":
            finish("ok" if ServerHello.is_server_hello(data) else "error")
        elif event == "reset":
            finish("reset")
        elif event in ("timeout", "icmp_error"):
            finish("timeout")
        elif event in ("fin", "closed"):
            finish("error")

    conn = client.stack.tcp_connect(dst_ip, port, handler, timeout=timeout)

    def deadline() -> None:
        if not finished["done"]:
            conn.abort()
            finish("timeout")

    sim.at(timeout * 2, deadline)
