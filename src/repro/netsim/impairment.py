"""Composable, seeded network-impairment models.

Real measurement platforms run over hostile paths: bursty loss, jitter,
reordering, duplication, and saturated bottlenecks.  The paper's
inference techniques read *absence* of replies as censorship, so a
simulator that only models a lossless FIFO wire cannot exercise the one
confound every deployment faces — separating a censor's silent drop from
ordinary packet loss.  This module supplies that hostile substrate.

Design:

- An :class:`ImpairmentModel` makes one per-packet :class:`Decision`
  (drop, extra delay, extra copies).  Models are tiny state machines;
  every random draw comes from the RNG the pipeline hands them, never
  from global state, so runs are reproducible for a given seed.
- An :class:`ImpairedPath` composes models into a per-direction pipeline
  with its own deterministic RNG stream.  A packet dropped by any stage
  is *gone*: later stages never see it, so duplication can never
  duplicate a dropped packet (a property the test suite checks).
- :class:`Link` owns two independent paths (one per direction) so
  asymmetric paths — e.g. a clean uplink with a congested downlink —
  are expressible.

All extra delays are non-negative: impairments may hold a packet back
(which is how reordering arises under the engine's (time, seq) total
order) but can never schedule it into the past.
"""

from __future__ import annotations

import copy
import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Decision",
    "PacketFate",
    "ImpairmentModel",
    "IndependentLoss",
    "GilbertElliottLoss",
    "LatencyJitter",
    "Reordering",
    "Duplication",
    "BandwidthLimit",
    "ImpairedPath",
    "burst_loss_profile",
    "mix_seed",
]


def mix_seed(*parts: int) -> int:
    """Deterministically mix integers into a 64-bit seed.

    Used to derive per-link, per-direction RNG streams from the
    simulation seed without consuming the simulator's own RNG (which
    would perturb every downstream draw).  Pure arithmetic — never
    Python's randomized ``hash``.
    """
    state = 0x9E3779B97F4A7C15
    for part in parts:
        state ^= (part & 0xFFFFFFFFFFFFFFFF) + 0x9E3779B9
        state = (state * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return state


@dataclass
class Decision:
    """One model's ruling on one packet."""

    drop: bool = False
    extra_delay: float = 0.0
    extra_copies: int = 0


class PacketFate:
    """The pipeline's combined ruling: per-copy extra delays.

    ``delays`` holds one non-negative extra delay per delivered copy; an
    empty tuple means the packet was dropped.  ``delays[0]`` is the
    primary copy, further entries are duplicates.
    """

    __slots__ = ("delays",)

    def __init__(self, delays: Tuple[float, ...]) -> None:
        self.delays = delays

    @property
    def dropped(self) -> bool:
        return not self.delays

    @property
    def copies(self) -> int:
        return len(self.delays)

    def __repr__(self) -> str:
        if self.dropped:
            return "PacketFate(dropped)"
        return f"PacketFate(delays={self.delays})"


#: Shared fate for the lossless fast path (no allocation per packet).
DELIVER_CLEAN = PacketFate((0.0,))
DROPPED = PacketFate(())


class ImpairmentModel:
    """Base class: stateless config plus (optionally) per-path state.

    Subclasses implement :meth:`decide`; models holding state (burst
    machines, queues) also override :meth:`reset` so :meth:`clone`
    hands each link direction a fresh instance.
    """

    def decide(self, size: int, now: float, rng: random.Random) -> Decision:
        raise NotImplementedError

    def reset(self) -> None:
        """Return mutable state to its initial value (default: none)."""

    def clone(self) -> "ImpairmentModel":
        """A fresh instance with identical config and pristine state."""
        duplicate = copy.deepcopy(self)
        duplicate.reset()
        return duplicate


class IndependentLoss(ImpairmentModel):
    """Bernoulli per-packet loss (the legacy ``Link(loss=...)`` model)."""

    def __init__(self, rate: float) -> None:
        if not 0.0 <= rate < 1.0:
            raise ValueError("loss rate must be in [0, 1)")
        self.rate = rate

    def decide(self, size: int, now: float, rng: random.Random) -> Decision:
        return Decision(drop=self.rate > 0.0 and rng.random() < self.rate)

    def __repr__(self) -> str:
        return f"IndependentLoss({self.rate})"


class GilbertElliottLoss(ImpairmentModel):
    """Two-state (good/bad) burst-loss channel (Gilbert–Elliott).

    In the *good* state packets drop with ``loss_good``; in the *bad*
    state with ``loss_bad``.  Transitions happen per packet, and —
    because a chain that only advances per packet would freeze a burst
    indefinitely on an idle link, making every sparse retry face the
    in-burst loss rate no matter how long it backs off — also per
    ``burst_timescale`` seconds of idle wall time, as if a background
    process were clocking the chain at one packet per timescale.  Dense
    traffic (inter-packet gap below the timescale) sees the exact
    classical per-packet chain.  ``burst_timescale=0`` disables the
    decay and restores the frozen-chain behaviour.

    The stationary marginal loss rate (with the default 0/1 loss
    levels) is ``p_enter / (p_enter + p_exit)``.
    """

    def __init__(
        self,
        p_enter_burst: float,
        p_exit_burst: float,
        loss_good: float = 0.0,
        loss_bad: float = 1.0,
        burst_timescale: float = 0.02,
    ) -> None:
        for name, p in (
            ("p_enter_burst", p_enter_burst),
            ("p_exit_burst", p_exit_burst),
            ("loss_good", loss_good),
            ("loss_bad", loss_bad),
        ):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if burst_timescale < 0.0:
            raise ValueError("burst_timescale must be non-negative")
        self.p_enter_burst = p_enter_burst
        self.p_exit_burst = p_exit_burst
        self.loss_good = loss_good
        self.loss_bad = loss_bad
        self.burst_timescale = burst_timescale
        self._in_burst = False
        self._last_now: Optional[float] = None

    @classmethod
    def from_marginal(
        cls,
        marginal: float,
        mean_burst_length: float = 5.0,
        burst_timescale: float = 0.02,
    ) -> "GilbertElliottLoss":
        """Configure for a target marginal loss rate and mean burst length."""
        if not 0.0 <= marginal < 1.0:
            raise ValueError("marginal loss must be in [0, 1)")
        if mean_burst_length < 1.0:
            raise ValueError("mean burst length must be >= 1 packet")
        p_exit = 1.0 / mean_burst_length
        p_enter = marginal * p_exit / (1.0 - marginal) if marginal else 0.0
        return cls(
            p_enter_burst=min(p_enter, 1.0),
            p_exit_burst=p_exit,
            burst_timescale=burst_timescale,
        )

    @property
    def marginal_loss(self) -> float:
        """Stationary loss rate implied by the configuration."""
        p_enter, p_exit = self.p_enter_burst, self.p_exit_burst
        if p_enter + p_exit == 0.0:
            return self.loss_good
        pi_bad = p_enter / (p_enter + p_exit)
        return pi_bad * self.loss_bad + (1.0 - pi_bad) * self.loss_good

    def reset(self) -> None:
        self._in_burst = False
        self._last_now = None

    def _advance_idle(self, now: float, rng: random.Random) -> None:
        """Clock the chain through the idle gap since the last packet.

        Uses the closed-form k-step transition of the two-state chain
        (one RNG draw regardless of gap length): after k steps the
        burst probability relaxes toward the stationary ``pi_bad`` with
        geometric factor ``(1 - p_enter - p_exit)**k``.
        """
        if self.burst_timescale <= 0.0:
            return
        if self._last_now is None:
            self._last_now = now
            return
        steps = int((now - self._last_now) / self.burst_timescale)
        if steps <= 0:
            return
        # Advance by whole steps only; the fractional remainder carries
        # over so sub-timescale gaps still accumulate.
        self._last_now += steps * self.burst_timescale
        total = self.p_enter_burst + self.p_exit_burst
        if total == 0.0:
            return
        pi_bad = self.p_enter_burst / total
        shrink = (1.0 - total) ** steps
        if self._in_burst:
            p_bad = pi_bad + shrink * (1.0 - pi_bad)
        else:
            p_bad = pi_bad - shrink * pi_bad
        self._in_burst = rng.random() < p_bad

    def decide(self, size: int, now: float, rng: random.Random) -> Decision:
        self._advance_idle(now, rng)
        loss = self.loss_bad if self._in_burst else self.loss_good
        drop = loss > 0.0 and rng.random() < loss
        if self._in_burst:
            if rng.random() < self.p_exit_burst:
                self._in_burst = False
        elif rng.random() < self.p_enter_burst:
            self._in_burst = True
        return Decision(drop=drop)

    def __repr__(self) -> str:
        return (
            f"GilbertElliottLoss(enter={self.p_enter_burst:.4f}, "
            f"exit={self.p_exit_burst:.4f})"
        )


class LatencyJitter(ImpairmentModel):
    """Uniform extra delay in ``[0, max_jitter]`` per packet."""

    def __init__(self, max_jitter: float) -> None:
        if max_jitter < 0:
            raise ValueError("jitter must be non-negative")
        self.max_jitter = max_jitter

    def decide(self, size: int, now: float, rng: random.Random) -> Decision:
        if self.max_jitter == 0.0:
            return Decision()
        return Decision(extra_delay=rng.uniform(0.0, self.max_jitter))

    def __repr__(self) -> str:
        return f"LatencyJitter({self.max_jitter})"


class Reordering(ImpairmentModel):
    """Hold a fraction of packets back so successors overtake them.

    With probability ``probability`` a packet is delayed by a uniform
    draw from ``delay_range`` — long enough that later packets (with
    smaller or no extra delay) arrive first.  Under the engine's
    (time, seq) total order this is the only way packets reorder; no
    event is ever scheduled in the past.
    """

    def __init__(
        self, probability: float, delay_range: Tuple[float, float] = (0.01, 0.05)
    ) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        low, high = delay_range
        if low < 0 or high < low:
            raise ValueError("delay_range must be 0 <= low <= high")
        self.probability = probability
        self.delay_range = (low, high)

    def decide(self, size: int, now: float, rng: random.Random) -> Decision:
        if self.probability and rng.random() < self.probability:
            return Decision(extra_delay=rng.uniform(*self.delay_range))
        return Decision()

    def __repr__(self) -> str:
        return f"Reordering(p={self.probability}, range={self.delay_range})"


class Duplication(ImpairmentModel):
    """Deliver an extra copy of a packet with some probability."""

    def __init__(self, probability: float, copy_delay: float = 0.0) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if copy_delay < 0:
            raise ValueError("copy_delay must be non-negative")
        self.probability = probability
        self.copy_delay = copy_delay

    def decide(self, size: int, now: float, rng: random.Random) -> Decision:
        if self.probability and rng.random() < self.probability:
            return Decision(extra_copies=1)
        return Decision()

    def __repr__(self) -> str:
        return f"Duplication(p={self.probability})"


class BandwidthLimit(ImpairmentModel):
    """A serialization bottleneck with a finite queue.

    Packets queue behind one another at ``bytes_per_sec``; when the
    backlog exceeds ``max_queue_bytes`` the arriving packet is dropped
    (tail-drop truncation — the bandwidth-delay product made concrete).
    """

    def __init__(self, bytes_per_sec: float, max_queue_bytes: int = 65536) -> None:
        if bytes_per_sec <= 0:
            raise ValueError("bytes_per_sec must be positive")
        if max_queue_bytes <= 0:
            raise ValueError("max_queue_bytes must be positive")
        self.bytes_per_sec = bytes_per_sec
        self.max_queue_bytes = max_queue_bytes
        self._busy_until = 0.0

    def reset(self) -> None:
        self._busy_until = 0.0

    def decide(self, size: int, now: float, rng: random.Random) -> Decision:
        backlog_bytes = max(0.0, self._busy_until - now) * self.bytes_per_sec
        if backlog_bytes + size > self.max_queue_bytes:
            return Decision(drop=True)
        start = max(now, self._busy_until)
        self._busy_until = start + size / self.bytes_per_sec
        return Decision(extra_delay=self._busy_until - now)

    def __repr__(self) -> str:
        return f"BandwidthLimit({self.bytes_per_sec:.0f} B/s)"


class ImpairedPath:
    """One direction of a link: an ordered model pipeline plus RNG.

    The pipeline short-circuits on the first drop, so no stage can act
    on a packet another stage already discarded — in particular, a
    dropped packet is never duplicated and never consumes queue space
    in stages it did not reach.
    """

    def __init__(
        self, models: Sequence[ImpairmentModel], rng: Optional[random.Random] = None,
        seed: int = 0,
    ) -> None:
        self.models: List[ImpairmentModel] = list(models)
        self.rng = rng if rng is not None else random.Random(seed)
        #: Class name of the model that dropped the most recent packet
        #: (``None`` if the last packet survived) — the link reads this
        #: to label drop-reason counters without threading a return
        #: channel through every model.
        self.last_drop_reason: Optional[str] = None
        #: Cumulative drops per model class name.
        self.drop_counts: Dict[str, int] = {}

    def traverse(self, size: int, now: float) -> PacketFate:
        """Rule on one packet; returns its fate (drop / delays per copy)."""
        self.last_drop_reason = None
        total_delay = 0.0
        extra_copies = 0
        copy_spacing = 0.0
        for model in self.models:
            decision = model.decide(size, now, self.rng)
            if decision.drop:
                reason = type(model).__name__
                self.last_drop_reason = reason
                self.drop_counts[reason] = self.drop_counts.get(reason, 0) + 1
                return DROPPED
            total_delay += decision.extra_delay
            if decision.extra_copies:
                extra_copies += decision.extra_copies
                copy_spacing = getattr(model, "copy_delay", 0.0)
        if not extra_copies:
            if total_delay == 0.0:
                return DELIVER_CLEAN
            return PacketFate((total_delay,))
        delays = [total_delay]
        for index in range(extra_copies):
            delays.append(total_delay + copy_spacing * (index + 1))
        return PacketFate(tuple(delays))

    def __repr__(self) -> str:
        return f"ImpairedPath({self.models})"


def burst_loss_profile(
    marginal: float = 0.05,
    mean_burst_length: float = 5.0,
    jitter: float = 0.0,
    reorder_probability: float = 0.0,
    duplicate_probability: float = 0.0,
    burst_timescale: float = 0.02,
) -> List[ImpairmentModel]:
    """A ready-made hostile-path recipe: burst loss plus optional extras.

    The returned models are templates — :meth:`Link.impair` clones them
    per direction, so one profile can season a whole topology.
    """
    models: List[ImpairmentModel] = [
        GilbertElliottLoss.from_marginal(
            marginal, mean_burst_length, burst_timescale=burst_timescale
        )
    ]
    if jitter:
        models.append(LatencyJitter(jitter))
    if reorder_probability:
        models.append(Reordering(reorder_probability))
    if duplicate_probability:
        models.append(Duplication(duplicate_probability))
    return models
