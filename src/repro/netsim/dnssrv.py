"""DNS zone data, authoritative server, and client resolver helpers.

The spam measurement (paper Method #2) performs an MX lookup and then an A
lookup of the exchange; the GFC censor injects forged A answers for both A
and MX queries of blocked names (validated in the paper against
twitter.com / youtube.com from a PlanetLab node in China).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..packets import (
    DNSMessage,
    DNSRecord,
    QTYPE_A,
    QTYPE_CNAME,
    QTYPE_MX,
    QTYPE_NS,
    QTYPE_TXT,
    RCODE_NXDOMAIN,
    RCODE_OK,
)
from .node import Host

__all__ = ["Zone", "DNSServer", "DNSResult", "resolve"]

DNS_PORT = 53


class Zone:
    """An in-memory zone: (name, qtype) -> records."""

    def __init__(self) -> None:
        self._records: Dict[Tuple[str, int], List[DNSRecord]] = {}

    @staticmethod
    def _key(name: str, qtype: int) -> Tuple[str, int]:
        return name.rstrip(".").lower(), qtype

    def add(self, record: DNSRecord) -> "Zone":
        self._records.setdefault(self._key(record.name, record.rtype), []).append(record)
        return self

    def add_a(self, name: str, address: str, ttl: int = 300) -> "Zone":
        return self.add(DNSRecord(name=name, rtype=QTYPE_A, data=address, ttl=ttl))

    def add_mx(self, name: str, exchange: str, preference: int = 10, ttl: int = 300) -> "Zone":
        return self.add(
            DNSRecord(name=name, rtype=QTYPE_MX, data=(preference, exchange), ttl=ttl)
        )

    def add_ns(self, name: str, nsdname: str, ttl: int = 300) -> "Zone":
        return self.add(DNSRecord(name=name, rtype=QTYPE_NS, data=nsdname, ttl=ttl))

    def add_cname(self, name: str, target: str, ttl: int = 300) -> "Zone":
        return self.add(DNSRecord(name=name, rtype=QTYPE_CNAME, data=target, ttl=ttl))

    def add_txt(self, name: str, text: str, ttl: int = 300) -> "Zone":
        return self.add(DNSRecord(name=name, rtype=QTYPE_TXT, data=text, ttl=ttl))

    def lookup(self, name: str, qtype: int) -> List[DNSRecord]:
        """Records for the query, following one level of CNAME for A queries."""
        direct = self._records.get(self._key(name, qtype), [])
        if direct or qtype == QTYPE_CNAME:
            return list(direct)
        cname = self._records.get(self._key(name, QTYPE_CNAME), [])
        if cname:
            target = str(cname[0].data)
            return list(cname) + self._records.get(self._key(target, qtype), [])
        return []

    def knows(self, name: str) -> bool:
        """Whether any record exists for ``name`` at any type."""
        normalized = name.rstrip(".").lower()
        return any(key[0] == normalized for key in self._records)

    def names(self) -> List[str]:
        return sorted({key[0] for key in self._records})


class DNSServer:
    """An authoritative (or resolver-like) DNS server over simulated UDP."""

    def __init__(self, host: Host, zone: Optional[Zone] = None) -> None:
        self.host = host
        self.zone = zone if zone is not None else Zone()
        self.queries_served = 0
        assert host.stack is not None, "host must be attached to a network"
        host.stack.udp_listen(DNS_PORT, self._on_query)

    def _on_query(self, payload: bytes, src_ip: str, src_port: int, reply_fn) -> None:
        try:
            query = DNSMessage.from_bytes(payload)
        except (ValueError, IndexError):
            return
        question = query.question
        if question is None or query.is_response:
            return
        self.queries_served += 1
        answers = self.zone.lookup(question.name, question.qtype)
        if answers:
            response = query.reply(answers=answers, rcode=RCODE_OK)
        elif self.zone.knows(question.name):
            response = query.reply(answers=[], rcode=RCODE_OK)  # NODATA
        else:
            response = query.reply(answers=[], rcode=RCODE_NXDOMAIN)
        reply_fn(response.to_bytes())


@dataclass
class DNSResult:
    """Outcome of one client resolution."""

    status: str  # "ok" | "nxdomain" | "nodata" | "servfail" | "timeout" | "error"
    name: str
    qtype: int
    message: Optional[DNSMessage] = None
    addresses: List[str] = field(default_factory=list)
    mx: List[tuple] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def resolve(
    client: Host,
    server_ip: str,
    name: str,
    qtype: int = QTYPE_A,
    callback: Optional[Callable[[DNSResult], None]] = None,
    timeout: float = 2.0,
    retries: int = 2,
) -> None:
    """Issue a query from ``client`` and deliver a :class:`DNSResult`.

    The first response matching the transaction wins — which is precisely
    the race an off-path DNS injector (the GFC model) exploits.

    Like any real stub resolver, a query that draws no response is
    retransmitted (same transaction id, fresh source port) up to
    ``retries`` times before the lookup reports ``timeout``; the
    ``timeout`` budget covers the whole lookup, split evenly across the
    tries, so the worst-case latency is unchanged by retries.  Without
    this, one lost datagram on an impaired path would count as a full
    lookup failure — UDP has no transport-layer recovery to lean on.
    """
    assert client.stack is not None
    txid = client.stack.sim.rng.randrange(0, 0x10000)
    query = DNSMessage.query(name, qtype=qtype, txid=txid)
    wire = query.to_bytes()
    tries_total = max(1, retries + 1)
    try_timeout = timeout / tries_total
    state = {"answered": False, "tries_left": tries_total}

    def on_reply(payload: bytes, _packet) -> None:
        if callback is None or state["answered"]:
            return
        state["answered"] = True
        try:
            message = DNSMessage.from_bytes(payload)
        except (ValueError, IndexError):
            callback(DNSResult(status="error", name=name, qtype=qtype))
            return
        if message.txid != txid:
            callback(DNSResult(status="error", name=name, qtype=qtype))
            return
        if message.rcode == RCODE_NXDOMAIN:
            callback(DNSResult(status="nxdomain", name=name, qtype=qtype, message=message))
        elif message.rcode != RCODE_OK:
            callback(DNSResult(status="servfail", name=name, qtype=qtype, message=message))
        elif not message.answers:
            callback(DNSResult(status="nodata", name=name, qtype=qtype, message=message))
        else:
            callback(
                DNSResult(
                    status="ok",
                    name=name,
                    qtype=qtype,
                    message=message,
                    addresses=message.a_records(),
                    mx=message.mx_records(),
                )
            )

    def on_timeout() -> None:
        if state["answered"]:
            return
        if state["tries_left"] > 0:
            send_try()
            return
        if callback is not None:
            callback(DNSResult(status="timeout", name=name, qtype=qtype))

    def send_try() -> None:
        state["tries_left"] -= 1
        client.stack.udp_request(
            dst=server_ip,
            dport=DNS_PORT,
            payload=wire,
            on_reply=on_reply,
            on_timeout=on_timeout,
            timeout=try_timeout,
        )

    send_try()
