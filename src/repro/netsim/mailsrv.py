"""SMTP server and delivery client over the simulated TCP stack.

The spam measurement (paper Method #2) needs a complete SMTP transaction:
MX lookup, A lookup of the exchange, TCP connect to port 25, and message
delivery.  The server here implements enough of RFC 5321 for that dialog.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..packets import EmailMessage, SMTPCommand, SMTPReply
from .node import Host
from .stack import TCPConnection

__all__ = ["MailServer", "SMTPResult", "send_mail"]

SMTP_PORT = 25


class MailServer:
    """A minimal SMTP server; received messages accumulate in ``mailbox``."""

    def __init__(self, host: Host, port: int = SMTP_PORT, banner: str = "mail ready") -> None:
        self.host = host
        self.port = port
        self.banner = banner
        self.mailbox: List[EmailMessage] = []
        self.sessions = 0
        assert host.stack is not None
        host.stack.tcp_listen(port, self._accept)

    def _accept(self, conn: TCPConnection) -> None:
        self.sessions += 1
        state = {"phase": "command", "data": bytearray(), "from": "", "to": ""}

        def send(code: int, text: str) -> None:
            conn.send(SMTPReply(code, text).to_bytes())

        def handler(event: str, data: bytes) -> None:
            if event == "data":
                if state["phase"] == "data":
                    state["data"].extend(data)
                    if bytes(state["data"]).endswith(b"\r\n.\r\n"):
                        raw = bytes(state["data"])[:-5].decode("utf-8", errors="replace")
                        self.mailbox.append(EmailMessage.from_text(raw))
                        state["phase"] = "command"
                        state["data"].clear()
                        send(250, "ok: queued")
                    return
                command = SMTPCommand.from_bytes(data)
                self._dispatch(command, state, send, conn)
            elif event == "fin":
                conn.close()

        conn.handler = handler
        send(220, self.banner)

    def _dispatch(self, command: SMTPCommand, state, send, conn: TCPConnection) -> None:
        verb = command.verb
        if verb in ("HELO", "EHLO"):
            send(250, f"hello {command.argument}")
        elif verb == "MAIL":
            state["from"] = command.argument
            send(250, "ok")
        elif verb == "RCPT":
            state["to"] = command.argument
            send(250, "ok")
        elif verb == "DATA":
            state["phase"] = "data"
            send(354, "end data with <CRLF>.<CRLF>")
        elif verb == "QUIT":
            send(221, "bye")
            conn.close()
        elif verb == "RSET":
            state.update({"phase": "command", "from": "", "to": ""})
            send(250, "ok")
        else:
            send(502, "command not implemented")


@dataclass
class SMTPResult:
    """Outcome of one delivery attempt."""

    status: str  # "delivered" | "rejected" | "reset" | "timeout" | "error"
    stage: str = "connect"  # how far the dialog progressed
    replies: List[SMTPReply] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.status == "delivered"


def send_mail(
    client: Host,
    server_ip: str,
    message: EmailMessage,
    callback: Optional[Callable[[SMTPResult], None]] = None,
    port: int = SMTP_PORT,
    helo_name: str = "mail.example.com",
    timeout: float = 3.0,
) -> None:
    """Deliver ``message`` to ``server_ip`` with a full SMTP dialog."""
    assert client.stack is not None
    sim = client.stack.sim
    script = [
        ("HELO", SMTPCommand("HELO", helo_name)),
        ("MAIL", SMTPCommand("MAIL", f"FROM:<{message.sender}>")),
        ("RCPT", SMTPCommand("RCPT", f"TO:<{message.recipient}>")),
        ("DATA", SMTPCommand("DATA")),
    ]
    progress = {"step": -1, "stage": "connect", "done": False}
    replies: List[SMTPReply] = []

    def finish(status: str) -> None:
        if progress["done"]:
            return
        progress["done"] = True
        if callback is not None:
            callback(SMTPResult(status=status, stage=progress["stage"], replies=replies))

    def advance() -> None:
        progress["step"] += 1
        if progress["step"] < len(script):
            stage, command = script[progress["step"]]
            progress["stage"] = stage
            conn.send(command.to_bytes())
        elif progress["step"] == len(script):
            progress["stage"] = "message"
            conn.send(message.to_bytes() + b"\r\n.\r\n")
        else:
            progress["stage"] = "quit"
            conn.send(SMTPCommand("QUIT").to_bytes())

    def handler(event: str, data: bytes) -> None:
        if event == "data":
            try:
                reply = SMTPReply.from_bytes(data)
            except (ValueError, IndexError):
                finish("error")
                return
            replies.append(reply)
            if reply.code == 221:
                finish("delivered")
                return
            if not reply.is_positive:
                finish("rejected")
                conn.close()
                return
            advance()
        elif event == "reset":
            finish("reset")
        elif event in ("timeout", "icmp_error"):
            finish("timeout")
        elif event in ("fin", "closed"):
            finish("delivered" if progress["stage"] == "quit" else "error")
            if event == "fin":
                conn.close()

    conn = client.stack.tcp_connect(server_ip, port, handler, timeout=timeout)

    def deadline() -> None:
        if not progress["done"]:
            conn.abort()
            finish("timeout")

    sim.at(timeout * 3, deadline)
