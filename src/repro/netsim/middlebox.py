"""Middlebox (tap) interface for on-path and off-path packet processing.

Both reference systems from the paper attach here: the censorship system is
a tap that may drop or inject (RSTs, poisoned DNS answers, block pages), and
the surveillance system's MVR is a tap that only observes.  Taps attach to
forwarding nodes (switches/routers) and see every transiting packet, exactly
like the two Snort instances on the OVS switch in the paper's Figure 1.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..packets import IPPacket
    from .network import Network
    from .node import Node

__all__ = ["Action", "TapContext", "Middlebox"]


class Action(enum.Enum):
    """What a tap tells the forwarding node to do with the packet."""

    PASS = "pass"
    DROP = "drop"


class TapContext:
    """Per-packet context handed to a tap.

    ``inject`` originates a new packet at the tap's position in the network;
    it is forwarded normally toward its destination.  Injected packets carry
    an ``injected_by`` marker so the injecting tap does not reprocess its own
    traffic (other taps — e.g. the MVR watching the censor — do see it).
    """

    def __init__(self, network: "Network", node: "Node", now: float) -> None:
        self.network = network
        self.node = node
        self.now = now

    def inject(self, packet: "IPPacket", tag: Optional[str] = None, delay: float = 0.0) -> None:
        """Emit ``packet`` from this tap's node after ``delay`` seconds."""
        packet.metadata["injected_by"] = tag or "tap"
        packet.metadata.setdefault("origin", self.node.name)
        self.network.originate(packet, self.node, delay=delay)


class Middlebox:
    """Base class for taps; subclasses override ``process``."""

    #: Name used in ``injected_by`` tags and logs.
    name = "middlebox"

    def process(self, packet: "IPPacket", ctx: TapContext) -> Action:
        """Inspect (and possibly act on) one transiting packet."""
        raise NotImplementedError

    def sees_own_injections(self) -> bool:
        """Whether this tap reprocesses packets it injected itself."""
        return False
