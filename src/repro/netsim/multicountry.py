"""Multi-vantage topology: two censored countries, one shared Internet.

Comparative vantage studies are how censorship measurement reports are
actually written ("blocked in A via DNS injection, in B via block page,
reachable from the control").  This builder stands up two client ASes with
independent border taps plus an uncensored control vantage, all sharing
the same external servers — so differences in observations are pure
censorship policy, not infrastructure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .engine import Simulator
from .network import Network
from .node import Host, Router, Switch

__all__ = ["CountryAS", "TwoCountryTopology", "build_two_country"]


@dataclass
class CountryAS:
    """One country's client AS."""

    name: str
    clients: List[Host]
    access_switch: Switch
    border_router: Router

    @property
    def vantage(self) -> Host:
        """The measurement vantage inside this country."""
        return self.clients[0]


@dataclass
class TwoCountryTopology:
    """Two censored ASes + a control vantage on a shared internet."""

    sim: Simulator
    network: Network
    country_a: CountryAS
    country_b: CountryAS
    control_vantage: Host
    transit_router: Router
    dns_server: Host
    blocked_web: Host
    control_web: Host
    domains: Dict[str, str] = field(default_factory=dict)

    def run(self, duration: Optional[float] = None) -> int:
        if duration is None:
            return self.sim.run()
        return self.sim.run_for(duration)

    @property
    def countries(self) -> List[CountryAS]:
        return [self.country_a, self.country_b]


def _build_country(
    network: Network, name: str, cidr_octet: int, clients_per_country: int,
    transit: Router,
) -> CountryAS:
    access = network.add(Switch(f"{name}-access"))
    border = network.add(Router(f"{name}-border"))
    network.connect(access, border)
    network.connect(border, transit, latency=0.01)
    clients = []
    for index in range(clients_per_country):
        host = network.add(
            Host(f"{name}-client{index}", f"10.{cidr_octet}.0.{index + 10}")
        )
        host.user = f"{name}-user{index}"
        network.connect(host, access)
        clients.append(host)
    return CountryAS(name=name, clients=clients, access_switch=access, border_router=border)


def build_two_country(
    seed: int = 0, clients_per_country: int = 5, latency: float = 0.002
) -> TwoCountryTopology:
    """Build the comparative topology (censors attach to the borders)."""
    sim = Simulator(seed=seed)
    network = Network(sim, default_latency=latency)
    transit = network.add(Router("transit"))

    country_a = _build_country(network, "alpha", 10, clients_per_country, transit)
    country_b = _build_country(network, "beta", 20, clients_per_country, transit)

    control = network.add(Host("control", "192.0.2.200"))
    control.user = "control-user"
    network.connect(control, transit)

    dns_server = network.add(Host("dns", "8.8.8.8"))
    blocked_web = network.add(Host("blockedweb", "203.0.113.10"))
    control_web = network.add(Host("controlweb", "203.0.113.20"))
    for server in (dns_server, blocked_web, control_web):
        network.connect(server, transit)

    from ..rules.rulesets import BLOCKED_DOMAINS

    domains = {domain: blocked_web.ip for domain in BLOCKED_DOMAINS}
    domains.update({"example.org": control_web.ip, "weather.gov": control_web.ip})

    return TwoCountryTopology(
        sim=sim,
        network=network,
        country_a=country_a,
        country_b=country_b,
        control_vantage=control,
        transit_router=transit,
        dns_server=dns_server,
        blocked_web=blocked_web,
        control_web=control_web,
        domains=domains,
    )
