"""Packet capture: a passive tap that records transiting traffic.

The evaluation workflow constantly asks "what exactly crossed the border?"
— this is the tcpdump of the simulated world.  Captures store raw wire
bytes plus parsed metadata, support BPF-ish predicate filtering, and render
a tcpdump-style text log.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, List, Optional

from ..obs.export import write_jsonl
from ..packets import IPPacket, PROTO_ICMP, PROTO_TCP, PROTO_UDP
from .middlebox import Action, Middlebox, TapContext

__all__ = ["CapturedPacket", "PacketCapture"]


@dataclass
class CapturedPacket:
    """One captured packet with its capture timestamp."""

    time: float
    packet: IPPacket
    raw: bytes
    node: str

    @property
    def size(self) -> int:
        return len(self.raw)

    def line(self) -> str:
        """A tcpdump-style one-line rendering."""
        return f"{self.time:10.6f} {self.node:>8}  {self.packet.summary()}"

    def record(self) -> dict:
        """A JSON-ready dict (raw bytes hex-encoded)."""
        return {
            "time": self.time,
            "node": self.node,
            "src": self.packet.src,
            "dst": self.packet.dst,
            "protocol": self.packet.protocol,
            "size": self.size,
            "summary": self.packet.summary(),
            "raw": self.raw.hex(),
        }


class PacketCapture(Middlebox):
    """A purely passive capture tap.

    Attach to any forwarding node::

        cap = PacketCapture()
        topo.border_router.add_tap(cap)
        ...
        print(cap.text_log())

    ``predicate`` restricts what is stored (e.g. only DNS).
    ``max_packets`` bounds memory; when the bound is hit the default
    mode stops capturing (keeps the *oldest* packets — right for "how
    did this start?"), while ``ring=True`` evicts the oldest to keep the
    *newest* (a true capture ring — right for "how did this end?").
    Either way ``dropped_overflow`` counts what the bound cost.
    """

    name = "capture"

    def __init__(
        self,
        predicate: Optional[Callable[[IPPacket], bool]] = None,
        max_packets: int = 100_000,
        ring: bool = False,
    ) -> None:
        self.predicate = predicate
        self.max_packets = max_packets
        self.ring = ring
        self.packets = deque(maxlen=max_packets) if ring else []
        self.dropped_overflow = 0

    def sees_own_injections(self) -> bool:
        return True  # captures everything; it never injects

    def process(self, packet: IPPacket, ctx: TapContext) -> Action:
        if self.predicate is None or self.predicate(packet):
            if len(self.packets) >= self.max_packets:
                self.dropped_overflow += 1
                if not self.ring:
                    return Action.PASS  # stop-capture mode keeps the oldest
                # ring mode: deque(maxlen=...) evicts the oldest on append
            self.packets.append(
                CapturedPacket(
                    time=ctx.now,
                    packet=packet,
                    # Rides the packet's wire cache: a forwarded packet that
                    # was parsed or serialized upstream is captured without
                    # re-serializing.
                    raw=packet.to_bytes(),
                    node=ctx.node.name,
                )
            )
        return Action.PASS

    # -- queries -----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.packets)

    def clear(self) -> None:
        self.packets.clear()
        self.dropped_overflow = 0

    def between(self, start: float, end: float) -> List[CapturedPacket]:
        """Captured packets with start <= time < end."""
        return [cap for cap in self.packets if start <= cap.time < end]

    def involving(self, ip: str) -> List[CapturedPacket]:
        """Packets with ``ip`` as source or destination."""
        return [
            cap for cap in self.packets
            if ip in (cap.packet.src, cap.packet.dst)
        ]

    def by_protocol(self, protocol: int) -> List[CapturedPacket]:
        return [cap for cap in self.packets if cap.packet.protocol == protocol]

    def total_bytes(self) -> int:
        return sum(cap.size for cap in self.packets)

    def protocol_mix(self) -> dict:
        """Byte share per protocol name."""
        names = {PROTO_TCP: "tcp", PROTO_UDP: "udp", PROTO_ICMP: "icmp"}
        mix: dict = {}
        for cap in self.packets:
            key = names.get(cap.packet.protocol, str(cap.packet.protocol))
            mix[key] = mix.get(key, 0) + cap.size
        return mix

    def text_log(self, limit: Optional[int] = None) -> str:
        """Render the capture as a tcpdump-style log.

        When the ``max_packets`` bound discarded anything, a header line
        says how many and in which mode, so a truncated capture can
        never masquerade as a complete one.
        """
        packets = list(self.packets)
        lines: List[str] = []
        if self.dropped_overflow:
            mode = "newest kept (ring)" if self.ring else "oldest kept"
            lines.append(
                f"# {self.dropped_overflow} packet(s) dropped at "
                f"max_packets={self.max_packets}, {mode}"
            )
        selected = packets if limit is None else packets[:limit]
        lines.extend(cap.line() for cap in selected)
        if limit is not None and len(packets) > limit:
            lines.append(f"... {len(packets) - limit} more packets")
        return "\n".join(lines)

    def to_jsonl(self, path: str) -> str:
        """Export the capture as canonical JSONL (one packet per line)."""
        return write_jsonl(path, (cap.record() for cap in self.packets))


def dns_only(packet: IPPacket) -> bool:
    """Predicate: DNS traffic (UDP port 53 either direction)."""
    return packet.udp is not None and 53 in (packet.udp.sport, packet.udp.dport)


def tcp_only(packet: IPPacket) -> bool:
    """Predicate: any TCP traffic."""
    return packet.tcp is not None
