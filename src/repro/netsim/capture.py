"""Packet capture: a passive tap that records transiting traffic.

The evaluation workflow constantly asks "what exactly crossed the border?"
— this is the tcpdump of the simulated world.  Captures store raw wire
bytes plus parsed metadata, support BPF-ish predicate filtering, and render
a tcpdump-style text log.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..packets import IPPacket, PROTO_ICMP, PROTO_TCP, PROTO_UDP
from .middlebox import Action, Middlebox, TapContext

__all__ = ["CapturedPacket", "PacketCapture"]


@dataclass
class CapturedPacket:
    """One captured packet with its capture timestamp."""

    time: float
    packet: IPPacket
    raw: bytes
    node: str

    @property
    def size(self) -> int:
        return len(self.raw)

    def line(self) -> str:
        """A tcpdump-style one-line rendering."""
        return f"{self.time:10.6f} {self.node:>8}  {self.packet.summary()}"


class PacketCapture(Middlebox):
    """A purely passive capture tap.

    Attach to any forwarding node::

        cap = PacketCapture()
        topo.border_router.add_tap(cap)
        ...
        print(cap.text_log())

    ``predicate`` restricts what is stored (e.g. only DNS);
    ``max_packets`` bounds memory like a capture ring buffer.
    """

    name = "capture"

    def __init__(
        self,
        predicate: Optional[Callable[[IPPacket], bool]] = None,
        max_packets: int = 100_000,
    ) -> None:
        self.predicate = predicate
        self.max_packets = max_packets
        self.packets: List[CapturedPacket] = []
        self.dropped_overflow = 0

    def sees_own_injections(self) -> bool:
        return True  # captures everything; it never injects

    def process(self, packet: IPPacket, ctx: TapContext) -> Action:
        if self.predicate is None or self.predicate(packet):
            if len(self.packets) >= self.max_packets:
                self.dropped_overflow += 1
            else:
                self.packets.append(
                    CapturedPacket(
                        time=ctx.now,
                        packet=packet,
                        raw=packet.to_bytes(),
                        node=ctx.node.name,
                    )
                )
        return Action.PASS

    # -- queries -----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.packets)

    def clear(self) -> None:
        self.packets.clear()
        self.dropped_overflow = 0

    def between(self, start: float, end: float) -> List[CapturedPacket]:
        """Captured packets with start <= time < end."""
        return [cap for cap in self.packets if start <= cap.time < end]

    def involving(self, ip: str) -> List[CapturedPacket]:
        """Packets with ``ip`` as source or destination."""
        return [
            cap for cap in self.packets
            if ip in (cap.packet.src, cap.packet.dst)
        ]

    def by_protocol(self, protocol: int) -> List[CapturedPacket]:
        return [cap for cap in self.packets if cap.packet.protocol == protocol]

    def total_bytes(self) -> int:
        return sum(cap.size for cap in self.packets)

    def protocol_mix(self) -> dict:
        """Byte share per protocol name."""
        names = {PROTO_TCP: "tcp", PROTO_UDP: "udp", PROTO_ICMP: "icmp"}
        mix: dict = {}
        for cap in self.packets:
            key = names.get(cap.packet.protocol, str(cap.packet.protocol))
            mix[key] = mix.get(key, 0) + cap.size
        return mix

    def text_log(self, limit: Optional[int] = None) -> str:
        """Render the capture as a tcpdump-style log."""
        selected = self.packets if limit is None else self.packets[:limit]
        lines = [cap.line() for cap in selected]
        if limit is not None and len(self.packets) > limit:
            lines.append(f"... {len(self.packets) - limit} more packets")
        return "\n".join(lines)


def dns_only(packet: IPPacket) -> bool:
    """Predicate: DNS traffic (UDP port 53 either direction)."""
    return packet.udp is not None and 53 in (packet.udp.sport, packet.udp.dport)


def tcp_only(packet: IPPacket) -> bool:
    """Predicate: any TCP traffic."""
    return packet.tcp is not None
