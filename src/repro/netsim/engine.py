"""Deterministic discrete-event simulation engine.

Replaces the paper's Mininet testbed with a reproducible event queue: every
packet delivery, timer, and application callback is an event with a
simulated timestamp.  Runs are deterministic for a given seed, which is what
lets the benchmark harness make exact claims about evasion and accuracy.
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import Callable, Optional

__all__ = ["Simulator", "Timer"]


class Timer:
    """A cancellable handle for a scheduled event."""

    __slots__ = ("cancelled", "when", "_fired", "_sim")

    def __init__(self, when: float, sim: "Optional[Simulator]" = None) -> None:
        self.when = when
        self.cancelled = False
        self._fired = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        if self.cancelled or self._fired:
            return
        self.cancelled = True
        if self._sim is not None:
            self._sim._note_cancelled()


class Simulator:
    """An event loop over simulated time.

    Events fire in (time, sequence) order; ties break by scheduling order so
    runs are fully deterministic.  ``rng`` is the single source of randomness
    for everything built on top (ISNs, DNS txids, workload generators).
    """

    def __init__(self, seed: int = 0) -> None:
        self.now = 0.0
        #: The construction seed, kept so subsystems (per-link impairment
        #: pipelines, workload generators) can derive independent
        #: deterministic RNG streams without consuming ``rng`` itself.
        self.seed = seed
        self.rng = random.Random(seed)
        self._queue: list[tuple[float, int, Timer, Callable[[], None]]] = []
        self._counter = itertools.count()
        self._events_processed = 0
        #: cancelled entries still sitting in the heap (popped lazily)
        self._dead = 0
        self._cancelled_total = 0
        self._compactions = 0
        self._queue_hwm = 0

    def substream(self, *labels: int) -> random.Random:
        """A deterministic RNG stream derived from the seed and ``labels``.

        Independent of ``rng``'s draw sequence, so creating a substream
        never perturbs existing randomness — the property the
        seed-determinism regression tests rely on.
        """
        from .impairment import mix_seed

        return random.Random(mix_seed(self.seed, *labels))

    def at(self, delay: float, callback: Callable[[], None]) -> Timer:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        timer = Timer(self.now + delay, sim=self)
        heapq.heappush(self._queue, (timer.when, next(self._counter), timer, callback))
        if len(self._queue) > self._queue_hwm:
            self._queue_hwm = len(self._queue)
        return timer

    def at_uncancellable(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule an event that can never be cancelled — no Timer handle.

        The population fast path schedules millions of fire-and-forget
        events (packet hops, aggregate flow advances) whose handles are
        always discarded; skipping the Timer allocation and the
        cancellation bookkeeping makes this the cheapest way onto the
        heap.  Ordering semantics are identical to :meth:`at` — the
        (when, seq) key is shared — so mixing both kinds never reorders
        events.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        heapq.heappush(self._queue, (self.now + delay, next(self._counter), None, callback))
        if len(self._queue) > self._queue_hwm:
            self._queue_hwm = len(self._queue)

    def _note_cancelled(self) -> None:
        """Called by ``Timer.cancel``; compacts the heap when cancellation-
        heavy workloads leave it mostly dead entries."""
        self._dead += 1
        self._cancelled_total += 1
        if self._dead > len(self._queue) // 2 and self._dead >= 64:
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without cancelled entries (order-preserving:
        the (when, seq) keys are untouched)."""
        self._queue = [
            entry for entry in self._queue
            if entry[2] is None or not entry[2].cancelled
        ]
        heapq.heapify(self._queue)
        self._dead = 0
        self._compactions += 1

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> int:
        """Process events until the queue drains or ``until`` is reached.

        Returns the number of events processed by this call.
        """
        processed = 0
        while self._queue:
            when, _seq, timer, callback = self._queue[0]
            if until is not None and when > until:
                break
            heapq.heappop(self._queue)
            if timer is not None:
                if timer.cancelled:
                    self._dead -= 1
                    continue
                timer._fired = True
            self.now = when
            callback()
            processed += 1
            if processed >= max_events:
                raise RuntimeError(
                    f"simulation exceeded {max_events} events; likely a packet loop"
                )
        if until is not None and self.now < until:
            self.now = until
        self._events_processed += processed
        return processed

    def run_for(self, duration: float) -> int:
        """Advance simulated time by ``duration`` seconds."""
        return self.run(until=self.now + duration)

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return len(self._queue) - self._dead

    @property
    def events_processed(self) -> int:
        """Total events processed across all ``run`` calls."""
        return self._events_processed

    def stats(self) -> dict:
        """Event-loop health counters, cheap enough to keep always-on.

        The observability layer folds these into run reports
        (``analysis.metrics.run_report``); keeping them as plain ints on
        the simulator means the event loop itself never touches the
        metrics registry.
        """
        return {
            "events_fired": self._events_processed,
            "timers_cancelled": self._cancelled_total,
            "heap_compactions": self._compactions,
            "queue_depth_high_water": self._queue_hwm,
            "pending": self.pending,
            "now": self.now,
        }
