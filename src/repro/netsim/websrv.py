"""HTTP server and client over the simulated TCP stack."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..packets import HTTPRequest, HTTPResponse
from .node import Host
from .stack import TCPConnection

__all__ = ["WebServer", "HTTPResult", "http_get"]

HTTP_PORT = 80


class WebServer:
    """A small HTTP/1.1 server: path -> body, with per-vhost support.

    The default page body is configurable so tests can serve content that a
    keyword censor matches on the *response* direction as well as on the
    request direction.
    """

    def __init__(
        self,
        host: Host,
        port: int = HTTP_PORT,
        pages: Optional[Dict[str, str]] = None,
        default_body: str = "<html><body>hello world</body></html>",
        reply_ttl: Optional[int] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.pages = dict(pages or {})
        self.default_body = default_body
        self.requests_served = 0
        self.request_log: list[HTTPRequest] = []
        assert host.stack is not None
        host.stack.tcp_listen(port, self._accept, reply_ttl=reply_ttl)

    def add_page(self, path: str, body: str) -> None:
        self.pages[path] = body

    def _accept(self, conn: TCPConnection) -> None:
        buffer = bytearray()

        def handler(event: str, data: bytes) -> None:
            if event == "data":
                buffer.extend(data)
                if b"\r\n\r\n" in buffer:
                    self._respond(conn, bytes(buffer))
                    buffer.clear()
            elif event == "fin":
                conn.close()

        conn.handler = handler

    def _respond(self, conn: TCPConnection, raw: bytes) -> None:
        try:
            request = HTTPRequest.from_bytes(raw)
        except ValueError:
            conn.send(HTTPResponse(status=400, reason="Bad Request").to_bytes())
            conn.close()
            return
        self.requests_served += 1
        self.request_log.append(request)
        body = self.pages.get(request.path, self.default_body)
        response = HTTPResponse(
            status=200,
            reason="OK",
            headers={"Content-Type": "text/html", "Server": "repro/1.0"},
            body=body.encode(),
        )
        conn.send(response.to_bytes())
        conn.close()


@dataclass
class HTTPResult:
    """Outcome of one client HTTP transaction."""

    status: str  # "ok" | "reset" | "timeout" | "closed" | "error"
    response: Optional[HTTPResponse] = None
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def blocked_by_rst(self) -> bool:
        return self.status == "reset"


def http_get(
    client: Host,
    dst_ip: str,
    hostname: str,
    path: str = "/",
    callback: Optional[Callable[[HTTPResult], None]] = None,
    port: int = HTTP_PORT,
    headers: Optional[Dict[str, str]] = None,
    timeout: float = 3.0,
) -> None:
    """Fetch ``http://hostname{path}`` from ``dst_ip`` and report the outcome."""
    assert client.stack is not None
    sim = client.stack.sim
    started = sim.now
    buffer = bytearray()
    finished = {"done": False}

    def finish(result: HTTPResult) -> None:
        if finished["done"]:
            return
        finished["done"] = True
        result.elapsed = sim.now - started
        if callback is not None:
            callback(result)

    request = HTTPRequest(
        method="GET",
        path=path,
        host=hostname,
        headers={"User-Agent": "Mozilla/5.0", **(headers or {})},
    )

    def handler(event: str, data: bytes) -> None:
        if event == "connected":
            conn.send(request.to_bytes())
        elif event == "data":
            buffer.extend(data)
        elif event in ("fin", "closed"):
            if buffer:
                try:
                    response = HTTPResponse.from_bytes(bytes(buffer))
                except ValueError:
                    finish(HTTPResult(status="error"))
                    return
                finish(HTTPResult(status="ok", response=response))
            else:
                finish(HTTPResult(status="closed"))
            if event == "fin":
                conn.close()
        elif event == "reset":
            finish(HTTPResult(status="reset"))
        elif event in ("timeout", "icmp_error"):
            finish(HTTPResult(status="timeout"))

    conn = client.stack.tcp_connect(dst_ip, port, handler, timeout=timeout)

    # Overall transaction deadline (connection may establish but data be
    # dropped mid-flow by a censoring middlebox).
    def deadline() -> None:
        if not finished["done"]:
            conn.abort()
            finish(HTTPResult(status="timeout"))

    sim.at(timeout * 2, deadline)
