"""Snort-subset rule language, matchers, stream reassembly, and engine."""

from .engine import Alert, RuleEngine
from .index import MatchContext, RuleDispatchIndex
from .language import Rule, RuleParseError, ThresholdSpec, parse_rule, parse_ruleset
from .matcher import (
    AddressSpec,
    ContentOption,
    DsizeOption,
    FlagsOption,
    PcreOption,
    PortSpec,
)
from .reassembly import FlowRecord, StreamReassembler, StreamUpdate
from .rulesets import (
    BLOCKED_DOMAINS,
    DEFAULT_VARIABLES,
    DISCARD_CLASSTYPES,
    GFC_KEYWORDS,
    RETAIN_CLASSTYPES,
    censor_ruleset_text,
    mvr_detection_ruleset_text,
    surveillance_interest_ruleset_text,
)

__all__ = [
    "AddressSpec",
    "Alert",
    "BLOCKED_DOMAINS",
    "ContentOption",
    "DEFAULT_VARIABLES",
    "DISCARD_CLASSTYPES",
    "DsizeOption",
    "FlagsOption",
    "FlowRecord",
    "GFC_KEYWORDS",
    "MatchContext",
    "PcreOption",
    "PortSpec",
    "RETAIN_CLASSTYPES",
    "Rule",
    "RuleDispatchIndex",
    "RuleEngine",
    "RuleParseError",
    "StreamReassembler",
    "StreamUpdate",
    "ThresholdSpec",
    "censor_ruleset_text",
    "mvr_detection_ruleset_text",
    "parse_rule",
    "parse_ruleset",
    "surveillance_interest_ruleset_text",
]
