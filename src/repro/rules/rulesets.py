"""Stock rulesets for the reference censorship and surveillance systems.

The paper argues that a surveillance operator would most likely run a
*subscribed* commercial ruleset rather than bespoke rules ("most
organizations just subscribe to rulesets rather than writing their own",
Section 3.2.1).  The detection rules here mirror the Emerging-Threats rule
shapes an off-the-shelf subscription provides (scan / DDoS / spam / p2p
detections), and the censor rules mirror published GFC behaviours (keyword
reset on sensitive terms, HTTP Host blocking).

DNS poisoning and IP/port null-routing are *actions*, not signatures, so
they live in :mod:`repro.censor` components configured from the same
blocklists exported here.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

__all__ = [
    "GFC_KEYWORDS",
    "BLOCKED_DOMAINS",
    "censor_ruleset_text",
    "mvr_detection_ruleset_text",
    "surveillance_interest_ruleset_text",
    "DEFAULT_VARIABLES",
    "DISCARD_CLASSTYPES",
    "RETAIN_CLASSTYPES",
]

#: Keywords published GFC studies report triggering RST injection.
GFC_KEYWORDS: List[str] = [
    "falun",
    "ultrasurf",
    "tiananmen",
    "freegate",
    "hrichina",
    "dalailama",
]

#: Domains the censor blocks at the DNS and HTTP layers (paper Section 3.2.3
#: validated twitter.com and youtube.com against the real GFC; the rest are
#: other well-documented GFC DNS-poisoning targets).
BLOCKED_DOMAINS: List[str] = [
    "twitter.com",
    "youtube.com",
    "facebook.com",
    "falundafa.org",
    "bbc.com",
    "nytimes.com",
    "bloomberg.com",
    "dropbox.com",
    "vimeo.com",
    "instagram.com",
]

DEFAULT_VARIABLES: Dict[str, str] = {
    "HOME_NET": "10.1.0.0/16",
    "EXTERNAL_NET": "any",
}

#: Alert classes the MVR treats as commodity noise and discards (paper
#: Section 3: malware-like traffic has no intelligence value per-user).
DISCARD_CLASSTYPES = frozenset(
    {"attempted-recon", "denial-of-service", "spam", "p2p", "misc-activity"}
)

#: Alert classes the MVR retains and attributes to users.
RETAIN_CLASSTYPES = frozenset(
    {"policy-violation", "targeted-attack", "trojan-activity", "censorship-interest"}
)

#: Classes that mark a source as malware-infected for alert suppression.
#: P2P is deliberately excluded: it is discarded for *volume* reasons, but
#: running BitTorrent does not make a user's direct censored-content access
#: look like bot behaviour.
BOT_CLASSTYPES = frozenset({"attempted-recon", "denial-of-service", "spam"})


def censor_ruleset_text(
    keywords: Iterable[str] = tuple(GFC_KEYWORDS),
    blocked_domains: Iterable[str] = tuple(BLOCKED_DOMAINS),
) -> str:
    """GFC-style reject rules: keyword reset + HTTP Host blocking.

    ``reject`` means the middlebox injects RSTs at both endpoints, the
    published GFC behaviour the paper's reference censor emulates with a
    Snort rule (Section 3.2.1).
    """
    lines = ["# --- reference censorship system (GFC model) ---"]
    sid = 1_000_001
    for keyword in keywords:
        lines.append(
            f'reject tcp any any <> any any (msg:"CENSOR keyword {keyword}"; '
            f'content:"{keyword}"; nocase; flow:established; '
            f"classtype:censorship; sid:{sid}; rev:1;)"
        )
        sid += 1
    for domain in blocked_domains:
        lines.append(
            f'reject tcp any any -> any [80,8080] (msg:"CENSOR blocked host {domain}"; '
            f'content:"Host: {domain}"; nocase; flow:to_server,established; '
            f"classtype:censorship; sid:{sid}; rev:1;)"
        )
        sid += 1
    # SNI filtering: the ClientHello carries the server name in plaintext,
    # so a plain content match on port 443 implements modern HTTPS
    # censorship (the dominant GFC mechanism for TLS traffic).
    for domain in blocked_domains:
        lines.append(
            f'reject tcp any any -> any 443 (msg:"CENSOR SNI {domain}"; '
            f'content:"{domain}"; flow:to_server,established; '
            f"classtype:censorship; sid:{sid}; rev:1;)"
        )
        sid += 1
    return "\n".join(lines)


def mvr_detection_ruleset_text() -> str:
    """Commodity IDS detections: what a subscribed ruleset recognizes.

    These are the rules the paper's stealthy measurements *intentionally
    trigger*: traffic classified as scanning, DDoS, spam, or p2p is exactly
    what Massive Volume Reduction throws away.
    """
    return """
# --- commodity detections (Emerging-Threats shapes) ---
alert tcp $EXTERNAL_NET any -> any any (msg:"ET SCAN Possible Nmap SYN scan"; flags:S; threshold: type both, track by_src, count 30, seconds 10; classtype:attempted-recon; sid:2000001; rev:1;)
alert tcp $HOME_NET any -> $EXTERNAL_NET any (msg:"ET SCAN Outbound SYN scan"; flags:S; threshold: type both, track by_src, count 30, seconds 10; classtype:attempted-recon; sid:2000002; rev:1;)
alert tcp any any -> any [80,8080] (msg:"ET DOS HTTP GET flood"; content:"GET "; depth:4; flow:to_server,established; threshold: type both, track by_src, count 20, seconds 5; classtype:denial-of-service; sid:2000010; rev:1;)
alert tcp any any -> any 25 (msg:"ET SPAM bulk SMTP MAIL FROM"; content:"MAIL FROM"; nocase; flow:to_server,established; threshold: type both, track by_src, count 5, seconds 60; classtype:spam; sid:2000020; rev:1;)
alert udp $HOME_NET any -> any 53 (msg:"ET SPAM excessive MX queries"; content:"|00 0f 00 01|"; threshold: type both, track by_src, count 8, seconds 60; classtype:spam; sid:2000021; rev:1;)
alert tcp any any -> any 25 (msg:"ET SPAM known spam content"; pcre:"/viagra|WINNER|cheap meds|wire transfer|casino|100% guaranteed/i"; flow:to_server,established; classtype:spam; sid:2000022; rev:1;)
alert tcp any any -> any any (msg:"ET P2P BitTorrent handshake"; content:"|13|BitTorrent protocol"; classtype:p2p; sid:2000030; rev:1;)
alert udp any any -> any [6881:6999] (msg:"ET P2P BitTorrent DHT ping"; content:"d1|3a|ad2|3a|id"; classtype:p2p; sid:2000031; rev:1;)
""".strip()


def surveillance_interest_ruleset_text(
    keywords: Iterable[str] = tuple(GFC_KEYWORDS),
    blocked_domains: Iterable[str] = tuple(BLOCKED_DOMAINS),
) -> str:
    """User-focused rules: accesses worth retaining and attributing.

    An overt censorship measurement (the OONI-style baseline) requests
    censored content directly from a user-attributable address, which is
    precisely what these rules flag.
    """
    lines = ["# --- surveillance interest (user-attributable) ---"]
    sid = 3_000_001
    for keyword in keywords:
        lines.append(
            f'alert tcp $HOME_NET any -> $EXTERNAL_NET any (msg:"SURV censored keyword {keyword}"; '
            f'content:"{keyword}"; nocase; flow:to_server,established; '
            f"classtype:censorship-interest; sid:{sid}; rev:1;)"
        )
        sid += 1
    for domain in blocked_domains:
        lines.append(
            f'alert tcp $HOME_NET any -> $EXTERNAL_NET [80,8080] (msg:"SURV blocked host {domain}"; '
            f'content:"Host: {domain}"; nocase; flow:to_server,established; '
            f"classtype:censorship-interest; sid:{sid}; rev:1;)"
        )
        sid += 1
    # NOTE deliberately absent: per-lookup alerts on DNS queries for blocked
    # names.  The Syria analysis (paper Section 2.2 / experiment E5) shows
    # 1.57 % of the population touches censored names, far too many users to
    # retain per-query alerts for.  What *is* measurement-like is bulk
    # resolution of many censored names from one source in a short window:
    if blocked_domains:
        pattern = "|".join(
            domain.split(".")[0] for domain in blocked_domains
        )
        lines.append(
            f'alert udp $HOME_NET any -> $EXTERNAL_NET 53 (msg:"SURV bulk censored-domain resolution"; '
            f'pcre:"/{pattern}/i"; threshold: type both, track by_src, count 8, seconds 60; '
            f"classtype:censorship-interest; sid:3000900; rev:1;)"
        )
    lines.append(
        'alert tcp $HOME_NET any -> $EXTERNAL_NET any (msg:"SURV circumvention tool signature"; '
        'content:"obfs4-bridge"; classtype:censorship-interest; sid:3000999; rev:1;)'
    )
    return "\n".join(lines)


def _dns_qname_content(domain: str) -> str:
    """Snort content for a QNAME: labels are length-prefixed on the wire."""
    parts = domain.rstrip(".").split(".")
    out = []
    for label in parts:
        out.append(f"|{len(label):02x}|{label}")
    return "".join(out) + "|00|"
