"""TCP stream reassembly for the rule engine (Snort stream5 analogue).

Censorship systems "need only store enough data to reassemble flows and
store access control lists" (paper Section 1); this module is that state.
It tracks handshake progress per flow, accumulates in-order payload per
direction up to a configurable depth, and reports which side initiated the
flow so ``flow:to_server``/``to_client`` rule options work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

from ..packets import FiveTuple, IPPacket, flow_of

__all__ = ["FlowRecord", "StreamReassembler", "StreamUpdate"]

DEFAULT_STREAM_DEPTH = 8192


@dataclass
class FlowRecord:
    """Per-flow reassembly state."""

    key: FiveTuple  # canonical (direction-insensitive)
    initiator: str = ""
    responder: str = ""
    syn_seen: bool = False
    synack_seen: bool = False
    established: bool = False
    reset: bool = False
    closed: bool = False
    first_seen: float = 0.0
    last_seen: float = 0.0
    packets: int = 0
    #: reassembled application bytes per direction key ("c2s" / "s2c")
    buffers: Dict[str, bytearray] = field(
        default_factory=lambda: {"c2s": bytearray(), "s2c": bytearray()}
    )
    next_seq: Dict[str, Optional[int]] = field(
        default_factory=lambda: {"c2s": None, "s2c": None}
    )
    #: sids that already alerted on this flow's stream content
    alerted_sids: Set[int] = field(default_factory=set)

    def direction_of(self, packet: IPPacket) -> str:
        return "c2s" if packet.src == self.initiator else "s2c"

    def buffer(self, direction: str) -> bytes:
        return bytes(self.buffers[direction])

    @property
    def total_bytes(self) -> int:
        return sum(len(buf) for buf in self.buffers.values())


@dataclass
class StreamUpdate:
    """What one packet did to its flow."""

    flow: FlowRecord
    direction: str
    new_data: bytes
    is_new_flow: bool


class StreamReassembler:
    """Tracks TCP flows and reassembles payload in order.

    ``stream_depth`` caps buffered bytes per direction — the same knob a
    real IDS has, and the thing evasion-by-overflow attacks target.
    """

    def __init__(
        self,
        stream_depth: int = DEFAULT_STREAM_DEPTH,
        max_flows: int = 100_000,
        overlap_policy: str = "first",
    ) -> None:
        if overlap_policy not in ("first", "last"):
            raise ValueError("overlap_policy must be 'first' or 'last'")
        self.stream_depth = stream_depth
        self.max_flows = max_flows
        #: How retransmitted/overlapping data is resolved: "first" keeps
        #: the bytes already buffered (BSD-style), "last" lets a
        #: retransmission overwrite them (Windows-style).  Ptacek &
        #: Newsham's insertion/evasion attacks live in the gap between an
        #: IDS's policy and the end host's.
        self.overlap_policy = overlap_policy
        self.flows: Dict[FiveTuple, FlowRecord] = {}
        self.evicted_flows = 0

    def feed(self, packet: IPPacket, now: float) -> Optional[StreamUpdate]:
        """Advance flow state with ``packet``; returns None for non-TCP."""
        segment = packet.tcp
        directed = flow_of(packet)
        if segment is None or directed is None:
            return None
        key = directed.canonical()
        flow = self.flows.get(key)
        is_new = flow is None
        if flow is None:
            if len(self.flows) >= self.max_flows:
                self._evict_oldest()
            flow = FlowRecord(key=key, first_seen=now)
            # Whoever we see first is provisionally the initiator; a SYN
            # observed later corrects this (matters for mid-flow pickup).
            flow.initiator, flow.responder = packet.src, packet.dst
            self.flows[key] = flow
        flow.last_seen = now
        flow.packets += 1

        if segment.is_syn:
            flow.syn_seen = True
            flow.initiator, flow.responder = packet.src, packet.dst
        elif segment.is_synack:
            flow.synack_seen = True
            flow.initiator, flow.responder = packet.dst, packet.src
        elif segment.has(0x10) and flow.syn_seen and flow.synack_seen:  # ACK
            flow.established = True
        if segment.is_rst:
            flow.reset = True
        if segment.is_fin:
            flow.closed = True

        direction = flow.direction_of(packet)
        new_data = b""
        if segment.payload:
            new_data = self._append(flow, direction, segment)
        return StreamUpdate(flow=flow, direction=direction, new_data=new_data, is_new_flow=is_new)

    def _append(self, flow: FlowRecord, direction: str, segment) -> bytes:
        expected = flow.next_seq[direction]
        if expected is not None and segment.seq < expected:
            if self.overlap_policy == "last":
                self._overwrite(flow, direction, segment, expected)
            return b""  # retransmission / injected duplicate
        buffer = flow.buffers[direction]
        room = self.stream_depth - len(buffer)
        if room <= 0:
            return b""  # beyond inspection depth
        data = segment.payload[:room]
        buffer.extend(data)
        flow.next_seq[direction] = segment.seq + len(segment.payload)
        return data

    def _overwrite(self, flow: FlowRecord, direction: str, segment, expected: int) -> None:
        """Last-wins: a retransmission replaces already-buffered bytes.

        The buffer tail corresponds to sequence numbers
        [expected - len(buffer), expected); map the segment onto it.
        """
        buffer = flow.buffers[direction]
        buffer_start_seq = expected - len(buffer)
        offset = segment.seq - buffer_start_seq
        if offset < 0:
            data = segment.payload[-offset:]
            offset = 0
        else:
            data = segment.payload
        data = data[: max(0, len(buffer) - offset)]
        buffer[offset : offset + len(data)] = data
        # A sid that alerted on the old bytes may now face different
        # content; allow re-evaluation of stream rules on this flow.
        flow.alerted_sids.clear()

    def _evict_oldest(self) -> None:
        oldest_key = min(self.flows, key=lambda key: self.flows[key].last_seen)
        del self.flows[oldest_key]
        self.evicted_flows += 1

    def flush_flow(self, key: FiveTuple) -> None:
        """Drop a flow's state (e.g. after the censor kills it)."""
        self.flows.pop(key.canonical(), None)

    def expire(self, now: float, idle: float = 60.0) -> int:
        """Remove flows idle longer than ``idle`` seconds; returns count."""
        stale = [key for key, flow in self.flows.items() if now - flow.last_seen > idle]
        for key in stale:
            del self.flows[key]
        return len(stale)
