"""TCP stream reassembly for the rule engine (Snort stream5 analogue).

Censorship systems "need only store enough data to reassemble flows and
store access control lists" (paper Section 1); this module is that state.
It tracks handshake progress per flow, accumulates in-order payload per
direction up to a configurable depth, and reports which side initiated the
flow so ``flow:to_server``/``to_client`` rule options work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

from ..packets import PROTO_TCP, FiveTuple, IPPacket

__all__ = ["FlowRecord", "StreamReassembler", "StreamUpdate"]

DEFAULT_STREAM_DEPTH = 8192


@dataclass
class FlowRecord:
    """Per-flow reassembly state."""

    key: FiveTuple  # canonical (direction-insensitive)
    initiator: str = ""
    responder: str = ""
    syn_seen: bool = False
    synack_seen: bool = False
    established: bool = False
    reset: bool = False
    closed: bool = False
    first_seen: float = 0.0
    last_seen: float = 0.0
    packets: int = 0
    #: reassembled application bytes per direction key ("c2s" / "s2c")
    buffers: Dict[str, bytearray] = field(
        default_factory=lambda: {"c2s": bytearray(), "s2c": bytearray()}
    )
    next_seq: Dict[str, Optional[int]] = field(
        default_factory=lambda: {"c2s": None, "s2c": None}
    )
    #: sids that already alerted on this flow's stream content
    alerted_sids: Set[int] = field(default_factory=set)
    #: bumped whenever already-buffered bytes are *rewritten* (overlap
    #: policy "last"); appends don't bump it.  Snapshot caches and saved
    #: multipattern scan states key on (content_version, length).
    content_version: int = 0
    #: per-direction resumable multipattern scan state (engine-owned)
    mp_states: Dict[str, object] = field(default_factory=dict, repr=False, compare=False)
    #: plain-tuple key into the reassembler's fast flow table
    _tkey: Optional[tuple] = field(default=None, repr=False, compare=False)
    #: direction -> (content_version, length, bytes, lowered-or-None)
    _snapshots: Dict[str, tuple] = field(default_factory=dict, repr=False, compare=False)

    def direction_of(self, packet: IPPacket) -> str:
        return "c2s" if packet.src == self.initiator else "s2c"

    def buffer(self, direction: str) -> bytes:
        return self.snapshot(direction)

    def snapshot(self, direction: str) -> bytes:
        """An immutable copy of one direction's buffer, cached until the
        buffer grows or is rewritten (every candidate rule on a packet —
        and every packet that doesn't advance the stream — shares it)."""
        buf = self.buffers[direction]
        cached = self._snapshots.get(direction)
        if (
            cached is not None
            and cached[0] == self.content_version
            and cached[1] == len(buf)
        ):
            return cached[2]
        data = bytes(buf)
        self._snapshots[direction] = (self.content_version, len(buf), data, None)
        return data

    def snapshot_lower(self, direction: str) -> bytes:
        """``snapshot(direction).lower()``, folded once per buffer state."""
        cached = self._snapshots.get(direction)
        if (
            cached is not None
            and cached[0] == self.content_version
            and cached[1] == len(self.buffers[direction])
            and cached[3] is not None
        ):
            return cached[3]
        data = self.snapshot(direction)
        lowered = data.lower()
        self._snapshots[direction] = (
            self.content_version,
            len(data),
            data,
            lowered,
        )
        return lowered

    @property
    def total_bytes(self) -> int:
        return sum(len(buf) for buf in self.buffers.values())


@dataclass(slots=True)
class StreamUpdate:
    """What one packet did to its flow."""

    flow: FlowRecord
    direction: str
    new_data: bytes
    is_new_flow: bool


class StreamReassembler:
    """Tracks TCP flows and reassembles payload in order.

    ``stream_depth`` caps buffered bytes per direction — the same knob a
    real IDS has, and the thing evasion-by-overflow attacks target.
    """

    def __init__(
        self,
        stream_depth: int = DEFAULT_STREAM_DEPTH,
        max_flows: int = 100_000,
        overlap_policy: str = "first",
    ) -> None:
        if overlap_policy not in ("first", "last"):
            raise ValueError("overlap_policy must be 'first' or 'last'")
        self.stream_depth = stream_depth
        self.max_flows = max_flows
        #: How retransmitted/overlapping data is resolved: "first" keeps
        #: the bytes already buffered (BSD-style), "last" lets a
        #: retransmission overwrite them (Windows-style).  Ptacek &
        #: Newsham's insertion/evasion attacks live in the gap between an
        #: IDS's policy and the end host's.
        self.overlap_policy = overlap_policy
        self.flows: Dict[FiveTuple, FlowRecord] = {}
        #: plain-tuple mirror of ``flows`` — (lo_ip, lo_port, hi_ip, hi_port)
        #: keys skip FiveTuple construction on the per-packet hot path
        self._fast: Dict[tuple, FlowRecord] = {}
        self.evicted_flows = 0

    def feed(self, packet: IPPacket, now: float) -> Optional[StreamUpdate]:
        """Advance flow state with ``packet``; returns None for non-TCP."""
        segment = packet.tcp
        if segment is None:
            return None
        return self.feed_tcp(packet, segment, now)

    def feed_tcp(self, packet: IPPacket, segment, now: float) -> StreamUpdate:
        """The TCP hot path: caller already extracted ``segment``."""
        src = packet.src
        dst = packet.dst
        sport = segment.sport
        dport = segment.dport
        # Canonical ordering, same as FiveTuple.canonical(): lower
        # (ip, port) endpoint first.
        if (src, sport) <= (dst, dport):
            tkey = (src, sport, dst, dport)
        else:
            tkey = (dst, dport, src, sport)
        flow = self._fast.get(tkey)
        is_new = flow is None
        if flow is None:
            if len(self.flows) >= self.max_flows:
                self._evict_oldest()
            key = FiveTuple(
                src=src, sport=sport, dst=dst, dport=dport, protocol=PROTO_TCP
            ).canonical()
            flow = FlowRecord(key=key, first_seen=now)
            # Whoever we see first is provisionally the initiator; a SYN
            # observed later corrects this (matters for mid-flow pickup).
            flow.initiator, flow.responder = src, dst
            flow._tkey = tkey
            self.flows[key] = flow
            self._fast[tkey] = flow
        flow.last_seen = now
        flow.packets += 1

        flags = segment.flags
        if flags & 0x02:  # SYN
            if flags & 0x10:  # SYN|ACK
                flow.synack_seen = True
                flow.initiator, flow.responder = dst, src
            else:
                flow.syn_seen = True
                flow.initiator, flow.responder = src, dst
        elif flags & 0x10 and flow.syn_seen and flow.synack_seen:  # ACK
            flow.established = True
        if flags & 0x04:  # RST
            flow.reset = True
        if flags & 0x01:  # FIN
            flow.closed = True

        direction = "c2s" if src == flow.initiator else "s2c"
        new_data = b""
        if segment.payload:
            new_data = self._append(flow, direction, segment)
        return StreamUpdate(flow=flow, direction=direction, new_data=new_data, is_new_flow=is_new)

    def _append(self, flow: FlowRecord, direction: str, segment) -> bytes:
        expected = flow.next_seq[direction]
        if expected is not None and segment.seq < expected:
            if self.overlap_policy == "last":
                self._overwrite(flow, direction, segment, expected)
            return b""  # retransmission / injected duplicate
        buffer = flow.buffers[direction]
        room = self.stream_depth - len(buffer)
        if room <= 0:
            return b""  # beyond inspection depth
        data = segment.payload[:room]
        buffer.extend(data)
        flow.next_seq[direction] = segment.seq + len(segment.payload)
        return data

    def _overwrite(self, flow: FlowRecord, direction: str, segment, expected: int) -> None:
        """Last-wins: a retransmission replaces already-buffered bytes.

        The buffer tail corresponds to sequence numbers
        [expected - len(buffer), expected); map the segment onto it.
        """
        buffer = flow.buffers[direction]
        buffer_start_seq = expected - len(buffer)
        offset = segment.seq - buffer_start_seq
        if offset < 0:
            data = segment.payload[-offset:]
            offset = 0
        else:
            data = segment.payload
        data = data[: max(0, len(buffer) - offset)]
        buffer[offset : offset + len(data)] = data
        # A sid that alerted on the old bytes may now face different
        # content; allow re-evaluation of stream rules on this flow, and
        # invalidate cached snapshots / saved multipattern scan states.
        flow.alerted_sids.clear()
        flow.content_version += 1

    def _drop(self, record: FlowRecord) -> None:
        if record._tkey is not None:
            self._fast.pop(record._tkey, None)

    def _evict_oldest(self) -> None:
        oldest_key = min(self.flows, key=lambda key: self.flows[key].last_seen)
        self._drop(self.flows.pop(oldest_key))
        self.evicted_flows += 1

    def flush_flow(self, key: FiveTuple) -> None:
        """Drop a flow's state (e.g. after the censor kills it)."""
        record = self.flows.pop(key.canonical(), None)
        if record is not None:
            self._drop(record)

    def expire(self, now: float, idle: float = 60.0) -> int:
        """Remove flows idle longer than ``idle`` seconds; returns count."""
        stale = [key for key, flow in self.flows.items() if now - flow.last_seen > idle]
        for key in stale:
            self._drop(self.flows.pop(key))
        return len(stale)
