"""Parser for the Snort-subset rule language.

Grammar (one rule per line; ``#`` comments and blank lines ignored)::

    action proto src_addr src_port -> dst_addr dst_port ( options )
    action proto src_addr src_port <> dst_addr dst_port ( options )

Actions: ``alert``, ``log``, ``pass``, ``drop``, ``reject``.
Protocols: ``tcp``, ``udp``, ``icmp``, ``ip``.

Supported options: ``msg``, ``sid``, ``rev``, ``classtype``, ``priority``,
``reference``, ``content`` (+``nocase``/``offset``/``depth``), ``pcre``,
``flags``, ``dsize``, ``itype``, ``icode``, ``flow``, ``threshold`` /
``detection_filter``.  This covers the rule shapes the paper's evaluation
needs: GFC keyword-reset rules, ET-style scan/spam/DDoS detections, and
policy rules for censored-content access.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .matcher import (
    AddressSpec,
    ContentOption,
    DsizeOption,
    FlagsOption,
    PcreOption,
    PortSpec,
    RuleParseError,
)

__all__ = ["Rule", "ThresholdSpec", "parse_rule", "parse_ruleset", "RuleParseError"]

ACTIONS = ("alert", "log", "pass", "drop", "reject")
PROTOCOLS = ("tcp", "udp", "icmp", "ip")


@dataclass
class ThresholdSpec:
    """``threshold``/``detection_filter`` semantics.

    - ``limit``: alert on the first ``count`` events per window, then mute.
    - ``threshold``: alert on every ``count``-th event within the window.
    - ``both``: alert once per window, only after ``count`` events.
    """

    kind: str  # "limit" | "threshold" | "both"
    track: str  # "by_src" | "by_dst"
    count: int
    seconds: float

    @classmethod
    def parse(cls, text: str) -> "ThresholdSpec":
        fields: Dict[str, str] = {}
        for chunk in text.split(","):
            parts = chunk.strip().split()
            if len(parts) != 2:
                raise RuleParseError(f"bad threshold chunk: {chunk!r}")
            fields[parts[0]] = parts[1]
        try:
            return cls(
                kind=fields.get("type", "both"),
                track=fields["track"],
                count=int(fields["count"]),
                seconds=float(fields["seconds"]),
            )
        except KeyError as missing:
            raise RuleParseError(f"threshold missing field {missing}") from None


@dataclass
class Rule:
    """One parsed rule."""

    action: str
    protocol: str
    src: AddressSpec
    sport: PortSpec
    dst: AddressSpec
    dport: PortSpec
    bidirectional: bool = False
    msg: str = ""
    sid: int = 0
    rev: int = 1
    classtype: str = ""
    priority: int = 3
    references: List[str] = field(default_factory=list)
    contents: List[ContentOption] = field(default_factory=list)
    pcres: List[PcreOption] = field(default_factory=list)
    flags: Optional[FlagsOption] = None
    dsize: Optional[DsizeOption] = None
    itype: Optional[int] = None
    icode: Optional[int] = None
    flow: List[str] = field(default_factory=list)
    threshold: Optional[ThresholdSpec] = None
    raw: str = ""
    #: cached anchor literal (``False`` = not yet computed, ``None`` = none)
    _anchor: object = field(default=False, repr=False, compare=False)

    def needs_payload(self) -> bool:
        return bool(self.contents or self.pcres)

    def anchor_literal(self) -> Optional[tuple]:
        """The rule's cheapest necessary literal, as ``(needle, nocase)``.

        Every non-negated ``content`` must appear somewhere in the haystack
        for the rule to fire (offset/depth only narrow the window), so the
        longest such pattern is a sound prefilter: if it is absent from the
        haystack the full option evaluation can be skipped.  Returns None
        for rules with no non-negated content (pcre-only, negated-only,
        header-only rules).
        """
        if self._anchor is False:
            best = None
            for content in self.contents:
                if content.negated:
                    continue
                if best is None or len(content.pattern) > len(best.pattern):
                    best = content
            self._anchor = None if best is None else (best.needle(), best.nocase)
        return self._anchor

    def __str__(self) -> str:
        return f"[{self.sid}:{self.rev}] {self.action} {self.msg!r}"


_OPTION_RE = re.compile(
    r"""
    \s*(?P<key>[A-Za-z_]+)              # option keyword
    (?:\s*:\s*
        (?:"(?P<quoted>(?:[^"\\]|\\.)*)"   # quoted value
        |(?P<bare>[^;]*)                   # bare value
        )
    )?
    \s*;
    """,
    re.VERBOSE,
)


def _split_header_options(text: str) -> tuple[str, str]:
    open_paren = text.find("(")
    if open_paren == -1 or not text.rstrip().endswith(")"):
        raise RuleParseError(f"rule missing option block: {text!r}")
    return text[:open_paren].strip(), text.rstrip()[open_paren + 1 : -1]


def _unescape(value: str) -> str:
    # Snort escapes ";", ":", "\\" and '"' inside quoted option values;
    # other backslashes (e.g. pcre classes like \d) pass through untouched.
    return re.sub(r'\\([";:\\])', r"\1", value)


def parse_rule(text: str, variables: Optional[Dict[str, str]] = None) -> Rule:
    """Parse a single rule line into a :class:`Rule`."""
    variables = variables or {}
    header, option_text = _split_header_options(text.strip())
    fields = header.split()
    if len(fields) != 7:
        raise RuleParseError(f"bad rule header ({len(fields)} fields): {header!r}")
    action, protocol, src, sport, direction, dst, dport = fields
    if action not in ACTIONS:
        raise RuleParseError(f"unknown action: {action!r}")
    if protocol not in PROTOCOLS:
        raise RuleParseError(f"unknown protocol: {protocol!r}")
    if direction not in ("->", "<>"):
        raise RuleParseError(f"bad direction token: {direction!r}")

    rule = Rule(
        action=action,
        protocol=protocol,
        src=AddressSpec.parse(src, variables),
        sport=PortSpec.parse(sport, variables),
        dst=AddressSpec.parse(dst, variables),
        dport=PortSpec.parse(dport, variables),
        bidirectional=direction == "<>",
        raw=text.strip(),
    )

    pending_content: Optional[ContentOption] = None
    for match in _OPTION_RE.finditer(option_text):
        key = match.group("key").lower()
        value = match.group("quoted")
        if value is not None:
            value = _unescape(value)
        else:
            value = (match.group("bare") or "").strip()

        if key == "msg":
            rule.msg = value
        elif key == "sid":
            rule.sid = int(value)
        elif key == "rev":
            rule.rev = int(value)
        elif key == "classtype":
            rule.classtype = value
        elif key == "priority":
            rule.priority = int(value)
        elif key == "reference":
            rule.references.append(value)
        elif key == "content":
            negated = value.startswith("!")
            body = value[1:].strip('"') if negated else value
            pending_content = ContentOption(
                pattern=ContentOption.parse_pattern(body), negated=negated
            )
            rule.contents.append(pending_content)
        elif key == "nocase":
            if pending_content is None:
                raise RuleParseError("nocase without preceding content")
            pending_content.nocase = True
        elif key == "offset":
            if pending_content is None:
                raise RuleParseError("offset without preceding content")
            pending_content.offset = int(value)
        elif key == "depth":
            if pending_content is None:
                raise RuleParseError("depth without preceding content")
            pending_content.depth = int(value)
        elif key == "pcre":
            rule.pcres.append(PcreOption.parse(value))
        elif key == "flags":
            rule.flags = FlagsOption.parse(value)
        elif key == "dsize":
            rule.dsize = DsizeOption.parse(value)
        elif key == "itype":
            rule.itype = int(value)
        elif key == "icode":
            rule.icode = int(value)
        elif key == "flow":
            rule.flow = [part.strip() for part in value.split(",")]
        elif key in ("threshold", "detection_filter"):
            rule.threshold = ThresholdSpec.parse(value)
        else:
            raise RuleParseError(f"unsupported rule option: {key!r}")

    if rule.sid == 0:
        raise RuleParseError(f"rule missing sid: {text!r}")
    return rule


def parse_ruleset(text: str, variables: Optional[Dict[str, str]] = None) -> List[Rule]:
    """Parse a multi-line ruleset, skipping comments and blank lines."""
    rules: List[Rule] = []
    for line_number, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        try:
            rules.append(parse_rule(stripped, variables))
        except RuleParseError as error:
            raise RuleParseError(f"line {line_number}: {error}") from None
    seen: Dict[int, str] = {}
    for rule in rules:
        if rule.sid in seen:
            raise RuleParseError(f"duplicate sid {rule.sid}")
        seen[rule.sid] = rule.msg
    return rules
