"""Ruleset-wide multi-pattern matching: an Aho–Corasick literal prefilter.

Real IDSes do not test each rule's content literals independently — Snort
feeds *every* fast-pattern literal in the ruleset into one multi-pattern
search (Aho–Corasick / hyperscan) and runs a single pass over the payload;
the hits select which rules are worth full evaluation.  This module is that
layer for the reproduction's engine.

Design:

- **Global literal interning.**  Every distinct ``(needle, nocase)`` pair
  in any ruleset gets one process-wide integer id
  (:func:`intern_literal`).  Rule objects cache the frozenset of ids their
  non-negated contents require (:func:`required_literal_ids`) and a single
  representative *anchor* id (:func:`anchor_literal_id`, the longest
  needle — the rarest literal, mirroring Snort's fast-pattern choice).
  Ids are global so a Rule shared by two engines means the same thing in
  both automatons.

- **Case folding.**  The automaton stores each literal by its case-folded
  form; a folded pattern node carries every member literal as a distinct
  id.  ``nocase`` literals (already stored lowered by the rule parser)
  match whenever their folded form occurs.  Case-sensitive literals ride
  the same folded trie — the folded variant acts as a distinct internal
  pattern — and are *confirmed* with an exact raw-byte comparison at the
  match position, so the reported hit set is exactly
  ``{id : needle in haystack}`` (lowered haystack for nocase ids), never a
  superset.  One scan of the folded payload therefore serves both cases.

- **Incremental stream scanning.**  TCP rules match against the
  reassembled stream, which only grows (the ``"last"`` overlap policy can
  rewrite it, which bumps the flow's ``content_version`` and forces a
  rescan).  :meth:`MultiPatternAutomaton.scan_chunk` resumes from a saved
  DFA state, so each stream byte is scanned once per flow lifetime instead
  of once per packet.

- **Adaptive one-shot scans.**  For datagram payloads the DFA walk is a
  per-byte Python loop; above ``ONE_SHOT_DFA_LIMIT`` bytes it is cheaper
  to run one C-speed ``in`` scan per *unique folded pattern* (the deduped
  literal table, not one scan per rule).  Both strategies report the same
  exact hit set; :meth:`scan` picks by haystack size.

Soundness of the prefilter: every non-negated ``content`` must occur
somewhere in the haystack for its rule to fire (``offset``/``depth`` only
narrow the window), so a rule whose required ids are not all present can
be skipped without evaluating headers or options.  Rules with no
non-negated content (header-only, pcre-only, negated-only) have no
required ids and are never filtered.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

__all__ = [
    "MultiPatternAutomaton",
    "StreamScanState",
    "intern_literal",
    "literal_table_size",
    "required_literal_ids",
    "anchor_literal_id",
    "shared_automaton",
    "clear_automaton_cache",
    "ONE_SHOT_DFA_LIMIT",
]

#: One-shot haystacks longer than this are scanned with one C-speed ``in``
#: per unique folded pattern instead of the per-byte DFA walk (the DFA is
#: O(n) in Python bytecode; ``in`` is O(n) in C — the constant factors
#: cross over around a few hundred bytes for ruleset-sized literal tables).
ONE_SHOT_DFA_LIMIT = 256

# -- global literal interning --------------------------------------------------

#: process-wide ``(needle, nocase) -> literal id``; ids are stable for the
#: process lifetime so rules shared between engines agree on meaning.
_LITERAL_IDS: Dict[Tuple[bytes, bool], int] = {}
#: id -> (needle, nocase), for introspection and naive cross-checks
_LITERALS: List[Tuple[bytes, bool]] = []


def intern_literal(needle: bytes, nocase: bool) -> int:
    """Process-wide id for a content literal (deduped across rulesets)."""
    key = (needle, nocase)
    lid = _LITERAL_IDS.get(key)
    if lid is None:
        lid = len(_LITERALS)
        _LITERAL_IDS[key] = lid
        _LITERALS.append(key)
    return lid


def literal_of(lid: int) -> Tuple[bytes, bool]:
    """The ``(needle, nocase)`` pair behind an interned id."""
    return _LITERALS[lid]


def literal_table_size() -> int:
    return len(_LITERALS)


def required_literal_ids(rule) -> Optional[FrozenSet[int]]:
    """Interned ids of every literal ``rule`` needs present, cached on the rule.

    Returns None for rules with no non-negated, non-empty content — those
    can never be literal-filtered.
    """
    ids = getattr(rule, "_mp_required", False)
    if ids is False:
        required = [
            content
            for content in rule.contents
            if not content.negated and content.pattern
        ]
        if not required:
            ids = None
        else:
            ids = frozenset(
                intern_literal(content.needle(), content.nocase)
                for content in required
            )
        rule._mp_required = ids
    return ids


def anchor_literal_id(rule) -> Optional[int]:
    """The rule's representative literal id: its longest required needle.

    The longest literal is the least likely to occur by chance, so bucketing
    a rule under it minimizes spurious candidate revivals (the same
    heuristic behind the existing ``anchor_literal`` and Snort's
    fast-pattern selection).
    """
    anchor = getattr(rule, "_mp_anchor", False)
    if anchor is False:
        best = None
        for content in rule.contents:
            if content.negated or not content.pattern:
                continue
            if best is None or len(content.pattern) > len(best.pattern):
                best = content
        anchor = (
            None if best is None else intern_literal(best.needle(), best.nocase)
        )
        rule._mp_anchor = anchor
    return anchor


# -- shared automaton cache ----------------------------------------------------

#: process-wide finalized automatons keyed by their literal-id set.  Sweep
#: workers are reused across points by the process pool, and every
#: censored-as point rebuilds the same censor/MVR/surveillance rulesets —
#: without the cache each rebuild pays the full trie + failure-link +
#: dense-table construction (the ``multipattern_build`` bench) three times
#: per point.  The automaton's matching behavior is a pure function of its
#: literal set, so any two rulesets with the same literals can share one
#: instance; sharing is safe because scans never mutate a finalized
#: automaton, and engines that *extend* their ruleset copy-on-write (see
#: :meth:`RuleEngine.add_rules`).
_AUTOMATON_CACHE: Dict[Tuple[int, ...], "MultiPatternAutomaton"] = {}


def shared_automaton(rules: Iterable) -> "MultiPatternAutomaton":
    """A process-cached, finalized automaton over ``rules``' literals.

    The cache key is the sorted tuple of interned literal ids the rules
    require — global interning dedupes ``(needle, nocase)`` pairs, so two
    rulesets with identical literal content map to the same key even if
    they interned in different orders.  On a miss the automaton is built,
    finalized immediately (so its version is stable from the first scan),
    and marked ``shared``; engines must treat a shared instance as
    immutable and replace it instead of extending it.

    Per-rule caches (``_mp_required``/``_mp_anchor``) are warmed here even
    on a hit, because hit-path callers skip :meth:`add_rules`.
    """
    rule_list = list(rules)
    ids: set = set()
    for rule in rule_list:
        required = required_literal_ids(rule)
        anchor_literal_id(rule)
        if required:
            ids.update(required)
    key = tuple(sorted(ids))
    automaton = _AUTOMATON_CACHE.get(key)
    if automaton is None:
        automaton = MultiPatternAutomaton()
        automaton.add_rules(rule_list)
        automaton.ensure_ready()
        automaton.shared = True
        _AUTOMATON_CACHE[key] = automaton
    return automaton


def clear_automaton_cache() -> int:
    """Drop every cached shared automaton; returns how many were cached.

    For tests and long-lived processes that churn through many distinct
    rulesets — the cache grows one entry per distinct literal set and is
    otherwise never evicted.
    """
    count = len(_AUTOMATON_CACHE)
    _AUTOMATON_CACHE.clear()
    return count


# -- the automaton -------------------------------------------------------------


class StreamScanState:
    """Per-flow-direction resumable scan position.

    ``present`` accumulates the literal ids seen so far in the stream
    buffer (monotone while the buffer only appends, which is exactly when
    the state is reusable).
    """

    __slots__ = ("automaton_version", "content_version", "scanned", "state", "present")

    def __init__(self, automaton_version: int, content_version: int) -> None:
        self.automaton_version = automaton_version
        self.content_version = content_version
        self.scanned = 0
        self.state = 0
        self.present: set = set()


class MultiPatternAutomaton:
    """An Aho–Corasick automaton over one engine's content literals.

    Built lazily: :meth:`add_literal`/:meth:`add_rules` extend the trie and
    mark the link/output tables dirty; the first scan after an extension
    recomputes failure links and the dense transition table from the
    persistent trie (incremental in the trie, amortized in the tables).
    ``version`` increments on every finalize so saved stream states from an
    older automaton are detected and rescanned.
    """

    def __init__(self) -> None:
        #: folded pattern -> list of (lid, needle, case_sensitive) members
        self._groups: Dict[bytes, List[Tuple[int, bytes, bool]]] = {}
        #: trie: per-node byte -> child node index
        self._children: List[Dict[int, int]] = [{}]
        #: per-node folded pattern terminating there (or None)
        self._terminal: List[Optional[bytes]] = [None]
        #: dense DFA tables, rebuilt by _finalize()
        self._next: List[List[int]] = []
        #: per-state tuple of (folded_len, members) output groups, () if none
        self._out: List[tuple] = []
        self._dirty = True
        self.version = 0
        #: every interned id this automaton contains
        self._known_ids: set = set()
        #: True when this instance lives in the process-wide cache
        #: (:func:`shared_automaton`) — holders must copy-on-write instead
        #: of extending it in place.
        self.shared = False

    # -- construction ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._known_ids)

    def known_ids(self) -> FrozenSet[int]:
        return frozenset(self._known_ids)

    def add_literal(self, needle: bytes, nocase: bool) -> int:
        """Register one literal; returns its global id."""
        lid = intern_literal(needle, nocase)
        if lid in self._known_ids:
            return lid
        self._known_ids.add(lid)
        folded = needle if nocase else needle.lower()
        members = self._groups.get(folded)
        if members is None:
            members = []
            self._groups[folded] = members
            self._trie_insert(folded)
        # nocase needles are pre-lowered, so folded == needle for them and
        # no raw confirmation is needed; case-sensitive members confirm
        # against the raw haystack at the match position.
        members.append((lid, needle, not nocase))
        self._dirty = True
        return lid

    def add_rules(self, rules: Iterable) -> None:
        """Register every required literal of ``rules`` (idempotent)."""
        for rule in rules:
            for content in rule.contents:
                if content.negated or not content.pattern:
                    continue
                self.add_literal(content.needle(), content.nocase)
            # warm the per-rule caches while we are here
            required_literal_ids(rule)
            anchor_literal_id(rule)

    def _trie_insert(self, folded: bytes) -> None:
        node = 0
        children = self._children
        for byte in folded:
            nxt = children[node].get(byte)
            if nxt is None:
                children.append({})
                self._terminal.append(None)
                nxt = len(children) - 1
                children[node][byte] = nxt
            node = nxt
        self._terminal[node] = folded

    def _finalize(self) -> None:
        """Recompute failure links, collapsed outputs, and dense tables."""
        children = self._children
        n_states = len(children)
        fail = [0] * n_states
        # outputs per state before collapsing fail chains
        out: List[list] = [[] for _ in range(n_states)]
        for node in range(n_states):
            folded = self._terminal[node]
            if folded is not None:
                out[node].append((len(folded), tuple(self._groups[folded])))

        queue = deque()
        for child in children[0].values():
            queue.append(child)
        order = []
        while queue:
            node = queue.popleft()
            order.append(node)
            for byte, child in children[node].items():
                queue.append(child)
                state = fail[node]
                while state and byte not in children[state]:
                    state = fail[state]
                nxt = children[state].get(byte, 0)
                fail[child] = nxt if nxt != child else 0
        # collapse outputs along failure links (BFS order guarantees the
        # fail target's outputs are already complete)
        for node in order:
            if out[fail[node]]:
                out[node] = out[node] + out[fail[node]]

        # dense goto-with-failure transition table
        root = children[0]
        table: List[List[int]] = [[0] * 256 for _ in range(n_states)]
        base = table[0]
        for byte, child in root.items():
            base[byte] = child
        for node in order:
            row = table[node]
            fail_row = table[fail[node]]
            row[:] = fail_row
            for byte, child in children[node].items():
                row[byte] = child

        self._next = table
        self._out = [tuple(groups) for groups in out]
        self._dirty = False
        self.version += 1

    # -- scanning --------------------------------------------------------------

    def ensure_ready(self) -> int:
        """Finalize if dirty; returns the current automaton version.

        Callers holding :class:`StreamScanState` must compare versions
        *after* this call — a finalize bumps the version and invalidates
        every saved DFA state.
        """
        if self._dirty:
            self._finalize()
        return self.version

    def scan(self, haystack: bytes, lowered: Optional[bytes] = None) -> set:
        """Exact present-literal ids for a one-shot haystack.

        ``lowered`` may be passed when the caller already folded the
        haystack (the engine's MatchContext shares one folded copy).
        """
        if not self._groups or not haystack:
            return set()
        if self._dirty:
            self._finalize()
        if lowered is None:
            lowered = haystack.lower()
        present: set = set()
        if len(lowered) > ONE_SHOT_DFA_LIMIT:
            for folded, members in self._groups.items():
                if folded in lowered:
                    for lid, needle, confirm in members:
                        if not confirm:
                            present.add(lid)
                        elif needle in haystack:
                            present.add(lid)
            return present
        self._walk(lowered, haystack, 0, 0, present)
        return present

    def scan_chunk(
        self,
        lowered: bytes,
        haystack: bytes,
        start: int,
        state: int,
        present: set,
    ) -> int:
        """Resume a stream scan over ``lowered[start:]``; returns the new
        DFA state.  ``lowered``/``haystack`` are the *full* buffer snapshots
        so case confirmation and cross-chunk matches see every byte."""
        if self._dirty:
            self._finalize()
        if not self._groups:
            return state
        return self._walk(lowered, haystack, start, state, present)

    def _walk(
        self, lowered: bytes, haystack: bytes, start: int, state: int, present: set
    ) -> int:
        table = self._next
        out = self._out
        position = start
        for byte in memoryview(lowered)[start:]:
            state = table[state][byte]
            position += 1
            groups = out[state]
            if groups:
                for length, members in groups:
                    for lid, needle, confirm in members:
                        if lid in present:
                            continue
                        if not confirm:
                            present.add(lid)
                        elif haystack[position - length : position] == needle:
                            present.add(lid)
        return state

    # -- reference implementation (tests cross-check against this) -------------

    def naive_present(self, haystack: bytes, lowered: Optional[bytes] = None) -> set:
        """The semantics :meth:`scan` must reproduce: per-literal ``in``."""
        if lowered is None:
            lowered = haystack.lower()
        present = set()
        for lid in self._known_ids:
            needle, nocase = literal_of(lid)
            if needle in (lowered if nocase else haystack):
                present.add(lid)
        return present
