"""The rule-evaluation engine (the Snort analogue).

One engine instance is the core of both reference systems: the censorship
middlebox runs it with GFC-style ``reject``/``drop`` rules, and the
surveillance MVR runs it with detection/policy ``alert`` rules.  Leaked
documents indicate both real systems are off-path signature-based IDSes
(paper Section 3.2.1), so one shared engine is the faithful model.

Evaluation runs on a fast path by default: a :class:`RuleDispatchIndex`
limits each packet to candidate rules bucketed by protocol and destination
port, a shared :class:`MatchContext` computes per-packet facts once, and an
anchor-literal prefilter skips content rules whose necessary literal is
absent from the haystack.  ``RuleEngine(use_index=False)`` keeps the naive
full-scan path alive as the semantic reference (see
``tests/rules/test_equivalence.py``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..obs.metrics import active_or_none
from ..obs.trace import active_tracer
from ..packets import IPPacket, PROTO_ICMP, PROTO_TCP, PROTO_UDP
from .index import MatchContext, RuleDispatchIndex
from .language import Rule, ThresholdSpec, parse_ruleset
from .reassembly import StreamReassembler, StreamUpdate

__all__ = ["Alert", "RuleEngine"]

_PROTO_OF = {"tcp": PROTO_TCP, "udp": PROTO_UDP, "icmp": PROTO_ICMP}


@dataclass
class Alert:
    """One rule firing on one packet."""

    time: float
    sid: int
    msg: str
    action: str
    classtype: str
    priority: int
    src: str
    dst: str
    sport: int
    dport: int
    rule: Rule = field(repr=False, default=None)  # type: ignore[assignment]
    packet: IPPacket = field(repr=False, default=None)  # type: ignore[assignment]

    def __str__(self) -> str:
        return (
            f"[{self.time:.3f}] [{self.sid}] {self.action.upper()} "
            f"{self.msg} {self.src}:{self.sport} -> {self.dst}:{self.dport}"
        )


class _ThresholdState:
    """Sliding-window event counting for threshold/detection_filter.

    State is pruned periodically: a ``(sid, ip)`` key whose newest event is
    older than its spec's window can never influence a future decision, so
    long multi-user simulations don't accumulate one deque per address
    forever.
    """

    #: prune every this-many ``should_alert`` calls
    PRUNE_INTERVAL = 1024

    def __init__(self) -> None:
        self._events: Dict[Tuple[int, str], deque] = {}
        self._fired_in_window: Dict[Tuple[int, str], float] = {}
        #: the spec window (seconds) last seen per key, for pruning
        self._windows: Dict[Tuple[int, str], float] = {}
        self._calls = 0

    def should_alert(self, spec: ThresholdSpec, sid: int, key_ip: str, now: float) -> bool:
        self._calls += 1
        if self._calls % self.PRUNE_INTERVAL == 0:
            self.prune(now)
        key = (sid, key_ip)
        window = self._events.setdefault(key, deque())
        self._windows[key] = spec.seconds
        window.append(now)
        while window and now - window[0] > spec.seconds:
            window.popleft()
        count = len(window)
        if spec.kind == "limit":
            return count <= spec.count
        if spec.kind == "threshold":
            return count % spec.count == 0
        # "both": once per window, after count reached
        if count >= spec.count:
            last = self._fired_in_window.get(key)
            if last is None or now - last > spec.seconds:
                self._fired_in_window[key] = now
                return True
        return False

    def prune(self, now: float) -> int:
        """Drop keys whose newest event left the window; returns count."""
        stale = [
            key
            for key, window in self._events.items()
            if not window or now - window[-1] > self._windows.get(key, 0.0)
        ]
        for key in stale:
            del self._events[key]
            self._windows.pop(key, None)
        fired_stale = [
            key
            for key, last in self._fired_in_window.items()
            if key not in self._events and now - last > self._windows.get(key, 0.0)
        ]
        for key in fired_stale:
            del self._fired_in_window[key]
        return len(stale)

    def tracked_keys(self) -> int:
        return len(self._events)


class RuleEngine:
    """Evaluates a ruleset against a packet stream.

    Usage: ``engine.process(packet, now)`` returns the alerts the packet
    raised, in ruleset order, with ``pass`` rules suppressing everything
    else for that packet (Snort's pass-before-alert ordering).
    """

    def __init__(
        self,
        rules: Optional[List[Rule]] = None,
        variables: Optional[Dict[str, str]] = None,
        stream_depth: int = 8192,
        overlap_policy: str = "first",
        use_index: bool = True,
        obs_label: str = "engine",
    ) -> None:
        self.variables = dict(variables or {})
        self.rules: List[Rule] = list(rules or [])
        self.reassembler = StreamReassembler(
            stream_depth=stream_depth, overlap_policy=overlap_policy
        )
        self.alerts: List[Alert] = []
        self.packets_processed = 0
        self._thresholds = _ThresholdState()
        self.use_index = use_index
        self._index: Optional[RuleDispatchIndex] = (
            RuleDispatchIndex(self.rules) if use_index else None
        )
        self._by_sid: Dict[int, Rule] = {rule.sid: rule for rule in self.rules}
        # Observability, resolved once; ``obs_label`` distinguishes the
        # censor's engine from the MVR's in shared registry counters.
        self.obs_label = obs_label
        obs = active_or_none()
        self._obs = obs
        if obs is not None:
            self._m_packets = obs.counter(
                "rules_packets_total",
                "Packets run through a rule engine",
                ("engine",),
            )
            self._m_evaluated = obs.counter(
                "rules_candidates_evaluated_total",
                "Candidate rules considered (post dispatch-index)",
                ("engine",),
            )
            self._m_prefilter = obs.counter(
                "rules_prefilter_skips_total",
                "Content rules skipped because their anchor literal was absent",
                ("engine",),
            )
            self._m_hits = obs.counter(
                "rules_hits_total",
                "Alerts raised, per rule sid",
                ("engine", "sid"),
            )
        tracer = active_tracer()
        self._trace = (
            tracer if tracer is not None and tracer.enabled_for("rules") else None
        )

    @classmethod
    def from_text(
        cls,
        ruleset_text: str,
        variables: Optional[Dict[str, str]] = None,
        stream_depth: int = 8192,
        overlap_policy: str = "first",
        use_index: bool = True,
        obs_label: str = "engine",
    ) -> "RuleEngine":
        variables = dict(variables or {})
        return cls(
            rules=parse_ruleset(ruleset_text, variables),
            variables=variables,
            stream_depth=stream_depth,
            overlap_policy=overlap_policy,
            use_index=use_index,
            obs_label=obs_label,
        )

    def add_rules(self, ruleset_text: str) -> None:
        added = parse_ruleset(ruleset_text, self.variables)
        self.rules.extend(added)
        if self._index is not None:
            self._index.add(added)
        for rule in added:
            self._by_sid[rule.sid] = rule

    def rule_by_sid(self, sid: int) -> Optional[Rule]:
        return self._by_sid.get(sid)

    # -- evaluation -------------------------------------------------------------

    def process(self, packet: IPPacket, now: float) -> List[Alert]:
        """Run the packet through reassembly and every candidate rule."""
        self.packets_processed += 1
        update = self.reassembler.feed(packet, now)
        ctx = MatchContext(packet, update)
        if self._index is not None:
            candidates = self._index.candidates(packet.protocol, ctx.dport, ctx.sport)
            prefilter = True
        else:
            candidates = self.rules
            prefilter = False
        # Local int bookkeeping is cheap enough to run unconditionally;
        # the registry is touched once per packet, behind one None check.
        evaluated = 0
        prefilter_skips = 0
        passed = False
        matches: List[Alert] = []
        for rule in candidates:
            evaluated += 1
            if not self._header_matches(rule, packet, ctx):
                continue
            if prefilter:
                anchor = rule.anchor_literal()
                if anchor is not None:
                    needle, nocase = anchor
                    hay = ctx.lower_haystack if nocase else ctx.haystack
                    if needle not in hay:
                        prefilter_skips += 1
                        continue  # a necessary literal is absent
            if not self._options_match(rule, packet, update, ctx):
                continue
            if rule.action == "pass":
                # pass rules defeat all later rules for this packet
                passed = True
                matches = []
                break
            if rule.threshold is not None:
                key_ip = packet.src if rule.threshold.track == "by_src" else packet.dst
                if not self._thresholds.should_alert(rule.threshold, rule.sid, key_ip, now):
                    continue
            if update is not None and rule.needs_payload():
                # Stream-context matches fire once per flow per sid, like a
                # flushed-stream alert, not once per subsequent packet.
                if rule.sid in update.flow.alerted_sids:
                    continue
                update.flow.alerted_sids.add(rule.sid)
            matches.append(self._alert(rule, packet, now, ctx))
        if self._obs is not None:
            label = (self.obs_label,)
            self._m_packets.inc(label)
            self._m_evaluated.inc(label, evaluated)
            if prefilter_skips:
                self._m_prefilter.inc(label, prefilter_skips)
            for alert in matches:
                self._m_hits.inc((self.obs_label, str(alert.sid)))
        if self._trace is not None:
            self._trace.instant(
                "sweep",
                "rules",
                track=f"rules:{self.obs_label}",
                when=now,
                candidates=evaluated,
                alerts=len(matches),
                prefilter_skips=prefilter_skips,
                passed=passed,
            )
        self.alerts.extend(matches)
        return matches

    def _alert(self, rule: Rule, packet: IPPacket, now: float, ctx: MatchContext) -> Alert:
        return Alert(
            time=now,
            sid=rule.sid,
            msg=rule.msg,
            action=rule.action,
            classtype=rule.classtype,
            priority=rule.priority,
            src=packet.src,
            dst=packet.dst,
            sport=ctx.sport,
            dport=ctx.dport,
            rule=rule,
            packet=packet,
        )

    def _header_matches(self, rule: Rule, packet: IPPacket, ctx: MatchContext) -> bool:
        if rule.protocol != "ip" and _PROTO_OF[rule.protocol] != packet.protocol:
            return False
        sport, dport = ctx.sport, ctx.dport
        forward = (
            (rule.src.any or rule.src.matches_int(ctx.src_int))
            and (rule.sport.any or rule.sport.matches(sport))
            and (rule.dst.any or rule.dst.matches_int(ctx.dst_int))
            and (rule.dport.any or rule.dport.matches(dport))
        )
        if forward:
            return True
        if rule.bidirectional:
            return (
                (rule.src.any or rule.src.matches_int(ctx.dst_int))
                and (rule.sport.any or rule.sport.matches(dport))
                and (rule.dst.any or rule.dst.matches_int(ctx.src_int))
                and (rule.dport.any or rule.dport.matches(sport))
            )
        return False

    def _options_match(
        self,
        rule: Rule,
        packet: IPPacket,
        update: Optional[StreamUpdate],
        ctx: MatchContext,
    ) -> bool:
        if rule.flags is not None:
            if ctx.tcp is None or not rule.flags.matches(ctx.tcp.flags):
                return False
        if rule.itype is not None:
            if ctx.icmp is None or ctx.icmp.icmp_type != rule.itype:
                return False
        if rule.icode is not None:
            if ctx.icmp is None or ctx.icmp.code != rule.icode:
                return False

        if rule.dsize is not None and not rule.dsize.matches(len(ctx.payload)):
            return False

        if rule.flow:
            if not self._flow_matches(rule.flow, packet, update):
                return False

        if rule.needs_payload():
            # Match against the reassembled stream so keywords split
            # across segments are still seen (and evasion by splitting
            # is defeated, as with the real GFC).
            haystack = ctx.haystack
            if not haystack:
                return False
            for content in rule.contents:
                hay = ctx.lower_haystack if content.nocase else haystack
                if not content.search_in(hay):
                    return False
            for pcre in rule.pcres:
                if not pcre.matches(haystack):
                    return False
        return True

    def _flow_matches(
        self, flow_opts: List[str], packet: IPPacket, update: Optional[StreamUpdate]
    ) -> bool:
        if "stateless" in flow_opts:
            return True
        if update is None:
            return False
        flow = update.flow
        for option in flow_opts:
            if option == "established" and not flow.established:
                return False
            if option == "to_server" and update.direction != "c2s":
                return False
            if option == "to_client" and update.direction != "s2c":
                return False
            if option == "not_established" and flow.established:
                return False
        return True
