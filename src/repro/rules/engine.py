"""The rule-evaluation engine (the Snort analogue).

One engine instance is the core of both reference systems: the censorship
middlebox runs it with GFC-style ``reject``/``drop`` rules, and the
surveillance MVR runs it with detection/policy ``alert`` rules.  Leaked
documents indicate both real systems are off-path signature-based IDSes
(paper Section 3.2.1), so one shared engine is the faithful model.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..packets import IPPacket, PROTO_ICMP, PROTO_TCP, PROTO_UDP
from .language import Rule, ThresholdSpec, parse_ruleset
from .reassembly import StreamReassembler, StreamUpdate

__all__ = ["Alert", "RuleEngine"]

_PROTO_OF = {"tcp": PROTO_TCP, "udp": PROTO_UDP, "icmp": PROTO_ICMP}


@dataclass
class Alert:
    """One rule firing on one packet."""

    time: float
    sid: int
    msg: str
    action: str
    classtype: str
    priority: int
    src: str
    dst: str
    sport: int
    dport: int
    rule: Rule = field(repr=False, default=None)  # type: ignore[assignment]
    packet: IPPacket = field(repr=False, default=None)  # type: ignore[assignment]

    def __str__(self) -> str:
        return (
            f"[{self.time:.3f}] [{self.sid}] {self.action.upper()} "
            f"{self.msg} {self.src}:{self.sport} -> {self.dst}:{self.dport}"
        )


class _ThresholdState:
    """Sliding-window event counting for threshold/detection_filter."""

    def __init__(self) -> None:
        self._events: Dict[Tuple[int, str], deque] = {}
        self._fired_in_window: Dict[Tuple[int, str], float] = {}

    def should_alert(self, spec: ThresholdSpec, sid: int, key_ip: str, now: float) -> bool:
        key = (sid, key_ip)
        window = self._events.setdefault(key, deque())
        window.append(now)
        while window and now - window[0] > spec.seconds:
            window.popleft()
        count = len(window)
        if spec.kind == "limit":
            return count <= spec.count
        if spec.kind == "threshold":
            return count % spec.count == 0
        # "both": once per window, after count reached
        if count >= spec.count:
            last = self._fired_in_window.get(key)
            if last is None or now - last > spec.seconds:
                self._fired_in_window[key] = now
                return True
        return False


class RuleEngine:
    """Evaluates a ruleset against a packet stream.

    Usage: ``engine.process(packet, now)`` returns the alerts the packet
    raised, in ruleset order, with ``pass`` rules suppressing everything
    else for that packet (Snort's pass-before-alert ordering).
    """

    def __init__(
        self,
        rules: Optional[List[Rule]] = None,
        variables: Optional[Dict[str, str]] = None,
        stream_depth: int = 8192,
        overlap_policy: str = "first",
    ) -> None:
        self.variables = dict(variables or {})
        self.rules: List[Rule] = list(rules or [])
        self.reassembler = StreamReassembler(
            stream_depth=stream_depth, overlap_policy=overlap_policy
        )
        self.alerts: List[Alert] = []
        self.packets_processed = 0
        self._thresholds = _ThresholdState()

    @classmethod
    def from_text(
        cls,
        ruleset_text: str,
        variables: Optional[Dict[str, str]] = None,
        stream_depth: int = 8192,
        overlap_policy: str = "first",
    ) -> "RuleEngine":
        variables = dict(variables or {})
        return cls(
            rules=parse_ruleset(ruleset_text, variables),
            variables=variables,
            stream_depth=stream_depth,
            overlap_policy=overlap_policy,
        )

    def add_rules(self, ruleset_text: str) -> None:
        self.rules.extend(parse_ruleset(ruleset_text, self.variables))

    def rule_by_sid(self, sid: int) -> Optional[Rule]:
        for rule in self.rules:
            if rule.sid == sid:
                return rule
        return None

    # -- evaluation -------------------------------------------------------------

    def process(self, packet: IPPacket, now: float) -> List[Alert]:
        """Run the packet through reassembly and every rule."""
        self.packets_processed += 1
        update = self.reassembler.feed(packet, now)
        matches: List[Alert] = []
        for rule in self.rules:
            if not self._header_matches(rule, packet):
                continue
            if not self._options_match(rule, packet, update):
                continue
            if rule.action == "pass":
                return []  # pass rules defeat all later rules for this packet
            if rule.threshold is not None:
                key_ip = packet.src if rule.threshold.track == "by_src" else packet.dst
                if not self._thresholds.should_alert(rule.threshold, rule.sid, key_ip, now):
                    continue
            if update is not None and rule.needs_payload():
                # Stream-context matches fire once per flow per sid, like a
                # flushed-stream alert, not once per subsequent packet.
                if rule.sid in update.flow.alerted_sids:
                    continue
                update.flow.alerted_sids.add(rule.sid)
            matches.append(self._alert(rule, packet, now))
        self.alerts.extend(matches)
        return matches

    def _alert(self, rule: Rule, packet: IPPacket, now: float) -> Alert:
        sport, dport = _ports_of(packet)
        return Alert(
            time=now,
            sid=rule.sid,
            msg=rule.msg,
            action=rule.action,
            classtype=rule.classtype,
            priority=rule.priority,
            src=packet.src,
            dst=packet.dst,
            sport=sport,
            dport=dport,
            rule=rule,
            packet=packet,
        )

    def _header_matches(self, rule: Rule, packet: IPPacket) -> bool:
        if rule.protocol != "ip" and _PROTO_OF[rule.protocol] != packet.protocol:
            return False
        sport, dport = _ports_of(packet)
        forward = (
            rule.src.matches(packet.src)
            and rule.sport.matches(sport)
            and rule.dst.matches(packet.dst)
            and rule.dport.matches(dport)
        )
        if forward:
            return True
        if rule.bidirectional:
            return (
                rule.src.matches(packet.dst)
                and rule.sport.matches(dport)
                and rule.dst.matches(packet.src)
                and rule.dport.matches(sport)
            )
        return False

    def _options_match(
        self, rule: Rule, packet: IPPacket, update: Optional[StreamUpdate]
    ) -> bool:
        if rule.flags is not None:
            if packet.tcp is None or not rule.flags.matches(packet.tcp.flags):
                return False
        if rule.itype is not None:
            if packet.icmp is None or packet.icmp.icmp_type != rule.itype:
                return False
        if rule.icode is not None:
            if packet.icmp is None or packet.icmp.code != rule.icode:
                return False

        payload = _payload_of(packet)
        if rule.dsize is not None and not rule.dsize.matches(len(payload)):
            return False

        if rule.flow:
            if not self._flow_matches(rule.flow, packet, update):
                return False

        if rule.needs_payload():
            haystack = payload
            if update is not None:
                # Match against the reassembled stream so keywords split
                # across segments are still seen (and evasion by splitting
                # is defeated, as with the real GFC).
                haystack = update.flow.buffer(update.direction)
            if not haystack:
                return False
            for content in rule.contents:
                if not content.matches(haystack):
                    return False
            for pcre in rule.pcres:
                if not pcre.matches(haystack):
                    return False
        return True

    def _flow_matches(
        self, flow_opts: List[str], packet: IPPacket, update: Optional[StreamUpdate]
    ) -> bool:
        if "stateless" in flow_opts:
            return True
        if update is None:
            return False
        flow = update.flow
        for option in flow_opts:
            if option == "established" and not flow.established:
                return False
            if option == "to_server" and update.direction != "c2s":
                return False
            if option == "to_client" and update.direction != "s2c":
                return False
            if option == "not_established" and flow.established:
                return False
        return True


def _ports_of(packet: IPPacket) -> Tuple[int, int]:
    if packet.tcp is not None:
        return packet.tcp.sport, packet.tcp.dport
    if packet.udp is not None:
        return packet.udp.sport, packet.udp.dport
    return 0, 0


def _payload_of(packet: IPPacket) -> bytes:
    if packet.tcp is not None:
        return packet.tcp.payload
    if packet.udp is not None:
        return packet.udp.payload
    if packet.icmp is not None:
        return packet.icmp.payload
    if isinstance(packet.payload, (bytes, bytearray)):
        return bytes(packet.payload)
    return b""
