"""The rule-evaluation engine (the Snort analogue).

One engine instance is the core of both reference systems: the censorship
middlebox runs it with GFC-style ``reject``/``drop`` rules, and the
surveillance MVR runs it with detection/policy ``alert`` rules.  Leaked
documents indicate both real systems are off-path signature-based IDSes
(paper Section 3.2.1), so one shared engine is the faithful model.

Evaluation runs on a fast path by default: a :class:`RuleDispatchIndex`
limits each packet to candidate rules bucketed by protocol and destination
port, a shared :class:`MatchContext` computes per-packet facts once, and a
ruleset-wide Aho–Corasick pass (:mod:`.multipattern`) turns each rule's
necessary-literal check into a set-membership test — candidate content
rules are only *revived* when their anchor literal was actually seen in
the payload.  ``RuleEngine(use_index=False)`` keeps the naive full-scan
path alive as the semantic reference (see
``tests/rules/test_equivalence.py``), and ``prefilter="anchor"``/"none"
keep the older per-rule strategies selectable.

Observability on the hot path is *batched*: per-packet counter deltas
accumulate in plain engine-local ints/dicts and fold into the registry
every ``obs_flush_interval`` packets, at the end of every
:meth:`RuleEngine.process_batch`, and — via the registry's flush hooks —
whenever anyone reads the registry, so reported values stay exact.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..obs.metrics import active_or_none
from ..obs.trace import active_tracer
from ..packets import IPPacket, PROTO_ICMP, PROTO_TCP, PROTO_UDP
from .index import MatchContext, RuleDispatchIndex
from .language import Rule, ThresholdSpec, parse_ruleset
from .multipattern import MultiPatternAutomaton, StreamScanState, shared_automaton
from .reassembly import StreamReassembler, StreamUpdate

__all__ = ["Alert", "RuleEngine", "PREFILTER_MODES"]

_PROTO_OF = {"tcp": PROTO_TCP, "udp": PROTO_UDP, "icmp": PROTO_ICMP}

#: Literal-prefilter strategies: "multipattern" is the ruleset-wide
#: Aho–Corasick pass, "anchor" the legacy per-rule ``needle in hay`` check,
#: "none" disables literal filtering entirely.  "auto" resolves to
#: multipattern on the indexed path and "none" on the naive reference path.
PREFILTER_MODES = ("auto", "multipattern", "anchor", "none")

_EMPTY_IDS: frozenset = frozenset()


@dataclass
class Alert:
    """One rule firing on one packet."""

    time: float
    sid: int
    msg: str
    action: str
    classtype: str
    priority: int
    src: str
    dst: str
    sport: int
    dport: int
    rule: Rule = field(repr=False, default=None)  # type: ignore[assignment]
    packet: IPPacket = field(repr=False, default=None)  # type: ignore[assignment]

    def __str__(self) -> str:
        return (
            f"[{self.time:.3f}] [{self.sid}] {self.action.upper()} "
            f"{self.msg} {self.src}:{self.sport} -> {self.dst}:{self.dport}"
        )


class _ThresholdState:
    """Sliding-window event counting for threshold/detection_filter.

    State is pruned periodically: a ``(sid, ip)`` key whose newest event is
    older than its spec's window can never influence a future decision, so
    long multi-user simulations don't accumulate one deque per address
    forever.
    """

    #: prune every this-many ``should_alert`` calls
    PRUNE_INTERVAL = 1024

    def __init__(self) -> None:
        self._events: Dict[Tuple[int, str], deque] = {}
        self._fired_in_window: Dict[Tuple[int, str], float] = {}
        #: the spec window (seconds) last seen per key, for pruning
        self._windows: Dict[Tuple[int, str], float] = {}
        self._calls = 0

    def should_alert(self, spec: ThresholdSpec, sid: int, key_ip: str, now: float) -> bool:
        self._calls += 1
        if self._calls % self.PRUNE_INTERVAL == 0:
            self.prune(now)
        key = (sid, key_ip)
        window = self._events.setdefault(key, deque())
        self._windows[key] = spec.seconds
        window.append(now)
        while window and now - window[0] > spec.seconds:
            window.popleft()
        count = len(window)
        if spec.kind == "limit":
            return count <= spec.count
        if spec.kind == "threshold":
            return count % spec.count == 0
        # "both": once per window, after count reached
        if count >= spec.count:
            last = self._fired_in_window.get(key)
            if last is None or now - last > spec.seconds:
                self._fired_in_window[key] = now
                return True
        return False

    def prune(self, now: float) -> int:
        """Drop keys whose newest event left the window; returns count."""
        stale = [
            key
            for key, window in self._events.items()
            if not window or now - window[-1] > self._windows.get(key, 0.0)
        ]
        for key in stale:
            del self._events[key]
            self._windows.pop(key, None)
        fired_stale = [
            key
            for key, last in self._fired_in_window.items()
            if key not in self._events and now - last > self._windows.get(key, 0.0)
        ]
        for key in fired_stale:
            del self._fired_in_window[key]
        return len(stale)

    def tracked_keys(self) -> int:
        return len(self._events)


class RuleEngine:
    """Evaluates a ruleset against a packet stream.

    Usage: ``engine.process(packet, now)`` returns the alerts the packet
    raised, in ruleset order, with ``pass`` rules suppressing everything
    else for that packet (Snort's pass-before-alert ordering).
    """

    def __init__(
        self,
        rules: Optional[List[Rule]] = None,
        variables: Optional[Dict[str, str]] = None,
        stream_depth: int = 8192,
        overlap_policy: str = "first",
        use_index: bool = True,
        obs_label: str = "engine",
        prefilter: str = "auto",
        obs_flush_interval: int = 64,
        trace_sample_interval: int = 64,
    ) -> None:
        self.variables = dict(variables or {})
        self.rules: List[Rule] = list(rules or [])
        self.reassembler = StreamReassembler(
            stream_depth=stream_depth, overlap_policy=overlap_policy
        )
        self.alerts: List[Alert] = []
        self.packets_processed = 0
        self._thresholds = _ThresholdState()
        self.use_index = use_index
        if prefilter not in PREFILTER_MODES:
            raise ValueError(f"prefilter must be one of {PREFILTER_MODES}")
        if prefilter == "auto":
            prefilter = "multipattern" if use_index else "none"
        self.prefilter = prefilter
        self._index: Optional[RuleDispatchIndex] = (
            RuleDispatchIndex(self.rules) if use_index else None
        )
        #: the ruleset's literal automaton — the process-cached shared
        #: instance when one exists for this literal set.  Sweep workers
        #: construct an engine per point over the same handful of
        #: rulesets; the cache turns every rebuild after the first into a
        #: dictionary lookup (see ``shared_automaton``).  ``add_rules``
        #: copies-on-write before extending a shared instance.
        self._mp: Optional[MultiPatternAutomaton] = None
        if prefilter == "multipattern":
            self._mp = shared_automaton(self.rules)
        self._by_sid: Dict[int, Rule] = {rule.sid: rule for rule in self.rules}
        # Observability, resolved once; ``obs_label`` distinguishes the
        # censor's engine from the MVR's in shared registry counters.
        # Per-packet deltas accumulate in the ``_pend_*`` fields and fold
        # into the registry every ``obs_flush_interval`` packets and on
        # any registry read (the flush hook), so values stay exact.
        self.obs_label = obs_label
        self.obs_flush_interval = obs_flush_interval
        #: [packets, evaluated, prefilter_skips, flush_interval] — a flat
        #: list so the hot path pays one attribute load, not nine
        self._pend = [0, 0, 0, obs_flush_interval]
        self._pend_hits: Dict[int, int] = {}
        #: sid -> interned ``(obs_label, "sid")`` label tuple, built at
        #: rule-add time instead of per alert on the hot path
        self._hit_labels: Dict[int, Tuple[str, str]] = {}
        self._engine_label = (obs_label,)
        obs = active_or_none()
        self._obs = obs
        if obs is not None:
            self._m_packets = obs.counter(
                "rules_packets_total",
                "Packets run through a rule engine",
                ("engine",),
            )
            self._m_evaluated = obs.counter(
                "rules_candidates_evaluated_total",
                "Candidate rules considered (post dispatch-index)",
                ("engine",),
            )
            self._m_prefilter = obs.counter(
                "rules_prefilter_skips_total",
                "Content rules skipped because a necessary literal was absent",
                ("engine",),
            )
            self._m_hits = obs.counter(
                "rules_hits_total",
                "Alerts raised, per rule sid",
                ("engine", "sid"),
            )
            for rule in self.rules:
                self._hit_labels[rule.sid] = (obs_label, str(rule.sid))
            obs.on_flush(self.flush_obs)
        # Tracing is sampled: one aggregated "sweep" instant per
        # ``trace_sample_interval`` packets (deterministic, count-based).
        tracer = active_tracer()
        self._trace = (
            tracer if tracer is not None and tracer.enabled_for("rules") else None
        )
        self.trace_sample_interval = trace_sample_interval
        self._trace_track = f"rules:{obs_label}"
        self._trace_pkts = 0
        self._trace_candidates = 0
        self._trace_alerts = 0
        self._trace_skips = 0
        self._trace_passed = 0

    @classmethod
    def from_text(
        cls,
        ruleset_text: str,
        variables: Optional[Dict[str, str]] = None,
        stream_depth: int = 8192,
        overlap_policy: str = "first",
        use_index: bool = True,
        obs_label: str = "engine",
        prefilter: str = "auto",
    ) -> "RuleEngine":
        variables = dict(variables or {})
        return cls(
            rules=parse_ruleset(ruleset_text, variables),
            variables=variables,
            stream_depth=stream_depth,
            overlap_policy=overlap_policy,
            use_index=use_index,
            obs_label=obs_label,
            prefilter=prefilter,
        )

    def add_rules(self, ruleset_text: str) -> None:
        added = parse_ruleset(ruleset_text, self.variables)
        self.rules.extend(added)
        if self._index is not None:
            self._index.add(added)
        if self._mp is not None:
            if self._mp.shared:
                # Copy-on-write: the automaton is the process-wide shared
                # instance for this literal set, and extending it in place
                # would mutate every sibling engine built from the same
                # ruleset.  Build a private replacement over the full
                # (already-extended) ruleset, seeded with the shared
                # instance's version so the replacement's post-finalize
                # version strictly exceeds any per-flow scan state saved
                # against the old automaton — those states rescan on
                # their next packet instead of resuming a stale DFA walk.
                replacement = MultiPatternAutomaton()
                replacement.version = self._mp.version
                replacement.add_rules(self.rules)
                self._mp = replacement
            else:
                # Extends the automaton incrementally; the next scan
                # refreshes the DFA tables and bumps the version, which
                # invalidates every saved per-flow scan state (they rescan
                # against the new automaton on the next packet).
                self._mp.add_rules(added)
        for rule in added:
            self._by_sid[rule.sid] = rule
            if self._obs is not None:
                self._hit_labels[rule.sid] = (self.obs_label, str(rule.sid))

    def rule_by_sid(self, sid: int) -> Optional[Rule]:
        return self._by_sid.get(sid)

    # -- evaluation -------------------------------------------------------------

    def process(self, packet: IPPacket, now: float) -> List[Alert]:
        """Run the packet through reassembly and every candidate rule."""
        self.packets_processed += 1
        tcp = packet.tcp
        update = (
            self.reassembler.feed_tcp(packet, tcp, now) if tcp is not None else None
        )
        ctx = MatchContext(packet, update, tcp=tcp)
        prefilter_skips = 0
        anchor_check = False
        if self._mp is not None:
            # Multipattern fast path: one scan yields the present literal
            # ids; only rules whose anchor literal was seen (plus the
            # never-filterable ones) survive to full evaluation, merged
            # back in ruleset order.
            present = self._present_ids(ctx, update)
            if self._index is not None:
                bucket = self._index.lookup(packet.protocol, ctx.dport, ctx.sport)
                total = len(bucket.rules)
                entries = bucket.always
                if present:
                    by_anchor = bucket.by_anchor
                    revived = None
                    for lid in present:
                        hit = by_anchor.get(lid)
                        if hit is not None:
                            if revived is None:
                                revived = list(entries)
                            revived.extend(hit)
                    if revived is not None:
                        revived.sort()
                        entries = revived
                # The anchor hit revived the rule; the frozenset subset
                # test enforces the *rest* of its required literals.
                candidates = [
                    rule
                    for _order, rule in entries
                    if rule._mp_required is None or rule._mp_required <= present
                ]
            else:
                total = len(self.rules)
                candidates = [
                    rule
                    for rule in self.rules
                    if rule._mp_required is None or rule._mp_required <= present
                ]
            evaluated = total
            prefilter_skips = total - len(candidates)
        elif self._index is not None:
            candidates = self._index.candidates(packet.protocol, ctx.dport, ctx.sport)
            evaluated = len(candidates)
            anchor_check = self.prefilter == "anchor"
        else:
            candidates = self.rules
            evaluated = len(candidates)
            anchor_check = self.prefilter == "anchor"
        passed = False
        matches: List[Alert] = []
        for rule in candidates:
            if not self._header_matches(rule, packet, ctx):
                continue
            if anchor_check:
                anchor = rule.anchor_literal()
                if anchor is not None:
                    needle, nocase = anchor
                    hay = ctx.lower_haystack if nocase else ctx.haystack
                    if needle not in hay:
                        prefilter_skips += 1
                        continue  # a necessary literal is absent
            if not self._options_match(rule, packet, update, ctx):
                continue
            if rule.action == "pass":
                # pass rules defeat all later rules for this packet
                passed = True
                matches = []
                break
            if rule.threshold is not None:
                key_ip = packet.src if rule.threshold.track == "by_src" else packet.dst
                if not self._thresholds.should_alert(rule.threshold, rule.sid, key_ip, now):
                    continue
            if update is not None and rule.needs_payload():
                # Stream-context matches fire once per flow per sid, like a
                # flushed-stream alert, not once per subsequent packet.
                if rule.sid in update.flow.alerted_sids:
                    continue
                update.flow.alerted_sids.add(rule.sid)
            matches.append(self._alert(rule, packet, now, ctx))
        if self._obs is not None:
            # Batched instrumentation: plain-int deltas here, registry
            # folds in flush_obs() (interval, batch end, or registry read).
            pend = self._pend
            pend[0] += 1
            pend[1] += evaluated
            pend[2] += prefilter_skips
            if matches:
                hits = self._pend_hits
                for alert in matches:
                    hits[alert.sid] = hits.get(alert.sid, 0) + 1
            if pend[0] >= pend[3]:
                self.flush_obs()
        if self._trace is not None:
            self._trace_pkts += 1
            self._trace_candidates += evaluated
            self._trace_alerts += len(matches)
            self._trace_skips += prefilter_skips
            if passed:
                self._trace_passed += 1
            if self._trace_pkts >= self.trace_sample_interval:
                self._emit_trace_sample(now)
        self.alerts.extend(matches)
        return matches

    def process_batch(
        self,
        packets: Sequence[IPPacket],
        now: Union[float, Sequence[float]],
    ) -> List[List[Alert]]:
        """Evaluate many packets in one call; returns per-packet alerts.

        ``now`` is either one timestamp for the whole batch or a sequence
        of per-packet timestamps (taps buffer arrival times).  Semantics
        are exactly ``[process(p, t) for p, t in ...]`` — same alerts,
        same order, same threshold and stream state — but the per-packet
        observability touch is amortized: pending counters fold into the
        registry once, at the end of the batch.
        """
        process = self.process
        if isinstance(now, (int, float)):
            results = [process(packet, now) for packet in packets]
        else:
            results = [process(packet, when) for packet, when in zip(packets, now)]
        if self._obs is not None:
            self.flush_obs()
        return results

    def _present_ids(self, ctx: MatchContext, update: Optional[StreamUpdate]):
        """Literal ids present in this packet's haystack (exact, not a
        superset).  Stream haystacks resume a per-flow-direction scan
        state so each buffered byte is walked once per flow lifetime."""
        mp = self._mp
        if update is None:
            payload = ctx.payload
            if not payload:
                return _EMPTY_IDS
            return mp.scan(payload, ctx.lower_haystack)
        flow = update.flow
        direction = update.direction
        length = len(flow.buffers[direction])
        if length == 0:
            return _EMPTY_IDS
        version = mp.ensure_ready()
        state = flow.mp_states.get(direction)
        if (
            state is None
            or state.automaton_version != version
            or state.content_version != flow.content_version
        ):
            state = StreamScanState(version, flow.content_version)
            flow.mp_states[direction] = state
        if state.scanned < length:
            haystack = flow.snapshot(direction)
            lowered = flow.snapshot_lower(direction)
            state.state = mp.scan_chunk(
                lowered, haystack, state.scanned, state.state, state.present
            )
            state.scanned = length
        return state.present

    def flush_obs(self) -> None:
        """Fold pending instrumentation deltas into the registry (exact)."""
        pend = self._pend
        if self._obs is None or not pend[0]:
            return
        label = self._engine_label
        self._m_packets.inc(label, pend[0])
        self._m_evaluated.inc(label, pend[1])
        if pend[2]:
            self._m_prefilter.inc(label, pend[2])
        pend[0] = pend[1] = pend[2] = 0
        if self._pend_hits:
            hits = self._m_hits
            labels = self._hit_labels
            for sid, count in self._pend_hits.items():
                sid_label = labels.get(sid)
                if sid_label is None:
                    sid_label = labels[sid] = (self.obs_label, str(sid))
                hits.inc(sid_label, count)
            self._pend_hits.clear()

    def _emit_trace_sample(self, now: float) -> None:
        self._trace.instant(
            "sweep",
            "rules",
            track=self._trace_track,
            when=now,
            packets=self._trace_pkts,
            candidates=self._trace_candidates,
            alerts=self._trace_alerts,
            prefilter_skips=self._trace_skips,
            passed=self._trace_passed,
            sampled=True,
        )
        self._trace_pkts = 0
        self._trace_candidates = 0
        self._trace_alerts = 0
        self._trace_skips = 0
        self._trace_passed = 0

    def _alert(self, rule: Rule, packet: IPPacket, now: float, ctx: MatchContext) -> Alert:
        return Alert(
            time=now,
            sid=rule.sid,
            msg=rule.msg,
            action=rule.action,
            classtype=rule.classtype,
            priority=rule.priority,
            src=packet.src,
            dst=packet.dst,
            sport=ctx.sport,
            dport=ctx.dport,
            rule=rule,
            packet=packet,
        )

    def _header_matches(self, rule: Rule, packet: IPPacket, ctx: MatchContext) -> bool:
        if rule.protocol != "ip" and _PROTO_OF[rule.protocol] != packet.protocol:
            return False
        sport, dport = ctx.sport, ctx.dport
        forward = (
            (rule.src.any or rule.src.matches_int(ctx.src_int))
            and (rule.sport.any or rule.sport.matches(sport))
            and (rule.dst.any or rule.dst.matches_int(ctx.dst_int))
            and (rule.dport.any or rule.dport.matches(dport))
        )
        if forward:
            return True
        if rule.bidirectional:
            return (
                (rule.src.any or rule.src.matches_int(ctx.dst_int))
                and (rule.sport.any or rule.sport.matches(dport))
                and (rule.dst.any or rule.dst.matches_int(ctx.src_int))
                and (rule.dport.any or rule.dport.matches(sport))
            )
        return False

    def _options_match(
        self,
        rule: Rule,
        packet: IPPacket,
        update: Optional[StreamUpdate],
        ctx: MatchContext,
    ) -> bool:
        if rule.flags is not None:
            if ctx.tcp is None or not rule.flags.matches(ctx.tcp.flags):
                return False
        if rule.itype is not None:
            if ctx.icmp is None or ctx.icmp.icmp_type != rule.itype:
                return False
        if rule.icode is not None:
            if ctx.icmp is None or ctx.icmp.code != rule.icode:
                return False

        if rule.dsize is not None and not rule.dsize.matches(len(ctx.payload)):
            return False

        if rule.flow:
            if not self._flow_matches(rule.flow, packet, update):
                return False

        if rule.needs_payload():
            # Match against the reassembled stream so keywords split
            # across segments are still seen (and evasion by splitting
            # is defeated, as with the real GFC).
            haystack = ctx.haystack
            if not haystack:
                return False
            for content in rule.contents:
                hay = ctx.lower_haystack if content.nocase else haystack
                if not content.search_in(hay):
                    return False
            for pcre in rule.pcres:
                if not pcre.matches(haystack):
                    return False
        return True

    def _flow_matches(
        self, flow_opts: List[str], packet: IPPacket, update: Optional[StreamUpdate]
    ) -> bool:
        if "stateless" in flow_opts:
            return True
        if update is None:
            return False
        flow = update.flow
        for option in flow_opts:
            if option == "established" and not flow.established:
                return False
            if option == "to_server" and update.direction != "c2s":
                return False
            if option == "to_client" and update.direction != "s2c":
                return False
            if option == "not_established" and flow.established:
                return False
        return True
