"""Fast-path rule dispatch: a protocol/port index and a per-packet context.

Real ISP-scale IDSes never scan their full ruleset per packet — they group
rules by protocol and destination port and consult only the candidate
bucket (Snort's port-group / fast-pattern architecture).  This module is
that layer for the reproduction's engine:

- :class:`MatchContext` computes the per-packet facts every candidate rule
  needs — transport object, ports, payload, stream haystack, lowercased
  haystack, integer addresses — exactly once, instead of once per rule.
- :class:`RuleDispatchIndex` buckets rules at engine construction so
  ``process()`` evaluates only rules whose protocol and port coverage can
  possibly match.  Candidate lists are always a *superset* of the rules
  whose headers match, and preserve ruleset order, so alert semantics
  (including ``pass``-rule suppression and threshold state) are identical
  to the naive full scan.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..packets import PROTO_ICMP, PROTO_TCP, PROTO_UDP, ip_to_int_cached
from .language import Rule
from .multipattern import anchor_literal_id, required_literal_ids
from .reassembly import StreamUpdate

__all__ = [
    "CompiledBucket",
    "MatchContext",
    "RuleDispatchIndex",
    "MAX_ENUMERATED_PORTS",
]

_UNSET = object()

_PROTO_NUMBER = {"tcp": PROTO_TCP, "udp": PROTO_UDP, "icmp": PROTO_ICMP}

#: A destination-port spec covering more distinct ports than this is treated
#: as a catch-all rather than enumerated into per-port buckets.
MAX_ENUMERATED_PORTS = 256


class MatchContext:
    """Per-packet facts, computed once and shared by all candidate rules."""

    __slots__ = (
        "packet",
        "update",
        "tcp",
        "udp",
        "icmp",
        "sport",
        "dport",
        "payload",
        "_src_int",
        "_dst_int",
        "_haystack",
        "_lower_haystack",
    )

    def __init__(self, packet, update: Optional[StreamUpdate], tcp=_UNSET) -> None:
        self.packet = packet
        self.update = update
        if tcp is _UNSET:
            tcp = packet.tcp
        udp = packet.udp if tcp is None else None
        icmp = packet.icmp if tcp is None and udp is None else None
        self.tcp = tcp
        self.udp = udp
        self.icmp = icmp
        if tcp is not None:
            self.sport, self.dport = tcp.sport, tcp.dport
            self.payload = tcp.payload
        elif udp is not None:
            self.sport, self.dport = udp.sport, udp.dport
            self.payload = udp.payload
        else:
            self.sport = self.dport = 0
            if icmp is not None:
                self.payload = icmp.payload
            elif isinstance(packet.payload, (bytes, bytearray)):
                payload = packet.payload
                # Raw payloads are almost always bytes already; copy only
                # the bytearray case instead of unconditionally.
                self.payload = payload if type(payload) is bytes else bytes(payload)
            else:
                self.payload = b""
        self._src_int = None
        self._dst_int = None
        self._haystack = None
        self._lower_haystack = None

    @property
    def src_int(self) -> int:
        if self._src_int is None:
            self._src_int = ip_to_int_cached(self.packet.src)
        return self._src_int

    @property
    def dst_int(self) -> int:
        if self._dst_int is None:
            self._dst_int = ip_to_int_cached(self.packet.dst)
        return self._dst_int

    @property
    def haystack(self) -> bytes:
        """What payload rules match against: the reassembled stream for TCP
        flows, the raw payload otherwise.  Materialized once per packet."""
        if self._haystack is None:
            update = self.update
            if update is not None:
                self._haystack = update.flow.snapshot(update.direction)
            else:
                self._haystack = self.payload
        return self._haystack

    @property
    def lower_haystack(self) -> bytes:
        """``haystack.lower()``, folded at most once per *buffer state*:
        stream haystacks cache the folded copy on the flow record, shared
        by every packet that doesn't advance the stream."""
        if self._lower_haystack is None:
            update = self.update
            if update is not None:
                self._lower_haystack = update.flow.snapshot_lower(update.direction)
            else:
                self._lower_haystack = self.haystack.lower()
        return self._lower_haystack


class CompiledBucket:
    """One ordered candidate list, pre-split for the multipattern fast path.

    ``always`` holds the (order, rule) entries with no required content
    literal — they can never be literal-filtered.  Every other entry is
    bucketed under its *anchor* literal id (the longest required needle),
    so the engine only revives a content rule when its rarest literal was
    actually seen in the payload; the full required-id subset check runs
    afterwards.  Survivors merge back in ruleset order, which keeps pass
    -rule suppression and threshold call sequences identical to the naive
    scan.
    """

    __slots__ = ("rules", "always", "by_anchor")

    def __init__(self, ordered: List[Tuple[int, Rule]]) -> None:
        #: bare rules in ruleset order (the legacy ``candidates()`` shape)
        self.rules: List[Rule] = [rule for _order, rule in ordered]
        self.always: List[Tuple[int, Rule]] = []
        self.by_anchor: Dict[int, List[Tuple[int, Rule]]] = {}
        for order, rule in ordered:
            anchor = anchor_literal_id(rule)
            required_literal_ids(rule)  # warm the subset-check cache
            if anchor is None:
                self.always.append((order, rule))
            else:
                self.by_anchor.setdefault(anchor, []).append((order, rule))


class _ProtoTable:
    """Port buckets for one packet protocol."""

    __slots__ = (
        "port_rules",
        "catch_all",
        "catch_all_rules",
        "catch_all_compiled",
        "merged",
        "merged_compiled",
    )

    def __init__(self) -> None:
        #: enumerated dport -> ordered [(order, rule), ...]
        self.port_rules: Dict[int, List[Tuple[int, Rule]]] = {}
        #: rules whose dport coverage is not enumerable, in order
        self.catch_all: List[Tuple[int, Rule]] = []
        #: ``catch_all`` stripped to bare rules (the no-bucket fast path)
        self.catch_all_rules: List[Rule] = []
        self.catch_all_compiled = CompiledBucket([])
        #: dport -> final ordered candidate rules (port bucket ∪ catch-all)
        self.merged: Dict[int, List[Rule]] = {}
        self.merged_compiled: Dict[int, CompiledBucket] = {}

    def finalize(self) -> None:
        self.catch_all_compiled = CompiledBucket(sorted(self.catch_all))
        self.catch_all_rules = self.catch_all_compiled.rules
        self.merged_compiled = {
            port: CompiledBucket(sorted(bucket + self.catch_all))
            for port, bucket in self.port_rules.items()
        }
        self.merged = {
            port: compiled.rules for port, compiled in self.merged_compiled.items()
        }


class RuleDispatchIndex:
    """Buckets rules by protocol and destination-port coverage."""

    def __init__(self, rules: Optional[List[Rule]] = None) -> None:
        self._tables: Dict[int, _ProtoTable] = {
            PROTO_TCP: _ProtoTable(),
            PROTO_UDP: _ProtoTable(),
            PROTO_ICMP: _ProtoTable(),
        }
        #: table consulted for protocols other than tcp/udp/icmp — only
        #: ``ip`` rules can match those packets
        self._other = _ProtoTable()
        #: (protocol, dport, sport) -> CompiledBucket memo for the dynamic
        #: sport-merge path (bidirectional rules); cleared on add()
        self._dynamic: Dict[Tuple[int, int, int], CompiledBucket] = {}
        self._size = 0
        if rules:
            self.add(rules)

    def __len__(self) -> int:
        return self._size

    # -- construction ------------------------------------------------------

    def add(self, rules: List[Rule]) -> None:
        """Index ``rules`` (in ruleset order, after any already added)."""
        all_tables = list(self._tables.values()) + [self._other]
        for rule in rules:
            order = self._size
            self._size += 1
            if rule.protocol == "ip":
                tables = all_tables
            else:
                tables = [self._tables[_PROTO_NUMBER[rule.protocol]]]
            ports = _enumerable_ports(rule)
            for table in tables:
                if ports is None:
                    table.catch_all.append((order, rule))
                else:
                    for port in ports:
                        table.port_rules.setdefault(port, []).append((order, rule))
        for table in all_tables:
            table.finalize()
        self._dynamic.clear()

    # -- lookup ------------------------------------------------------------

    def lookup(self, protocol: int, dport: int, sport: int) -> CompiledBucket:
        """The compiled candidate bucket for a packet — a superset of every
        rule whose header can match it, pre-split by anchor literal.

        A bidirectional rule matches in reverse when its dport spec covers
        the packet's *source* port, so the sport bucket is consulted too.
        (Forward-only rules surfaced that way are harmless noise: the full
        header match still rejects them.)  The sport-merge combination is
        built on first sight and memoized.
        """
        table = self._tables.get(protocol, self._other)
        extra = table.port_rules.get(sport) if sport != dport else None
        if not extra:
            bucket = table.merged_compiled.get(dport)
            if bucket is not None:
                return bucket
            return table.catch_all_compiled
        key = (protocol, dport, sport)
        bucket = self._dynamic.get(key)
        if bucket is None:
            parts = table.catch_all + table.port_rules.get(dport, []) + extra
            seen = set()
            ordered = []
            for order, rule in sorted(parts):
                if order not in seen:
                    seen.add(order)
                    ordered.append((order, rule))
            bucket = CompiledBucket(ordered)
            self._dynamic[key] = bucket
        return bucket

    def candidates(self, protocol: int, dport: int, sport: int) -> List[Rule]:
        """Ordered candidate rules (the compiled bucket, stripped)."""
        return self.lookup(protocol, dport, sport).rules


def _enumerable_ports(rule: Rule) -> Optional[List[int]]:
    """The destination ports to index ``rule`` under, or None for catch-all."""
    spec = rule.dport
    if spec.any or spec.negated:
        return None
    total = sum(hi - lo + 1 for lo, hi in spec.ranges)
    if total > MAX_ENUMERATED_PORTS:
        return None
    ports: List[int] = []
    for lo, hi in spec.ranges:
        ports.extend(range(lo, hi + 1))
    return ports
