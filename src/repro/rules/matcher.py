"""Header and payload matchers for the Snort-subset rule language.

Address/port specifications support the forms the stock Snort rulesets use:
``any``, single values, CIDR blocks, ranges, bracketed lists, ``$VAR``
references, and ``!`` negation.  Payload matchers implement ``content``
(with ``nocase``/``offset``/``depth``), ``pcre``, ``flags``, ``dsize``,
``itype``/``icode``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..packets import compile_network, ip_to_int_cached, is_valid_ip

__all__ = [
    "AddressSpec",
    "PortSpec",
    "ContentOption",
    "PcreOption",
    "FlagsOption",
    "DsizeOption",
    "RuleParseError",
]


class RuleParseError(ValueError):
    """Raised when rule text cannot be parsed."""


def _resolve_var(token: str, variables: Dict[str, str]) -> str:
    while token.startswith("$"):
        name = token[1:]
        if name not in variables:
            raise RuleParseError(f"undefined rule variable: ${name}")
        token = variables[name]
    return token


@dataclass
class AddressSpec:
    """A source or destination address constraint."""

    negated: bool = False
    any: bool = False
    entries: List[str] = field(default_factory=list)  # IPs or CIDRs
    #: compiled ``(network_int, mask)`` pairs, built lazily from ``entries``
    _networks: Optional[List[Tuple[int, int]]] = field(
        default=None, repr=False, compare=False
    )

    @classmethod
    def parse(cls, token: str, variables: Optional[Dict[str, str]] = None) -> "AddressSpec":
        token = _resolve_var(token.strip(), variables or {})
        negated = token.startswith("!")
        if negated:
            token = token[1:]
            token = _resolve_var(token, variables or {})
        if token.lower() == "any":
            if negated:
                raise RuleParseError("!any matches nothing")
            return cls(any=True)
        if token.startswith("[") and token.endswith("]"):
            entries = [part.strip() for part in token[1:-1].split(",") if part.strip()]
        else:
            entries = [token]
        for entry in entries:
            base = entry.split("/")[0]
            if not is_valid_ip(base):
                raise RuleParseError(f"invalid address entry: {entry!r}")
        return cls(negated=negated, entries=entries)

    def compiled(self) -> List[Tuple[int, int]]:
        """The ``(network_int, mask)`` pairs this spec tests against."""
        if self._networks is None:
            self._networks = [compile_network(entry) for entry in self.entries]
        return self._networks

    def matches(self, ip: str) -> bool:
        if self.any:
            return True
        return self.matches_int(ip_to_int_cached(ip))

    def matches_int(self, ip_int: int) -> bool:
        """Match a pre-converted 32-bit address (the per-packet fast path)."""
        if self.any:
            return True
        networks = self._networks
        if networks is None:
            networks = self.compiled()
        hit = False
        for network, mask in networks:
            if ip_int & mask == network:
                hit = True
                break
        return hit != self.negated


@dataclass
class PortSpec:
    """A source or destination port constraint."""

    negated: bool = False
    any: bool = False
    ranges: List[tuple] = field(default_factory=list)  # inclusive (lo, hi)

    @classmethod
    def parse(cls, token: str, variables: Optional[Dict[str, str]] = None) -> "PortSpec":
        token = _resolve_var(token.strip(), variables or {})
        negated = token.startswith("!")
        if negated:
            token = token[1:]
        if token.lower() == "any":
            if negated:
                raise RuleParseError("!any matches nothing")
            return cls(any=True)
        if token.startswith("[") and token.endswith("]"):
            parts = [part.strip() for part in token[1:-1].split(",") if part.strip()]
        else:
            parts = [token]
        ranges = []
        for part in parts:
            if ":" in part:
                lo_text, hi_text = part.split(":", 1)
                lo = int(lo_text) if lo_text else 0
                hi = int(hi_text) if hi_text else 65535
            else:
                lo = hi = int(part)
            if not (0 <= lo <= hi <= 65535):
                raise RuleParseError(f"invalid port range: {part!r}")
            ranges.append((lo, hi))
        return cls(negated=negated, ranges=ranges)

    def matches(self, port: int) -> bool:
        if self.any:
            return True
        hit = False
        for lo, hi in self.ranges:
            if lo <= port <= hi:
                hit = True
                break
        return hit != self.negated


# -- payload options -----------------------------------------------------------


@dataclass
class ContentOption:
    """Snort ``content`` with ``nocase``/``offset``/``depth`` modifiers.

    Pipe-hex notation (``|0D 0A|``) is supported, as real rules mix text
    and hex freely.
    """

    pattern: bytes
    nocase: bool = False
    offset: int = 0
    depth: Optional[int] = None
    negated: bool = False
    #: lazily cached ``pattern.lower()`` so nocase matches never re-fold
    _lower_pattern: Optional[bytes] = field(default=None, repr=False, compare=False)

    @classmethod
    def parse_pattern(cls, text: str) -> bytes:
        out = bytearray()
        pos = 0
        while pos < len(text):
            pipe = text.find("|", pos)
            if pipe == -1:
                out += text[pos:].encode("latin-1")
                break
            out += text[pos:pipe].encode("latin-1")
            end = text.find("|", pipe + 1)
            if end == -1:
                raise RuleParseError(f"unterminated hex block in content: {text!r}")
            hex_body = text[pipe + 1 : end].replace(" ", "")
            out += bytes.fromhex(hex_body)
            pos = end + 1
        return bytes(out)

    def needle(self) -> bytes:
        """The compiled search needle (lowered once if ``nocase``)."""
        if not self.nocase:
            return self.pattern
        if self._lower_pattern is None:
            self._lower_pattern = self.pattern.lower()
        return self._lower_pattern

    def matches(self, data: bytes) -> bool:
        if self.nocase:
            data = data.lower()
        return self.search_in(data)

    def search_in(self, haystack: bytes) -> bool:
        """Match against a haystack already case-folded when ``nocase``.

        The rule engine calls this with a per-packet shared haystack (and a
        shared lowercased copy) so each packet is folded at most once rather
        than once per ``content`` option.
        """
        needle = self.needle()
        if self.offset or self.depth is not None:
            window = haystack[self.offset :]
            if self.depth is not None:
                # Snort semantics: the match must lie entirely within the
                # first ``depth`` bytes after ``offset``.
                window = window[: self.depth]
        else:
            window = haystack
        found = needle in window
        return found != self.negated


@dataclass
class PcreOption:
    """Snort ``pcre:"/regex/flags"`` matched with Python ``re``."""

    regex: "re.Pattern"
    negated: bool = False

    @classmethod
    def parse(cls, text: str) -> "PcreOption":
        negated = text.startswith("!")
        if negated:
            text = text[1:]
        if not text.startswith("/"):
            raise RuleParseError(f"pcre must start with '/': {text!r}")
        end = text.rfind("/")
        if end == 0:
            raise RuleParseError(f"unterminated pcre: {text!r}")
        body, modifiers = text[1:end], text[end + 1 :]
        flags = 0
        for modifier in modifiers:
            if modifier == "i":
                flags |= re.IGNORECASE
            elif modifier == "s":
                flags |= re.DOTALL
            elif modifier == "m":
                flags |= re.MULTILINE
            # Snort's R/U/P HTTP modifiers are accepted but ignored.
        return cls(regex=re.compile(body.encode("latin-1"), flags), negated=negated)

    def matches(self, data: bytes) -> bool:
        return (self.regex.search(data) is not None) != self.negated


_FLAG_BITS = {"F": 0x01, "S": 0x02, "R": 0x04, "P": 0x08, "A": 0x10, "U": 0x20}


@dataclass
class FlagsOption:
    """Snort ``flags`` (e.g. ``S`` exact SYN, ``SA+`` SYN+ACK plus any)."""

    mask: int
    mode: str  # "exact" | "plus" | "any" | "not"

    @classmethod
    def parse(cls, text: str) -> "FlagsOption":
        text = text.strip()
        mode = "exact"
        if text.endswith("+"):
            mode, text = "plus", text[:-1]
        elif text.startswith("*"):
            mode, text = "any", text[1:]
        elif text.startswith("!"):
            mode, text = "not", text[1:]
        mask = 0
        for char in text:
            if char in ("0",):  # no flags set
                continue
            if char not in _FLAG_BITS:
                raise RuleParseError(f"unknown TCP flag {char!r}")
            mask |= _FLAG_BITS[char]
        return cls(mask=mask, mode=mode)

    def matches(self, flags: int) -> bool:
        relevant = flags & 0x3F
        if self.mode == "exact":
            return relevant == self.mask
        if self.mode == "plus":
            return relevant & self.mask == self.mask
        if self.mode == "any":
            return bool(relevant & self.mask)
        return relevant & self.mask != self.mask  # "not"


@dataclass
class DsizeOption:
    """Snort ``dsize`` payload-size test (``>N``, ``<N``, ``N``, ``N<>M``)."""

    low: int
    high: int

    @classmethod
    def parse(cls, text: str) -> "DsizeOption":
        text = text.strip()
        if "<>" in text:
            lo_text, hi_text = text.split("<>")
            return cls(low=int(lo_text) + 1, high=int(hi_text) - 1)
        if text.startswith(">"):
            return cls(low=int(text[1:]) + 1, high=1 << 30)
        if text.startswith("<"):
            return cls(low=0, high=int(text[1:]) - 1)
        value = int(text)
        return cls(low=value, high=value)

    def matches(self, size: int) -> bool:
        return self.low <= size <= self.high
