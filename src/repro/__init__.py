"""repro — reproduction of "Can Censorship Measurements Be Safe(r)?".

Jones & Feamster, HotNets 2015.  The package implements the paper's stealthy
censorship-measurement techniques (``repro.core``) together with every
substrate the evaluation depends on: a packet layer (``repro.packets``), a
discrete-event network simulator (``repro.netsim``), a Snort-subset rule
engine (``repro.rules``), censorship and surveillance reference systems
(``repro.censor``, ``repro.surveillance``), a Proofpoint-like spam filter
(``repro.spamfilter``), population-traffic generators (``repro.traffic``), a
source-address-validation model (``repro.spoofing``), and analysis helpers
(``repro.analysis``).
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
