"""Population-scale background traffic with tiered fidelity.

Models thousands to millions of simulated users (web browsing, DNS
churn, video-segment fetches, SMTP) without a ``Host`` per user: users
live inside prefix-routed synthetic address space behind gateway hosts,
and every flow is planned at flow level (:class:`AggregateFlow`).  The
:class:`~repro.netsim.flows.FlowFidelityEngine` then advances each flow
at the cheapest fidelity the tap placement allows — flows that stay
inside the AS (user ↔ local CDN/resolver, user ↔ user) never cross the
border taps and advance as single aggregate events; flows to the
external synthetic internet cross the border (censor + MVR taps) and are
expanded into byte-accurate packets.

Determinism contract: the flow schedule (ids, times, endpoints, sizes)
is a pure function of ``(seed, users, profile)``.  Templates consume no
RNG at materialization (payload content derives arithmetically from the
flow id and params), the tier decision consumes no RNG at all, and the
generator draws only from private ``mix_seed`` substreams — never from
``sim.rng`` — so adding a population to a scenario does not perturb any
existing workload, and switching fidelity modes does not perturb the
schedule.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..netsim.flows import FIDELITY_MODES, AggregateFlow, FlowFidelityEngine
from ..netsim.impairment import mix_seed
from ..netsim.node import Host
from ..netsim.topology import CensoredASTopology
from ..packets import ACK, FIN, PSH, SYN, IPPacket, TCPSegment, UDPDatagram

__all__ = [
    "PopulationProfile",
    "PopulationTraffic",
    "USERS_A_CIDR",
    "USERS_B_CIDR",
    "LOCAL_SERVICES_CIDR",
    "EXTERNAL_SERVICES_CIDR",
]

#: Synthetic address plan.  Two user blocks (so user↔user flows still
#: cross the access switch), an in-AS service block (local CDN, resolver,
#: mail relay — tap-free paths), and an external service block reached
#: through the border taps.
USERS_A_CIDR = "10.128.0.0/11"
USERS_B_CIDR = "10.160.0.0/11"
LOCAL_SERVICES_CIDR = "10.224.0.0/16"
EXTERNAL_SERVICES_CIDR = "198.18.128.0/17"

_USERS_A_BASE = 0x0A800000  # 10.128.0.0
_USERS_B_BASE = 0x0AA00000  # 10.160.0.0
MAX_USERS = 4_000_000  # 2 × (2^21 − 2) host slots, rounded down

#: mix_seed namespace for population substreams (never collides with the
#: per-link ordinals, which are small integers).
_POP_NS = 0x706F7075
_WORKLOAD_IDS = {"web": 1, "dns": 2, "video": 3, "smtp": 4}

_MSS = 1460
_TCP_OVERHEAD = 40  # IPv4 header (20) + TCP header (20), no options
_UDP_OVERHEAD = 28  # IPv4 header (20) + UDP header (8)
_CLIENT_ISN = 1000
_SERVER_ISN = 5000
#: Fixed origination pacing inside one flow's packet script.
_TICK = 0.004


def _int_to_ip(value: int) -> str:
    return f"{value >> 24}.{(value >> 16) & 255}.{(value >> 8) & 255}.{value & 255}"


def _sport_for(flow_id: int) -> int:
    """Deterministic ephemeral source port (Knuth multiplicative hash)."""
    return 1024 + (flow_id * 2654435761) % 60000


def _chunks(total: int, chunk: int = _MSS) -> Iterator[int]:
    while total > chunk:
        yield chunk
        total -= chunk
    if total > 0:
        yield total


class _FlowTemplate:
    """Shared plan/materialize machinery for one workload's flows.

    Subclasses implement :meth:`script`, the single source of truth for a
    flow's packets: both the flow-level plan (byte/packet totals) and the
    packet-level materialization iterate the same script, so the two
    tiers cannot drift apart — and ``FlowFidelityEngine._expand`` asserts
    they haven't.
    """

    kind = ""
    protocol = "tcp"
    dport = 0

    def script(
        self, flow_id: int, params: Tuple
    ) -> Iterator[Tuple[float, int, bytes, int]]:
        """Yield (offset, side, payload, tcp_flags); side 0=up, 1=down."""
        raise NotImplementedError

    def plan(self, flow_id: int, params: Tuple) -> Tuple[int, int, int, int, float]:
        """(packets_up, bytes_up, packets_down, bytes_down, duration)."""
        overhead = _TCP_OVERHEAD if self.protocol == "tcp" else _UDP_OVERHEAD
        packets = [0, 0]
        bytes_ = [0, 0]
        last = 0.0
        for offset, side, payload, _flags in self.script(flow_id, params):
            packets[side] += 1
            bytes_[side] += overhead + len(payload)
            if offset > last:
                last = offset
        return packets[0], bytes_[0], packets[1], bytes_[1], last + _TICK

    def materialize(
        self, flow: AggregateFlow
    ) -> Iterator[Tuple[float, str, IPPacket]]:
        sport = _sport_for(flow.flow_id)
        if self.protocol == "udp":
            for offset, side, payload, _flags in self.script(flow.flow_id, flow.params):
                if side == 0:
                    datagram = UDPDatagram(sport, self.dport, payload=payload)
                    packet = IPPacket(flow.src_ip, flow.dst_ip, datagram)
                    yield offset, flow.src_gateway, packet
                else:
                    datagram = UDPDatagram(self.dport, sport, payload=payload)
                    packet = IPPacket(flow.dst_ip, flow.src_ip, datagram)
                    yield offset, flow.dst_gateway, packet
            return
        # TCP: sequence numbers accumulate per side so stream reassembly
        # (rule-engine flow scanning) sees a coherent byte stream.
        seq = [_CLIENT_ISN, _SERVER_ISN]
        for offset, side, payload, flags in self.script(flow.flow_id, flow.params):
            other = 1 - side
            segment = TCPSegment(
                sport if side == 0 else self.dport,
                self.dport if side == 0 else sport,
                seq=seq[side],
                ack=seq[other] if flags & ACK else 0,
                flags=flags,
                payload=payload,
            )
            seq[side] += len(payload)
            if flags & (SYN | FIN):
                seq[side] += 1
            if side == 0:
                packet = IPPacket(flow.src_ip, flow.dst_ip, segment)
                yield offset, flow.src_gateway, packet
            else:
                packet = IPPacket(flow.dst_ip, flow.src_ip, segment)
                yield offset, flow.dst_gateway, packet


def _tcp_conversation(
    turns: Iterator[Tuple[int, bytes]]
) -> Iterator[Tuple[float, int, bytes, int]]:
    """Wrap (side, payload) turns in a SYN/FIN envelope with fixed pacing."""
    t = 0.0
    yield t, 0, b"", SYN
    t += _TICK
    yield t, 1, b"", SYN | ACK
    t += _TICK
    yield t, 0, b"", ACK
    for side, payload in turns:
        t += _TICK
        yield t, side, payload, PSH | ACK
    t += _TICK
    yield t, 0, b"", FIN | ACK
    t += _TICK
    yield t, 1, b"", FIN | ACK
    t += _TICK
    yield t, 0, b"", ACK


class _WebTemplate(_FlowTemplate):
    """One browsing page fetch: GET + segmented response.

    params = (host_header, page_bytes)
    """

    kind = "web"
    dport = 80

    def script(self, flow_id, params):
        host, page_bytes = params

        def turns():
            yield 0, (
                f"GET /page/{flow_id & 0xFFFF:05d} HTTP/1.1\r\n"
                f"Host: {host}\r\nUser-Agent: population-sim\r\n\r\n"
            ).encode()
            header = (
                f"HTTP/1.1 200 OK\r\nContent-Length: {page_bytes:08d}\r\n\r\n"
            ).encode()
            yield 1, header
            for size in _chunks(page_bytes):
                yield 1, b"\x20" * size

        return _tcp_conversation(turns())


class _VideoTemplate(_FlowTemplate):
    """One video-segment batch fetch from the in-AS CDN.

    params = (host_header, segment_bytes, segment_count)
    """

    kind = "video"
    dport = 80

    def script(self, flow_id, params):
        host, segment_bytes, segment_count = params

        def turns():
            for index in range(segment_count):
                yield 0, (
                    f"GET /seg/{flow_id & 0xFFFFFF:08d}-{index:02d}.ts HTTP/1.1\r\n"
                    f"Host: {host}\r\n\r\n"
                ).encode()
                yield 1, (
                    f"HTTP/1.1 200 OK\r\nContent-Length: {segment_bytes:08d}\r\n\r\n"
                ).encode()
                for size in _chunks(segment_bytes):
                    yield 1, b"\x56" * size

        return _tcp_conversation(turns())


class _SMTPTemplate(_FlowTemplate):
    """One outbound mail delivery: command/response turns + body.

    params = (helo_name, message_bytes)
    """

    kind = "smtp"
    dport = 25

    def script(self, flow_id, params):
        helo, message_bytes = params

        def turns():
            yield 1, b"220 relay ESMTP ready\r\n"
            yield 0, f"HELO {helo}\r\n".encode()
            yield 1, b"250 relay\r\n"
            yield 0, f"MAIL FROM:<user{flow_id & 0xFFFFF:06d}@{helo}>\r\n".encode()
            yield 1, b"250 ok\r\n"
            yield 0, b"RCPT TO:<inbox@example.net>\r\n"
            yield 1, b"250 ok\r\n"
            yield 0, b"DATA\r\n"
            yield 1, b"354 go ahead\r\n"
            for size in _chunks(message_bytes):
                yield 0, b"\x41" * size
            yield 0, b"\r\n.\r\n"
            yield 1, b"250 queued\r\n"
            yield 0, b"QUIT\r\n"
            yield 1, b"221 bye\r\n"

        return _tcp_conversation(turns())


class _DNSTemplate(_FlowTemplate):
    """One query/response pair against a resolver.

    params = (qname,)
    """

    kind = "dns"
    protocol = "udp"
    dport = 53

    @staticmethod
    def _encode_qname(qname: str) -> bytes:
        encoded = b"".join(
            bytes([len(label)]) + label.encode() for label in qname.split(".")
        )
        return encoded + b"\x00"

    def script(self, flow_id, params):
        (qname,) = params
        txid = (flow_id * 40503) & 0xFFFF
        question = self._encode_qname(qname) + b"\x00\x01\x00\x01"
        query = txid.to_bytes(2, "big") + b"\x01\x00\x00\x01\x00\x00\x00\x00\x00\x00" + question
        answer = (
            txid.to_bytes(2, "big")
            + b"\x81\x80\x00\x01\x00\x01\x00\x00\x00\x00"
            + question
            + b"\xc0\x0c\x00\x01\x00\x01\x00\x00\x01\x2c\x00\x04"
            + bytes([(flow_id >> 8) & 255, flow_id & 255, 0, 1])
        )
        yield 0.0, 0, query, 0
        yield _TICK, 1, answer, 0


@dataclass
class PopulationProfile:
    """Per-user flow rates (flows/user/second) and size knobs.

    Defaults model a light browsing population: mostly in-AS traffic
    (local CDN, local resolver), with configurable fractions routed to
    the external synthetic internet — those cross the border taps and
    pay full packet fidelity in hybrid mode.
    """

    web_rate: float = 0.05
    dns_rate: float = 0.10
    video_rate: float = 0.02
    smtp_rate: float = 0.005
    #: Fraction of each workload's flows that leave the AS.
    web_external_fraction: float = 0.10
    dns_external_fraction: float = 0.05
    smtp_external_fraction: float = 0.50
    page_bytes: Tuple[int, ...] = (2_200, 14_600, 58_400)
    video_segment_bytes: int = 65_536
    video_segments_per_fetch: Tuple[int, ...] = (2, 4)
    message_bytes: Tuple[int, ...] = (900, 4_300)
    site_count: int = 8

    def rates(self) -> Dict[str, float]:
        return {
            "web": self.web_rate,
            "dns": self.dns_rate,
            "video": self.video_rate,
            "smtp": self.smtp_rate,
        }


class PopulationTraffic:
    """A tiered-fidelity background population over a censored-AS topology.

    Construction is fidelity-independent: the same gateways, links, and
    prefix routes are created in every mode, so link RNG ordinals — and
    therefore every downstream deterministic stream — are identical
    whether the population runs aggregate, hybrid, or full.
    """

    def __init__(
        self,
        topo: CensoredASTopology,
        users: int,
        fidelity: str = "hybrid",
        profile: Optional[PopulationProfile] = None,
        seed: Optional[int] = None,
        log_schedule: bool = False,
    ) -> None:
        if not 1 <= users <= MAX_USERS:
            raise ValueError(f"users must be in [1, {MAX_USERS}], got {users}")
        if fidelity not in FIDELITY_MODES:
            raise ValueError(
                f"fidelity must be one of {FIDELITY_MODES}, not {fidelity!r}"
            )
        self.topo = topo
        self.sim = topo.sim
        self.network = topo.network
        self.users = users
        self.profile = profile if profile is not None else PopulationProfile()
        self.seed = seed if seed is not None else topo.sim.seed
        self.schedule_log: Optional[List[Tuple]] = [] if log_schedule else None
        self.flows_created = 0
        self._next_flow_id = 0
        self._stopped = False

        network = topo.network
        self._gw_a = self._add_gateway("popgw-a", "10.128.0.1", topo.access_switch)
        self._gw_b = self._add_gateway("popgw-b", "10.160.0.1", topo.access_switch)
        self._gw_local = self._add_gateway("popsvc", "10.224.0.1", topo.internal_router)
        self._gw_ext = self._add_gateway("popext", "198.18.128.1", topo.transit_router)
        network.add_prefix_route(USERS_A_CIDR, self._gw_a)
        network.add_prefix_route(USERS_B_CIDR, self._gw_b)
        network.add_prefix_route(LOCAL_SERVICES_CIDR, self._gw_local)
        network.add_prefix_route(EXTERNAL_SERVICES_CIDR, self._gw_ext)

        self.engine = FlowFidelityEngine(network, mode=fidelity)

        count = self.profile.site_count
        self._local_sites = [
            (f"10.224.10.{10 + k}", f"cdn-{k:02d}.example.com") for k in range(count)
        ]
        self._external_sites = [
            (f"198.18.200.{10 + k}", f"ext-{k:02d}.example.net") for k in range(count)
        ]
        self._video_cdns = [f"10.224.20.{10 + k}" for k in range(count)]
        self._local_resolver = "10.224.0.53"
        self._external_resolver = "198.18.129.53"
        self._local_relay = "10.224.0.25"
        self._external_relay = "198.18.201.25"
        self._dns_names = [f"cdn-{k:02d}.example.com" for k in range(count)] + [
            f"ext-{k:02d}.example.net" for k in range(count)
        ]

        self._templates = {
            "web": _WebTemplate(),
            "dns": _DNSTemplate(),
            "video": _VideoTemplate(),
            "smtp": _SMTPTemplate(),
        }
        self._spawners = {
            "web": self._spawn_web,
            "dns": self._spawn_dns,
            "video": self._spawn_video,
            "smtp": self._spawn_smtp,
        }
        # One private RNG stream per workload, derived from the seed —
        # never from sim.rng, whose draw sequence existing workloads own.
        self._rngs = {
            kind: random.Random(mix_seed(self.seed, _POP_NS, wid))
            for kind, wid in _WORKLOAD_IDS.items()
        }

    def _add_gateway(self, name: str, ip: str, attach_to) -> Host:
        gateway = self.network.add(Host(name, ip))
        self.network.connect(gateway, attach_to)
        # Gateways are pure sinks: no protocol stack, so delivered packets
        # are counted and dropped instead of provoking RSTs that would
        # differ from the flow plan.
        gateway.stack = None
        return gateway

    # -- addressing ----------------------------------------------------------

    def user_ip(self, index: int) -> str:
        """The synthetic address of user ``index`` (stable, prefix-routed)."""
        base = _USERS_A_BASE if index % 2 == 0 else _USERS_B_BASE
        return _int_to_ip(base + 2 + index // 2)

    def _user_gateway(self, index: int) -> str:
        return "popgw-a" if index % 2 == 0 else "popgw-b"

    # -- scheduling ----------------------------------------------------------

    def start(self, duration: float) -> None:
        """Generate flows for ``duration`` simulated seconds from now."""
        until = self.sim.now + duration
        for kind, rate in self.profile.rates().items():
            total_rate = rate * self.users
            if total_rate <= 0:
                continue
            self._schedule_next(kind, total_rate, until)

    def stop(self) -> None:
        self._stopped = True

    def _schedule_next(self, kind: str, total_rate: float, until: float) -> None:
        rng = self._rngs[kind]
        delay = rng.expovariate(total_rate)
        if self.sim.now + delay > until or self._stopped:
            return

        def fire() -> None:
            if not self._stopped:
                self._spawners[kind](rng)
                self._schedule_next(kind, total_rate, until)

        self.sim.at_uncancellable(delay, fire)

    def _submit(
        self,
        kind: str,
        rng: random.Random,
        user: int,
        dst_ip: str,
        dst_gateway: str,
        params: Tuple,
    ) -> None:
        flow_id = self._next_flow_id
        self._next_flow_id += 1
        template = self._templates[kind]
        packets_up, bytes_up, packets_down, bytes_down, duration = template.plan(
            flow_id, params
        )
        flow = AggregateFlow(
            flow_id=flow_id,
            kind=kind,
            src_ip=self.user_ip(user),
            dst_ip=dst_ip,
            src_gateway=self._user_gateway(user),
            dst_gateway=dst_gateway,
            duration=duration,
            packets_up=packets_up,
            bytes_up=bytes_up,
            packets_down=packets_down,
            bytes_down=bytes_down,
            template=template,
            params=params,
        )
        self.flows_created += 1
        if self.schedule_log is not None:
            self.schedule_log.append(
                (
                    round(self.sim.now, 9),
                    flow_id,
                    kind,
                    flow.src_ip,
                    dst_ip,
                    flow.packets_total,
                    flow.bytes_total,
                )
            )
        self.engine.submit(flow)

    def _spawn_web(self, rng: random.Random) -> None:
        user = rng.randrange(self.users)
        external = rng.random() < self.profile.web_external_fraction
        sites = self._external_sites if external else self._local_sites
        ip, host = sites[rng.randrange(len(sites))]
        page = rng.choice(self.profile.page_bytes)
        gateway = "popext" if external else "popsvc"
        self._submit("web", rng, user, ip, gateway, (host, page))

    def _spawn_dns(self, rng: random.Random) -> None:
        user = rng.randrange(self.users)
        external = rng.random() < self.profile.dns_external_fraction
        qname = self._dns_names[rng.randrange(len(self._dns_names))]
        if external:
            self._submit("dns", rng, user, self._external_resolver, "popext", (qname,))
        else:
            self._submit("dns", rng, user, self._local_resolver, "popsvc", (qname,))

    def _spawn_video(self, rng: random.Random) -> None:
        user = rng.randrange(self.users)
        cdn = self._video_cdns[rng.randrange(len(self._video_cdns))]
        segments = rng.choice(self.profile.video_segments_per_fetch)
        params = ("video.example.com", self.profile.video_segment_bytes, segments)
        self._submit("video", rng, user, cdn, "popsvc", params)

    def _spawn_smtp(self, rng: random.Random) -> None:
        user = rng.randrange(self.users)
        external = rng.random() < self.profile.smtp_external_fraction
        message = rng.choice(self.profile.message_bytes)
        relay = self._external_relay if external else self._local_relay
        gateway = "popext" if external else "popsvc"
        self._submit("smtp", rng, user, relay, gateway, ("client.example.com", message))

    # -- introspection -------------------------------------------------------

    def bytes_total(self) -> int:
        """All background wire bytes accounted so far, both tiers."""
        return self.engine.bytes_total

    def schedule_digest(self) -> str:
        """SHA-256 over the logged flow schedule (requires log_schedule)."""
        if self.schedule_log is None:
            raise ValueError("construct with log_schedule=True to digest")
        hasher = hashlib.sha256()
        for entry in self.schedule_log:
            hasher.update(repr(entry).encode())
        return hasher.hexdigest()

    def stats(self) -> Dict[str, int]:
        snapshot = dict(self.engine.stats())
        snapshot["flows_created"] = self.flows_created
        snapshot["users"] = self.users
        return snapshot
