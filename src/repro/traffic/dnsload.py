"""Background DNS query workload."""

from __future__ import annotations

import random
from typing import List, Sequence

from ..packets import QTYPE_A, QTYPE_MX
from ..netsim.dnssrv import DNSResult, resolve
from ..netsim.node import Host

__all__ = ["DNSWorkload"]


class DNSWorkload:
    """Population hosts resolving names at exponential inter-arrival times."""

    def __init__(
        self,
        clients: Sequence[Host],
        resolver_ip: str,
        names: Sequence[str],
        rng: random.Random,
        mean_interval: float = 0.5,
        mx_fraction: float = 0.05,
    ) -> None:
        if not clients or not names:
            raise ValueError("dns workload needs clients and names")
        self.clients = list(clients)
        self.resolver_ip = resolver_ip
        self.names = list(names)
        self.rng = rng
        self.mean_interval = mean_interval
        self.mx_fraction = mx_fraction
        self.results: List[DNSResult] = []
        self.queries_issued = 0
        self._stopped = False

    def start(self, until: float) -> None:
        sim = self.clients[0].stack.sim
        self._schedule_next(sim, until)

    def stop(self) -> None:
        self._stopped = True

    def _schedule_next(self, sim, until: float) -> None:
        delay = self.rng.expovariate(1.0 / self.mean_interval)
        if sim.now + delay > until or self._stopped:
            return

        def fire() -> None:
            self._query_once()
            self._schedule_next(sim, until)

        sim.at(delay, fire)

    def _query_once(self) -> None:
        client = self.rng.choice(self.clients)
        name = self.rng.choice(self.names)
        qtype = QTYPE_MX if self.rng.random() < self.mx_fraction else QTYPE_A
        self.queries_issued += 1
        resolve(client, self.resolver_ip, name, qtype=qtype, callback=self.results.append)
