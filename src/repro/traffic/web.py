"""Web-browsing population workload."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..netsim.node import Host
from ..netsim.websrv import HTTPResult, http_get

__all__ = ["WebWorkload"]


@dataclass
class _Site:
    ip: str
    hostname: str
    paths: Tuple[str, ...] = ("/", "/news", "/about", "/search?q=weather")


class WebWorkload:
    """Population hosts fetching pages at exponential inter-arrival times.

    A small fraction of requests go to *censored* sites — the Syria logs
    show 1.57 % of real users touch blocked content over two days, so the
    population itself generates some censored-access alerts (this is what
    makes naive alarm-on-every-censored-query infeasible).
    """

    def __init__(
        self,
        clients: Sequence[Host],
        sites: Sequence[Tuple[str, str]],
        rng: random.Random,
        mean_interval: float = 1.0,
        censored_sites: Sequence[Tuple[str, str]] = (),
        censored_fraction: float = 0.0,
    ) -> None:
        if not clients or not sites:
            raise ValueError("web workload needs clients and sites")
        self.clients = list(clients)
        self.sites = [_Site(ip=ip, hostname=name) for ip, name in sites]
        self.censored_sites = [_Site(ip=ip, hostname=name) for ip, name in censored_sites]
        self.censored_fraction = censored_fraction
        self.rng = rng
        self.mean_interval = mean_interval
        self.results: List[HTTPResult] = []
        self.requests_issued = 0
        self._stopped = False

    def start(self, until: float) -> None:
        """Begin issuing requests until simulated time ``until``."""
        sim = self.clients[0].stack.sim
        self._schedule_next(sim, until)

    def stop(self) -> None:
        self._stopped = True

    def _schedule_next(self, sim, until: float) -> None:
        delay = self.rng.expovariate(1.0 / self.mean_interval)
        if sim.now + delay > until or self._stopped:
            return

        def fire() -> None:
            self._issue_one()
            self._schedule_next(sim, until)

        sim.at(delay, fire)

    def _issue_one(self) -> None:
        client = self.rng.choice(self.clients)
        pool = self.sites
        if self.censored_sites and self.rng.random() < self.censored_fraction:
            pool = self.censored_sites
        site = self.rng.choice(pool)
        path = self.rng.choice(site.paths)
        self.requests_issued += 1
        http_get(client, site.ip, site.hostname, path, callback=self.results.append)
