"""Background Internet scanning (the noise floor the scan method hides in).

Durumeric et al. ("An Internet-Wide View of Internet-Wide Scanning",
USENIX Security 2014) observed 10.8 M scans from 1.76 M source hosts at a
darknet of 5.5 M addresses in January 2014.  The paper cites these numbers
to argue that scan traffic is so common that the MVR discards it; this
module reproduces both the packet-level background scanners and the
population-statistics arithmetic for experiment E10.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence

from ..packets import IPPacket, SYN, TCPSegment
from ..netsim.node import Host

__all__ = ["DURUMERIC_2014", "DarknetStats", "BackgroundScanners"]


@dataclass(frozen=True)
class DarknetStats:
    """Published darknet observations, with scaling helpers."""

    scans: int
    source_hosts: int
    darknet_size: int
    period_days: int

    def scans_per_ip_per_day(self) -> float:
        """Average scan probes crossing any single address per day."""
        return self.scans / self.darknet_size / self.period_days

    def expected_background(self, address_count: int, days: float) -> float:
        """Expected background scan arrivals for a network of given size."""
        return self.scans_per_ip_per_day() * address_count * days


#: January 2014 numbers from Durumeric et al., as cited by the paper.
DURUMERIC_2014 = DarknetStats(
    scans=10_800_000, source_hosts=1_760_000, darknet_size=5_500_000, period_days=31
)

#: The nmap-style "top ports" (first entries of nmap's top-1000 ordering).
COMMON_PORTS: List[int] = [
    80, 23, 443, 21, 22, 25, 3389, 110, 445, 139,
    143, 53, 135, 3306, 8080, 1723, 111, 995, 993, 5900,
    1025, 587, 8888, 199, 1720, 465, 548, 113, 81, 6001,
]


class BackgroundScanners:
    """External hosts randomly SYN-probing addresses inside the AS.

    Probes are raw SYNs (no connection state), just like real scanners;
    targets answer RST or SYN/ACK per their stack, and the scanner's stack
    resets unexpected SYN/ACKs — all of which the border taps observe.
    """

    def __init__(
        self,
        scanners: Sequence[Host],
        target_ips: Sequence[str],
        rng: random.Random,
        mean_interval: float = 0.5,
        ports: Sequence[int] = tuple(COMMON_PORTS),
    ) -> None:
        if not scanners or not target_ips:
            raise ValueError("background scanning needs scanners and targets")
        self.scanners = list(scanners)
        self.target_ips = list(target_ips)
        self.ports = list(ports)
        self.rng = rng
        self.mean_interval = mean_interval
        self.probes_sent = 0
        self._stopped = False

    def start(self, until: float) -> None:
        sim = self.scanners[0].stack.sim
        self._schedule_next(sim, until)

    def stop(self) -> None:
        self._stopped = True

    def _schedule_next(self, sim, until: float) -> None:
        delay = self.rng.expovariate(1.0 / self.mean_interval)
        if sim.now + delay > until or self._stopped:
            return

        def fire() -> None:
            self._probe_once()
            self._schedule_next(sim, until)

        sim.at(delay, fire)

    def _probe_once(self) -> None:
        scanner = self.rng.choice(self.scanners)
        target = self.rng.choice(self.target_ips)
        port = self.rng.choice(self.ports)
        self.probes_sent += 1
        probe = IPPacket(
            src=scanner.ip,
            dst=target,
            payload=TCPSegment(
                sport=scanner.stack.ephemeral_port(),
                dport=port,
                seq=self.rng.randrange(1, 2**31),
                flags=SYN,
            ),
        )
        scanner.send_raw(probe)
