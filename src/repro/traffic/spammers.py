"""Bulk-spam population workload (the cover the spam method blends into).

Real spammers enumerate entire zones — the paper notes a never-published
.COM blackhole domain that still receives high spam volumes — so spam to
*any* domain, censored or not, is unremarkable to the MVR.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from ..netsim.mailsrv import SMTPResult, send_mail
from ..netsim.node import Host
from ..spamfilter.corpus import generate_spam

__all__ = ["SpamWorkload"]


class SpamWorkload:
    """Spam-bot hosts delivering template spam to mail servers."""

    def __init__(
        self,
        bots: Sequence[Host],
        mail_servers: Sequence[Tuple[str, str]],  # (ip, domain)
        rng: random.Random,
        mean_interval: float = 2.0,
    ) -> None:
        if not bots or not mail_servers:
            raise ValueError("spam workload needs bots and mail servers")
        self.bots = list(bots)
        self.mail_servers = list(mail_servers)
        self.rng = rng
        self.mean_interval = mean_interval
        self.results: List[SMTPResult] = []
        self.messages_attempted = 0
        self._stopped = False

    def start(self, until: float) -> None:
        sim = self.bots[0].stack.sim
        self._schedule_next(sim, until)

    def stop(self) -> None:
        self._stopped = True

    def _schedule_next(self, sim, until: float) -> None:
        delay = self.rng.expovariate(1.0 / self.mean_interval)
        if sim.now + delay > until or self._stopped:
            return

        def fire() -> None:
            self._send_one()
            self._schedule_next(sim, until)

        sim.at(delay, fire)

    def _send_one(self) -> None:
        bot = self.rng.choice(self.bots)
        server_ip, domain = self.rng.choice(self.mail_servers)
        message = generate_spam(self.rng, 1, recipient=f"user@{domain}")[0]
        self.messages_attempted += 1
        send_mail(bot, server_ip, message, callback=self.results.append)
