"""Peer-to-peer (BitTorrent-like) population workload.

P2P matters because it is the single biggest thing Massive Volume Reduction
throws away — the paper notes the NSA reduces captured volume by roughly
30 %, "in part by throwing away all peer-to-peer traffic."  The handshake
here carries the real BitTorrent protocol string so the commodity p2p
signature fires and the MVR discards the flow's bytes.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from ..netsim.node import Host
from ..netsim.stack import TCPConnection

__all__ = ["P2PPeer", "P2PWorkload", "BITTORRENT_HANDSHAKE"]

BITTORRENT_HANDSHAKE = b"\x13BitTorrent protocol" + b"\x00" * 8
P2P_PORT = 6881


class P2PPeer:
    """A listening peer that answers handshakes and serves chunks."""

    def __init__(self, host: Host, chunk_size: int = 4096, port: int = P2P_PORT) -> None:
        self.host = host
        self.chunk_size = chunk_size
        self.port = port
        self.sessions = 0
        assert host.stack is not None
        host.stack.tcp_listen(port, self._accept)

    def _accept(self, conn: TCPConnection) -> None:
        self.sessions += 1

        def handler(event: str, data: bytes) -> None:
            if event == "data" and data.startswith(b"\x13BitTorrent"):
                conn.send(BITTORRENT_HANDSHAKE + b"infohash0123456789ab" + b"peerid-responder0000")
                # Serve one piece; deterministic filler keeps runs stable.
                conn.send(b"\x07" + bytes(self.chunk_size))
            elif event == "fin":
                conn.close()

        conn.handler = handler


class P2PWorkload:
    """Peers inside the AS exchanging chunks with outside peers."""

    def __init__(
        self,
        inside_peers: Sequence[Host],
        outside_peers: Sequence[Host],
        rng: random.Random,
        mean_interval: float = 2.0,
        chunk_size: int = 4096,
    ) -> None:
        if not inside_peers or not outside_peers:
            raise ValueError("p2p workload needs peers on both sides")
        self.inside = list(inside_peers)
        self.rng = rng
        self.mean_interval = mean_interval
        self.chunk_size = chunk_size
        self.transfers_started = 0
        self.transfers_completed = 0
        self._stopped = False
        self._servers: List[P2PPeer] = [
            P2PPeer(host, chunk_size=chunk_size) for host in outside_peers
        ]

    def start(self, until: float) -> None:
        sim = self.inside[0].stack.sim
        self._schedule_next(sim, until)

    def stop(self) -> None:
        self._stopped = True

    def _schedule_next(self, sim, until: float) -> None:
        delay = self.rng.expovariate(1.0 / self.mean_interval)
        if sim.now + delay > until or self._stopped:
            return

        def fire() -> None:
            self._one_transfer()
            self._schedule_next(sim, until)

        sim.at(delay, fire)

    def _one_transfer(self) -> None:
        client = self.rng.choice(self.inside)
        server = self.rng.choice(self._servers)
        self.transfers_started += 1
        received = {"bytes": 0}

        def handler(event: str, data: bytes) -> None:
            if event == "connected":
                conn.send(
                    BITTORRENT_HANDSHAKE + b"infohash0123456789ab" + b"peerid-requester0000"
                )
            elif event == "data":
                received["bytes"] += len(data)
                if received["bytes"] >= self.chunk_size:
                    self.transfers_completed += 1
                    conn.close()
            elif event == "fin":
                conn.close()

        conn = client.stack.tcp_connect(server.host.ip, server.port, handler)
