"""A full population-traffic mix over the censored-AS topology.

Wires web, DNS, p2p, spam, and background-scanning workloads into one
object so evaluations can stand up a realistic population with one call.
The p2p share is deliberately large: Massive Volume Reduction achieves its
~30 % cut chiefly by discarding p2p (paper Section 2.1).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from ..netsim.dnssrv import DNSServer, Zone
from ..netsim.mailsrv import MailServer
from ..netsim.node import Host
from ..netsim.topology import CensoredASTopology
from ..netsim.websrv import WebServer
from .dnsload import DNSWorkload
from .p2p import P2PWorkload
from .scanners import BackgroundScanners
from .spammers import SpamWorkload
from .web import WebWorkload

__all__ = ["PopulationMix", "install_standard_servers"]

BACKGROUND_NAMES = [
    "example.org",
    "weather.gov",
    "news.example.net",
    "cdn.example.net",
    "mail.example.org",
]


def install_standard_servers(topo: CensoredASTopology) -> Dict[str, object]:
    """Install DNS/web/mail servers matching ``topo.domains``.

    Returns the created server objects keyed by role.  Safe to call once
    per topology.
    """
    zone = Zone()
    for domain, ip in topo.domains.items():
        zone.add_a(domain, ip)
        mail_ip = topo.blocked_mail.ip if ip == topo.blocked_web.ip else topo.control_mail.ip
        zone.add_mx(domain, f"mail.{domain}")
        zone.add_a(f"mail.{domain}", mail_ip)
    for name in BACKGROUND_NAMES:
        if not zone.knows(name):
            zone.add_a(name, topo.control_web.ip)
            zone.add_mx(name, f"mx.{name}")
            zone.add_a(f"mx.{name}", topo.control_mail.ip)

    from ..netsim.tlssrv import TLSServer

    servers = {
        "dns": DNSServer(topo.dns_server, zone),
        "blocked_web": WebServer(
            topo.blocked_web,
            default_body="<html><body>persecution of falun practitioners</body></html>",
        ),
        "control_web": WebServer(
            topo.control_web,
            default_body="<html><body>weather report: sunny</body></html>",
        ),
        "blocked_mail": MailServer(topo.blocked_mail),
        "control_mail": MailServer(topo.control_mail),
        "blocked_tls": TLSServer(topo.blocked_web),
        "control_tls": TLSServer(topo.control_web),
    }
    return servers


class PopulationMix:
    """All background workloads over a censored-AS topology."""

    def __init__(
        self,
        topo: CensoredASTopology,
        rng: Optional[random.Random] = None,
        web_interval: float = 0.5,
        dns_interval: float = 0.4,
        p2p_interval: float = 1.5,
        spam_interval: float = 4.0,
        scan_interval: float = 1.0,
        censored_fraction: float = 0.0157,
        p2p_chunk: int = 16384,
        outside_peer_count: int = 3,
        scanner_count: int = 3,
        synthetic_users: int = 0,
        fidelity: str = "hybrid",
    ) -> None:
        self.topo = topo
        self.rng = rng if rng is not None else topo.sim.rng
        network = topo.network

        self.outside_peers: List[Host] = []
        for index in range(outside_peer_count):
            peer = network.add(Host(f"xpeer{index}", f"198.18.0.{10 + index}"))
            network.connect(peer, topo.transit_router)
            self.outside_peers.append(peer)

        self.scanners: List[Host] = []
        for index in range(scanner_count):
            scanner = network.add(Host(f"xscan{index}", f"198.18.1.{10 + index}"))
            network.connect(scanner, topo.transit_router)
            self.scanners.append(scanner)

        control_sites = [(topo.control_web.ip, "example.org"), (topo.control_web.ip, "weather.gov")]
        censored_sites = [(topo.blocked_web.ip, "twitter.com"), (topo.blocked_web.ip, "youtube.com")]

        self.web = WebWorkload(
            clients=topo.population,
            sites=control_sites,
            rng=self.rng,
            mean_interval=web_interval,
            censored_sites=censored_sites,
            censored_fraction=censored_fraction,
        )
        self.dns = DNSWorkload(
            clients=topo.population,
            resolver_ip=topo.dns_server.ip,
            names=BACKGROUND_NAMES + list(topo.domains),
            rng=self.rng,
            mean_interval=dns_interval,
        )
        self.p2p = P2PWorkload(
            inside_peers=topo.population,
            outside_peers=self.outside_peers,
            rng=self.rng,
            mean_interval=p2p_interval,
            chunk_size=p2p_chunk,
        )
        # Some population hosts are botnet-infected and send spam outbound
        # (crossing the border taps), alongside external bots.
        infected = list(topo.population[: max(1, len(topo.population) // 5)])
        self.spam = SpamWorkload(
            bots=infected + self.scanners,
            mail_servers=[
                (topo.control_mail.ip, "example.org"),
                (topo.blocked_mail.ip, "twitter.com"),
            ],
            rng=self.rng,
            mean_interval=spam_interval,
        )
        self.scan = BackgroundScanners(
            scanners=self.scanners,
            target_ips=[host.ip for host in topo.population],
            rng=self.rng,
            mean_interval=scan_interval,
        )
        self._workloads = [self.web, self.dns, self.p2p, self.spam, self.scan]

        # Optional tiered-fidelity synthetic population riding alongside
        # the host-backed workloads.  Created last (after all other node
        # additions) and seeded from private substreams, so enabling it
        # never perturbs the draws — or the link RNG ordinals — that the
        # host-backed workloads depend on.
        self.population: Optional["PopulationTraffic"] = None
        if synthetic_users:
            from .population import PopulationTraffic

            self.population = PopulationTraffic(
                topo, users=synthetic_users, fidelity=fidelity
            )

    def start(self, until: float) -> None:
        """Begin all workloads until simulated time ``until``."""
        for workload in self._workloads:
            workload.start(until)
        if self.population is not None:
            self.population.start(until - self.topo.sim.now)

    def stop(self) -> None:
        for workload in self._workloads:
            workload.stop()
        if self.population is not None:
            self.population.stop()

    def stats(self) -> Dict[str, int]:
        snapshot = {
            "web_requests": self.web.requests_issued,
            "dns_queries": self.dns.queries_issued,
            "p2p_transfers": self.p2p.transfers_started,
            "spam_messages": self.spam.messages_attempted,
            "scan_probes": self.scan.probes_sent,
        }
        if self.population is not None:
            snapshot["population_flows"] = self.population.flows_created
            snapshot["population_bytes"] = self.population.bytes_total()
        return snapshot
