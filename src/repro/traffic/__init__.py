"""Population ("cover") traffic generators."""

from .dnsload import DNSWorkload
from .mix import PopulationMix, install_standard_servers
from .p2p import BITTORRENT_HANDSHAKE, P2PPeer, P2PWorkload
from .population import PopulationProfile, PopulationTraffic
from .scanners import COMMON_PORTS, DURUMERIC_2014, BackgroundScanners, DarknetStats
from .spammers import SpamWorkload
from .web import WebWorkload

__all__ = [
    "BITTORRENT_HANDSHAKE",
    "BackgroundScanners",
    "COMMON_PORTS",
    "DNSWorkload",
    "DURUMERIC_2014",
    "DarknetStats",
    "P2PPeer",
    "P2PWorkload",
    "PopulationMix",
    "PopulationProfile",
    "PopulationTraffic",
    "SpamWorkload",
    "WebWorkload",
    "install_standard_servers",
]
