"""TTL estimation and TTL-limited reply planning (paper Section 4.1).

The stateful-mimicry measurement server must set reply TTLs so that its
packets cross the surveillance tap at the AS border but expire *before*
reaching the spoofed client (otherwise the client's stack would emit a RST
and tear the censor's reassembly state — the "replay" problem).

``TTLEstimator`` measures hop distance with ICMP echo, the way the paper
suggests scanning the network from the server; ``plan_reply_ttl`` converts
an estimate into a TTL that dies a chosen number of hops short.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..packets import ICMP_ECHO_REPLY, ICMPMessage, IPPacket
from ..netsim.node import Host

__all__ = ["TTLEstimator", "plan_reply_ttl", "HopEstimate"]

DEFAULT_INITIAL_TTL = 64

#: ICMP echo ident is a 16-bit wire field; idents wrap within [1, MAX_IDENT].
MAX_IDENT = 0xFFFF


@dataclass
class HopEstimate:
    """Result of a hop-distance probe."""

    target: str
    hops: Optional[int]  # router hops from prober to target; None on timeout

    @property
    def ok(self) -> bool:
        return self.hops is not None


@dataclass
class _PendingProbe:
    """An in-flight echo request: who we asked, who to tell, and the
    timeout timer to cancel when the reply beats it."""

    target: str
    callback: Callable[[HopEstimate], None]
    timer: object


class TTLEstimator:
    """Estimates router-hop distance from a host to targets via ICMP echo.

    Hop count is inferred from the reply's arriving TTL, assuming the common
    initial TTL of 64 — the same heuristic passive OS fingerprinting uses.
    A systematic ``error`` offset can be injected to study how estimate
    error leaks replies to the spoofed client (DESIGN.md ablation).
    """

    def __init__(self, prober: Host, error: int = 0, timeout: float = 2.0) -> None:
        self.prober = prober
        self.error = error
        self.timeout = timeout
        self._pending: Dict[int, _PendingProbe] = {}
        self._next_ident = 1
        assert prober.stack is not None
        prober.stack.add_sniffer(self._sniff)

    def _allocate_ident(self) -> int:
        """Next free echo ident, wrapping within the 16-bit wire field.

        Long campaigns exceed 65535 probes, so idents wrap at
        ``MAX_IDENT`` (0 is skipped — it is the common "unset" value);
        idents still awaiting a reply are skipped so a wrapped campaign
        never aliases two in-flight probes onto one ident.
        """
        if len(self._pending) >= MAX_IDENT:
            raise RuntimeError(
                f"all {MAX_IDENT} ICMP idents are awaiting replies; "
                "cannot start another probe"
            )
        ident = self._next_ident
        while ident in self._pending:
            ident = ident + 1 if ident < MAX_IDENT else 1
        self._next_ident = ident + 1 if ident < MAX_IDENT else 1
        return ident

    def estimate(self, target_ip: str, callback: Callable[[HopEstimate], None]) -> None:
        """Ping ``target_ip``; deliver a :class:`HopEstimate`."""
        ident = self._allocate_ident()
        sim = self.prober.stack.sim

        def expire() -> None:
            waiting = self._pending.pop(ident, None)
            if waiting is not None:
                waiting.callback(HopEstimate(target=target_ip, hops=None))

        self._pending[ident] = _PendingProbe(
            target=target_ip, callback=callback, timer=sim.at(self.timeout, expire)
        )
        request = IPPacket(
            src=self.prober.ip,
            dst=target_ip,
            payload=ICMPMessage.echo_request(ident=ident),
        )
        self.prober.send_ip(request)

    def _sniff(self, packet: IPPacket) -> None:
        if packet.dst != self.prober.ip:
            return  # transit traffic sniffed on the wire, not our reply
        message = packet.icmp
        if message is None or message.icmp_type != ICMP_ECHO_REPLY:
            return
        pending = self._pending.pop(message.ident, None)
        if pending is None:
            return
        # Cancel the timeout so long campaigns don't pile dead timers on
        # the heap, and attribute the estimate to the *probed* target —
        # packet.src is attacker-controlled (spoofable) and may differ.
        pending.timer.cancel()
        hops = DEFAULT_INITIAL_TTL - packet.ttl + self.error
        pending.callback(HopEstimate(target=pending.target, hops=hops))


def plan_reply_ttl(hops_to_client: int, die_short_by: int = 1) -> int:
    """TTL for a reply that expires ``die_short_by`` router hops early.

    A packet sent with TTL ``t`` is dropped by the ``t``-th router on the
    path.  With ``hops_to_client`` routers between server and client, a
    reply needs TTL ``hops_to_client - die_short_by`` to die exactly
    ``die_short_by`` hops before delivery (and still cross everything
    earlier on the path, such as a border surveillance tap).
    """
    if die_short_by < 1:
        raise ValueError("die_short_by must be >= 1 (0 would deliver the packet)")
    ttl = hops_to_client - die_short_by
    if ttl < 1:
        raise ValueError(
            f"path too short: cannot die {die_short_by} hops early on a "
            f"{hops_to_client}-hop path"
        )
    return ttl
