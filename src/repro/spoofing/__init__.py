"""IP-spoofing feasibility (SAV model) and TTL-limited reply planning."""

from .sav import (
    BEVERLY_PROFILE,
    SAVFilter,
    SPOOF_ANY,
    SPOOF_NONE,
    SpoofingProfile,
    feasibility_summary,
    sample_scopes,
    scope_permits,
)
from .ttl import HopEstimate, TTLEstimator, plan_reply_ttl

__all__ = [
    "BEVERLY_PROFILE",
    "HopEstimate",
    "SAVFilter",
    "SPOOF_ANY",
    "SPOOF_NONE",
    "SpoofingProfile",
    "TTLEstimator",
    "feasibility_summary",
    "plan_reply_ttl",
    "sample_scopes",
    "scope_permits",
]
