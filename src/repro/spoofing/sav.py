"""Source-address validation (SAV) model, after Beverly et al. (IMC 2009).

The paper's Section 4.2 feasibility argument rests on the measured
prevalence of spoofing capability: 77 % of clients can spoof addresses
within their own /24 and 11 % within their own /16, consistently across
regions.  This module models both the *per-client capability* distribution
and the *network-side filter* that enforces it at the AS edge.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional

from ..packets.addressing import same_prefix

__all__ = [
    "SPOOF_ANY",
    "SPOOF_NONE",
    "SpoofingProfile",
    "BEVERLY_PROFILE",
    "SAVFilter",
    "sample_scopes",
    "feasibility_summary",
]

#: Scope sentinel: host cannot spoof at all (only its own address passes).
SPOOF_NONE: Optional[int] = None
#: Scope value: host can spoof arbitrary addresses (no filtering).
SPOOF_ANY = 0


@dataclass(frozen=True)
class SpoofingProfile:
    """Population-level spoofing capability distribution.

    Fractions are cumulative-style, matching how Beverly et al. report them:
    ``frac_slash24`` is the fraction able to spoof within their /24 (which
    includes the /16-capable), ``frac_slash16`` within their /16, and
    ``frac_any`` with no filtering at all.
    """

    frac_slash24: float = 0.77
    frac_slash16: float = 0.11
    frac_any: float = 0.0

    def __post_init__(self) -> None:
        if not 0 <= self.frac_any <= self.frac_slash16 <= self.frac_slash24 <= 1:
            raise ValueError(
                "fractions must satisfy 0 <= any <= /16 <= /24 <= 1 "
                f"(got any={self.frac_any}, /16={self.frac_slash16}, /24={self.frac_slash24})"
            )

    def draw_scope(self, rng: random.Random) -> Optional[int]:
        """Sample one client's spoofing scope."""
        roll = rng.random()
        if roll < self.frac_any:
            return SPOOF_ANY
        if roll < self.frac_slash16:
            return 16
        if roll < self.frac_slash24:
            return 24
        return SPOOF_NONE


#: The distribution measured by Beverly et al. and cited in the paper.
BEVERLY_PROFILE = SpoofingProfile()


def scope_permits(scope: Optional[int], claimed_src: str, true_src: str) -> bool:
    """Whether a host with ``scope`` may emit packets claiming ``claimed_src``."""
    if claimed_src == true_src:
        return True
    if scope is SPOOF_NONE:
        return False
    if scope == SPOOF_ANY:
        return True
    return same_prefix(claimed_src, true_src, scope)


class SAVFilter:
    """The network-side ingress filter installed at an AS edge router.

    ``scope_lookup`` maps a true origin address to that host's spoofing
    scope; packets whose claimed source falls outside the scope are dropped
    (uRPF-style filtering as deployed — i.e., incompletely).
    """

    def __init__(self, scope_lookup: Callable[[str], Optional[int]]) -> None:
        self._scope_lookup = scope_lookup
        self.checked = 0
        self.rejected = 0

    @classmethod
    def strict(cls) -> "SAVFilter":
        """A filter that forbids all spoofing (full uRPF deployment)."""
        return cls(lambda _ip: SPOOF_NONE)

    @classmethod
    def permissive(cls) -> "SAVFilter":
        """A filter that allows all spoofing (no SAV at all)."""
        return cls(lambda _ip: SPOOF_ANY)

    @classmethod
    def from_network(cls, network) -> "SAVFilter":
        """Build a filter from per-host ``spoof_scope`` attributes."""

        def lookup(ip: str) -> Optional[int]:
            host = network.owner_of(ip)
            return host.spoof_scope if host is not None else SPOOF_ANY

        return cls(lookup)

    def permits(self, claimed_src: str, true_src: str) -> bool:
        self.checked += 1
        allowed = scope_permits(self._scope_lookup(true_src), claimed_src, true_src)
        if not allowed:
            self.rejected += 1
        return allowed


def sample_scopes(
    rng: random.Random, count: int, profile: SpoofingProfile = BEVERLY_PROFILE
) -> List[Optional[int]]:
    """Sample spoofing scopes for ``count`` clients."""
    return [profile.draw_scope(rng) for _ in range(count)]


def feasibility_summary(scopes: Iterable[Optional[int]]) -> dict:
    """Fractions able to spoof at each granularity (reproduces E7 rows)."""
    scope_list = list(scopes)
    total = len(scope_list)
    if total == 0:
        return {"total": 0, "frac_slash24": 0.0, "frac_slash16": 0.0, "frac_any": 0.0}
    can24 = sum(1 for s in scope_list if s is not SPOOF_NONE and (s == SPOOF_ANY or s <= 24))
    can16 = sum(1 for s in scope_list if s is not SPOOF_NONE and (s == SPOOF_ANY or s <= 16))
    can_any = sum(1 for s in scope_list if s == SPOOF_ANY)
    return {
        "total": total,
        "frac_slash24": can24 / total,
        "frac_slash16": can16 / total,
        "frac_any": can_any / total,
    }
