"""Observability native to simulated time: metrics registry + span tracing.

Install a registry/tracer around environment construction and every
instrumented layer (netsim, rules, surveillance, techniques) records
into it; leave them uninstalled and the hot paths pay one ``is not
None`` check:

    from repro.obs import MetricsRegistry, Tracer, use_registry, use_tracer

    registry, tracer = MetricsRegistry(), Tracer()
    with use_registry(registry), use_tracer(tracer):
        env = build_environment(seed=7)
        tracer.bind_clock(lambda: env.sim.now)
        ...  # run
    tracer.finalize()
    tracer.write_chrome("run.trace.json")   # open in Perfetto
"""

from .export import canonical_json, write_json, write_jsonl
from .metrics import (
    NULL,
    Counter,
    DEFAULT_LATENCY_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRecorder,
    active_or_none,
    current_registry,
    set_registry,
    use_registry,
)
from .trace import (
    Span,
    Tracer,
    active_tracer,
    current_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "canonical_json",
    "write_json",
    "write_jsonl",
    "NULL",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRecorder",
    "active_or_none",
    "current_registry",
    "set_registry",
    "use_registry",
    "Span",
    "Tracer",
    "active_tracer",
    "current_tracer",
    "set_tracer",
    "use_tracer",
]
