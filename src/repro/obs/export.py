"""Deterministic serialization helpers shared by every obs exporter.

Everything the observability layer writes — metrics snapshots, Chrome
trace files, JSONL event streams, capture dumps — goes through these
two primitives so that "same seed ⇒ byte-identical export" holds by
construction: keys sorted, separators fixed, no wall-clock timestamps,
trailing newline always present.
"""

from __future__ import annotations

import json
import os
from typing import Iterable

__all__ = ["canonical_json", "write_json", "write_jsonl"]


def canonical_json(obj) -> str:
    """One canonical line of JSON: sorted keys, compact separators."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _ensure_parent(path: str) -> None:
    parent = os.path.dirname(os.path.abspath(path))
    if parent:
        os.makedirs(parent, exist_ok=True)


def write_json(path: str, obj) -> str:
    """Write one object as pretty-but-canonical JSON; returns the path."""
    _ensure_parent(path)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(obj, fh, sort_keys=True, indent=1, separators=(",", ": "))
        fh.write("\n")
    return path


def write_jsonl(path: str, records: Iterable) -> str:
    """Write records one canonical-JSON line each; returns the path."""
    _ensure_parent(path)
    with open(path, "w", encoding="utf-8") as fh:
        for record in records:
            fh.write(canonical_json(record))
            fh.write("\n")
    return path
