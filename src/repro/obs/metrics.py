"""Simulation-native metrics: labeled counters, gauges, and histograms.

The paper's argument is about *where* packets go — which MVR stage
discards them, which link direction loses them, how many retries a
verdict consumed.  This registry gives every layer a shared, cheap place
to record those numbers so a run can answer them without ad-hoc prints
or re-deriving them from capture dumps.

Design constraints, in order:

1. **Zero overhead when off.**  Instrumented constructors resolve their
   recorder once via :func:`active_or_none`; when no registry is
   installed they store ``None`` and every hot path pays exactly one
   ``if self._obs is not None`` check.  :class:`NullRecorder` exists for
   call sites that want unconditional instrument handles — all of its
   instruments are shared no-op singletons, and the recorder itself is
   falsy.
2. **Determinism.**  Snapshots order instruments and label tuples by
   sorted name, never by hash or insertion accident, so two same-seed
   runs produce byte-identical exports (the property the trace/metrics
   determinism tests assert).
3. **No dependencies.**  Plain dicts keyed by label-value tuples; the
   text rendering is Prometheus-flavoured for familiarity, not for
   scrape compatibility.
"""

from __future__ import annotations

import threading
import weakref
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRecorder",
    "NULL",
    "DEFAULT_LATENCY_BUCKETS",
    "active_or_none",
    "current_registry",
    "set_registry",
    "use_registry",
]

LabelTuple = Tuple[str, ...]

#: Fixed buckets for simulated-seconds latency histograms (RTTs in the
#: reference topologies are milliseconds; retries stretch to seconds).
DEFAULT_LATENCY_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0, float("inf")
)


class _Instrument:
    """Shared shape: a name, label names, and a values table."""

    kind = "untyped"
    __slots__ = ("name", "help", "label_names", "_values")

    def __init__(self, name: str, help: str, label_names: Sequence[str]) -> None:
        self.name = name
        self.help = help
        self.label_names: LabelTuple = tuple(label_names)
        self._values: Dict[LabelTuple, object] = {}

    def _check(self, labels: LabelTuple) -> None:
        if len(labels) != len(self.label_names):
            raise ValueError(
                f"{self.name}: expected {len(self.label_names)} label value(s) "
                f"{self.label_names}, got {labels!r}"
            )

    def labelled(self) -> List[Tuple[LabelTuple, object]]:
        """(labels, value) pairs in sorted label order (deterministic)."""
        return sorted(self._values.items())

    def clear(self) -> None:
        self._values.clear()

    def _merge_compatible(self, other: "_Instrument") -> None:
        """Raise unless ``other`` can be folded into this instrument."""
        if type(other) is not type(self):
            raise TypeError(
                f"{self.name}: cannot merge {other.kind} into {self.kind}"
            )
        if other.label_names != self.label_names:
            raise ValueError(
                f"{self.name}: cannot merge labels {other.label_names} "
                f"into {self.label_names}"
            )


class Counter(_Instrument):
    """A monotonically increasing count, optionally labeled."""

    kind = "counter"
    __slots__ = ()

    def inc(self, labels: LabelTuple = (), amount: float = 1) -> None:
        self._check(labels)
        if amount < 0:
            raise ValueError(f"{self.name}: counters only go up (amount={amount})")
        self._values[labels] = self._values.get(labels, 0) + amount

    def value(self, labels: LabelTuple = ()) -> float:
        return self._values.get(labels, 0)

    def total(self) -> float:
        """Sum across all label combinations."""
        return sum(self._values.values())

    def merge_from(self, other: "Counter") -> None:
        """Fold ``other`` into this counter: per-label sums."""
        self._merge_compatible(other)
        for labels, value in other._values.items():
            self._values[labels] = self._values.get(labels, 0) + value


class Gauge(_Instrument):
    """A value that can go anywhere; also tracks via :meth:`track_max`."""

    kind = "gauge"
    __slots__ = ()

    def set(self, labels: LabelTuple = (), value: float = 0) -> None:
        self._check(labels)
        self._values[labels] = value

    def track_max(self, labels: LabelTuple = (), value: float = 0) -> None:
        """Keep the high-water mark (used for queue depths)."""
        self._check(labels)
        current = self._values.get(labels)
        if current is None or value > current:
            self._values[labels] = value

    def value(self, labels: LabelTuple = ()) -> float:
        return self._values.get(labels, 0)

    def merge_from(self, other: "Gauge") -> None:
        """Fold ``other`` into this gauge: per-label max.

        Cross-worker ``set()`` order is undefined, so the only merge that
        is independent of execution interleaving is the high-water mark —
        which is also exactly right for the ``track_max`` gauges the
        codebase uses (queue depths, high-water counters).
        """
        self._merge_compatible(other)
        for labels, value in other._values.items():
            current = self._values.get(labels)
            if current is None or value > current:
                self._values[labels] = value


class Histogram(_Instrument):
    """Fixed-bucket histogram storing *per-bucket* counts plus sum/count.

    Buckets are upper bounds; an observation lands in the first bucket
    whose bound is >= the value (the last bound should be ``inf``), and
    each bucket's stored count is the number of observations that landed
    in exactly that bucket — not a running total.  The exporters derive
    the Prometheus-style *cumulative* view (``_bucket{le="..."}`` lines,
    :meth:`cumulative_counts`) from this storage on demand.
    """

    kind = "histogram"
    __slots__ = ("buckets",)

    def __init__(
        self,
        name: str,
        help: str,
        label_names: Sequence[str],
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, help, label_names)
        bounds = tuple(buckets)
        if not bounds:
            raise ValueError(f"{name}: histogram needs at least one bucket")
        if list(bounds) != sorted(bounds):
            raise ValueError(f"{name}: bucket bounds must be sorted")
        if bounds[-1] != float("inf"):
            bounds = bounds + (float("inf"),)
        self.buckets = bounds

    def observe(self, labels: LabelTuple = (), value: float = 0) -> None:
        self._check(labels)
        state = self._values.get(labels)
        if state is None:
            state = {"counts": [0] * len(self.buckets), "sum": 0.0, "count": 0}
            self._values[labels] = state
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                state["counts"][index] += 1
                break
        state["sum"] += value
        state["count"] += 1

    def count(self, labels: LabelTuple = ()) -> int:
        state = self._values.get(labels)
        return 0 if state is None else state["count"]

    def bucket_counts(self, labels: LabelTuple = ()) -> List[int]:
        """Per-bucket counts (one int per bound, non-cumulative)."""
        state = self._values.get(labels)
        if state is None:
            return [0] * len(self.buckets)
        return list(state["counts"])

    def cumulative_counts(self, labels: LabelTuple = ()) -> List[int]:
        """Prometheus-style cumulative counts: entry i is observations <= bound i."""
        running = 0
        out = []
        for count in self.bucket_counts(labels):
            running += count
            out.append(running)
        return out

    def quantile(self, p: float, labels: LabelTuple = ()) -> Optional[float]:
        """Estimate the ``p``-quantile from the fixed cumulative buckets.

        Monotone linear interpolation inside the bucket the target rank
        lands in: the estimate is exact at bucket boundaries and off by
        at most one bucket width inside a bucket (observations are
        assumed uniform within it) — a documented ±bucket-width error,
        which is the price of storing counts instead of samples.  Two
        clamps keep the estimate finite and monotone: the first bucket
        interpolates from 0 (or from a negative observation's own value
        there is no record of, so 0 is the floor), and a rank landing in
        the unbounded ``+Inf`` bucket returns the last finite bound —
        the largest value the histogram can still vouch for.

        Returns ``None`` when no observations were recorded for the
        label row (an empty histogram has no quantiles); raises on ``p``
        outside [0, 1].
        """
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"{self.name}: quantile p must be in [0, 1] (got {p})")
        state = self._values.get(labels)
        if state is None or state["count"] == 0:
            return None
        target = p * state["count"]
        running = 0
        lower = 0.0
        for bound, count in zip(self.buckets, state["counts"]):
            before = running
            running += count
            if running >= target and count:
                if bound == float("inf"):
                    return lower
                return lower + (bound - lower) * ((target - before) / count)
            if bound != float("inf"):
                lower = bound
        return lower

    def merge_from(self, other: "Histogram") -> None:
        """Fold ``other`` into this histogram: elementwise bucket adds."""
        self._merge_compatible(other)
        if other.buckets != self.buckets:
            raise ValueError(
                f"{self.name}: cannot merge bucket bounds {other.buckets} "
                f"into {self.buckets}"
            )
        for labels, state in other._values.items():
            mine = self._values.get(labels)
            if mine is None:
                mine = {"counts": [0] * len(self.buckets), "sum": 0.0, "count": 0}
                self._values[labels] = mine
            for index, count in enumerate(state["counts"]):
                mine["counts"][index] += count
            mine["sum"] += state["sum"]
            mine["count"] += state["count"]


class MetricsRegistry:
    """A process-wide home for instruments; get-or-create by name.

    Instruments are created once and shared: asking for an existing name
    with matching kind/labels returns the same object, so independent
    subsystems can feed one counter (e.g. every ``Link`` feeding
    ``link_packets_dropped_total``).
    """

    def __init__(self, namespace: str = "repro") -> None:
        self.namespace = namespace
        self._instruments: Dict[str, _Instrument] = {}
        #: weak refs to bound methods that fold batched deltas in before
        #: any read (components that batch hot-path increments register
        #: here so reported values stay exact)
        self._flush_hooks: List[weakref.WeakMethod] = []
        self._flushing = False

    def __bool__(self) -> bool:  # a real registry is truthy; NULL is not
        return True

    # -- batched-instrumentation flush hooks ----------------------------------

    def on_flush(self, hook) -> None:
        """Register a bound method to run before reads (held weakly).

        Components that accumulate hot-path deltas locally (the rule
        engine, the surveillance tap) register their fold-in method here;
        :meth:`flush_pending` runs at the top of :meth:`get`,
        :meth:`snapshot`, :meth:`render_text`, and :meth:`clear`, so every
        observable value is exact at read time no matter where a batch
        boundary fell.  Hooks run in registration order (deterministic)
        and die with their owner — no unregistration needed.
        """
        self._flush_hooks.append(weakref.WeakMethod(hook))

    def flush_pending(self) -> None:
        """Run every live flush hook once (reentrancy-safe)."""
        if not self._flush_hooks or self._flushing:
            return
        self._flushing = True
        try:
            dead = False
            for ref in self._flush_hooks:
                hook = ref()
                if hook is None:
                    dead = True
                else:
                    hook()
            if dead:
                self._flush_hooks = [
                    ref for ref in self._flush_hooks if ref() is not None
                ]
        finally:
            self._flushing = False

    # -- instrument factories -------------------------------------------------

    def _get_or_create(self, cls, name: str, help: str, labels, **kwargs):
        instrument = self._instruments.get(name)
        if instrument is not None:
            if not isinstance(instrument, cls):
                raise TypeError(
                    f"{name} already registered as {instrument.kind}, "
                    f"requested {cls.kind}"
                )
            if instrument.label_names != tuple(labels):
                raise ValueError(
                    f"{name} already registered with labels "
                    f"{instrument.label_names}, requested {tuple(labels)}"
                )
            return instrument
        instrument = cls(name, help, labels, **kwargs)
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, labels, buckets=buckets)

    # -- introspection --------------------------------------------------------

    def get(self, name: str) -> Optional[_Instrument]:
        self.flush_pending()
        return self._instruments.get(name)

    def names(self) -> List[str]:
        return sorted(self._instruments)

    def clear(self) -> None:
        """Zero every instrument (the instruments themselves survive).

        Pending batched deltas are folded in first so they don't leak
        into the cleared registry on the next read.
        """
        self.flush_pending()
        for instrument in self._instruments.values():
            instrument.clear()

    def snapshot(self) -> Dict[str, object]:
        """A deterministic, JSON-ready dump of every instrument.

        Instruments sort by name and label rows by label values, so two
        identical runs snapshot byte-identically once serialized with
        sorted keys.  Histogram rows carry the full per-bucket ``counts``
        list (copied, so later observations never mutate an exported
        snapshot) alongside ``sum``/``count``; the snapshot round-trips
        through :meth:`from_snapshot`.
        """
        self.flush_pending()
        out: Dict[str, object] = {}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            values: List[object] = []
            for labels, value in instrument.labelled():
                if isinstance(instrument, Histogram):
                    value = {
                        "counts": list(value["counts"]),
                        "sum": value["sum"],
                        "count": value["count"],
                    }
                values.append([list(labels), value])
            entry: Dict[str, object] = {
                "kind": instrument.kind,
                "help": instrument.help,
                "labels": list(instrument.label_names),
                "values": values,
            }
            if isinstance(instrument, Histogram):
                entry["buckets"] = [
                    "inf" if bound == float("inf") else bound
                    for bound in instrument.buckets
                ]
            out[name] = entry
        return {"namespace": self.namespace, "instruments": out}

    @classmethod
    def from_snapshot(cls, snapshot: Dict[str, object]) -> "MetricsRegistry":
        """Rebuild a registry from a :meth:`snapshot` dict.

        The workhorse of cross-process metric folding: sweep workers ship
        JSON-ready snapshots back to the parent, which reconstructs and
        :meth:`merge`\\ s them.  ``reg.from_snapshot(reg.snapshot())``
        snapshots byte-identically to ``reg`` — and because snapshots are
        plain JSON scalars, the identity survives a serialize/parse round
        trip through the campaign journal, which is what lets a resumed
        sweep merge checkpointed snapshots with freshly computed ones
        into byte-identical reports.  Malformed rows (label arity or
        bucket-count mismatches — e.g. a journal edited by hand) raise
        rather than reconstructing a registry that would corrupt a merge.
        """
        registry = cls(namespace=snapshot.get("namespace", "repro"))
        for name, entry in snapshot.get("instruments", {}).items():
            kind = entry["kind"]
            labels = tuple(entry["labels"])
            if kind == "counter":
                instrument = registry.counter(name, entry.get("help", ""), labels)
                for row_labels, value in entry["values"]:
                    row = tuple(row_labels)
                    instrument._check(row)
                    instrument._values[row] = value
            elif kind == "gauge":
                instrument = registry.gauge(name, entry.get("help", ""), labels)
                for row_labels, value in entry["values"]:
                    row = tuple(row_labels)
                    instrument._check(row)
                    instrument._values[row] = value
            elif kind == "histogram":
                buckets = tuple(
                    float("inf") if bound == "inf" else bound
                    for bound in entry["buckets"]
                )
                instrument = registry.histogram(
                    name, entry.get("help", ""), labels, buckets=buckets
                )
                for row_labels, state in entry["values"]:
                    row = tuple(row_labels)
                    instrument._check(row)
                    if len(state["counts"]) != len(instrument.buckets):
                        raise ValueError(
                            f"{name}: snapshot row has "
                            f"{len(state['counts'])} bucket counts for "
                            f"{len(instrument.buckets)} bounds"
                        )
                    instrument._values[row] = {
                        "counts": list(state["counts"]),
                        "sum": state["sum"],
                        "count": state["count"],
                    }
            else:
                raise ValueError(f"{name}: unknown instrument kind {kind!r}")
        return registry

    def merge(self, other) -> "MetricsRegistry":
        """Fold another registry (or snapshot dict) into this one, in place.

        Merge semantics are chosen so that N per-worker registries fold
        into what one shared registry would have recorded: counters sum
        per label row, gauges take the per-label max (the ``track_max``
        high-water semantics — see :meth:`Gauge.merge_from`), and
        histograms add bucket counts elementwise.  All integer quantities
        are exact; histogram float ``sum``\\ s match the shared registry
        up to addition reordering.  Folding the *same* parts in the
        *same* order is always bit-reproducible, which is the invariant
        sweep reports rely on.  A name registered
        with a different kind, label set, or bucket bounds on the two
        sides raises instead of silently corrupting the fold.  Returns
        ``self`` so merges chain.
        """
        if isinstance(other, dict):
            other = MetricsRegistry.from_snapshot(other)
        else:
            other.flush_pending()
        for name in sorted(other._instruments):
            theirs = other._instruments[name]
            mine = self._instruments.get(name)
            if mine is None:
                kwargs = {"buckets": theirs.buckets} if isinstance(theirs, Histogram) else {}
                mine = self._get_or_create(
                    type(theirs), name, theirs.help, theirs.label_names, **kwargs
                )
            mine.merge_from(theirs)
        return self

    def render_text(self) -> str:
        """A Prometheus-flavoured text rendering for eyeballs and logs."""
        self.flush_pending()
        lines: List[str] = []
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            full = f"{self.namespace}_{name}"
            if instrument.help:
                lines.append(f"# HELP {full} {instrument.help}")
            lines.append(f"# TYPE {full} {instrument.kind}")
            for labels, value in instrument.labelled():
                pairs = [
                    f'{key}="{val}"'
                    for key, val in zip(instrument.label_names, labels)
                ]
                label_text = "{" + ",".join(pairs) + "}" if pairs else ""
                if isinstance(instrument, Histogram):
                    # Prometheus-style cumulative bucket lines: each
                    # ``le`` bound counts every observation at or below it.
                    running = 0
                    for bound, count in zip(instrument.buckets, value["counts"]):
                        running += count
                        le = "+Inf" if bound == float("inf") else f"{bound:g}"
                        bucket_pairs = pairs + [f'le="{le}"']
                        lines.append(
                            f"{full}_bucket{{{','.join(bucket_pairs)}}} {running}"
                        )
                    lines.append(f"{full}_sum{label_text} {value['sum']}")
                    lines.append(f"{full}_count{label_text} {value['count']}")
                else:
                    lines.append(f"{full}{label_text} {value}")
        return "\n".join(lines) + ("\n" if lines else "")


class _NullInstrument:
    """Accepts any recording call and does nothing (shared singleton)."""

    __slots__ = ()
    kind = "null"
    name = "null"
    label_names: LabelTuple = ()

    def inc(self, labels: LabelTuple = (), amount: float = 1) -> None:
        pass

    def set(self, labels: LabelTuple = (), value: float = 0) -> None:
        pass

    def track_max(self, labels: LabelTuple = (), value: float = 0) -> None:
        pass

    def observe(self, labels: LabelTuple = (), value: float = 0) -> None:
        pass

    def value(self, labels: LabelTuple = ()) -> float:
        return 0

    def total(self) -> float:
        return 0

    def count(self, labels: LabelTuple = ()) -> int:
        return 0


_NULL_INSTRUMENT = _NullInstrument()


class NullRecorder:
    """A falsy stand-in registry whose instruments are all no-ops.

    Code that wants an unconditional handle (``self.m = obs.counter(...)``)
    works against it unchanged; code on a hot path should instead test
    the recorder once (``if obs:``/``active_or_none()``) and skip the
    call entirely.
    """

    namespace = "null"

    def __bool__(self) -> bool:
        return False

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, help: str = "", labels: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def get(self, name: str) -> None:
        return None

    def on_flush(self, hook) -> None:
        pass

    def flush_pending(self) -> None:
        pass

    def names(self) -> List[str]:
        return []

    def clear(self) -> None:
        pass

    def snapshot(self) -> Dict[str, object]:
        return {"namespace": "null", "instruments": {}}

    def render_text(self) -> str:
        return ""


NULL = NullRecorder()

# -- process-wide installation --------------------------------------------------

_state = threading.local()


def current_registry():
    """The installed registry, or the shared :data:`NULL` recorder."""
    return getattr(_state, "registry", None) or NULL


def active_or_none() -> Optional[MetricsRegistry]:
    """The installed *real* registry, or ``None`` when instrumentation is off.

    The construction-time resolver for hot-path components: storing the
    result lets them guard recording with a single ``is not None`` check.
    """
    registry = getattr(_state, "registry", None)
    return registry if registry else None


def set_registry(registry: Optional[MetricsRegistry]):
    """Install ``registry`` process-wide; returns the previous one (or None)."""
    previous = getattr(_state, "registry", None)
    _state.registry = registry
    return previous


@contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Scoped installation: components built inside the block record here."""
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)
