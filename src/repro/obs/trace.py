"""Span tracing keyed on *simulated* time, exportable to Perfetto.

Spans carry simulator timestamps (seconds), not wall-clock: a trace of a
600-simulated-second scan renders as 600 virtual seconds in Perfetto
regardless of how long the host took to compute it.  The Chrome
trace-event exporter maps tracks ("measurement", "tcp", "rules", "mvr",
…) to thread lanes under a single process, emits `ph:"X"` complete
events for spans and `ph:"i"` instants for point events, and orders
everything deterministically so two same-seed runs serialize
byte-identically.

Category filtering happens at `begin()`: a `Tracer(categories={"tcp"})`
returns a shared no-op span for everything else, so callers never need
their own gating beyond the usual `if self._trace is not None` hot-path
check.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Set

from .export import write_json, write_jsonl

__all__ = [
    "Span",
    "Tracer",
    "active_tracer",
    "current_tracer",
    "set_tracer",
    "use_tracer",
]


def _microseconds(seconds: float) -> float:
    # Chrome trace-event ts is in microseconds; round to stabilize float
    # noise so the export is reproducible across platforms.
    return round(seconds * 1e6, 3)


class Span:
    """An open interval on one track; ``end()`` seals it into the tracer."""

    __slots__ = ("tracer", "name", "category", "track", "start", "args", "_done")

    def __init__(self, tracer: "Tracer", name: str, category: str,
                 track: str, start: float, args: Dict[str, object]) -> None:
        self.tracer = tracer
        self.name = name
        self.category = category
        self.track = track
        self.start = start
        self.args = args
        self._done = False

    def end(self, end_time: Optional[float] = None, **more_args) -> None:
        if self._done:
            return
        self._done = True
        if more_args:
            self.args.update(more_args)
        self.tracer._seal(self, end_time)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc) -> None:
        self.end()


class _NullSpan:
    """Shared no-op for disabled categories; accepts the same calls."""

    __slots__ = ()

    def end(self, end_time=None, **more_args):
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        pass

    def __bool__(self):
        return False


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects spans/instants against a simulator clock.

    ``clock`` is any zero-arg callable returning simulated seconds —
    normally ``lambda: sim.now`` (bind via :meth:`bind_clock` once the
    simulator exists).  ``categories=None`` records everything; a set
    restricts recording to those categories.
    """

    def __init__(self, clock=None, categories: Optional[Set[str]] = None,
                 process_name: str = "repro-sim") -> None:
        self._clock = clock or (lambda: 0.0)
        self.categories = set(categories) if categories is not None else None
        self.process_name = process_name
        self.events: List[Dict[str, object]] = []
        self._tracks: Dict[str, int] = {}
        self._open: List[Span] = []

    def bind_clock(self, clock) -> "Tracer":
        """Point the tracer at a simulator's clock (``lambda: sim.now``)."""
        self._clock = clock
        return self

    def now(self) -> float:
        return self._clock()

    def enabled_for(self, category: str) -> bool:
        return self.categories is None or category in self.categories

    def _track_id(self, track: str) -> int:
        tid = self._tracks.get(track)
        if tid is None:
            tid = len(self._tracks) + 1
            self._tracks[track] = tid
        return tid

    # -- recording ------------------------------------------------------------

    def begin(self, name: str, category: str, track: Optional[str] = None,
              start: Optional[float] = None, **args):
        """Open a span; returns a no-op span if the category is filtered."""
        if not self.enabled_for(category):
            return _NULL_SPAN
        span = Span(
            self,
            name,
            category,
            track if track is not None else category,
            self._clock() if start is None else start,
            dict(args),
        )
        self._track_id(span.track)  # intern in begin order, not seal order
        self._open.append(span)
        return span

    def _seal(self, span: Span, end_time: Optional[float]) -> None:
        try:
            self._open.remove(span)
        except ValueError:
            pass
        end = self._clock() if end_time is None else end_time
        if end < span.start:
            end = span.start
        self.events.append({
            "ph": "X",
            "name": span.name,
            "cat": span.category,
            "ts": _microseconds(span.start),
            "dur": _microseconds(end - span.start),
            "pid": 1,
            "tid": self._track_id(span.track),
            "args": span.args,
        })

    def instant(self, name: str, category: str, track: Optional[str] = None,
                when: Optional[float] = None, **args) -> None:
        """A zero-duration point event (drops, resets, injections...)."""
        if not self.enabled_for(category):
            return
        self.events.append({
            "ph": "i",
            "name": name,
            "cat": category,
            "ts": _microseconds(self._clock() if when is None else when),
            "pid": 1,
            "tid": self._track_id(track if track is not None else category),
            "s": "t",
            "args": dict(args),
        })

    def finalize(self, end_time: Optional[float] = None) -> int:
        """Close every still-open span (e.g. half-open TCP flows at sim end).

        Returns the number of spans force-closed; their args gain
        ``unfinished: true`` so Perfetto shows them honestly.
        """
        dangling = list(self._open)
        for span in dangling:
            span.args["unfinished"] = True
            span.end(end_time)
        return len(dangling)

    # -- export ---------------------------------------------------------------

    def chrome(self) -> Dict[str, object]:
        """The trace as a Chrome trace-event JSON object (Perfetto-loadable)."""
        meta: List[Dict[str, object]] = [{
            "ph": "M",
            "name": "process_name",
            "pid": 1,
            "tid": 0,
            "ts": 0,
            "args": {"name": self.process_name},
        }]
        for track in sorted(self._tracks, key=self._tracks.get):
            meta.append({
                "ph": "M",
                "name": "thread_name",
                "pid": 1,
                "tid": self._tracks[track],
                "ts": 0,
                "args": {"name": track},
            })
        # Stable order: by timestamp, then track, then name, then phase —
        # insertion order alone could differ between exporter versions.
        body = sorted(
            self.events,
            key=lambda e: (e["ts"], e["tid"], e["name"], e["ph"]),
        )
        return {
            "displayTimeUnit": "ms",
            "traceEvents": meta + body,
        }

    def write_chrome(self, path: str) -> str:
        """Write Chrome trace-event JSON; open via chrome://tracing or Perfetto."""
        return write_json(path, self.chrome())

    def write_jsonl(self, path: str) -> str:
        """One canonical-JSON event per line (easy to grep/stream)."""
        doc = self.chrome()
        return write_jsonl(path, doc["traceEvents"])

    def clear(self) -> None:
        self.events.clear()
        self._tracks.clear()
        self._open.clear()


# -- process-wide installation --------------------------------------------------

_state = threading.local()


def current_tracer() -> Optional[Tracer]:
    return getattr(_state, "tracer", None)


def active_tracer() -> Optional[Tracer]:
    """The installed tracer, or ``None`` when tracing is off.

    Construction-time resolver, mirroring ``metrics.active_or_none``.
    """
    return getattr(_state, "tracer", None)


def set_tracer(tracer: Optional[Tracer]):
    previous = getattr(_state, "tracer", None)
    _state.tracer = tracer
    return previous


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Scoped installation: components built inside the block trace here."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
