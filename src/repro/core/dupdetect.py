"""Duplicate-DNS-response detection: injection evidence from the race.

An off-path injector (the GFC) cannot remove the resolver's genuine
answer; it can only win the race.  The client therefore receives *two*
responses for one transaction — the forged one first, the real one a
moment later — and seeing contradictory duplicates is strong evidence of
injection without needing a poison-IP list or out-of-band ground truth.
This is one of the "similar analysis techniques" the paper's related-work
section points at (client-side DNS manipulation detection).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..packets import DNSMessage, IPPacket
from ..netsim.node import Host

__all__ = ["ResponsePair", "DuplicateResponseDetector"]

DNS_PORT = 53


@dataclass
class ResponsePair:
    """All responses observed for one (txid, question) transaction."""

    txid: int
    qname: str
    responses: List[DNSMessage] = field(default_factory=list)
    first_seen: float = 0.0

    @property
    def duplicated(self) -> bool:
        return len(self.responses) >= 2

    @property
    def contradictory(self) -> bool:
        """Duplicates that disagree on the answer set — injection evidence."""
        answer_sets = {tuple(sorted(map(str, r.a_records()))) for r in self.responses}
        return len(answer_sets) >= 2

    def distinct_answers(self) -> List[List[str]]:
        seen = []
        for response in self.responses:
            answers = sorted(response.a_records())
            if answers not in seen:
                seen.append(answers)
        return seen


class DuplicateResponseDetector:
    """Sniffs a client's DNS replies and pairs duplicates by transaction.

    Attach before issuing queries::

        detector = DuplicateResponseDetector(client)
        resolve(client, resolver_ip, "twitter.com", ...)
        ...
        evidence = detector.injection_evidence()
    """

    def __init__(self, client: Host) -> None:
        self.client = client
        self.transactions: Dict[int, ResponsePair] = {}
        assert client.stack is not None
        client.stack.add_sniffer(self._sniff)

    def _sniff(self, packet: IPPacket) -> None:
        datagram = packet.udp
        if datagram is None or datagram.sport != DNS_PORT:
            return
        if packet.dst != self.client.ip:
            return
        try:
            message = DNSMessage.from_bytes(datagram.payload)
        except (ValueError, IndexError):
            return
        if not message.is_response or message.question is None:
            return
        pair = self.transactions.get(message.txid)
        if pair is None:
            pair = ResponsePair(
                txid=message.txid,
                qname=message.question.name,
                first_seen=self.client.stack.sim.now,
            )
            self.transactions[message.txid] = pair
        pair.responses.append(message)

    # -- queries --------------------------------------------------------------

    def pair_for(self, qname: str) -> Optional[ResponsePair]:
        """The most recent transaction for ``qname``."""
        matches = [
            pair for pair in self.transactions.values()
            if pair.qname == qname.rstrip(".").lower()
        ]
        return matches[-1] if matches else None

    def injection_evidence(self) -> List[ResponsePair]:
        """Transactions with contradictory duplicate answers."""
        return [
            pair for pair in self.transactions.values() if pair.contradictory
        ]

    def duplicate_rate(self) -> float:
        """Fraction of transactions that saw more than one response."""
        if not self.transactions:
            return 0.0
        duplicated = sum(1 for pair in self.transactions.values() if pair.duplicated)
        return duplicated / len(self.transactions)
