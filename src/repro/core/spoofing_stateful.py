"""Stateful spoofed mimicry (paper Section 4.1, Figure 3b).

Stateful cover traffic only works toward a destination *we control*: a
measurement server (hosted, per the paper, somewhere plausible like a
cloud range).  The client forges entire TCP flows from cover hosts:

1. spoofed SYN (source = cover host) toward the measurement server;
2. the server answers with a **TTL-limited** SYN/ACK that crosses the
   border surveillance tap but dies before reaching the spoofed client —
   otherwise that client's stack would RST and tear the censor's
   reassembly state (the replay problem);
3. the client sends a blind spoofed ACK — possible because the server
   derives its ISN deterministically from a keyed hash of the 4-tuple;
4. the client sends spoofed application data carrying the probe content
   (a censored keyword / Host header).

The censor's reassembler sees a complete established flow and enforces on
it; the measurement server observes whether data arrived and whether the
flow was then reset, which yields the verdict.  One of the flows uses the
client's own address, so the measurement is simultaneously real and
covered.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..netsim.node import Host
from ..netsim.stack import TCPConnection
from ..packets import ACK, IPPacket, PSH, SYN, TCPSegment
from .measurement import MeasurementContext, MeasurementTechnique, RetryPolicy
from .results import MeasurementResult, Verdict

__all__ = ["MimicryServer", "StatefulMimicryMeasurement", "shared_isn"]


def shared_isn(secret: bytes, local_port: int, remote_ip: str, remote_port: int) -> int:
    """Keyed deterministic ISN both endpoints can compute (SYN-cookie style)."""
    digest = hashlib.sha256(
        secret + f"{local_port}|{remote_ip}|{remote_port}".encode()
    ).digest()
    return int.from_bytes(digest[:4], "big") % (2**31 - 1) + 1


@dataclass
class _FlowObservation:
    """What the measurement server saw for one (spoofed) flow."""

    source_ip: str
    established: bool = False
    request_data: bytes = b""
    reset: bool = False


class MimicryServer:
    """The cooperating measurement server (e.g. hosted on a cloud range).

    Listens with a deterministic keyed ISN and (optionally) a reply TTL low
    enough that its packets die inside the client AS after crossing the
    border taps.
    """

    def __init__(
        self,
        host: Host,
        secret: bytes = b"repro-shared-secret",
        port: int = 80,
        reply_ttl: Optional[int] = None,
    ) -> None:
        self.host = host
        self.secret = secret
        self.port = port
        self.observations: Dict[tuple, _FlowObservation] = {}
        assert host.stack is not None
        host.stack.isn_hook = lambda lport, rip, rport: shared_isn(
            secret, lport, rip, rport
        )
        host.stack.tcp_listen(port, self._accept, reply_ttl=reply_ttl)

    def _accept(self, conn: TCPConnection) -> None:
        key = (conn.remote_ip, conn.remote_port)
        observation = _FlowObservation(source_ip=conn.remote_ip, established=True)
        self.observations[key] = observation

        def handler(event: str, data: bytes) -> None:
            if event == "data":
                observation.request_data += data
            elif event == "reset":
                observation.reset = True
            elif event == "fin":
                conn.close()

        conn.handler = handler

    def observation_for(self, source_ip: str, source_port: int) -> Optional[_FlowObservation]:
        return self.observations.get((source_ip, source_port))


class StatefulMimicryMeasurement(MeasurementTechnique):
    """Forged full-TCP flows from cover hosts toward a cooperating server."""

    name = "stateful-mimicry"

    def __init__(
        self,
        ctx: MeasurementContext,
        server: MimicryServer,
        probe_payloads: Sequence[bytes],
        cover_ips: Sequence[str],
        flow_spacing: float = 0.2,
        verdict_delay: float = 2.0,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        super().__init__(ctx)
        self.server = server
        self.probe_payloads = list(probe_payloads)
        self.cover_ips = list(cover_ips)
        self.flow_spacing = flow_spacing
        self.verdict_delay = verdict_delay
        self.retry_policy = retry_policy or ctx.retry_policy

    def start(self) -> None:
        delay = 0.0
        for payload in self.probe_payloads:
            # One real flow (our own address) inside a crowd of spoofed ones.
            sources = [self.ctx.client.ip] + list(self.cover_ips)
            self.ctx.sim.rng.shuffle(sources)
            for source_ip in sources:
                self.ctx.sim.at(
                    delay,
                    lambda s=source_ip, p=payload: self._forge_flow(s, p),
                )
                delay += self.flow_spacing

    def _forge_flow(self, source_ip: str, payload: bytes, attempt: int = 1) -> None:
        if source_ip == self.ctx.client.ip:
            # Span the real flow only; the cover crowd is camouflage.
            label = payload.decode("latin-1", errors="replace").splitlines()[0][:50]
            self._trace_attempt(label)
        rng = self.ctx.sim.rng
        sport = rng.randrange(32768, 61000)
        client_isn = rng.randrange(1, 2**31)
        server_ip, server_port = self.server.host.ip, self.server.port
        server_isn = shared_isn(self.server.secret, server_port, source_ip, sport)

        def seg(flags: int, seq: int, ack: int = 0, data: bytes = b"") -> IPPacket:
            return IPPacket(
                src=source_ip,
                dst=server_ip,
                payload=TCPSegment(
                    sport=sport, dport=server_port, seq=seq, ack=ack,
                    flags=flags, payload=data,
                ),
            )

        send = self.ctx.client.send_raw
        sim = self.ctx.sim
        # Handshake and request, blind-paced: the SYN/ACK is TTL-limited so
        # we never see it; timing gaps stand in for RTT estimation.
        send(seg(SYN, seq=client_isn))
        sim.at(0.05, lambda: send(seg(ACK, seq=client_isn + 1, ack=server_isn + 1)))
        sim.at(
            0.06,
            lambda: send(
                seg(PSH | ACK, seq=client_isn + 1, ack=server_isn + 1, data=payload)
            ),
        )
        sim.at(
            self.verdict_delay,
            lambda: self._conclude(source_ip, sport, payload, attempt),
        )

    def _conclude(
        self, source_ip: str, sport: int, payload: bytes, attempt: int = 1
    ) -> None:
        observation = self.server.observation_for(source_ip, sport)
        label = payload.decode("latin-1", errors="replace").splitlines()[0][:50]
        silent = (
            observation is None
            or not observation.established
            or not observation.request_data
        )
        if silent and attempt < self.retry_policy.max_attempts:
            # A blind-paced flow is fragile under loss (no retransmission on
            # forged segments); re-forge the whole flow with a fresh 4-tuple.
            backoff = self.retry_policy.delay_before(attempt, self.ctx.sim.rng)
            self.ctx.sim.at(
                backoff,
                lambda s=source_ip, p=payload, a=attempt + 1: self._forge_flow(
                    s, p, a
                ),
            )
            return
        confidence = 1.0
        if observation is None or not observation.established:
            verdict, detail = Verdict.BLOCKED_TIMEOUT, "handshake never reached server"
        elif not observation.request_data:
            verdict, detail = Verdict.BLOCKED_TIMEOUT, "request data never arrived"
        elif observation.reset:
            verdict, detail = Verdict.BLOCKED_RST, "flow reset after request"
        else:
            verdict, detail = Verdict.ACCESSIBLE, "request arrived unreset"
        if silent:
            if attempt < self.retry_policy.min_consistent_failures:
                verdict = Verdict.INCONCLUSIVE
                detail = f"{detail} ({attempt} attempt(s), below failure floor)"
            else:
                detail = f"{detail} (consistent across {attempt} attempt(s))"
            confidence = min(
                1.0, attempt / self.retry_policy.min_consistent_failures
            )
        self._emit(
            MeasurementResult(
                technique=self.name,
                target=label,
                verdict=verdict,
                detail=detail,
                evidence={"source": source_ip, "spoofed": source_ip != self.ctx.client.ip},
                attempts=attempt,
                confidence=confidence,
            )
        )

    @property
    def done(self) -> bool:
        expected = len(self.probe_payloads) * (len(self.cover_ips) + 1)
        return len(self.results) >= expected

    def verdict_for_payload(self, payload: bytes) -> Verdict:
        """Majority verdict across the real+cover flows of one payload."""
        label = payload.decode("latin-1", errors="replace").splitlines()[0][:50]
        relevant = [r for r in self.results if r.target == label]
        if not relevant:
            return Verdict.INCONCLUSIVE
        blocked = sum(1 for r in relevant if r.blocked)
        if blocked * 2 >= len(relevant):
            reset = sum(1 for r in relevant if r.verdict is Verdict.BLOCKED_RST)
            return Verdict.BLOCKED_RST if reset * 2 >= blocked else Verdict.BLOCKED_TIMEOUT
        return Verdict.ACCESSIBLE
