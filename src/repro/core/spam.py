"""Method #2 — spam-cloaked DNS and IP censorship measurement.

From the paper (Section 3.1): perform an MX lookup for the target domain,
look up the exchange's A record, open an SMTP connection, and send a spam
message.  Censorship is measured by whether the MX and A lookups and the
TCP connect all succeed.  Because spammers enumerate entire zones, spam to
a censored domain carries no intelligence value and the MVR discards it —
the paper verified with Proofpoint that the cloaked messages classify as
spam (Figure 2) and with a China vantage that the GFC poisons both the A
and MX lookups (Section 3.2.3).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..netsim.dnssrv import DNSResult, resolve
from ..netsim.mailsrv import SMTPResult, send_mail
from ..packets import QTYPE_A, QTYPE_MX
from ..spamfilter.corpus import measurement_spam_email
from .measurement import MeasurementContext, MeasurementTechnique, RetryPolicy
from .overt import interpret_dns
from .results import MeasurementResult, Verdict, aggregate_attempts

__all__ = ["SpamMeasurement"]


class SpamMeasurement(MeasurementTechnique):
    """MX lookup -> A lookup -> SMTP delivery, cloaked as bulk spam.

    A timeout at any stage re-runs the whole pipeline for that domain
    (a spammer retrying a zone is unremarkable) after the policy's
    backoff; ``blocked_timeout`` requires the policy's consistent-failure
    floor, while affirmative answers (RST, poison, block page) conclude
    immediately — those are censor signals, not loss.
    """

    name = "spam"

    def __init__(
        self,
        ctx: MeasurementContext,
        domains: Sequence[str],
        deliver_message: bool = True,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        super().__init__(ctx)
        self.domains = list(domains)
        #: When False, stop after the connection check (lookup-only mode).
        self.deliver_message = deliver_message
        self.retry_policy = retry_policy or ctx.retry_policy
        self.delivery_results: List[SMTPResult] = []
        self._attempt_outcomes: Dict[str, List[Verdict]] = {}
        self._attempt: Dict[str, int] = {}

    def start(self) -> None:
        for domain in self.domains:
            self._attempt_outcomes[domain] = []
            self._begin(domain, attempt=1)

    def _begin(self, domain: str, attempt: int) -> None:
        self._trace_attempt(domain)
        self._attempt[domain] = attempt
        resolve(
            self.ctx.client,
            self.ctx.resolver_ip,
            domain,
            qtype=QTYPE_MX,
            callback=lambda res, d=domain: self._after_mx(d, res),
        )

    # -- stage 1: MX lookup ---------------------------------------------------

    def _after_mx(self, domain: str, res: DNSResult) -> None:
        if res.status == "timeout":
            self._finish(domain, Verdict.BLOCKED_TIMEOUT, "MX query timed out", "mx")
            return
        if res.status != "ok":
            self._finish(domain, Verdict.DNS_FAILURE, f"MX lookup {res.status}", "mx")
            return
        # GFC behaviour: bogus *A* records injected even for MX queries.
        poisoned = [a for a in res.addresses if a in self.ctx.known_poison_ips]
        if poisoned:
            self._finish(
                domain,
                Verdict.DNS_POISONED,
                f"MX query answered with forged A record {poisoned[0]}",
                "mx",
            )
            return
        if not res.mx:
            if res.addresses:
                self._finish(
                    domain,
                    Verdict.DNS_POISONED,
                    f"MX query returned A records only ({res.addresses[0]})",
                    "mx",
                )
            else:
                self._finish(domain, Verdict.DNS_FAILURE, "no MX records", "mx")
            return
        exchange = sorted(res.mx)[0][1]
        resolve(
            self.ctx.client,
            self.ctx.resolver_ip,
            exchange,
            qtype=QTYPE_A,
            callback=lambda a_res, d=domain, mx=exchange: self._after_a(d, mx, a_res),
        )

    # -- stage 2: A lookup of the exchange --------------------------------------

    def _after_a(self, domain: str, exchange: str, res: DNSResult) -> None:
        verdict, detail = interpret_dns(self.ctx, exchange, res)
        if verdict is not Verdict.ACCESSIBLE:
            self._finish(domain, verdict, f"A({exchange}): {detail}", "a")
            return
        address = res.addresses[0]
        message = measurement_spam_email(self.ctx.sim.rng, domain)
        if not self.deliver_message:
            self._probe_connect(domain, address)
            return
        send_mail(
            self.ctx.client,
            address,
            message,
            callback=lambda smtp_res, d=domain: self._after_smtp(d, smtp_res),
        )

    def _probe_connect(self, domain: str, address: str) -> None:
        def handler(event: str, _data: bytes) -> None:
            if event == "connected":
                conn.abort()
                self._finish(domain, Verdict.ACCESSIBLE, "SMTP connect succeeded", "smtp")
            elif event == "reset":
                self._finish(domain, Verdict.BLOCKED_RST, "SMTP connect reset", "smtp")
            elif event == "timeout":
                self._finish(domain, Verdict.BLOCKED_TIMEOUT, "SMTP connect timed out", "smtp")

        conn = self.ctx.client.stack.tcp_connect(address, 25, handler)

    # -- stage 3: SMTP delivery ----------------------------------------------------

    def _after_smtp(self, domain: str, res: SMTPResult) -> None:
        self.delivery_results.append(res)
        if res.status == "delivered":
            verdict, detail = Verdict.ACCESSIBLE, "spam delivered end-to-end"
        elif res.status == "reset":
            verdict, detail = Verdict.BLOCKED_RST, f"reset at stage {res.stage}"
        elif res.status == "timeout":
            verdict, detail = Verdict.BLOCKED_TIMEOUT, f"timeout at stage {res.stage}"
        elif res.status == "rejected":
            # The mail server refusing is a property of the server, not the
            # censor: the transaction reached it, so the path is open.
            verdict, detail = Verdict.ACCESSIBLE, "server rejected message (path open)"
        else:
            verdict, detail = Verdict.INCONCLUSIVE, f"smtp {res.status}"
        self._finish(domain, verdict, detail, "smtp")

    def _finish(self, domain: str, verdict: Verdict, detail: str, stage: str) -> None:
        attempt = self._attempt[domain]
        outcomes = self._attempt_outcomes[domain]
        outcomes.append(verdict)
        if (
            verdict is Verdict.BLOCKED_TIMEOUT
            and attempt < self.retry_policy.max_attempts
        ):
            # A silent stage could be the censor or a lost packet; only
            # repetition distinguishes them.  Everything else (RST,
            # poison, success) is an affirmative answer — no retry.
            backoff = self.retry_policy.delay_before(attempt, self.ctx.sim.rng)
            self.ctx.sim.at(
                backoff, lambda d=domain, a=attempt + 1: self._begin(d, a)
            )
            return
        if verdict in (Verdict.BLOCKED_TIMEOUT, Verdict.ACCESSIBLE):
            # Timeouts need the consistency floor; successes after earlier
            # timeouts keep a success-fraction confidence.
            final, confidence = aggregate_attempts(
                outcomes,
                min_consistent_failures=self.retry_policy.min_consistent_failures,
            )
        else:
            # Poison, RST, block page: the censor answered — full confidence.
            final, confidence = verdict, 1.0
        if final is not verdict:
            detail = f"{detail} ({final.value} after {attempt} attempts)"
        self._emit(
            MeasurementResult(
                technique=self.name,
                target=domain,
                verdict=final,
                detail=detail,
                evidence={
                    "stage": stage,
                    "attempt_verdicts": [v.value for v in outcomes],
                },
                attempts=attempt,
                confidence=confidence,
            )
        )

    @property
    def done(self) -> bool:
        return len(self.results) >= len(self.domains)
