"""Method #1 — scanning-cloaked TCP/IP censorship measurement.

From the paper (Section 3.1): start an nmap-style SYN scan of the most
commonly open TCP ports of a potentially censored service.  Certain ports
*must* be open for the service to work (port 80 on a web site), so
censorship is inferred when an expected-open port yields (1) no SYN/ACK or
(2) a RST.  To the MVR this is indistinguishable from the botnet scanning
that saturates the Internet (Durumeric et al.), so it is discarded as
commodity noise rather than logged against the user.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..packets import IPPacket, SYN, TCPSegment
from ..traffic.scanners import COMMON_PORTS
from .measurement import MeasurementContext, MeasurementTechnique, RetryPolicy
from .results import MeasurementResult, Verdict, aggregate_attempts

__all__ = ["ScanTarget", "ScanMeasurement", "top_ports"]


def top_ports(count: int) -> List[int]:
    """The ``count`` most-commonly-open ports (nmap top-1000 style).

    The head of the list is the published common-port ordering; the tail is
    filled deterministically so scans of up to 1000 ports look plausible.
    """
    if count <= len(COMMON_PORTS):
        return COMMON_PORTS[:count]
    ports = list(COMMON_PORTS)
    candidate = 1
    seen = set(ports)
    while len(ports) < count:
        if candidate not in seen:
            ports.append(candidate)
            seen.add(candidate)
        candidate += 1
    return ports


@dataclass
class ScanTarget:
    """A service to scan and the ports its function requires."""

    ip: str
    expected_open: List[int]
    label: str = ""

    def __post_init__(self) -> None:
        if not self.expected_open:
            raise ValueError("a scan target needs at least one expected-open port")
        if not self.label:
            self.label = self.ip


@dataclass
class _PortProbe:
    port: int
    state: str = "pending"  # "open" | "closed" | "filtered" | "pending"


class ScanMeasurement(MeasurementTechnique):
    """Half-open SYN scan with censorship inference on expected-open ports.

    Under a retrying :class:`RetryPolicy`, ports still unresolved
    ("filtered") after a probe round are re-probed with backoff —
    spacing retries apart in time so they decorrelate from loss bursts —
    and ``blocked`` is only reported after the policy's consistent-failure
    floor.  The default single-shot policy reproduces the paper's
    original one-SYN-per-port behaviour.
    """

    name = "scan"

    def __init__(
        self,
        ctx: MeasurementContext,
        targets: Sequence[ScanTarget],
        port_count: int = 100,
        probe_interval: float = 0.01,
        timeout: float = 2.0,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        super().__init__(ctx)
        self.targets = list(targets)
        self.port_count = port_count
        self.probe_interval = probe_interval
        self.timeout = timeout
        self.retry_policy = retry_policy or ctx.retry_policy
        #: (target_ip, sport) -> probe record
        self._probes: Dict[tuple, _PortProbe] = {}
        self._port_states: Dict[str, Dict[int, str]] = {}
        self._sniffing = False

    def start(self) -> None:
        stack = self.ctx.client.stack
        assert stack is not None
        if not self._sniffing:
            stack.add_sniffer(self._sniff)
            self._sniffing = True
        delay = 0.0
        for target in self.targets:
            ports = sorted(set(top_ports(self.port_count)) | set(target.expected_open))
            self._port_states[target.ip] = {}
            self.ctx.sim.at(
                delay, lambda t=target, p=ports: self._probe_round(t, p, attempt=1)
            )
            delay += len(ports) * self.probe_interval + self.timeout

    def _probe_round(self, target: ScanTarget, ports: List[int], attempt: int) -> None:
        """Probe ``ports``; when the round times out, retry the leftovers."""
        self._trace_attempt(target.label)
        delay = 0.0
        for port in ports:
            self.ctx.sim.at(delay, lambda t=target, p=port: self._probe(t, p))
            delay += self.probe_interval
        self.ctx.sim.at(
            delay + self.timeout,
            lambda t=target, a=attempt: self._round_done(t, a),
        )

    def _round_done(self, target: ScanTarget, attempt: int) -> None:
        states = self._port_states[target.ip]
        unresolved = sorted(p for p, state in states.items() if state == "filtered")
        if unresolved and attempt < self.retry_policy.max_attempts:
            backoff = self.retry_policy.delay_before(attempt, self.ctx.sim.rng)
            self.ctx.sim.at(
                backoff,
                lambda t=target, p=unresolved, a=attempt + 1: self._probe_round(
                    t, p, a
                ),
            )
            return
        self._conclude(target, attempts=attempt)

    # -- probing ---------------------------------------------------------------

    def _probe(self, target: ScanTarget, port: int) -> None:
        stack = self.ctx.client.stack
        sport = stack.ephemeral_port()
        probe = _PortProbe(port=port)
        self._probes[(target.ip, sport)] = probe
        self._port_states[target.ip][port] = "filtered"  # until proven otherwise
        syn = IPPacket(
            src=self.ctx.client.ip,
            dst=target.ip,
            payload=TCPSegment(
                sport=sport,
                dport=port,
                seq=self.ctx.sim.rng.randrange(1, 2**31),
                flags=SYN,
            ),
        )
        self.ctx.client.send_raw(syn)

    def _sniff(self, packet: IPPacket) -> None:
        segment = packet.tcp
        if segment is None or packet.dst != self.ctx.client.ip:
            return
        record = self._probes.get((packet.src, segment.dport))
        if record is None or record.port != segment.sport:
            return
        if segment.is_synack:
            self._port_states[packet.src][record.port] = "open"
            # No explicit teardown needed: the host stack has no connection
            # for this SYN/ACK and answers with a RST on its own — exactly
            # the half-open behaviour of nmap -sS.
        elif segment.is_rst:
            self._port_states[packet.src][record.port] = "closed"

    # -- verdicts --------------------------------------------------------------------

    def _conclude(self, target: ScanTarget, attempts: int = 1) -> None:
        states = self._port_states[target.ip]
        policy = self.retry_policy
        problems = []
        confidences = []
        for port in target.expected_open:
            state = states.get(port, "filtered")
            if state == "filtered":
                # Every attempt on this port timed out; whether that is
                # enough evidence for "blocked" is the policy's call.
                verdict, confidence = aggregate_attempts(
                    [Verdict.BLOCKED_TIMEOUT] * attempts,
                    min_consistent_failures=policy.min_consistent_failures,
                )
                problems.append((port, verdict))
                confidences.append(confidence)
            elif state == "closed":
                # A RST is an affirmative answer, not a lost packet.
                problems.append((port, Verdict.BLOCKED_RST))
                confidences.append(1.0)
        open_count = sum(1 for state in states.values() if state == "open")
        unresolved = sum(1 for state in states.values() if state == "filtered")
        if not problems:
            verdict, confidence = Verdict.ACCESSIBLE, 1.0
            detail = f"all {len(target.expected_open)} expected ports open"
        else:
            verdict = problems[0][1]
            confidence = min(confidences)
            detail = "; ".join(
                f"port {port}: {v.value}" for port, v in problems
            )
            if attempts > 1:
                detail += f" (after {attempts} attempts)"
        self._emit(
            MeasurementResult(
                technique=self.name,
                target=f"{target.label}",
                verdict=verdict,
                detail=detail,
                evidence={
                    "port_states": dict(states),
                    "open_ports": open_count,
                    "ports_scanned": len(states),
                    "unresolved_ports": unresolved,
                },
                samples=len(states),
                attempts=attempts,
                confidence=confidence,
            )
        )

    @property
    def done(self) -> bool:
        return len(self.results) >= len(self.targets)
