"""Measurement technique base class and execution context.

A technique is given a :class:`MeasurementContext` (the client platform:
a host with raw-packet capability, plus the resolver and target book-
keeping) and produces :class:`MeasurementResult` records asynchronously as
the simulation runs — mirroring how OONI/Centinel tests run on a client.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..netsim.node import Host
from .results import MeasurementResult

__all__ = ["MeasurementContext", "MeasurementTechnique"]


@dataclass
class MeasurementContext:
    """Everything a technique needs to run from a vantage point."""

    client: Host
    resolver_ip: str = ""
    #: domain -> expected IP (from out-of-band knowledge, e.g. a control
    #: vantage); used to recognize poisoned answers.
    expected_addresses: Dict[str, str] = field(default_factory=dict)
    #: Known bogus addresses injectors use (GFC poison-IP lists are public).
    known_poison_ips: frozenset = frozenset({"8.7.198.45", "159.106.121.75", "46.82.174.68"})

    @property
    def sim(self):
        assert self.client.stack is not None
        return self.client.stack.sim


class MeasurementTechnique:
    """Base class: subclasses implement ``start`` and emit results.

    ``results`` accumulates as the event loop runs; callers typically
    ``start()`` the technique, run the simulator, then read ``results``.
    """

    #: Short identifier used in result records and reports.
    name = "base"
    #: Whether the technique is one of the paper's stealthy designs (False
    #: for the overt baseline).
    stealthy = True

    def __init__(self, ctx: MeasurementContext) -> None:
        self.ctx = ctx
        self.results: List[MeasurementResult] = []
        self._subscribers: List[Callable[[MeasurementResult], None]] = []

    def start(self) -> None:
        """Schedule the technique's traffic; returns immediately."""
        raise NotImplementedError

    def on_result(self, callback: Callable[[MeasurementResult], None]) -> None:
        """Subscribe to results as they are produced."""
        self._subscribers.append(callback)

    def _emit(self, result: MeasurementResult) -> None:
        result.time = self.ctx.sim.now
        self.results.append(result)
        for callback in self._subscribers:
            callback(result)

    @property
    def done(self) -> bool:
        """Whether all expected results have been emitted (if knowable)."""
        return True
