"""Measurement technique base class, retry policy, and execution context.

A technique is given a :class:`MeasurementContext` (the client platform:
a host with raw-packet capability, plus the resolver and target book-
keeping) and produces :class:`MeasurementResult` records asynchronously as
the simulation runs — mirroring how OONI/Centinel tests run on a client.

The context carries a :class:`RetryPolicy`: real deployments cannot tell
a lost SYN/ACK from a censor's silent drop on one sample, so every
technique re-probes on timeout according to the policy and only calls
``blocked`` after enough consistent failures.  The default policy is
single-shot (no retries), preserving the original paper behaviour;
hostile-network scenarios install a retrying policy.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..netsim.node import Host
from ..obs.metrics import active_or_none
from ..obs.trace import active_tracer
from .results import MeasurementResult

__all__ = ["RetryPolicy", "MeasurementContext", "MeasurementTechnique"]


@dataclass(frozen=True)
class RetryPolicy:
    """When and how often a technique re-probes an unanswered target.

    ``delay_before(attempt)`` gives the pause inserted before retry
    number ``attempt`` (1-based: attempt 1 is the first *retry*),
    growing exponentially with optional deterministic-RNG jitter so
    retries decorrelate from loss bursts.
    """

    max_attempts: int = 3
    timeout: float = 2.0
    base_delay: float = 0.25
    backoff: float = 2.0
    #: fraction of the delay added as uniform jitter (0 = none)
    jitter: float = 0.1
    #: consistent failed attempts required before calling ``blocked``
    min_consistent_failures: int = 2

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.timeout <= 0:
            raise ValueError("timeout must be positive")
        if self.base_delay < 0 or self.backoff < 1.0 or self.jitter < 0:
            raise ValueError("invalid backoff configuration")

    @classmethod
    def single_shot(cls, timeout: float = 2.0) -> "RetryPolicy":
        """The legacy behaviour: one probe, no retries, 1 failure = verdict."""
        return cls(max_attempts=1, timeout=timeout, min_consistent_failures=1)

    @property
    def retries_enabled(self) -> bool:
        return self.max_attempts > 1

    def delay_before(
        self, attempt: int, rng: Optional[random.Random] = None
    ) -> float:
        """Backoff delay inserted before retry ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        delay = self.base_delay * (self.backoff ** (attempt - 1))
        if self.jitter and rng is not None:
            delay += rng.uniform(0.0, self.jitter * delay)
        return delay

    def schedule(self) -> List[float]:
        """The jitter-free backoff schedule, one delay per possible retry."""
        return [
            self.base_delay * (self.backoff ** (attempt - 1))
            for attempt in range(1, self.max_attempts)
        ]


@dataclass
class MeasurementContext:
    """Everything a technique needs to run from a vantage point."""

    client: Host
    resolver_ip: str = ""
    #: domain -> expected IP (from out-of-band knowledge, e.g. a control
    #: vantage); used to recognize poisoned answers.
    expected_addresses: Dict[str, str] = field(default_factory=dict)
    #: Known bogus addresses injectors use (GFC poison-IP lists are public).
    known_poison_ips: frozenset = frozenset({"8.7.198.45", "159.106.121.75", "46.82.174.68"})
    #: How techniques re-probe on timeout; single-shot by default.
    retry_policy: RetryPolicy = field(default_factory=RetryPolicy.single_shot)

    @property
    def sim(self):
        assert self.client.stack is not None
        return self.client.stack.sim


class MeasurementTechnique:
    """Base class: subclasses implement ``start`` and emit results.

    ``results`` accumulates as the event loop runs; callers typically
    ``start()`` the technique, run the simulator, then read ``results``.
    """

    #: Short identifier used in result records and reports.
    name = "base"
    #: Whether the technique is one of the paper's stealthy designs (False
    #: for the overt baseline).
    stealthy = True

    def __init__(self, ctx: MeasurementContext) -> None:
        self.ctx = ctx
        self.results: List[MeasurementResult] = []
        self._subscribers: List[Callable[[MeasurementResult], None]] = []
        # Observability, resolved once per technique instance.
        obs = active_or_none()
        self._obs = obs
        if obs is not None:
            self._m_results = obs.counter(
                "measurement_results_total",
                "Final measurement verdicts",
                ("technique", "verdict"),
            )
            self._m_attempts = obs.counter(
                "measurement_attempts_total",
                "Probe attempts consumed (including retries)",
                ("technique",),
            )
        tracer = active_tracer()
        self._trace = (
            tracer
            if tracer is not None and tracer.enabled_for("measurement")
            else None
        )
        #: Open attempt spans keyed by target; popped by ``_emit``.
        self._attempt_spans: Dict[str, object] = {}

    def start(self) -> None:
        """Schedule the technique's traffic; returns immediately."""
        raise NotImplementedError

    def on_result(self, callback: Callable[[MeasurementResult], None]) -> None:
        """Subscribe to results as they are produced."""
        self._subscribers.append(callback)

    def _trace_attempt(self, target: str) -> None:
        """Open the span covering all probes of ``target`` (idempotent).

        Subclasses call this where they first touch a target; the span
        ends when ``_emit`` produces that target's result, labeled with
        the verdict and the retry count.
        """
        if self._trace is None or target in self._attempt_spans:
            return
        self._attempt_spans[target] = self._trace.begin(
            f"{self.name} {target}",
            "measurement",
            track=f"measure:{self.name}",
            technique=self.name,
            target=target,
        )

    def _emit(self, result: MeasurementResult) -> None:
        result.time = self.ctx.sim.now
        self.results.append(result)
        if self._obs is not None:
            self._m_results.inc((self.name, result.verdict.value))
            self._m_attempts.inc((self.name,), result.attempts)
        span = self._attempt_spans.pop(result.target, None)
        if span is not None:
            span.end(
                verdict=result.verdict.value,
                attempts=result.attempts,
                confidence=result.confidence,
            )
        for callback in self._subscribers:
            callback(result)

    @property
    def done(self) -> bool:
        """Whether all expected results have been emitted (if knowable)."""
        return True
