"""Stateless spoofed mimicry (paper Section 4.1, Figure 3a).

For stateless protocols the measurement client can fake a *complete*
transaction from any host in its AS: a spoofed DNS query elicits a real
response to the spoofed address, so from the surveillance tap every cover
host appears to be measuring.  The client's own (real) query rides inside
the crowd; attribution degrades toward 1/N.

Two techniques:

- :class:`StatelessSpoofedDNSMeasurement` — spoofed DNS queries to any
  resolver, plus one real query whose answer yields the verdict.
- :class:`SpoofedSYNReachability` — spoofed TCP SYNs measuring IP
  reachability; a SYN/ACK means reachable (the spoofed host's stack RSTs
  it, which is itself cover traffic), silence or RST means blocked.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from ..netsim.dnssrv import DNSResult, resolve
from ..packets import (
    DNSMessage,
    IPPacket,
    QTYPE_A,
    SYN,
    TCPSegment,
    UDPDatagram,
)
from .measurement import MeasurementContext, MeasurementTechnique, RetryPolicy
from .overt import interpret_dns
from .results import MeasurementResult, Verdict

__all__ = ["StatelessSpoofedDNSMeasurement", "SpoofedSYNReachability"]

DNS_PORT = 53


class StatelessSpoofedDNSMeasurement(MeasurementTechnique):
    """DNS measurement hidden in a crowd of spoofed identical queries."""

    name = "spoofed-dns"

    def __init__(
        self,
        ctx: MeasurementContext,
        domains: Sequence[str],
        cover_ips: Sequence[str],
        jitter: float = 0.05,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        super().__init__(ctx)
        self.domains = list(domains)
        self.cover_ips = list(cover_ips)
        self.jitter = jitter
        self.retry_policy = retry_policy or ctx.retry_policy
        self.cover_queries_sent = 0

    def start(self) -> None:
        rng = self.ctx.sim.rng
        for domain in self.domains:
            # Cover: one spoofed query per cover host, jittered so the
            # real query is not temporally conspicuous.
            sources = list(self.cover_ips)
            rng.shuffle(sources)
            for cover_ip in sources:
                delay = rng.uniform(0, self.jitter * (len(sources) + 1))
                self.ctx.sim.at(
                    delay, lambda d=domain, ip=cover_ip: self._spoofed_query(d, ip)
                )
            real_delay = rng.uniform(0, self.jitter * (len(sources) + 1))
            self.ctx.sim.at(real_delay, lambda d=domain: self._real_query(d))

    def _spoofed_query(self, domain: str, cover_ip: str) -> None:
        rng = self.ctx.sim.rng
        query = DNSMessage.query(domain, qtype=QTYPE_A, txid=rng.randrange(0x10000))
        packet = IPPacket(
            src=cover_ip,
            dst=self.ctx.resolver_ip,
            payload=UDPDatagram(
                sport=rng.randrange(32768, 61000),
                dport=DNS_PORT,
                payload=query.to_bytes(),
            ),
        )
        self.ctx.client.send_raw(packet)
        self.cover_queries_sent += 1

    def _real_query(self, domain: str, attempt: int = 1) -> None:
        self._trace_attempt(domain)
        resolve(
            self.ctx.client,
            self.ctx.resolver_ip,
            domain,
            callback=lambda res, d=domain, a=attempt: self._conclude(d, res, a),
        )

    def _conclude(self, domain: str, res: DNSResult, attempt: int = 1) -> None:
        if res.status == "timeout" and attempt < self.retry_policy.max_attempts:
            # Re-ask under fresh cover-crowd timing; a lost datagram and a
            # censor's drop look identical on one sample.
            backoff = self.retry_policy.delay_before(attempt, self.ctx.sim.rng)
            self.ctx.sim.at(
                backoff, lambda d=domain, a=attempt + 1: self._real_query(d, a)
            )
            return
        verdict, detail = interpret_dns(self.ctx, domain, res)
        confidence = 1.0
        if res.status == "timeout":
            if attempt < self.retry_policy.min_consistent_failures:
                verdict = Verdict.INCONCLUSIVE
                detail = f"{detail} (only {attempt} attempt(s), below failure floor)"
            confidence = min(
                1.0, attempt / self.retry_policy.min_consistent_failures
            )
        self._emit(
            MeasurementResult(
                technique=self.name,
                target=domain,
                verdict=verdict,
                detail=detail,
                evidence={
                    "status": res.status,
                    "addresses": res.addresses,
                    "cover_queries": self.cover_queries_sent,
                },
                attempts=attempt,
                confidence=confidence,
            )
        )

    @property
    def done(self) -> bool:
        return len(self.results) >= len(self.domains)


class SpoofedSYNReachability(MeasurementTechnique):
    """IP reachability via SYN probes inside a spoofed crowd.

    The real probe comes from the client's address; the stack's automatic
    RST answer to the SYN/ACK completes the paper's
    SYN -> SYN/ACK -> RST pattern, and each cover host shows the same
    pattern (their stacks RST unsolicited SYN/ACKs too).
    """

    name = "spoofed-syn"

    def __init__(
        self,
        ctx: MeasurementContext,
        targets: Sequence[Tuple[str, int]],
        cover_ips: Sequence[str],
        timeout: float = 2.0,
        jitter: float = 0.05,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        super().__init__(ctx)
        self.targets = list(targets)
        self.cover_ips = list(cover_ips)
        self.timeout = timeout
        self.jitter = jitter
        self.retry_policy = retry_policy or ctx.retry_policy
        self._outcomes: Dict[Tuple[str, int], str] = {}
        self._probe_ports: Dict[Tuple[str, int], Tuple[str, int]] = {}
        self._sniffing = False

    def start(self) -> None:
        stack = self.ctx.client.stack
        assert stack is not None
        if not self._sniffing:
            stack.add_sniffer(self._sniff)
            self._sniffing = True
        rng = self.ctx.sim.rng
        for target_ip, port in self.targets:
            self._outcomes[(target_ip, port)] = "silent"
            sources = list(self.cover_ips)
            rng.shuffle(sources)
            for cover_ip in sources:
                delay = rng.uniform(0, self.jitter * (len(sources) + 1))
                self.ctx.sim.at(
                    delay,
                    lambda t=target_ip, p=port, ip=cover_ip: self._send_syn(t, p, ip),
                )
            real_delay = rng.uniform(0, self.jitter * (len(sources) + 1))
            self.ctx.sim.at(
                real_delay, lambda t=target_ip, p=port: self._send_real_syn(t, p)
            )
            self.ctx.sim.at(
                self.jitter * (len(sources) + 2) + self.timeout,
                lambda t=target_ip, p=port: self._conclude(t, p, attempt=1),
            )

    def _send_syn(self, target_ip: str, port: int, source_ip: str) -> None:
        rng = self.ctx.sim.rng
        packet = IPPacket(
            src=source_ip,
            dst=target_ip,
            payload=TCPSegment(
                sport=rng.randrange(32768, 61000),
                dport=port,
                seq=rng.randrange(1, 2**31),
                flags=SYN,
            ),
        )
        self.ctx.client.send_raw(packet)

    def _send_real_syn(self, target_ip: str, port: int) -> None:
        self._trace_attempt(f"{target_ip}:{port}")
        stack = self.ctx.client.stack
        sport = stack.ephemeral_port()
        self._probe_ports[(target_ip, port)] = (self.ctx.client.ip, sport)
        packet = IPPacket(
            src=self.ctx.client.ip,
            dst=target_ip,
            payload=TCPSegment(
                sport=sport,
                dport=port,
                seq=self.ctx.sim.rng.randrange(1, 2**31),
                flags=SYN,
            ),
        )
        self.ctx.client.send_raw(packet)

    def _sniff(self, packet: IPPacket) -> None:
        segment = packet.tcp
        if segment is None or packet.dst != self.ctx.client.ip:
            return
        key = (packet.src, segment.sport)
        probe = self._probe_ports.get(key)
        if probe is None or probe[1] != segment.dport:
            return
        if segment.is_synack:
            self._outcomes[key] = "synack"
        elif segment.is_rst:
            self._outcomes[key] = "rst"

    def _conclude(self, target_ip: str, port: int, attempt: int = 1) -> None:
        outcome = self._outcomes[(target_ip, port)]
        if outcome == "silent" and attempt < self.retry_policy.max_attempts:
            # The cover crowd already supplied the cloak; a lone follow-up
            # SYN after backoff is cheap and decorrelates from loss bursts.
            backoff = self.retry_policy.delay_before(attempt, self.ctx.sim.rng)
            self.ctx.sim.at(
                backoff, lambda t=target_ip, p=port: self._send_real_syn(t, p)
            )
            self.ctx.sim.at(
                backoff + self.timeout,
                lambda t=target_ip, p=port, a=attempt + 1: self._conclude(t, p, a),
            )
            return
        confidence = 1.0
        if outcome == "synack":
            verdict, detail = Verdict.ACCESSIBLE, "SYN/ACK received"
        elif outcome == "rst":
            verdict, detail = Verdict.BLOCKED_RST, "RST received for expected-open port"
        elif attempt < self.retry_policy.min_consistent_failures:
            verdict = Verdict.INCONCLUSIVE
            detail = f"no answer to SYN ({attempt} attempt(s), below failure floor)"
            confidence = attempt / self.retry_policy.min_consistent_failures
        else:
            verdict = Verdict.BLOCKED_TIMEOUT
            detail = f"no answer to {attempt} SYN attempt(s)"
        self._emit(
            MeasurementResult(
                technique=self.name,
                target=f"{target_ip}:{port}",
                verdict=verdict,
                detail=detail,
                evidence={"cover_hosts": len(self.cover_ips), "outcome": outcome},
                attempts=attempt,
                confidence=confidence,
            )
        )

    @property
    def done(self) -> bool:
        return len(self.results) >= len(self.targets)
