"""Risk model: what the surveillance system knows about the measurer.

The paper's safety claim is comparative, not absolute: a technique is
*safer* when the surveillance system ends up with fewer user-attributed
alerts pointing at the measurer, a lower attribution confidence, and no
analyst investigation.  This module turns the surveillance system's state
into those numbers (experiments E6 and E9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..surveillance.system import SurveillanceSystem

__all__ = ["RiskAssessment", "assess_risk", "comparison_table"]


@dataclass
class RiskAssessment:
    """The surveillance system's picture of one measurer after a campaign."""

    technique: str
    #: Alerts the system attributed to the measurer's user identity.
    attributed_alerts: int
    #: Alerts whose *true* origin was the measurer (ground truth; includes
    #: spoofed traffic the system attributed to someone else).
    true_origin_alerts: int
    #: 1-based rank of the measurer in the suspect list (None = not listed).
    suspect_rank: Optional[int]
    #: Fraction of attributable alerts pointing at the measurer.
    attribution_confidence: float
    #: Shannon entropy (bits) of the suspect distribution.
    suspect_entropy: float
    #: Whether the analyst stage opened an investigation on the measurer.
    investigated: bool

    @property
    def evaded(self) -> bool:
        """The paper's evasion criterion: no user-attributed alert."""
        return self.attributed_alerts == 0

    def risk_score(self) -> float:
        """A [0, 1] heuristic combining the components (higher = riskier).

        Investigation dominates; otherwise risk scales with attribution
        confidence, discounted when alerts are spread over many suspects.
        """
        if self.investigated:
            return 1.0
        if self.attributed_alerts == 0:
            return 0.0
        spread_discount = 1.0 / (1.0 + self.suspect_entropy)
        return min(1.0, self.attribution_confidence * spread_discount + 0.1)


def assess_risk(
    surveillance: SurveillanceSystem,
    technique: str,
    measurer_user: str,
    measurer_ip: str,
    run_analyst: bool = True,
    now: Optional[float] = None,
) -> RiskAssessment:
    """Build a :class:`RiskAssessment` from the surveillance system's state."""
    attributed = surveillance.attributed_alerts_for_user(measurer_user)
    true_origin = surveillance.alerts_from_origin(measurer_ip)
    report = surveillance.suspect_report()
    suspects = report.suspects
    rank = suspects.index(measurer_user) + 1 if measurer_user in suspects else None
    if run_analyst and now is not None:
        surveillance.run_analyst(now)
    return RiskAssessment(
        technique=technique,
        attributed_alerts=len(attributed),
        true_origin_alerts=len(true_origin),
        suspect_rank=rank,
        attribution_confidence=report.confidence(measurer_user),
        suspect_entropy=report.entropy(),
        investigated=surveillance.analyst.is_under_investigation(measurer_user),
    )


def comparison_table(assessments: List[RiskAssessment]) -> str:
    """Render the E9 comparison as an aligned text table."""
    header = (
        f"{'technique':<20} {'attrib.alerts':>13} {'true-origin':>11} "
        f"{'confidence':>10} {'entropy':>8} {'investigated':>12} {'risk':>6}"
    )
    lines = [header, "-" * len(header)]
    for a in assessments:
        lines.append(
            f"{a.technique:<20} {a.attributed_alerts:>13} {a.true_origin_alerts:>11} "
            f"{a.attribution_confidence:>10.3f} {a.suspect_entropy:>8.3f} "
            f"{str(a.investigated):>12} {a.risk_score():>6.3f}"
        )
    return "\n".join(lines)
