"""Overt baseline measurements (the OONI/Centinel style the paper improves on).

These perform the obvious transaction — resolve the name, fetch the page —
directly from the user's address.  They are maximally accurate and
maximally attributable: the surveillance interest rules fire on exactly
this traffic, which is the risk the stealthy techniques remove.
"""

from __future__ import annotations

from typing import List, Optional

from ..netsim.dnssrv import DNSResult, resolve
from ..netsim.websrv import HTTPResult, http_get
from ..packets import QTYPE_A
from .measurement import MeasurementContext, MeasurementTechnique
from .results import MeasurementResult, Verdict

__all__ = ["OvertDNSMeasurement", "OvertHTTPMeasurement"]


class OvertDNSMeasurement(MeasurementTechnique):
    """Resolve each domain directly and compare against expectations.

    ``interval`` paces the queries (seconds between targets); the default
    of zero is the burst behaviour of naive measurement clients.  Pacing
    matters for the volume-threshold interest rules — see the A6 ablation.
    """

    name = "overt-dns"
    stealthy = False

    def __init__(
        self, ctx: MeasurementContext, domains: List[str], interval: float = 0.0
    ) -> None:
        super().__init__(ctx)
        self.domains = list(domains)
        self.interval = interval

    def start(self) -> None:
        for index, domain in enumerate(self.domains):
            self.ctx.sim.at(
                index * self.interval, lambda d=domain: self._query(d)
            )

    def _query(self, domain: str) -> None:
        resolve(
            self.ctx.client,
            self.ctx.resolver_ip,
            domain,
            qtype=QTYPE_A,
            callback=lambda res, d=domain: self._conclude(d, res),
        )

    def _conclude(self, domain: str, res: DNSResult) -> None:
        verdict, detail = interpret_dns(self.ctx, domain, res)
        self._emit(
            MeasurementResult(
                technique=self.name,
                target=domain,
                verdict=verdict,
                detail=detail,
                evidence={"status": res.status, "addresses": res.addresses},
            )
        )

    @property
    def done(self) -> bool:
        return len(self.results) >= len(self.domains)


class OvertHTTPMeasurement(MeasurementTechnique):
    """Fetch ``http://domain/`` directly (resolve, then GET)."""

    name = "overt-http"
    stealthy = False

    def __init__(
        self,
        ctx: MeasurementContext,
        domains: List[str],
        path: str = "/",
    ) -> None:
        super().__init__(ctx)
        self.domains = list(domains)
        self.path = path

    def start(self) -> None:
        for domain in self.domains:
            resolve(
                self.ctx.client,
                self.ctx.resolver_ip,
                domain,
                callback=lambda res, d=domain: self._after_dns(d, res),
            )

    def _after_dns(self, domain: str, res: DNSResult) -> None:
        verdict, detail = interpret_dns(self.ctx, domain, res)
        if verdict is not Verdict.ACCESSIBLE:
            self._emit(
                MeasurementResult(
                    technique=self.name,
                    target=domain,
                    verdict=verdict,
                    detail=f"dns stage: {detail}",
                    evidence={"stage": "dns", "status": res.status},
                )
            )
            return
        address = res.addresses[0]
        http_get(
            self.ctx.client,
            address,
            domain,
            self.path,
            callback=lambda http_res, d=domain: self._after_http(d, http_res),
        )

    def _after_http(self, domain: str, res: HTTPResult) -> None:
        if res.status == "ok" and res.response is not None:
            if res.response.status == 403:
                verdict, detail = Verdict.HTTP_BLOCKPAGE, "403 block page"
            else:
                verdict, detail = Verdict.ACCESSIBLE, f"HTTP {res.response.status}"
        elif res.status == "reset":
            verdict, detail = Verdict.BLOCKED_RST, "connection reset"
        elif res.status == "timeout":
            verdict, detail = Verdict.BLOCKED_TIMEOUT, "transaction timed out"
        else:
            verdict, detail = Verdict.INCONCLUSIVE, f"http status {res.status}"
        self._emit(
            MeasurementResult(
                technique=self.name,
                target=domain,
                verdict=verdict,
                detail=detail,
                evidence={"stage": "http", "status": res.status},
            )
        )

    @property
    def done(self) -> bool:
        return len(self.results) >= len(self.domains)


def interpret_dns(
    ctx: MeasurementContext, domain: str, res: DNSResult
) -> tuple:
    """Shared DNS-answer interpretation (poison detection).

    An answer is poisoned when it is a known injector address or
    contradicts out-of-band expected addresses.
    """
    if res.status == "timeout":
        return Verdict.BLOCKED_TIMEOUT, "query timed out"
    if res.status in ("nxdomain", "servfail", "error"):
        return Verdict.DNS_FAILURE, f"resolution failed: {res.status}"
    if res.status == "nodata" or not res.addresses:
        return Verdict.DNS_FAILURE, "no addresses returned"
    for address in res.addresses:
        if address in ctx.known_poison_ips:
            return Verdict.DNS_POISONED, f"known poison address {address}"
    expected = ctx.expected_addresses.get(domain)
    if expected is not None and expected not in res.addresses:
        return Verdict.DNS_POISONED, (
            f"answer {res.addresses[0]} contradicts expected {expected}"
        )
    return Verdict.ACCESSIBLE, f"resolved to {res.addresses[0]}"
