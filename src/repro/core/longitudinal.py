"""Longitudinal measurement: censorship as weather (ConceptDoppler [12]).

Blocklists churn; a single snapshot cannot distinguish "never blocked"
from "unblocked last week."  This campaign re-runs a measurement
technique at a fixed cadence over simulated days and reports per-target
verdict timelines and the transitions between them — the "weather
tracking" framing the paper's related work cites.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from .measurement import MeasurementTechnique
from .results import Verdict

__all__ = ["Epoch", "Transition", "LongitudinalCampaign"]

DAY = 86_400.0


@dataclass
class Epoch:
    """One cadence tick's verdicts."""

    index: int
    started_at: float
    verdicts: Dict[str, Verdict] = field(default_factory=dict)


@dataclass(frozen=True)
class Transition:
    """A target whose verdict changed between consecutive epochs."""

    epoch: int
    target: str
    before: Verdict
    after: Verdict

    @property
    def newly_blocked(self) -> bool:
        return not self.before.indicates_blocking and self.after.indicates_blocking

    @property
    def newly_unblocked(self) -> bool:
        return self.before.indicates_blocking and not self.after.indicates_blocking


class LongitudinalCampaign:
    """Runs ``technique_factory()`` once per epoch and tracks transitions.

    The factory must return a *fresh* technique each call (techniques are
    single-shot); the campaign owns the cadence.
    """

    def __init__(
        self,
        sim,
        technique_factory: Callable[[], MeasurementTechnique],
        interval: float = DAY,
        epochs: int = 7,
        settle_time: float = 120.0,
    ) -> None:
        if epochs < 1:
            raise ValueError("need at least one epoch")
        self.sim = sim
        self.technique_factory = technique_factory
        self.interval = interval
        self.epochs_planned = epochs
        self.settle_time = settle_time
        self.epochs: List[Epoch] = []

    def start(self) -> None:
        """Schedule every epoch; run the simulator past the last one."""
        for index in range(self.epochs_planned):
            self.sim.at(index * self.interval, lambda i=index: self._run_epoch(i))

    def _run_epoch(self, index: int) -> None:
        technique = self.technique_factory()
        epoch = Epoch(index=index, started_at=self.sim.now)
        self.epochs.append(epoch)
        technique.start()
        # Harvest after the technique has had time to finish its traffic.
        self.sim.at(self.settle_time, lambda: self._harvest(epoch, technique))

    def _harvest(self, epoch: Epoch, technique: MeasurementTechnique) -> None:
        for result in technique.results:
            epoch.verdicts[result.target] = result.verdict

    # -- analysis -----------------------------------------------------------------

    def transitions(self) -> List[Transition]:
        """Verdict changes between consecutive epochs."""
        changes: List[Transition] = []
        ordered = sorted(self.epochs, key=lambda e: e.index)
        for previous, current in zip(ordered, ordered[1:]):
            for target, verdict in current.verdicts.items():
                before = previous.verdicts.get(target)
                if before is not None and before is not verdict:
                    changes.append(Transition(
                        epoch=current.index, target=target,
                        before=before, after=verdict,
                    ))
        return changes

    def timeline(self, target: str) -> List[Optional[Verdict]]:
        """Per-epoch verdicts for one target (None = not measured)."""
        ordered = sorted(self.epochs, key=lambda e: e.index)
        return [epoch.verdicts.get(target) for epoch in ordered]

    def weather_report(self) -> str:
        """Render the verdict timeline as a compact text table."""
        from ..analysis.report import render_table

        targets = sorted({t for e in self.epochs for t in e.verdicts})
        ordered = sorted(self.epochs, key=lambda e: e.index)
        rows = []
        for target in targets:
            row = [target]
            for epoch in ordered:
                verdict = epoch.verdicts.get(target)
                if verdict is None:
                    row.append("-")
                else:
                    row.append("BLOCKED" if verdict.indicates_blocking else "open")
            rows.append(row)
        headers = ["target"] + [f"d{e.index}" for e in ordered]
        return render_table(headers, rows, title="censorship weather")
