"""Residual-blocking (flow-kill penalty) measurement.

After the GFC resets a flow for a keyword, it keeps punishing the same
endpoint pair for a window (~90 s in the classic measurements — Clayton et
al. probed this by retrying the connection until it worked again).  This
technique reproduces that experiment: trigger the censor once, then probe
the *same 4-tuple* at intervals until a SYN/ACK gets through; the elapsed
time is the measured penalty.
"""

from __future__ import annotations

from typing import Optional

from ..packets import ACK, IPPacket, PSH, SYN, TCPSegment
from .measurement import MeasurementContext, MeasurementTechnique
from .results import MeasurementResult, Verdict

__all__ = ["ResidualBlockingMeasurement"]


class ResidualBlockingMeasurement(MeasurementTechnique):
    """Measures how long the censor's per-flow penalty lasts."""

    name = "residual-blocking"

    def __init__(
        self,
        ctx: MeasurementContext,
        target_ip: str,
        port: int = 80,
        trigger_keyword: str = "falun",
        probe_interval: float = 1.0,
        max_wait: float = 300.0,
    ) -> None:
        super().__init__(ctx)
        self.target_ip = target_ip
        self.port = port
        self.trigger_keyword = trigger_keyword
        self.probe_interval = probe_interval
        self.max_wait = max_wait
        self._sport: Optional[int] = None
        self._triggered_at: Optional[float] = None
        self._recovered_at: Optional[float] = None
        self._trigger_reset_seen = False

    def start(self) -> None:
        stack = self.ctx.client.stack
        assert stack is not None
        # Raw-socket style: suppress the kernel's automatic RSTs so our
        # hand-crafted flow state survives (what real probing tools do).
        stack.closed_port_rst = False
        stack.add_sniffer(self._sniff)
        self._sport = stack.ephemeral_port()
        self._open_trigger_flow()

    # -- stage 1: trigger the censor -------------------------------------------

    def _open_trigger_flow(self) -> None:
        isn = self.ctx.sim.rng.randrange(1, 2**31)
        self._client_isn = isn
        self._send(TCPSegment(sport=self._sport, dport=self.port, seq=isn, flags=SYN))

    def _sniff(self, packet: IPPacket) -> None:
        segment = packet.tcp
        if (
            segment is None
            or packet.src != self.target_ip
            or segment.dport != self._sport
        ):
            return
        if segment.is_synack and self._triggered_at is None:
            # Handshake completing: ACK then send the trigger keyword.
            ack = segment.seq + 1
            self._send(TCPSegment(sport=self._sport, dport=self.port,
                                  seq=self._client_isn + 1, ack=ack, flags=ACK))
            request = f"GET /{self.trigger_keyword} HTTP/1.1\r\nHost: t\r\n\r\n"
            self._send(TCPSegment(sport=self._sport, dport=self.port,
                                  seq=self._client_isn + 1, ack=ack,
                                  flags=PSH | ACK, payload=request.encode()))
            self._triggered_at = self.ctx.sim.now
            self.ctx.sim.at(self.probe_interval, self._probe)
            return
        if segment.is_rst and self._triggered_at is not None:
            self._trigger_reset_seen = True
            return
        if segment.is_synack and self._triggered_at is not None:
            # A probe SYN got through: the penalty has expired.
            if self._recovered_at is None:
                self._recovered_at = self.ctx.sim.now
                self._conclude()

    # -- stage 2: probe the penalized 4-tuple ----------------------------------

    def _probe(self) -> None:
        if self._recovered_at is not None:
            return
        elapsed = self.ctx.sim.now - (self._triggered_at or 0.0)
        if elapsed > self.max_wait:
            self._emit(
                MeasurementResult(
                    technique=self.name,
                    target=f"{self.target_ip}:{self.port}",
                    verdict=Verdict.BLOCKED_TIMEOUT,
                    detail=f"penalty still active after {self.max_wait:.0f}s",
                    evidence={"triggered": self._trigger_reset_seen},
                )
            )
            return
        self._send(TCPSegment(sport=self._sport, dport=self.port,
                              seq=self.ctx.sim.rng.randrange(1, 2**31), flags=SYN))
        self.ctx.sim.at(self.probe_interval, self._probe)

    def _conclude(self) -> None:
        measured = self._recovered_at - self._triggered_at
        self._emit(
            MeasurementResult(
                technique=self.name,
                target=f"{self.target_ip}:{self.port}",
                verdict=Verdict.BLOCKED_RST if self._trigger_reset_seen else Verdict.INCONCLUSIVE,
                detail=f"penalty window measured at {measured:.1f}s",
                evidence={
                    "penalty_seconds": measured,
                    "trigger_reset_seen": self._trigger_reset_seen,
                },
            )
        )

    def _send(self, segment: TCPSegment) -> None:
        self.ctx.client.send_raw(
            IPPacket(src=self.ctx.client.ip, dst=self.target_ip, payload=segment)
        )

    @property
    def done(self) -> bool:
        return bool(self.results)
