"""Measurement campaign scheduling.

A campaign runs several techniques from one vantage with pacing — either
slow (to stay under rate thresholds) or deliberately bursty (to *look*
like the botnet behaviour a technique mimics).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .measurement import MeasurementTechnique
from .results import MeasurementResult

__all__ = ["MeasurementCampaign"]


@dataclass
class _Entry:
    technique: MeasurementTechnique
    start_at: float
    started: bool = False


class MeasurementCampaign:
    """Schedules techniques at offsets and aggregates their results."""

    def __init__(self, sim) -> None:
        self.sim = sim
        self._entries: List[_Entry] = []
        self._started = False
        self._start_time = 0.0

    @property
    def started(self) -> bool:
        return self._started

    def add(self, technique: MeasurementTechnique, at: float = 0.0) -> "MeasurementCampaign":
        """Register ``technique`` to start ``at`` seconds from campaign start.

        Adding to a campaign that has already started schedules the
        technique immediately: it fires at ``start_time + at``, or right
        away if that moment has already passed.  (Previously a post-start
        ``add`` was silently never scheduled, so ``done`` stayed false and
        ``run_until_done`` burned its full ``max_duration``.)
        """
        entry = _Entry(technique=technique, start_at=at)
        self._entries.append(entry)
        if self._started:
            self._schedule(entry)
        return self

    def _schedule(self, entry: _Entry) -> None:
        def fire() -> None:
            entry.started = True
            entry.technique.start()

        delay = max(0.0, self._start_time + entry.start_at - self.sim.now)
        self.sim.at(delay, fire)

    def start(self) -> None:
        """Schedule every registered technique (idempotent)."""
        if self._started:
            return
        self._started = True
        self._start_time = self.sim.now
        for entry in self._entries:
            self._schedule(entry)

    def run(self, duration: float) -> None:
        """Start the campaign and advance the simulation."""
        self.start()
        self.sim.run(until=self.sim.now + duration)

    def run_until_done(
        self, max_duration: float = 600.0, check_interval: float = 1.0
    ) -> bool:
        """Run until every technique reports done (or ``max_duration``).

        Retrying policies make completion times loss-dependent, so a fixed
        ``run(duration)`` either wastes simulated time or cuts retries
        short; this advances in ``check_interval`` slices and stops at the
        first slice boundary where the campaign is done.  Returns whether
        the campaign completed.  An empty campaign is vacuously done and
        returns ``True`` without advancing simulated time.
        """
        self.start()
        if self.done:
            return True
        deadline = self.sim.now + max_duration
        while self.sim.now < deadline:
            self.sim.run(until=min(self.sim.now + check_interval, deadline))
            if self.done:
                return True
        return self.done

    @property
    def techniques(self) -> List[MeasurementTechnique]:
        return [entry.technique for entry in self._entries]

    def all_results(self) -> List[MeasurementResult]:
        results: List[MeasurementResult] = []
        for entry in self._entries:
            results.extend(entry.technique.results)
        return results

    def results_by_technique(self) -> Dict[str, List[MeasurementResult]]:
        grouped: Dict[str, List[MeasurementResult]] = {}
        for entry in self._entries:
            grouped.setdefault(entry.technique.name, []).extend(entry.technique.results)
        return grouped

    @property
    def done(self) -> bool:
        """True once every registered technique has started and finished.

        An empty campaign is vacuously done — there is nothing to wait
        for, and ``run_until_done`` returns immediately rather than
        burning ``max_duration`` of simulated time.
        """
        return all(entry.started and entry.technique.done for entry in self._entries)
