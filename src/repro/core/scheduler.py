"""Measurement campaign scheduling.

A campaign runs several techniques from one vantage with pacing — either
slow (to stay under rate thresholds) or deliberately bursty (to *look*
like the botnet behaviour a technique mimics).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .measurement import MeasurementTechnique
from .results import MeasurementResult

__all__ = ["MeasurementCampaign"]


@dataclass
class _Entry:
    technique: MeasurementTechnique
    start_at: float
    started: bool = False


class MeasurementCampaign:
    """Schedules techniques at offsets and aggregates their results."""

    def __init__(self, sim) -> None:
        self.sim = sim
        self._entries: List[_Entry] = []

    def add(self, technique: MeasurementTechnique, at: float = 0.0) -> "MeasurementCampaign":
        """Register ``technique`` to start ``at`` seconds from campaign start."""
        self._entries.append(_Entry(technique=technique, start_at=at))
        return self

    def start(self) -> None:
        """Schedule every registered technique."""
        for entry in self._entries:
            def fire(e=entry) -> None:
                e.started = True
                e.technique.start()

            self.sim.at(entry.start_at, fire)

    def run(self, duration: float) -> None:
        """Start the campaign and advance the simulation."""
        self.start()
        self.sim.run(until=self.sim.now + duration)

    def run_until_done(
        self, max_duration: float = 600.0, check_interval: float = 1.0
    ) -> bool:
        """Run until every technique reports done (or ``max_duration``).

        Retrying policies make completion times loss-dependent, so a fixed
        ``run(duration)`` either wastes simulated time or cuts retries
        short; this advances in ``check_interval`` slices and stops at the
        first slice boundary where the campaign is done.  Returns whether
        the campaign completed.
        """
        self.start()
        deadline = self.sim.now + max_duration
        while self.sim.now < deadline:
            self.sim.run(until=min(self.sim.now + check_interval, deadline))
            if self.done:
                return True
        return self.done

    @property
    def techniques(self) -> List[MeasurementTechnique]:
        return [entry.technique for entry in self._entries]

    def all_results(self) -> List[MeasurementResult]:
        results: List[MeasurementResult] = []
        for entry in self._entries:
            results.extend(entry.technique.results)
        return results

    def results_by_technique(self) -> Dict[str, List[MeasurementResult]]:
        grouped: Dict[str, List[MeasurementResult]] = {}
        for entry in self._entries:
            grouped.setdefault(entry.technique.name, []).extend(entry.technique.results)
        return grouped

    @property
    def done(self) -> bool:
        return all(entry.started and entry.technique.done for entry in self._entries)
