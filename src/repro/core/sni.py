"""TLS/SNI reachability measurement.

HTTPS moved censorship to the one plaintext field left: the SNI in the
ClientHello.  This technique resolves each domain, opens a TLS connection
to the resolved address, and sends a ClientHello naming the domain; an
injected RST between ClientHello and ServerHello is the SNI-filtering
signature.  An optional *ESNI-style control* re-probes the same address
with an innocuous server name — when the control succeeds where the real
name failed, the block is keyed to the name, not the address.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..netsim.dnssrv import DNSResult, resolve
from ..netsim.tlssrv import TLSResult, tls_probe
from .measurement import MeasurementContext, MeasurementTechnique
from .overt import interpret_dns
from .results import MeasurementResult, Verdict

__all__ = ["TLSReachabilityMeasurement"]


class TLSReachabilityMeasurement(MeasurementTechnique):
    """SNI-filtering detection with a decoy-name control probe."""

    name = "tls-sni"

    def __init__(
        self,
        ctx: MeasurementContext,
        domains: Sequence[str],
        control_name: str = "decoy.example",
        run_control: bool = True,
    ) -> None:
        super().__init__(ctx)
        self.domains = list(domains)
        self.control_name = control_name
        self.run_control = run_control

    def start(self) -> None:
        for domain in self.domains:
            resolve(
                self.ctx.client,
                self.ctx.resolver_ip,
                domain,
                callback=lambda res, d=domain: self._after_dns(d, res),
            )

    def _after_dns(self, domain: str, res: DNSResult) -> None:
        verdict, detail = interpret_dns(self.ctx, domain, res)
        if verdict is not Verdict.ACCESSIBLE:
            self._emit(
                MeasurementResult(
                    technique=self.name,
                    target=domain,
                    verdict=verdict,
                    detail=f"dns stage: {detail}",
                    evidence={"stage": "dns"},
                )
            )
            return
        address = res.addresses[0]
        tls_probe(
            self.ctx.client,
            address,
            domain,
            callback=lambda tls_res, d=domain, a=address: self._after_tls(d, a, tls_res),
        )

    def _after_tls(self, domain: str, address: str, res: TLSResult) -> None:
        if res.ok:
            self._emit(
                MeasurementResult(
                    technique=self.name,
                    target=domain,
                    verdict=Verdict.ACCESSIBLE,
                    detail="ServerHello received",
                    evidence={"stage": "tls"},
                )
            )
            return
        if not self.run_control:
            self._conclude_blocked(domain, res, control=None)
            return
        tls_probe(
            self.ctx.client,
            address,
            self.control_name,
            callback=lambda control_res, d=domain, r=res: self._conclude_blocked(
                d, r, control_res
            ),
        )

    def _conclude_blocked(
        self, domain: str, res: TLSResult, control: Optional[TLSResult]
    ) -> None:
        if res.status == "reset":
            verdict = Verdict.BLOCKED_RST
            detail = "ClientHello drew a reset"
        elif res.status == "timeout":
            verdict = Verdict.BLOCKED_TIMEOUT
            detail = "TLS handshake never completed"
        else:
            verdict = Verdict.INCONCLUSIVE
            detail = f"tls status {res.status}"
        evidence: Dict[str, object] = {"stage": "tls", "status": res.status}
        if control is not None:
            evidence["control_status"] = control.status
            if control.ok:
                detail += "; decoy SNI to same address succeeded (name-keyed block)"
        self._emit(
            MeasurementResult(
                technique=self.name,
                target=domain,
                verdict=verdict,
                detail=detail,
                evidence=evidence,
            )
        )

    @property
    def done(self) -> bool:
        return len(self.results) >= len(self.domains)
