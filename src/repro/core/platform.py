"""A client measurement platform (the OONI/Centinel role).

The paper assumes "a client-based measurement platform with the ability to
construct raw packets (e.g., OONI, Centinel)" (§1).  This module is that
platform: it runs a standard *deck* of tests — DNS consistency, HTTP
reachability, mail-path reachability, TCP reachability — choosing between
overt and stealthy implementations of each test according to a configured
risk posture, and emits a single JSON campaign document.

Risk postures:

- ``overt`` — the traditional platform: direct queries, maximum clarity,
  fully attributable.
- ``stealthy`` — the paper's §3 techniques: malware-mimicking traffic the
  MVR discards.
- ``paranoid`` — §3 plus §4: stealthy techniques *and* spoofed cover
  crowds, for networks where even diluted attribution matters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .ddos import DDoSMeasurement
from .evaluation import Environment
from .measurement import MeasurementTechnique
from .overt import OvertDNSMeasurement, OvertHTTPMeasurement
from .results import MeasurementResult
from .risk import RiskAssessment, assess_risk
from .scanning import ScanMeasurement, ScanTarget
from .spam import SpamMeasurement
from .spoofing_stateless import SpoofedSYNReachability, StatelessSpoofedDNSMeasurement

__all__ = ["DeckReport", "MeasurementPlatform", "RISK_POSTURES"]

RISK_POSTURES = ("overt", "stealthy", "paranoid")


@dataclass
class DeckReport:
    """Everything one deck run produced."""

    posture: str
    domains: List[str]
    results_by_test: Dict[str, List[MeasurementResult]]
    risk: Optional[RiskAssessment] = None

    def blocked_domains(self) -> List[str]:
        """Domains any test judged blocked."""
        blocked = set()
        for results in self.results_by_test.values():
            for result in results:
                if result.blocked:
                    for domain in self.domains:
                        if domain in result.target:
                            blocked.add(domain)
        return sorted(blocked)

    def to_json(self) -> str:
        """The OONI-style campaign document."""
        # Imported here: repro.analysis.export also imports repro.core, so
        # a module-level import would be circular.
        from ..analysis.export import campaign_document

        return campaign_document(
            self.results_by_test,
            risks=[self.risk] if self.risk is not None else [],
            metadata={"posture": self.posture, "domains": self.domains},
        )


class MeasurementPlatform:
    """Runs test decks from a vantage point at a chosen risk posture."""

    def __init__(
        self,
        env: Environment,
        posture: str = "stealthy",
        cover_size: int = 11,
    ) -> None:
        if posture not in RISK_POSTURES:
            raise ValueError(
                f"unknown posture {posture!r}; expected one of {RISK_POSTURES}"
            )
        self.env = env
        self.posture = posture
        self.cover_size = cover_size
        self._techniques: Dict[str, MeasurementTechnique] = {}

    # -- deck construction --------------------------------------------------------

    def _dns_test(self, domains: List[str]) -> MeasurementTechnique:
        if self.posture == "paranoid":
            return StatelessSpoofedDNSMeasurement(
                self.env.ctx, domains, self.env.cover_ips(self.cover_size)
            )
        if self.posture == "stealthy":
            # The spam method IS the stealthy DNS test (MX + A lookups).
            return SpamMeasurement(self.env.ctx, domains, deliver_message=True)
        return OvertDNSMeasurement(self.env.ctx, domains)

    def _http_test(self, domains: List[str]) -> MeasurementTechnique:
        if self.posture in ("stealthy", "paranoid"):
            return DDoSMeasurement(self.env.ctx, domains, requests_per_target=25)
        return OvertHTTPMeasurement(self.env.ctx, domains)

    def _tcp_test(self, domains: List[str]) -> MeasurementTechnique:
        targets = []
        for domain in domains:
            address = self.env.ctx.expected_addresses.get(domain)
            if address is not None:
                targets.append((address, 80, domain))
        if self.posture == "paranoid":
            return SpoofedSYNReachability(
                self.env.ctx,
                [(ip, port) for ip, port, _d in targets],
                self.env.cover_ips(self.cover_size),
            )
        return ScanMeasurement(
            self.env.ctx,
            [ScanTarget(ip, [port], label) for ip, port, label in targets],
            port_count=60 if self.posture != "overt" else 1,
        )

    # -- execution -------------------------------------------------------------------

    def run_deck(self, domains: List[str], duration: float = 120.0) -> DeckReport:
        """Run the full deck over ``domains`` and return the report."""
        self._techniques = {
            "dns_consistency": self._dns_test(domains),
            "http_reachability": self._http_test(domains),
            "tcp_reachability": self._tcp_test(domains),
        }
        for technique in self._techniques.values():
            technique.start()
        self.env.run(duration=duration)

        risk = assess_risk(
            self.env.surveillance,
            technique=f"deck[{self.posture}]",
            measurer_user=self.env.topo.measurement_client.user or "measurer",
            measurer_ip=self.env.topo.measurement_client.ip,
            now=self.env.sim.now,
        )
        return DeckReport(
            posture=self.posture,
            domains=list(domains),
            results_by_test={
                name: list(technique.results)
                for name, technique in self._techniques.items()
            },
            risk=risk,
        )
