"""The controlled evaluation harness (paper Section 3.2, Figure 1).

Builds a complete environment — censored AS, censor tap, surveillance tap,
servers — runs a technique with the censor on and off, and scores the two
criteria the paper defines:

- **accuracy**: the measurement detects blocking exactly when the censor
  enforces it (controlled by the policy toggle);
- **evasion**: the surveillance MVR retains no user-attributed alert for
  the measurer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..censor import CensorModel, CensorshipPolicy, build_censor
from ..netsim.topology import CensoredASTopology, build_censored_as
from ..surveillance import AttributionEngine, SurveillanceSystem
from ..traffic.mix import PopulationMix, install_standard_servers
from .measurement import MeasurementContext, MeasurementTechnique
from .results import MeasurementResult, Verdict
from .risk import RiskAssessment, assess_risk
from .spoofing_stateful import MimicryServer

__all__ = [
    "Environment",
    "build_environment",
    "RunRecord",
    "EvaluationOutcome",
    "evaluate_technique",
    "technique_factory",
    "TECHNIQUES",
    "BLOCKED_TARGETS",
    "CONTROL_TARGETS",
]

#: Default target split used throughout the benchmarks.
BLOCKED_TARGETS = ["twitter.com", "youtube.com"]
CONTROL_TARGETS = ["example.org", "weather.gov"]

#: Full lists for campaign-scale experiments (volume thresholds matter).
from ..rules.rulesets import BLOCKED_DOMAINS as BLOCKED_TARGETS_FULL  # noqa: E402

CONTROL_TARGETS_FULL = ["example.org", "weather.gov", "wikipedia.org", "archive.org"]


@dataclass
class Environment:
    """A fully wired evaluation environment."""

    topo: CensoredASTopology
    censor: CensorModel
    surveillance: SurveillanceSystem
    servers: Dict[str, object]
    ctx: MeasurementContext
    mimicry_server: MimicryServer
    population_mix: Optional[PopulationMix] = None
    #: The in-AS caching resolver, when built with ``resolver_in_as=True``.
    local_resolver: Optional[object] = None
    #: Tiered-fidelity synthetic population (``synthetic_users > 0``).
    #: Built but not started — the caller owns the generation window.
    population: Optional[object] = None

    @property
    def sim(self):
        return self.topo.sim

    def run(self, duration: Optional[float] = None) -> int:
        return self.topo.run(duration)

    def cover_ips(self, count: Optional[int] = None) -> List[str]:
        """Addresses of population hosts usable as spoofed cover."""
        hosts = self.topo.population if count is None else self.topo.population[:count]
        return [host.ip for host in hosts]


def build_environment(
    censored: bool = True,
    seed: int = 0,
    population_size: int = 20,
    with_population_traffic: bool = False,
    population_duration: float = 30.0,
    policy: Optional[CensorshipPolicy] = None,
    sav_filter=None,
    resolver_in_as: bool = False,
    censor: str = "gfc",
    censor_params: Optional[Dict[str, object]] = None,
    synthetic_users: int = 0,
    fidelity: str = "hybrid",
) -> Environment:
    """Stand up the full reference environment.

    ``censored`` toggles the censor policy (the evaluation's control knob);
    an explicit ``policy`` overrides the toggle.  ``censor`` names the
    censor-model family to attach (see
    :func:`repro.censor.build_censor`; ``censor_params`` go to its
    constructor) — a disabled policy makes every family inert, so the
    clean condition is family-independent by contract.  ``resolver_in_as``
    interposes a caching recursive resolver inside the AS (the common ISP
    deployment): client DNS then never crosses the border, and poisoned
    upstream answers are cached for everyone.
    """
    topo = build_censored_as(seed=seed, population_size=population_size, sav_filter=sav_filter)
    if policy is None:
        policy = CensorshipPolicy() if censored else CensorshipPolicy.disabled()
    censor_tap = build_censor(censor, policy=policy, **(censor_params or {}))
    surveillance = SurveillanceSystem(
        attribution=AttributionEngine.from_network(topo.network)
    )
    # Tap order matches Figure 1: both IDS instances on the same box; the
    # MVR is attached first so it observes traffic even when the censor
    # subsequently drops it.
    topo.border_router.add_tap(surveillance)
    topo.border_router.add_tap(censor_tap)

    servers = install_standard_servers(topo)
    mimicry_server = MimicryServer(
        topo.measurement_server,
        port=80,
        reply_ttl=topo.reply_ttl_dying_inside(),
    )

    resolver_ip = topo.dns_server.ip
    local_resolver = None
    if resolver_in_as:
        from ..netsim.node import Host
        from ..netsim.resolver import CachingResolver

        resolver_host = topo.network.add(Host("asresolver", "10.1.250.53"))
        topo.network.connect(resolver_host, topo.internal_router)
        local_resolver = CachingResolver(resolver_host, upstream_ip=topo.dns_server.ip)
        resolver_ip = resolver_host.ip

    ctx = MeasurementContext(
        client=topo.measurement_client,
        resolver_ip=resolver_ip,
        expected_addresses=dict(topo.domains),
    )

    mix = None
    if with_population_traffic:
        mix = PopulationMix(topo)
        mix.start(until=population_duration)

    # The tiered-fidelity population attaches after the taps, so its
    # tap-reachability analysis sees the final middlebox placement.  It is
    # built but not started: callers own the generation window (the sweep
    # worker aligns it with the point's run duration).
    population = None
    if synthetic_users:
        from ..traffic.population import PopulationTraffic

        population = PopulationTraffic(topo, users=synthetic_users, fidelity=fidelity)

    return Environment(
        topo=topo,
        censor=censor_tap,
        surveillance=surveillance,
        servers=servers,
        ctx=ctx,
        mimicry_server=mimicry_server,
        population_mix=mix,
        local_resolver=local_resolver,
        population=population,
    )


@dataclass
class RunRecord:
    """One technique execution in one environment condition."""

    censored: bool
    results: List[MeasurementResult]
    risk: RiskAssessment
    censor_events: int

    def verdict_for(self, target_substring: str) -> Optional[Verdict]:
        for result in self.results:
            if target_substring in result.target:
                return result.verdict
        return None


@dataclass
class EvaluationOutcome:
    """Accuracy and evasion scores for one technique (the E1 matrix row)."""

    technique: str
    censored_run: RunRecord
    control_run: RunRecord
    blocked_targets: List[str]
    control_targets: List[str]

    @property
    def accuracy(self) -> float:
        """Fraction of (target, condition) cells judged correctly."""
        correct = 0
        total = 0
        for target in self.blocked_targets:
            verdict = self.censored_run.verdict_for(target)
            total += 1
            correct += int(verdict is not None and verdict.indicates_blocking)
        for target in self.control_targets:
            verdict = self.censored_run.verdict_for(target)
            total += 1
            correct += int(verdict is Verdict.ACCESSIBLE)
        for target in self.blocked_targets + self.control_targets:
            verdict = self.control_run.verdict_for(target)
            total += 1
            correct += int(verdict is Verdict.ACCESSIBLE)
        return correct / total if total else 0.0

    @property
    def detects_censorship(self) -> bool:
        return all(
            (v := self.censored_run.verdict_for(t)) is not None and v.indicates_blocking
            for t in self.blocked_targets
        )

    @property
    def no_false_positives(self) -> bool:
        return all(
            self.control_run.verdict_for(t) is Verdict.ACCESSIBLE
            for t in self.blocked_targets + self.control_targets
        )

    @property
    def evades_surveillance(self) -> bool:
        """Evasion in both conditions (the MVR never attributes the user)."""
        return self.censored_run.risk.evaded and self.control_run.risk.evaded

    @property
    def successful(self) -> bool:
        """The paper's success criterion: accurate and evasive."""
        return self.detects_censorship and self.no_false_positives and self.evades_surveillance


TechniqueFactory = Callable[[Environment], MeasurementTechnique]

#: Technique names accepted by :func:`technique_factory` (and the CLI).
TECHNIQUES = (
    "overt-http",
    "overt-dns",
    "scan",
    "spam",
    "ddos",
    "spoofed-dns",
    "stateful",
)


def technique_factory(name: str, cover: int = 8) -> TechniqueFactory:
    """Build the ``factory(env) -> technique`` for a named technique.

    Shared by the CLI subcommands and the sweep runner so the two agree
    on what each technique name means.  ``cover`` is the number of
    population hosts used as spoofed cover where applicable.
    """
    from .ddos import DDoSMeasurement
    from .overt import OvertDNSMeasurement, OvertHTTPMeasurement
    from .scanning import ScanMeasurement, ScanTarget
    from .spam import SpamMeasurement
    from .spoofing_stateful import StatefulMimicryMeasurement
    from .spoofing_stateless import StatelessSpoofedDNSMeasurement

    full = list(BLOCKED_TARGETS_FULL) + CONTROL_TARGETS_FULL

    if name == "overt-http":
        return lambda env: OvertHTTPMeasurement(env.ctx, full)
    if name == "overt-dns":
        return lambda env: OvertDNSMeasurement(env.ctx, full)
    if name == "spam":
        return lambda env: SpamMeasurement(env.ctx, full)
    if name == "ddos":
        return lambda env: DDoSMeasurement(env.ctx, full[:4], requests_per_target=25)
    if name == "spoofed-dns":
        return lambda env: StatelessSpoofedDNSMeasurement(
            env.ctx, full, env.cover_ips(cover)
        )
    if name == "stateful":
        payloads = [b"GET /falun HTTP/1.1\r\nHost: probe\r\n\r\n"]
        return lambda env: StatefulMimicryMeasurement(
            env.ctx, env.mimicry_server, payloads, env.cover_ips(cover)
        )
    if name == "scan":
        def factory(env: Environment) -> MeasurementTechnique:
            env.censor.policy.blocked_ips.add(env.topo.blocked_web.ip)
            return ScanMeasurement(
                env.ctx,
                [ScanTarget(env.topo.blocked_web.ip, [80], "blocked-service"),
                 ScanTarget(env.topo.control_web.ip, [80], "control-service")],
                port_count=80,
            )
        return factory
    raise ValueError(f"unknown technique: {name}")


def _execute(
    factory: TechniqueFactory,
    censored: bool,
    seed: int,
    run_duration: float,
    with_population_traffic: bool,
    population_size: int,
) -> RunRecord:
    env = build_environment(
        censored=censored,
        seed=seed,
        population_size=population_size,
        with_population_traffic=with_population_traffic,
    )
    technique = factory(env)
    technique.start()
    env.run(duration=run_duration)
    risk = assess_risk(
        env.surveillance,
        technique=technique.name,
        measurer_user=env.topo.measurement_client.user or "measurer",
        measurer_ip=env.topo.measurement_client.ip,
        now=env.sim.now,
    )
    return RunRecord(
        censored=censored,
        results=list(technique.results),
        risk=risk,
        censor_events=len(env.censor.events),
    )


def evaluate_technique(
    factory: TechniqueFactory,
    technique_name: str,
    blocked_targets: Optional[List[str]] = None,
    control_targets: Optional[List[str]] = None,
    seed: int = 0,
    run_duration: float = 60.0,
    with_population_traffic: bool = False,
    population_size: int = 20,
) -> EvaluationOutcome:
    """Run ``factory``'s technique censor-on and censor-off and score it."""
    censored_run = _execute(
        factory, True, seed, run_duration, with_population_traffic, population_size
    )
    control_run = _execute(
        factory, False, seed, run_duration, with_population_traffic, population_size
    )
    return EvaluationOutcome(
        technique=technique_name,
        censored_run=censored_run,
        control_run=control_run,
        blocked_targets=list(blocked_targets or BLOCKED_TARGETS),
        control_targets=list(control_targets or CONTROL_TARGETS),
    )
