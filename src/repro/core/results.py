"""Measurement verdicts, result records, and verdict confidence.

A single failed probe does not mean censorship: on a lossy path it
usually means a lost packet.  Retrying techniques therefore aggregate
several attempt-level outcomes into one verdict plus a ``confidence``
(see :func:`aggregate_attempts`): ``blocked`` requires N *consistent*
failures, a single success proves reachability, and failures that also
hit the control probes collapse to ``inconclusive`` — the measured-loss
confound the paper's repeated-sampling designs exist to absorb.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Verdict",
    "MeasurementResult",
    "blocked_verdicts",
    "aggregate_attempts",
]


class Verdict(enum.Enum):
    """What a measurement concluded about a target."""

    ACCESSIBLE = "accessible"
    BLOCKED_RST = "blocked_rst"  # connection reset mid-transaction
    BLOCKED_TIMEOUT = "blocked_timeout"  # silent drop / null-route
    DNS_POISONED = "dns_poisoned"  # forged answer detected
    DNS_FAILURE = "dns_failure"  # NXDOMAIN/servfail/timeout on lookup
    HTTP_BLOCKPAGE = "http_blockpage"  # explicit censor block page
    INCONCLUSIVE = "inconclusive"

    @property
    def indicates_blocking(self) -> bool:
        return self in _BLOCKED


_BLOCKED = frozenset(
    {
        Verdict.BLOCKED_RST,
        Verdict.BLOCKED_TIMEOUT,
        Verdict.DNS_POISONED,
        Verdict.DNS_FAILURE,
        Verdict.HTTP_BLOCKPAGE,
    }
)


def blocked_verdicts() -> frozenset:
    """The set of verdicts that indicate censorship."""
    return _BLOCKED


@dataclass
class MeasurementResult:
    """One technique's conclusion about one target."""

    technique: str
    target: str  # domain, "ip:port", or URL — technique-specific
    verdict: Verdict
    time: float = 0.0
    detail: str = ""
    #: raw per-sample observations, technique-specific
    evidence: Dict[str, object] = field(default_factory=dict)
    samples: int = 1
    #: probe attempts that fed this verdict (1 = single-shot)
    attempts: int = 1
    #: how strongly the evidence supports the verdict, in [0, 1]
    confidence: float = 1.0

    @property
    def blocked(self) -> bool:
        return self.verdict.indicates_blocking

    def __str__(self) -> str:
        return f"[{self.technique}] {self.target}: {self.verdict.value} ({self.detail})"


def aggregate_attempts(
    outcomes: Sequence[Verdict],
    min_consistent_failures: int = 2,
    control_outcomes: Optional[Sequence[Verdict]] = None,
) -> Tuple[Verdict, float]:
    """Fold attempt-level verdicts into one verdict plus a confidence.

    Rules, in priority order:

    - any successful attempt proves the path works: ``ACCESSIBLE``, with
      confidence equal to the success fraction (a 4/5 success run under
      loss is weaker evidence than 5/5);
    - all attempts failed but the *control* probes (known-open targets
      measured alongside) also failed: the path itself is broken or
      lossy — ``INCONCLUSIVE``;
    - all attempts failed consistently and there are at least
      ``min_consistent_failures`` of them: the dominant blocking verdict
      stands, confidence = share of attempts agreeing with it;
    - all attempts failed but there are too few to call: ``INCONCLUSIVE``.
    """
    if not outcomes:
        return Verdict.INCONCLUSIVE, 0.0
    successes = sum(1 for verdict in outcomes if verdict is Verdict.ACCESSIBLE)
    if successes:
        return Verdict.ACCESSIBLE, successes / len(outcomes)
    failures = [verdict for verdict in outcomes if verdict.indicates_blocking]
    if control_outcomes:
        control_failures = sum(
            1 for verdict in control_outcomes if verdict.indicates_blocking
        )
        if control_failures * 2 >= len(control_outcomes):
            # The control targets are failing too: we are measuring the
            # path (loss, outage), not the censor.
            return Verdict.INCONCLUSIVE, 0.0
    if len(failures) < min_consistent_failures:
        return Verdict.INCONCLUSIVE, len(failures) / min_consistent_failures
    histogram: Dict[Verdict, int] = {}
    for verdict in failures:
        histogram[verdict] = histogram.get(verdict, 0) + 1
    dominant = max(histogram, key=lambda v: histogram[v])
    return dominant, histogram[dominant] / len(outcomes)


def summarize(results: List[MeasurementResult]) -> Dict[str, int]:
    """Verdict histogram over a result list."""
    histogram: Dict[str, int] = {}
    for result in results:
        histogram[result.verdict.value] = histogram.get(result.verdict.value, 0) + 1
    return histogram
