"""Measurement verdicts and result records."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["Verdict", "MeasurementResult", "blocked_verdicts"]


class Verdict(enum.Enum):
    """What a measurement concluded about a target."""

    ACCESSIBLE = "accessible"
    BLOCKED_RST = "blocked_rst"  # connection reset mid-transaction
    BLOCKED_TIMEOUT = "blocked_timeout"  # silent drop / null-route
    DNS_POISONED = "dns_poisoned"  # forged answer detected
    DNS_FAILURE = "dns_failure"  # NXDOMAIN/servfail/timeout on lookup
    HTTP_BLOCKPAGE = "http_blockpage"  # explicit censor block page
    INCONCLUSIVE = "inconclusive"

    @property
    def indicates_blocking(self) -> bool:
        return self in _BLOCKED


_BLOCKED = frozenset(
    {
        Verdict.BLOCKED_RST,
        Verdict.BLOCKED_TIMEOUT,
        Verdict.DNS_POISONED,
        Verdict.DNS_FAILURE,
        Verdict.HTTP_BLOCKPAGE,
    }
)


def blocked_verdicts() -> frozenset:
    """The set of verdicts that indicate censorship."""
    return _BLOCKED


@dataclass
class MeasurementResult:
    """One technique's conclusion about one target."""

    technique: str
    target: str  # domain, "ip:port", or URL — technique-specific
    verdict: Verdict
    time: float = 0.0
    detail: str = ""
    #: raw per-sample observations, technique-specific
    evidence: Dict[str, object] = field(default_factory=dict)
    samples: int = 1

    @property
    def blocked(self) -> bool:
        return self.verdict.indicates_blocking

    def __str__(self) -> str:
        return f"[{self.technique}] {self.target}: {self.verdict.value} ({self.detail})"


def summarize(results: List[MeasurementResult]) -> Dict[str, int]:
    """Verdict histogram over a result list."""
    histogram: Dict[str, int] = {}
    for result in results:
        histogram[result.verdict.value] = histogram.get(result.verdict.value, 0) + 1
    return histogram
