"""The paper's contribution: stealthy censorship-measurement techniques.

Section 3 (mimicking population traffic): :class:`ScanMeasurement`,
:class:`SpamMeasurement`, :class:`DDoSMeasurement`.  Section 4
(manipulating population traffic): :class:`StatelessSpoofedDNSMeasurement`,
:class:`SpoofedSYNReachability`, :class:`StatefulMimicryMeasurement`.
Baseline: :class:`OvertDNSMeasurement`, :class:`OvertHTTPMeasurement`.
The evaluation harness in :mod:`repro.core.evaluation` scores accuracy and
evasion exactly as the paper's controlled tests do.
"""

from .ddos import DDoSMeasurement
from .dupdetect import DuplicateResponseDetector, ResponsePair
from .evaluation import (
    BLOCKED_TARGETS,
    CONTROL_TARGETS,
    Environment,
    EvaluationOutcome,
    RunRecord,
    build_environment,
    evaluate_technique,
)
from .keywords import KeywordIsolator, KeywordProbeMeasurement
from .longitudinal import LongitudinalCampaign
from .measurement import MeasurementContext, MeasurementTechnique, RetryPolicy
from .overt import OvertDNSMeasurement, OvertHTTPMeasurement, interpret_dns
from .platform import DeckReport, MeasurementPlatform, RISK_POSTURES
from .residual import ResidualBlockingMeasurement
from .results import (
    MeasurementResult,
    Verdict,
    aggregate_attempts,
    blocked_verdicts,
    summarize,
)
from .risk import RiskAssessment, assess_risk, comparison_table
from .scanning import ScanMeasurement, ScanTarget, top_ports
from .scheduler import MeasurementCampaign
from .sni import TLSReachabilityMeasurement
from .spam import SpamMeasurement
from .spoofing_stateful import MimicryServer, StatefulMimicryMeasurement, shared_isn
from .spoofing_stateless import SpoofedSYNReachability, StatelessSpoofedDNSMeasurement

__all__ = [
    "BLOCKED_TARGETS",
    "CONTROL_TARGETS",
    "DDoSMeasurement",
    "DuplicateResponseDetector",
    "Environment",
    "KeywordIsolator",
    "KeywordProbeMeasurement",
    "LongitudinalCampaign",
    "EvaluationOutcome",
    "DeckReport",
    "MeasurementCampaign",
    "MeasurementContext",
    "MeasurementResult",
    "MeasurementTechnique",
    "MeasurementPlatform",
    "MimicryServer",
    "OvertDNSMeasurement",
    "OvertHTTPMeasurement",
    "RISK_POSTURES",
    "ResidualBlockingMeasurement",
    "ResponsePair",
    "RetryPolicy",
    "RiskAssessment",
    "RunRecord",
    "ScanMeasurement",
    "ScanTarget",
    "SpamMeasurement",
    "SpoofedSYNReachability",
    "StatefulMimicryMeasurement",
    "StatelessSpoofedDNSMeasurement",
    "TLSReachabilityMeasurement",
    "Verdict",
    "aggregate_attempts",
    "assess_risk",
    "blocked_verdicts",
    "build_environment",
    "comparison_table",
    "evaluate_technique",
    "interpret_dns",
    "shared_isn",
    "summarize",
    "top_ports",
]
