"""Keyword censorship probing and isolation (ConceptDoppler-style).

The paper's goal statement includes determining whether a *keyword* is
reachable.  This module probes candidate keywords by embedding them in
HTTP requests toward an innocuous server we can reach, and — when a
multi-term URL is blocked — isolates which term triggers the censor by
bisection, the technique ConceptDoppler [12] introduced for mapping GFC
keyword lists.

Probes ride inside a DDoS-style burst toward the same server, so to the
MVR the whole campaign is one more bot flooding a target.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..netsim.websrv import HTTPResult, http_get
from .measurement import MeasurementContext, MeasurementTechnique
from .results import MeasurementResult, Verdict

__all__ = ["KeywordProbeMeasurement", "KeywordIsolator"]


class KeywordProbeMeasurement(MeasurementTechnique):
    """Tests each candidate keyword with a probe request.

    A keyword is *censored* when a request carrying it fails (reset or
    timeout) while the control probe to the same server succeeds —
    implicating the keyword, not the path.
    """

    name = "keyword-probe"

    def __init__(
        self,
        ctx: MeasurementContext,
        keywords: Sequence[str],
        target_ip: str,
        hostname: str = "probe-target.example",
        probe_interval: float = 0.2,
        control_token: str = "innocuous",
    ) -> None:
        super().__init__(ctx)
        self.keywords = list(keywords)
        self.target_ip = target_ip
        self.hostname = hostname
        self.probe_interval = probe_interval
        self.control_token = control_token
        self._control_ok: Optional[bool] = None

    def start(self) -> None:
        # Control first: if the path itself is broken, keyword verdicts
        # would be meaningless.
        http_get(
            self.ctx.client,
            self.target_ip,
            self.hostname,
            f"/search?q={self.control_token}",
            callback=self._control_done,
        )

    def _control_done(self, res: HTTPResult) -> None:
        self._control_ok = res.ok
        if not res.ok:
            for keyword in self.keywords:
                self._emit(
                    MeasurementResult(
                        technique=self.name,
                        target=keyword,
                        verdict=Verdict.INCONCLUSIVE,
                        detail=f"control probe failed ({res.status}); path unusable",
                    )
                )
            return
        for index, keyword in enumerate(self.keywords):
            self.ctx.sim.at(
                index * self.probe_interval,
                lambda kw=keyword: self._probe(kw),
            )

    def _probe(self, keyword: str) -> None:
        http_get(
            self.ctx.client,
            self.target_ip,
            self.hostname,
            f"/search?q={keyword}",
            callback=lambda res, kw=keyword: self._conclude(kw, res),
        )

    def _conclude(self, keyword: str, res: HTTPResult) -> None:
        if res.ok:
            verdict, detail = Verdict.ACCESSIBLE, "probe completed"
        elif res.status == "reset":
            verdict, detail = Verdict.BLOCKED_RST, "probe reset mid-flight"
        elif res.status == "timeout":
            verdict, detail = Verdict.BLOCKED_TIMEOUT, "probe never completed"
        else:
            verdict, detail = Verdict.INCONCLUSIVE, f"probe status {res.status}"
        self._emit(
            MeasurementResult(
                technique=self.name, target=keyword, verdict=verdict, detail=detail
            )
        )

    @property
    def done(self) -> bool:
        return len(self.results) >= len(self.keywords)

    def censored_keywords(self) -> List[str]:
        return [r.target for r in self.results if r.blocked]


class KeywordIsolator:
    """Bisects a multi-term string to the minimal censored term.

    Given terms ``[a, b, c, d]`` whose combination is blocked, recursively
    probes halves until single offending terms remain.  Each probe is one
    HTTP request, so isolating one term among N costs O(log N) probes.

    Usage::

        isolator = KeywordIsolator(ctx, target_ip)
        isolator.isolate(["weather", "falun", "news"], callback)
        env.run(...)
        # callback(["falun"])
    """

    def __init__(
        self,
        ctx: MeasurementContext,
        target_ip: str,
        hostname: str = "probe-target.example",
        max_probes: int = 64,
    ) -> None:
        self.ctx = ctx
        self.target_ip = target_ip
        self.hostname = hostname
        self.max_probes = max_probes
        self.probes_sent = 0

    def isolate(self, terms: Sequence[str], callback) -> None:
        """Find every censored term in ``terms``; deliver a sorted list."""
        culprits: List[str] = []
        pending = {"count": 0}

        def explore(segment: List[str]) -> None:
            pending["count"] += 1
            self._probe_terms(
                segment,
                lambda blocked, seg=segment: handle(seg, blocked),
            )

        def handle(segment: List[str], blocked: bool) -> None:
            pending["count"] -= 1
            if blocked:
                if len(segment) == 1:
                    culprits.append(segment[0])
                else:
                    middle = len(segment) // 2
                    explore(segment[:middle])
                    explore(segment[middle:])
            if pending["count"] == 0:
                callback(sorted(set(culprits)))

        explore(list(terms))

    def _probe_terms(self, terms: List[str], conclude) -> None:
        if self.probes_sent >= self.max_probes:
            conclude(False)
            return
        self.probes_sent += 1
        query = "+".join(terms)
        http_get(
            self.ctx.client,
            self.target_ip,
            self.hostname,
            f"/search?q={query}",
            callback=lambda res: conclude(not res.ok),
        )
