"""Method #3 — DDoS-cloaked DNS/IP/HTTP censorship measurement.

From the paper (Section 3.1): mimic a single source of an HTTP DDoS attack.
DDoS floods consume little per-host bandwidth, so a burst of repeated
requests observed near the attacker looks like one bot of a large attack;
the MVR discards it aggressively because flood traffic differs sharply
from user traffic.  Each repeated request doubles as a measurement sample,
which lets the technique characterize *how* content is censored (reset vs.
drop vs. block page) with per-sample statistics.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Optional, Sequence

from ..netsim.dnssrv import DNSResult, resolve
from ..netsim.websrv import HTTPResult, http_get
from .measurement import MeasurementContext, MeasurementTechnique, RetryPolicy
from .overt import interpret_dns
from .results import MeasurementResult, Verdict

__all__ = ["DDoSMeasurement"]


class DDoSMeasurement(MeasurementTechnique):
    """A burst of HTTP requests against each target domain.

    DNS-stage timeouts retry with the policy's backoff (a bot re-resolving
    is in character).  The HTTP burst is its own repeated-sampling design:
    verdict confidence is the fraction of samples agreeing, and a
    ``blocked_fraction`` within ``inconclusive_margin`` of the threshold
    is reported ``inconclusive`` rather than force-classified.
    """

    name = "ddos"

    def __init__(
        self,
        ctx: MeasurementContext,
        domains: Sequence[str],
        requests_per_target: int = 25,
        burst_interval: float = 0.05,
        blocked_fraction_threshold: float = 0.5,
        dns_retries: int = 2,
        inconclusive_margin: float = 0.0,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        super().__init__(ctx)
        self.domains = list(domains)
        self.requests_per_target = requests_per_target
        self.burst_interval = burst_interval
        self.blocked_fraction_threshold = blocked_fraction_threshold
        self.retry_policy = retry_policy or ctx.retry_policy
        #: Repeated sampling is the method's whole idea; that extends to
        #: the DNS stage so a single lost datagram cannot flip the verdict.
        #: A retrying policy overrides this legacy knob.
        self.dns_retries = (
            self.retry_policy.max_attempts - 1
            if self.retry_policy.retries_enabled
            else dns_retries
        )
        self.inconclusive_margin = inconclusive_margin
        self._sample_outcomes: Dict[str, Counter] = {}

    def start(self) -> None:
        for domain in self.domains:
            self._resolve(domain, attempts_left=self.dns_retries)

    def _resolve(self, domain: str, attempts_left: int) -> None:
        self._trace_attempt(domain)
        resolve(
            self.ctx.client,
            self.ctx.resolver_ip,
            domain,
            callback=lambda res, d=domain, a=attempts_left: self._after_dns(d, res, a),
        )

    def _after_dns(self, domain: str, res: DNSResult, attempts_left: int = 0) -> None:
        attempt = self.dns_retries - attempts_left + 1
        if res.status == "timeout" and attempts_left > 0:
            backoff = self.retry_policy.delay_before(attempt, self.ctx.sim.rng)
            self.ctx.sim.at(
                backoff, lambda d=domain, a=attempts_left - 1: self._resolve(d, a)
            )
            return
        verdict, detail = interpret_dns(self.ctx, domain, res)
        if verdict is not Verdict.ACCESSIBLE:
            if (
                verdict is Verdict.BLOCKED_TIMEOUT or verdict is Verdict.DNS_FAILURE
            ) and res.status == "timeout":
                confidence = min(
                    1.0, attempt / self.retry_policy.min_consistent_failures
                )
                if attempt < self.retry_policy.min_consistent_failures:
                    verdict = Verdict.INCONCLUSIVE
            else:
                confidence = 1.0
            self._emit(
                MeasurementResult(
                    technique=self.name,
                    target=domain,
                    verdict=verdict,
                    detail=f"dns stage: {detail}",
                    evidence={"stage": "dns"},
                    attempts=attempt,
                    confidence=confidence,
                )
            )
            return
        address = res.addresses[0]
        self._sample_outcomes[domain] = Counter()
        for index in range(self.requests_per_target):
            self.ctx.sim.at(
                index * self.burst_interval,
                lambda d=domain, a=address: self._one_request(d, a),
            )

    def _one_request(self, domain: str, address: str) -> None:
        http_get(
            self.ctx.client,
            address,
            domain,
            "/",
            callback=lambda res, d=domain: self._sample(d, res),
        )

    def _sample(self, domain: str, res: HTTPResult) -> None:
        outcomes = self._sample_outcomes[domain]
        if res.status == "ok" and res.response is not None:
            outcomes["blockpage" if res.response.status == 403 else "ok"] += 1
        else:
            outcomes[res.status] += 1
        if sum(outcomes.values()) >= self.requests_per_target:
            self._conclude(domain)

    def _conclude(self, domain: str) -> None:
        outcomes = self._sample_outcomes[domain]
        total = sum(outcomes.values())
        blocked = (
            outcomes["reset"] + outcomes["timeout"] + outcomes["blockpage"]
        )
        blocked_fraction = blocked / total if total else 0.0
        if blocked_fraction >= self.blocked_fraction_threshold:
            # The dominant failure mode characterizes the mechanism.
            if outcomes["reset"] >= max(outcomes["timeout"], outcomes["blockpage"]):
                verdict = Verdict.BLOCKED_RST
            elif outcomes["blockpage"] > outcomes["timeout"]:
                verdict = Verdict.HTTP_BLOCKPAGE
            else:
                verdict = Verdict.BLOCKED_TIMEOUT
            detail = (
                f"{blocked}/{total} samples blocked "
                f"(reset={outcomes['reset']}, timeout={outcomes['timeout']}, "
                f"blockpage={outcomes['blockpage']})"
            )
        else:
            verdict = Verdict.ACCESSIBLE
            detail = f"{outcomes['ok']}/{total} samples succeeded"
        self._emit(
            MeasurementResult(
                technique=self.name,
                target=domain,
                verdict=verdict,
                detail=detail,
                evidence={"samples": dict(outcomes)},
                samples=total,
            )
        )

    @property
    def done(self) -> bool:
        return len(self.results) >= len(self.domains)
