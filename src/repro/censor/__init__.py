"""Censorship systems: the GFC reference model plus a registry of
pluggable censor families (see :mod:`.registry`)."""

from .actions import craft_block_page, craft_poisoned_response, craft_rst_pair
from .families import BidirectionalResidualCensor, GeoBlocker, ThrottlingCensor
from .gfw import GreatFirewall
from .policy import CensorshipPolicy
from .registry import (
    CensorEvent,
    CensorModel,
    build_censor,
    censor_families,
    register_censor,
)

__all__ = [
    "BidirectionalResidualCensor",
    "CensorEvent",
    "CensorModel",
    "CensorshipPolicy",
    "GeoBlocker",
    "GreatFirewall",
    "ThrottlingCensor",
    "build_censor",
    "censor_families",
    "register_censor",
    "craft_block_page",
    "craft_poisoned_response",
    "craft_rst_pair",
]
