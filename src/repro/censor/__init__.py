"""Reference censorship system (Great Firewall of China model)."""

from .actions import craft_block_page, craft_poisoned_response, craft_rst_pair
from .gfw import CensorEvent, GreatFirewall
from .policy import CensorshipPolicy

__all__ = [
    "CensorEvent",
    "CensorshipPolicy",
    "GreatFirewall",
    "craft_block_page",
    "craft_poisoned_response",
    "craft_rst_pair",
]
