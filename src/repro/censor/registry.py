"""The censor-model registry: pluggable censor families behind one contract.

The paper's evaluation harness originally hard-wired one censor — the
GFC-style keyword/RST/DNS-poison middlebox.  The ROADMAP's "which safety
technique survives which censor family" question needs more than that
model, and the measurement literature documents concretely different
enforcement styles (bidirectional residual blocking in Turkmenistan,
throttling-as-censorship, prefix-scoped geoblocking).  This module makes
the censor a named, swappable component:

- :class:`CensorModel` is the contract every family implements: the
  :class:`~repro.netsim.middlebox.Middlebox` tap interface (PASS/DROP a
  transiting packet, inject forged packets via the tap context) plus a
  :class:`CensorEvent` ground-truth log the accuracy criterion scores
  against and a :class:`~.policy.CensorshipPolicy` that carries *what*
  to block (each family decides *how*).  A disabled policy must make
  every family inert — that is what the clean vantage relies on.
- :func:`register_censor` registers a family under a stable name.
- :func:`build_censor` instantiates a family by name; unknown names
  raise immediately with the list of known families, so a sweep spec
  naming a typo'd censor fails at load time, not mid-campaign.

Families are compared by sweeping the same technique × vantage grid
against each name (the ``censors`` axis in
:class:`~repro.runner.spec.SweepSpec`), so a family's constructor must
be deterministic: seeded state only, no global RNG, no wall clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Type

from ..netsim.middlebox import Action, Middlebox, TapContext
from ..packets import IPPacket
from .policy import CensorshipPolicy

__all__ = [
    "CensorEvent",
    "CensorModel",
    "register_censor",
    "build_censor",
    "censor_families",
]


@dataclass
class CensorEvent:
    """Ground-truth record of one enforcement action."""

    time: float
    # "keyword" | "http_host" | "dns" | "ip" | "residual" | "throttle" | "geo"
    mechanism: str
    src: str
    dst: str
    detail: str


class CensorModel(Middlebox):
    """Base class for censor families: tap contract + ground-truth log.

    Subclasses implement :meth:`process` (the
    :class:`~repro.netsim.middlebox.Middlebox` entry point) and call
    :meth:`_record` for every enforcement so evaluations can score
    accuracy against what the censor actually did.  The policy is the
    *what* (names, keywords, addresses, toggles); the family is the
    *how* (resets, poisoning, shaping, silent drops).
    """

    name = "censor"
    #: Registry name, stamped by :func:`register_censor`.
    family = ""
    #: Citation for the measured behaviour the family reproduces, where
    #: one exists (e.g. an arXiv identifier) — shown in docs and listings.
    provenance = ""

    def __init__(self, policy: Optional[CensorshipPolicy] = None) -> None:
        self.policy = (
            policy if policy is not None else CensorshipPolicy()
        ).normalize()
        self.events: List[CensorEvent] = []

    def process(self, packet: IPPacket, ctx: TapContext) -> Action:
        raise NotImplementedError

    def set_policy(self, policy: CensorshipPolicy) -> None:
        """Swap the policy the family enforces (the evaluation's toggle)."""
        self.policy = policy.normalize()

    # -- ground truth --------------------------------------------------------

    def _record(self, now: float, mechanism: str, packet: IPPacket, detail: str) -> None:
        self.events.append(
            CensorEvent(
                time=now, mechanism=mechanism, src=packet.src, dst=packet.dst,
                detail=detail,
            )
        )

    def events_by_mechanism(self, mechanism: str) -> List[CensorEvent]:
        return [event for event in self.events if event.mechanism == mechanism]

    def reset_counters(self) -> None:
        """Clear the event log and any per-run counters/state."""
        self.events.clear()


#: name -> family class; populated by :func:`register_censor` at import
#: time (the package ``__init__`` imports every built-in family module).
CENSOR_FAMILIES: Dict[str, Type[CensorModel]] = {}


def register_censor(
    name: str, provenance: str = ""
) -> Callable[[Type[CensorModel]], Type[CensorModel]]:
    """Class decorator: register a :class:`CensorModel` under ``name``."""

    def decorate(cls: Type[CensorModel]) -> Type[CensorModel]:
        if not (isinstance(cls, type) and issubclass(cls, CensorModel)):
            raise TypeError(
                f"@register_censor({name!r}) needs a CensorModel subclass, "
                f"got {cls!r}"
            )
        existing = CENSOR_FAMILIES.get(name)
        if existing is not None and existing is not cls:
            raise ValueError(
                f"censor family {name!r} already registered by "
                f"{existing.__qualname__}"
            )
        cls.family = name
        if provenance:
            cls.provenance = provenance
        CENSOR_FAMILIES[name] = cls
        return cls

    return decorate


def censor_families() -> Tuple[str, ...]:
    """The registered family names, sorted for stable listings/errors."""
    return tuple(sorted(CENSOR_FAMILIES))


def build_censor(
    name: str, policy: Optional[CensorshipPolicy] = None, **params: object
) -> CensorModel:
    """Instantiate the censor family registered as ``name``.

    Extra keyword ``params`` go straight to the family constructor
    (each family documents its own knobs).  Unknown names raise a
    :class:`ValueError` naming the known families — the same
    fail-at-load contract sweep specs use for unknown keys.
    """
    try:
        cls = CENSOR_FAMILIES[name]
    except KeyError:
        raise ValueError(
            f"unknown censor family {name!r} "
            f"(choose from {censor_families()})"
        ) from None
    return cls(policy=policy, **params)
