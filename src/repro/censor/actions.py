"""Packet-crafting actions the censor injects.

An off-path censor cannot remove packets already in flight; it *adds*
packets that race or poison the transaction: TCP RSTs to both endpoints
(Clayton et al.'s "Ignoring the Great Firewall of China" behaviour), forged
DNS answers, and HTTP block pages.
"""

from __future__ import annotations

from typing import List

from ..packets import (
    ACK,
    DNSMessage,
    DNSRecord,
    FIN,
    HTTPResponse,
    IPPacket,
    PSH,
    QTYPE_A,
    RST,
    TCPSegment,
    UDPDatagram,
)

__all__ = ["craft_rst_pair", "craft_poisoned_response", "craft_block_page"]


def craft_rst_pair(packet: IPPacket) -> List[IPPacket]:
    """Forge RSTs toward both endpoints of the flow ``packet`` belongs to.

    Sequence numbers are taken from the observed segment so the resets land
    in-window at both stacks, as the GFC does.
    """
    segment = packet.tcp
    if segment is None:
        raise ValueError("RST injection requires a TCP packet")
    to_receiver = IPPacket(
        src=packet.src,
        dst=packet.dst,
        payload=TCPSegment(
            sport=segment.sport,
            dport=segment.dport,
            seq=segment.seq + len(segment.payload),
            flags=RST,
        ),
    )
    to_sender = IPPacket(
        src=packet.dst,
        dst=packet.src,
        payload=TCPSegment(
            sport=segment.dport,
            dport=segment.sport,
            seq=segment.ack,
            flags=RST,
        ),
    )
    return [to_sender, to_receiver]


def craft_poisoned_response(
    query_packet: IPPacket, query: DNSMessage, poison_ip: str
) -> IPPacket:
    """Forge a DNS response carrying a bogus A record.

    Mirrors measured GFC behaviour: bad *A* answers are injected for both A
    and MX queries (paper Section 3.2.3), with the resolver's address as
    the forged source so the client cannot tell the answer apart by origin.
    """
    datagram = query_packet.udp
    if datagram is None or query.question is None:
        raise ValueError("DNS poisoning requires a parsed UDP DNS query")
    forged = query.reply(
        answers=[
            DNSRecord(name=query.question.name, rtype=QTYPE_A, data=poison_ip, ttl=300)
        ]
    )
    return IPPacket(
        src=query_packet.dst,
        dst=query_packet.src,
        payload=UDPDatagram(
            sport=datagram.dport, dport=datagram.sport, payload=forged.to_bytes()
        ),
    )


def craft_block_page(packet: IPPacket, message: str = "Access Denied") -> List[IPPacket]:
    """Forge an HTTP 403 block page from the server, then close the flow.

    Used by censors that prefer an explicit denial over a bare reset.  The
    page is sequenced as if the real server sent it, followed by a FIN.
    """
    segment = packet.tcp
    if segment is None:
        raise ValueError("block-page injection requires a TCP packet")
    body = HTTPResponse.block_page(message).to_bytes()
    page = IPPacket(
        src=packet.dst,
        dst=packet.src,
        payload=TCPSegment(
            sport=segment.dport,
            dport=segment.sport,
            seq=segment.ack,
            ack=segment.seq + len(segment.payload),
            flags=PSH | ACK,
            payload=body,
        ),
    )
    fin = IPPacket(
        src=packet.dst,
        dst=packet.src,
        payload=TCPSegment(
            sport=segment.dport,
            dport=segment.sport,
            seq=segment.ack + len(body),
            ack=segment.seq + len(segment.payload),
            flags=FIN | ACK,
        ),
    )
    # Also reset the server side so it stops serving the real page.
    to_server = IPPacket(
        src=packet.src,
        dst=packet.dst,
        payload=TCPSegment(
            sport=segment.sport,
            dport=segment.dport,
            seq=segment.seq + len(segment.payload),
            flags=RST,
        ),
    )
    return [page, fin, to_server]
