"""Censorship policy: what to block and how.

The policy object is the single configuration surface the evaluation
toggles (paper Section 3.2: "as controlled by our modifications to the
censorship system").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set, Tuple

from ..rules.rulesets import BLOCKED_DOMAINS, GFC_KEYWORDS

__all__ = ["CensorshipPolicy"]


@dataclass
class CensorshipPolicy:
    """Everything the reference censor enforces.

    Mechanisms (each independently toggleable, mirroring real deployments):

    - ``keywords``: TCP payload keywords reset via injected RSTs (GFC).
    - ``blocked_domains``: blocked at HTTP (Host header reset) and DNS
      (poisoned answers).
    - ``blocked_ips`` / ``blocked_endpoints``: null-routed silently, giving
      timeout-style censorship.
    - ``residual_block_seconds``: after a keyword reset, the 5-tuple pair is
      penalized for this long (the GFC's ~90 s flow-kill).
    """

    keywords: List[str] = field(default_factory=lambda: list(GFC_KEYWORDS))
    blocked_domains: List[str] = field(default_factory=lambda: list(BLOCKED_DOMAINS))
    blocked_ips: Set[str] = field(default_factory=set)
    #: (ip, port) pairs to null-route; use for port-granular blocking.
    blocked_endpoints: Set[Tuple[str, int]] = field(default_factory=set)
    #: (ip, port) pairs blocked by *active reset*: the censor answers the
    #: SYN with a forged RST instead of silently dropping (the second
    #: blocking signature the scan measurement looks for).
    rst_endpoints: Set[Tuple[str, int]] = field(default_factory=set)
    dns_poisoning: bool = True
    keyword_filtering: bool = True
    http_host_filtering: bool = True
    ip_blocking: bool = True
    #: Serve an injected 403 block page instead of a bare RST on HTTP
    #: Host-header matches (Iran-style behaviour, a DESIGN.md ablation).
    http_block_page: bool = False
    #: Whether the censor reassembles IP fragments before matching.  The
    #: early GFC did not (Clayton et al.'s fragmentation evasion); modern
    #: deployments do.  Toggled by the fragmentation ablation.
    reassemble_fragments: bool = True
    residual_block_seconds: float = 90.0
    #: The forged A-record address injected for poisoned queries.
    poison_ip: str = "8.7.198.45"

    def __post_init__(self) -> None:
        self.normalize()

    def normalize(self) -> "CensorshipPolicy":
        """Canonicalize ``blocked_domains`` entries in place.

        Matching normalizes the *queried* name (lowercase, no trailing
        dot); entries must be normalized the same way or a policy listing
        ``"Facebook.com"`` or ``"example.com."`` never matches anything.
        Runs at construction and again whenever a censor adopts the
        policy (``set_policy``), since callers may append entries later.
        """
        self.blocked_domains = [
            domain.rstrip(".").lower() for domain in self.blocked_domains
        ]
        return self

    def enabled(self) -> bool:
        """Whether any mechanism is active."""
        return (
            self.dns_poisoning
            or self.keyword_filtering
            or self.http_host_filtering
            or self.ip_blocking
        )

    @classmethod
    def disabled(cls) -> "CensorshipPolicy":
        """A policy with every mechanism off (the control condition)."""
        return cls(
            dns_poisoning=False,
            keyword_filtering=False,
            http_host_filtering=False,
            ip_blocking=False,
        )

    # -- regime presets --------------------------------------------------------
    # Different censorship deployments favour different mechanisms; these
    # presets reproduce the regimes the measurement literature contrasts,
    # so comparative vantage studies have something to compare.

    @classmethod
    def gfc_preset(cls) -> "CensorshipPolicy":
        """GFC-style: DNS injection + keyword/Host RST + residual flow-kill."""
        return cls()  # the defaults model exactly this

    @classmethod
    def blockpage_preset(cls) -> "CensorshipPolicy":
        """Block-page regime (Iran-style): explicit 403 pages, no keyword
        resets, no residual penalty."""
        return cls(
            keyword_filtering=False,
            http_block_page=True,
            residual_block_seconds=0.0,
        )

    @classmethod
    def nullroute_preset(cls, blocked_ips) -> "CensorshipPolicy":
        """Silent-drop regime: pure IP null-routing (timeout censorship)."""
        return cls(
            dns_poisoning=False,
            keyword_filtering=False,
            http_host_filtering=False,
            blocked_ips=set(blocked_ips),
        )

    def domain_is_blocked(self, name: str) -> bool:
        normalized = name.rstrip(".").lower()
        return any(
            normalized == domain or normalized.endswith("." + domain)
            for domain in self.blocked_domains
        )

    def endpoint_is_blocked(self, ip: str, port: int) -> bool:
        return ip in self.blocked_ips or (ip, port) in self.blocked_endpoints
