"""The reference censorship system: a GFC-model middlebox.

A transaction-focused, off-path IDS that (paper Section 2.1):

- matches keyword and HTTP-Host signatures on reassembled TCP flows and
  responds by injecting RSTs at both endpoints;
- injects forged A answers for DNS queries of blocked names (for both A
  and MX query types, as measured against the real GFC);
- null-routes blocked IPs/endpoints, producing timeout-style blocking;
- keeps a short residual flow-kill list (the GFC's post-reset penalty) —
  the *only* state it retains, unlike the surveillance system.

Every enforcement is recorded as a :class:`CensorEvent` so evaluations have
ground truth for the accuracy criterion.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..netsim.middlebox import Action, TapContext
from ..packets import DNSMessage, IPPacket, QTYPE_A, QTYPE_MX, flow_of
from ..rules import DEFAULT_VARIABLES, RuleEngine
from ..rules.rulesets import censor_ruleset_text
from .actions import craft_block_page, craft_poisoned_response, craft_rst_pair
from .policy import CensorshipPolicy
from .registry import CensorEvent, CensorModel, register_censor

__all__ = ["CensorEvent", "GreatFirewall"]

DNS_PORT = 53


@register_censor("gfc", provenance="paper Section 2.1 (GFC reference model)")
class GreatFirewall(CensorModel):
    """The censor tap; attach to a forwarding node with ``add_tap``."""

    def __init__(
        self,
        policy: Optional[CensorshipPolicy] = None,
        variables: Optional[Dict[str, str]] = None,
        stream_depth: int = 8192,
        overlap_policy: str = "first",
        prefilter: str = "auto",
    ) -> None:
        super().__init__(policy)
        self._variables = dict(variables or DEFAULT_VARIABLES)
        #: Literal-prefilter strategy for the signature engine (see
        #: ``RuleEngine``); "auto" means the ruleset-wide multipattern
        #: pass.  Unlike the passive surveillance tap, the censor cannot
        #: defer evaluation into batches: every packet needs its verdict
        #: (DROP/PASS, RST/DNS injection) before it may be forwarded, so
        #: it runs the same fast engine core at batch size 1.
        self.prefilter = prefilter
        #: Bytes of each flow direction the censor's reassembler inspects —
        #: the GFC's finite reassembly the evasion literature probes
        #: (Khattak et al. [26]); exposed for the stream-depth ablation.
        self.stream_depth = stream_depth
        #: Overlap resolution ("first" or "last") — see StreamReassembler.
        self.overlap_policy = overlap_policy
        self.rst_injections = 0
        self.dns_injections = 0
        self.ip_drops = 0
        self.residual_drops = 0
        #: canonical flow key -> penalty expiry time
        self._killed_flows: Dict[object, float] = {}
        self._engine = self._build_engine()
        from ..packets.fragment import FragmentReassembler

        self._fragments = FragmentReassembler()

    def _build_engine(self) -> RuleEngine:
        keywords = self.policy.keywords if self.policy.keyword_filtering else ()
        domains = self.policy.blocked_domains if self.policy.http_host_filtering else ()
        if not keywords and not domains:
            return RuleEngine(
                rules=[], variables=self._variables, stream_depth=self.stream_depth,
                overlap_policy=self.overlap_policy, obs_label="censor",
                prefilter=self.prefilter,
            )
        text = censor_ruleset_text(keywords, domains)
        return RuleEngine.from_text(
            text, variables=self._variables, stream_depth=self.stream_depth,
            overlap_policy=self.overlap_policy, obs_label="censor",
            prefilter=self.prefilter,
        )

    def set_policy(self, policy: CensorshipPolicy) -> None:
        """Swap policy (and rebuild signatures) — the evaluation's toggle."""
        super().set_policy(policy)
        self._engine = self._build_engine()

    # -- tap entry point -----------------------------------------------------------

    def process(self, packet: IPPacket, ctx: TapContext) -> Action:
        # 0. IP fragments: an off-path censor cannot hold fragments back,
        #    so they are forwarded — but a reassembling censor inspects the
        #    rebuilt packet as soon as the group completes and enforces on
        #    it (injections only; the fragments are already gone).
        if packet.frag_offset > 0 or packet.flags & 0x1:
            if self.policy.reassemble_fragments:
                rebuilt = self._fragments.feed(packet, ctx.now)
                if rebuilt is not None and rebuilt is not packet:
                    self._inspect_rebuilt(rebuilt, ctx)
            return Action.PASS

        # 1. Null-routing of blocked addresses.
        if self.policy.ip_blocking and packet.tcp is not None:
            if (packet.dst, packet.tcp.dport) in self.policy.rst_endpoints:
                if packet.tcp.is_syn:
                    self._forge_synack_refusal(packet, ctx)
                self._record(ctx.now, "ip", packet, f"reset endpoint {packet.dst}")
                return Action.DROP
            if self.policy.endpoint_is_blocked(packet.dst, packet.tcp.dport):
                self.ip_drops += 1
                self._record(ctx.now, "ip", packet, f"null-route {packet.dst}")
                return Action.DROP
        if self.policy.ip_blocking and packet.tcp is None:
            # UDP gets the same port-granular endpoint check as TCP: a
            # blocked resolver at (ip, 53) must not answer datagrams any
            # more than it accepts connections.
            if packet.udp is not None:
                if self.policy.endpoint_is_blocked(packet.dst, packet.udp.dport):
                    self.ip_drops += 1
                    self._record(ctx.now, "ip", packet, f"null-route {packet.dst}")
                    return Action.DROP
            elif packet.dst in self.policy.blocked_ips:
                self.ip_drops += 1
                self._record(ctx.now, "ip", packet, f"null-route {packet.dst}")
                return Action.DROP

        # 2. DNS poisoning (off-path: the query still passes; the forged
        #    answer wins the race because it is injected at the border).
        if self.policy.dns_poisoning and packet.udp is not None:
            if packet.udp.dport == DNS_PORT:
                self._maybe_poison(packet, ctx)

        # 3. Residual flow-kill from an earlier keyword reset.
        directed = flow_of(packet)
        if directed is not None and self._killed_flows:
            key = directed.canonical()
            expiry = self._killed_flows.get(key)
            if expiry is not None:
                if ctx.now < expiry:
                    self.residual_drops += 1
                    self._record(ctx.now, "residual", packet, "flow in penalty window")
                    if packet.tcp is not None:
                        self._inject_rsts(packet, ctx)
                    return Action.DROP
                del self._killed_flows[key]

        # 4. Signature matching on reassembled flows.
        for alert in self._engine.process(packet, ctx.now):
            if alert.action not in ("reject", "drop"):
                continue
            mechanism = "http_host" if "host" in alert.msg.lower() else "keyword"
            self._record(ctx.now, mechanism, packet, alert.msg)
            if alert.action == "drop":
                return Action.DROP
            if mechanism == "http_host" and self.policy.http_block_page:
                for injected in craft_block_page(packet):
                    ctx.inject(injected, tag=self.name)
                self.rst_injections += 1
            else:
                self._inject_rsts(packet, ctx)
            if directed is not None and self.policy.residual_block_seconds > 0:
                self._killed_flows[directed.canonical()] = (
                    ctx.now + self.policy.residual_block_seconds
                )
            break  # one enforcement per packet is enough
        return Action.PASS

    # -- helpers ----------------------------------------------------------------------

    def _inspect_rebuilt(self, packet: IPPacket, ctx: TapContext) -> None:
        """Signature-match a reassembled packet; inject on matches."""
        from ..packets import flow_of as _flow_of

        for alert in self._engine.process(packet, ctx.now):
            if alert.action not in ("reject", "drop"):
                continue
            mechanism = "http_host" if "host" in alert.msg.lower() else "keyword"
            self._record(ctx.now, mechanism, packet, alert.msg + " (reassembled)")
            if packet.tcp is not None:
                self._inject_rsts(packet, ctx)
            directed = _flow_of(packet)
            if directed is not None and self.policy.residual_block_seconds > 0:
                self._killed_flows[directed.canonical()] = (
                    ctx.now + self.policy.residual_block_seconds
                )
            break

    def _maybe_poison(self, packet: IPPacket, ctx: TapContext) -> None:
        try:
            query = DNSMessage.from_bytes(packet.udp.payload)
        except (ValueError, IndexError):
            return
        question = query.question
        if question is None or query.is_response:
            return
        # The measured GFC forges answers for A and MX lookups only
        # (paper Section 3.2.3); AAAA/TXT/NS queries pass unpoisoned.
        if question.qtype not in (QTYPE_A, QTYPE_MX):
            return
        if not self.policy.domain_is_blocked(question.name):
            return
        forged = craft_poisoned_response(packet, query, self.policy.poison_ip)
        ctx.inject(forged, tag=self.name)
        self.dns_injections += 1
        self._record(
            ctx.now, "dns", packet, f"poisoned {question.name} (qtype {question.qtype})"
        )

    def _forge_synack_refusal(self, packet: IPPacket, ctx: TapContext) -> None:
        """Answer a SYN to a reset-blocked endpoint with a forged RST/ACK."""
        from ..packets import ACK, RST, TCPSegment

        segment = packet.tcp
        refusal = IPPacket(
            src=packet.dst,
            dst=packet.src,
            payload=TCPSegment(
                sport=segment.dport,
                dport=segment.sport,
                seq=0,
                ack=segment.seq + 1,
                flags=RST | ACK,
            ),
        )
        ctx.inject(refusal, tag=self.name)
        self.rst_injections += 1

    def _inject_rsts(self, packet: IPPacket, ctx: TapContext) -> None:
        for injected in craft_rst_pair(packet):
            ctx.inject(injected, tag=self.name)
        self.rst_injections += 1

    # -- introspection -------------------------------------------------------------------

    def reset_counters(self) -> None:
        super().reset_counters()
        self.rst_injections = 0
        self.dns_injections = 0
        self.ip_drops = 0
        self.residual_drops = 0
        self._killed_flows.clear()
