"""Censor families beyond the reference GFC model.

Each family reproduces a concretely *measured* enforcement style from
the censorship-measurement literature, behind the shared
:class:`~.registry.CensorModel` contract, so the sweep grid can ask the
ROADMAP's question directly: which safety technique survives which
censor family?

- :class:`BidirectionalResidualCensor` (``"bidirectional-residual"``) —
  Turkmenistan-style blocking (arXiv:2304.04835): enforcement in *both*
  flow directions, forged RSTs injected toward client and server on the
  triggering SYN, and a residual penalty measured in minutes rather
  than the GFC's ~90 seconds.
- :class:`ThrottlingCensor` (``"throttler"``) — censorship as
  degradation: flows classified by SNI/Host/keyword are squeezed
  through a deterministic rate shaper
  (:class:`~repro.netsim.impairment.BandwidthLimit`) instead of being
  dropped or reset.  The censor never emits a clean block signal, which
  is exactly the confound that stresses the retry/confidence layer.
- :class:`GeoBlocker` (``"geoblocker"``) — endpoint/prefix-scoped
  silent drops with an allowlist direction, the protocol-agnostic
  border blocking ProtoScan measures (arXiv:2508.07194).

Every family goes inert under a disabled policy (the clean-vantage
contract), derives no state from global RNG or the wall clock, and logs
:class:`~.registry.CensorEvent` ground truth for the accuracy score.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..netsim.impairment import BandwidthLimit
from ..netsim.middlebox import Action, TapContext
from ..packets import IPPacket, flow_of
from ..packets.addressing import compile_network, ip_to_int
from ..rules import DEFAULT_VARIABLES, RuleEngine
from ..rules.rulesets import censor_ruleset_text
from .gfw import GreatFirewall
from .policy import CensorshipPolicy
from .registry import CensorModel, register_censor

__all__ = ["BidirectionalResidualCensor", "ThrottlingCensor", "GeoBlocker"]


@register_censor("bidirectional-residual", provenance="arXiv:2304.04835")
class BidirectionalResidualCensor(GreatFirewall):
    """Turkmenistan-style bidirectional blocking with long residual state.

    Extends the GFC model in the three ways the Turkmenistan study
    measured: blocked addresses are enforced whichever side of the
    border they appear on (src as well as dst), a SYN toward a blocked
    endpoint draws forged RSTs to *both* endpoints instead of a silent
    drop, and a triggered flow stays killed for minutes
    (``residual_seconds``, default 600) rather than the GFC's ~90 s.
    """

    def __init__(
        self,
        policy: Optional[CensorshipPolicy] = None,
        residual_seconds: float = 600.0,
        **gfw_params: object,
    ) -> None:
        super().__init__(policy, **gfw_params)
        if residual_seconds <= 0:
            raise ValueError("residual_seconds must be positive")
        self.residual_seconds = residual_seconds
        # The policy's residual window is the knob the GFC machinery
        # already honours; stretch it to this family's minutes-long
        # penalty (the policy object is per-environment, never shared).
        self.policy.residual_block_seconds = residual_seconds

    def set_policy(self, policy: CensorshipPolicy) -> None:
        super().set_policy(policy)
        self.policy.residual_block_seconds = self.residual_seconds

    def _address_blocked(self, packet: IPPacket, addr: str) -> bool:
        """Whether ``addr`` (either end of ``packet``) is policy-blocked."""
        if addr in self.policy.blocked_ips:
            return True
        if packet.tcp is not None:
            port = packet.tcp.sport if addr == packet.src else packet.tcp.dport
            return self.policy.endpoint_is_blocked(addr, port)
        if packet.udp is not None:
            port = packet.udp.sport if addr == packet.src else packet.udp.dport
            return self.policy.endpoint_is_blocked(addr, port)
        return False

    def process(self, packet: IPPacket, ctx: TapContext) -> Action:
        if self.policy.ip_blocking and packet.frag_offset == 0:
            # Direction-insensitive enforcement: a reply *from* a blocked
            # endpoint is dropped just like traffic toward it.
            if self._address_blocked(packet, packet.src):
                self.ip_drops += 1
                self._record(
                    ctx.now, "ip", packet, f"bidirectional null-route {packet.src}"
                )
                return Action.DROP
            if self._address_blocked(packet, packet.dst):
                self.ip_drops += 1
                if packet.tcp is not None and packet.tcp.is_syn:
                    self._forge_bidirectional_rsts(packet, ctx)
                    directed = flow_of(packet)
                    if directed is not None:
                        self._killed_flows[directed.canonical()] = (
                            ctx.now + self.residual_seconds
                        )
                    self._record(
                        ctx.now, "ip", packet,
                        f"bidirectional reset {packet.dst}",
                    )
                else:
                    self._record(
                        ctx.now, "ip", packet,
                        f"bidirectional null-route {packet.dst}",
                    )
                return Action.DROP
        return super().process(packet, ctx)

    def _forge_bidirectional_rsts(self, packet: IPPacket, ctx: TapContext) -> None:
        """Answer a SYN with forged RSTs toward client *and* server."""
        from ..packets import ACK, RST, TCPSegment

        segment = packet.tcp
        to_client = IPPacket(
            src=packet.dst,
            dst=packet.src,
            payload=TCPSegment(
                sport=segment.dport, dport=segment.sport,
                seq=0, ack=segment.seq + 1, flags=RST | ACK,
            ),
        )
        to_server = IPPacket(
            src=packet.src,
            dst=packet.dst,
            payload=TCPSegment(
                sport=segment.sport, dport=segment.dport,
                seq=segment.seq + 1, flags=RST,
            ),
        )
        ctx.inject(to_client, tag=self.name)
        ctx.inject(to_server, tag=self.name)
        self.rst_injections += 2


@register_censor("throttler")
class ThrottlingCensor(CensorModel):
    """Censorship as degradation: classified flows are shaped, not blocked.

    Flows whose content matches the policy's keyword/Host/SNI
    signatures — or whose far endpoint the policy lists — are squeezed
    through a per-flow deterministic
    :class:`~repro.netsim.impairment.BandwidthLimit`: packets queue
    behind one another at ``bytes_per_sec`` and are tail-dropped once
    ``max_queue_bytes`` of backlog accumulates.  Surviving packets are
    re-injected after their queueing delay, so the client experiences a
    saturated path: slow responses, sporadic loss, eventual timeouts —
    but never an RST, a forged answer, or a clean refusal.  That
    absence of any block *signal* is the point: it stresses the
    measurement's retry/confidence layer with a censor whose
    enforcement is statistically indistinguishable from congestion.
    """

    def __init__(
        self,
        policy: Optional[CensorshipPolicy] = None,
        variables: Optional[Dict[str, str]] = None,
        bytes_per_sec: float = 512.0,
        max_queue_bytes: int = 2048,
        stream_depth: int = 8192,
        prefilter: str = "auto",
    ) -> None:
        super().__init__(policy)
        if bytes_per_sec <= 0:
            raise ValueError("bytes_per_sec must be positive")
        if max_queue_bytes <= 0:
            raise ValueError("max_queue_bytes must be positive")
        self._variables = dict(variables or DEFAULT_VARIABLES)
        self.bytes_per_sec = bytes_per_sec
        self.max_queue_bytes = max_queue_bytes
        self.stream_depth = stream_depth
        self.prefilter = prefilter
        self.throttle_drops = 0
        self.throttled_packets = 0
        #: canonical flow key -> this flow's dedicated shaper state
        self._shapers: Dict[object, BandwidthLimit] = {}
        self._engine = self._build_engine()

    def _build_engine(self) -> RuleEngine:
        keywords = self.policy.keywords if self.policy.keyword_filtering else ()
        domains = self.policy.blocked_domains if self.policy.http_host_filtering else ()
        if not keywords and not domains:
            return RuleEngine(
                rules=[], variables=self._variables,
                stream_depth=self.stream_depth, obs_label="censor",
                prefilter=self.prefilter,
            )
        return RuleEngine.from_text(
            censor_ruleset_text(keywords, domains),
            variables=self._variables, stream_depth=self.stream_depth,
            obs_label="censor", prefilter=self.prefilter,
        )

    def set_policy(self, policy: CensorshipPolicy) -> None:
        super().set_policy(policy)
        self._engine = self._build_engine()

    def _endpoint_classified(self, packet: IPPacket) -> bool:
        """Whether either endpoint is on the policy's shaping list."""
        if not self.policy.ip_blocking:
            return False
        if packet.src in self.policy.blocked_ips or packet.dst in self.policy.blocked_ips:
            return True
        if packet.tcp is not None:
            return (
                self.policy.endpoint_is_blocked(packet.dst, packet.tcp.dport)
                or self.policy.endpoint_is_blocked(packet.src, packet.tcp.sport)
            )
        if packet.udp is not None:
            return (
                self.policy.endpoint_is_blocked(packet.dst, packet.udp.dport)
                or self.policy.endpoint_is_blocked(packet.src, packet.udp.sport)
            )
        return False

    def process(self, packet: IPPacket, ctx: TapContext) -> Action:
        directed = flow_of(packet)
        key = directed.canonical() if directed is not None else None

        if key is not None and key not in self._shapers:
            classified = self._endpoint_classified(packet)
            detail = f"endpoint-classified {packet.dst}"
            if not classified:
                # Content classification rides the same signature engine
                # the GFC uses; a reject/drop alert marks the flow for
                # shaping instead of triggering an injection.
                for alert in self._engine.process(packet, ctx.now):
                    if alert.action in ("reject", "drop"):
                        classified = True
                        detail = alert.msg
                        break
            if classified:
                self._shapers[key] = BandwidthLimit(
                    self.bytes_per_sec, self.max_queue_bytes
                )
                self._record(ctx.now, "throttle", packet, f"classified: {detail}")

        shaper = self._shapers.get(key) if key is not None else None
        if shaper is None:
            return Action.PASS
        decision = shaper.decide(packet.wire_length(), ctx.now, rng=None)
        if decision.drop:
            self.throttle_drops += 1
            self._record(ctx.now, "throttle", packet, "queue overflow")
            return Action.DROP
        self.throttled_packets += 1
        if decision.extra_delay > 0:
            # Hold the packet back for its queueing delay: drop the
            # in-flight copy and re-originate it from the tap's node.
            # The censor tap skips its own injections (Middlebox
            # contract), so the delayed copy is not re-shaped.
            ctx.inject(packet, tag=self.name, delay=decision.extra_delay)
            return Action.DROP
        return Action.PASS

    def reset_counters(self) -> None:
        super().reset_counters()
        self.throttle_drops = 0
        self.throttled_packets = 0
        self._shapers.clear()


@register_censor("geoblocker", provenance="arXiv:2508.07194")
class GeoBlocker(CensorModel):
    """Prefix-scoped silent drops with an allowlist direction.

    The border blocking ProtoScan measures: everything toward a blocked
    prefix is discarded at the border regardless of protocol or port —
    no resets, no forged answers, just packets that never arrive.
    ``direction`` picks the enforced side (``"outbound"`` drops traffic
    *toward* blocked prefixes, ``"inbound"`` traffic *from* them,
    ``"both"`` either); the unenforced direction is the allowlist
    direction, and ``allow_prefixes`` exempts specific client ranges
    entirely (the whitelisted-scanner behaviour such deployments show).
    Policy-listed addresses (``blocked_ips``/``blocked_endpoints``) are
    enforced too, as host-granular prefixes.
    """

    DIRECTIONS = ("outbound", "inbound", "both")

    def __init__(
        self,
        policy: Optional[CensorshipPolicy] = None,
        blocked_prefixes: Sequence[str] = ("203.0.113.0/28",),
        allow_prefixes: Sequence[str] = (),
        direction: str = "outbound",
    ) -> None:
        super().__init__(policy)
        if direction not in self.DIRECTIONS:
            raise ValueError(
                f"unknown direction {direction!r} (choose from {self.DIRECTIONS})"
            )
        self.direction = direction
        self.blocked_prefixes: Tuple[str, ...] = tuple(blocked_prefixes)
        self.allow_prefixes: Tuple[str, ...] = tuple(allow_prefixes)
        self._blocked_nets: List[Tuple[int, int]] = [
            compile_network(prefix) for prefix in self.blocked_prefixes
        ]
        self._allow_nets: List[Tuple[int, int]] = [
            compile_network(prefix) for prefix in self.allow_prefixes
        ]
        self.geo_drops = 0

    def _in_blocked(self, addr: str) -> bool:
        value = ip_to_int(addr)
        if any(value & mask == network for network, mask in self._blocked_nets):
            return True
        return addr in self.policy.blocked_ips

    def _allowlisted(self, addr: str) -> bool:
        value = ip_to_int(addr)
        return any(value & mask == network for network, mask in self._allow_nets)

    def _port_blocked(self, packet: IPPacket, addr: str) -> bool:
        if packet.tcp is not None:
            port = packet.tcp.sport if addr == packet.src else packet.tcp.dport
        elif packet.udp is not None:
            port = packet.udp.sport if addr == packet.src else packet.udp.dport
        else:
            return False
        return (addr, port) in self.policy.blocked_endpoints

    def process(self, packet: IPPacket, ctx: TapContext) -> Action:
        if not self.policy.ip_blocking:
            return Action.PASS
        if self._allowlisted(packet.src) or self._allowlisted(packet.dst):
            return Action.PASS
        if self.direction in ("outbound", "both"):
            if self._in_blocked(packet.dst) or self._port_blocked(packet, packet.dst):
                self.geo_drops += 1
                self._record(ctx.now, "geo", packet, f"prefix drop -> {packet.dst}")
                return Action.DROP
        if self.direction in ("inbound", "both"):
            if self._in_blocked(packet.src) or self._port_blocked(packet, packet.src):
                self.geo_drops += 1
                self._record(ctx.now, "geo", packet, f"prefix drop <- {packet.src}")
                return Action.DROP
        return Action.PASS

    def reset_counters(self) -> None:
        super().reset_counters()
        self.geo_drops = 0
