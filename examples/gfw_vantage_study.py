#!/usr/bin/env python3
"""A vantage-point study of the GFC model (paper §3.2.3 analogue).

From a host inside the censored AS (the PlanetLab-in-China analogue), probe
a list of domains with every mechanism the censor can apply — DNS (A and
MX), HTTP Host filtering, keyword filtering — and print a per-domain
blocking matrix, the way OONI-style reports tabulate results.

Run:  python examples/gfw_vantage_study.py
"""

from repro.analysis import render_table
from repro.core import build_environment
from repro.core.evaluation import BLOCKED_TARGETS_FULL, CONTROL_TARGETS_FULL
from repro.netsim import http_get, resolve
from repro.packets import QTYPE_A, QTYPE_MX

DOMAINS = list(BLOCKED_TARGETS_FULL)[:5] + CONTROL_TARGETS_FULL[:2]
KEYWORD_PROBE_PATH = "/search?q=falun"


def main():
    env = build_environment(censored=True, seed=1, population_size=6)
    client = env.ctx.client
    resolver = env.ctx.resolver_ip
    poison_ip = env.censor.policy.poison_ip

    observations = {domain: {} for domain in DOMAINS}

    for domain in DOMAINS:
        resolve(client, resolver, domain, qtype=QTYPE_A,
                callback=lambda r, d=domain: observations[d].__setitem__("a", r))
        resolve(client, resolver, domain, qtype=QTYPE_MX,
                callback=lambda r, d=domain: observations[d].__setitem__("mx", r))
        expected_ip = env.ctx.expected_addresses[domain]
        http_get(client, expected_ip, domain,
                 callback=lambda r, d=domain: observations[d].__setitem__("http", r))
    env.run(duration=60.0)

    rows = []
    for domain in DOMAINS:
        obs = observations[domain]
        a_poisoned = obs["a"].addresses == [poison_ip]
        mx_poisoned = obs["mx"].addresses == [poison_ip]
        http = obs["http"].status
        rows.append([
            domain,
            "INJECTED" if a_poisoned else ",".join(obs["a"].addresses) or obs["a"].status,
            "INJECTED" if mx_poisoned else "truthful",
            "RESET" if http == "reset" else http,
            "BLOCKED" if (a_poisoned or http == "reset") else "open",
        ])
    print(render_table(
        ["domain", "A answer", "MX answer", "direct HTTP", "verdict"],
        rows,
        title="Vantage study from inside the censored AS",
    ))

    # Keyword filtering: a request whose *path* carries a sensitive term is
    # reset even toward an unblocked server.
    keyword_result = {}
    http_get(client, env.topo.control_web.ip, "example.org", KEYWORD_PROBE_PATH,
             callback=lambda r: keyword_result.setdefault("res", r))
    env.run(duration=10.0)
    print(f"\nkeyword probe GET {KEYWORD_PROBE_PATH} -> {keyword_result['res'].status}")

    print("\ncensor actions observed (ground truth):")
    for event in env.censor.events[:12]:
        print(f"  [{event.time:7.3f}s] {event.mechanism:10} {event.detail}")
    if len(env.censor.events) > 12:
        print(f"  ... and {len(env.censor.events) - 12} more")


if __name__ == "__main__":
    main()
