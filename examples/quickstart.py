#!/usr/bin/env python3
"""Quickstart: measure censorship stealthily from inside a censored AS.

Builds the full reference environment (censored AS, GFC-model censor,
NSA-model surveillance), runs the paper's spam-cloaked measurement
(Method #2) beside the overt baseline, and compares both accuracy and what
the surveillance system learned about each measurer.

Run:  python examples/quickstart.py
"""

from repro.core import (
    OvertHTTPMeasurement,
    SpamMeasurement,
    assess_risk,
    build_environment,
)
from repro.core.evaluation import BLOCKED_TARGETS_FULL, CONTROL_TARGETS_FULL

TARGETS = list(BLOCKED_TARGETS_FULL) + CONTROL_TARGETS_FULL


def run_technique(factory, label):
    env = build_environment(censored=True, seed=0, population_size=10)
    technique = factory(env)
    technique.start()
    env.run(duration=90.0)

    print(f"\n=== {label} ===")
    for result in technique.results:
        print(f"  {result}")
    risk = assess_risk(
        env.surveillance,
        technique=label,
        measurer_user="measurer",
        measurer_ip=env.topo.measurement_client.ip,
        now=env.sim.now,
    )
    print(
        f"  -> surveillance picture: {risk.attributed_alerts} attributed alert(s), "
        f"confidence {risk.attribution_confidence:.2f}, "
        f"investigated={risk.investigated}, risk score {risk.risk_score():.2f}"
    )
    return technique, risk


def main():
    print("Reproduction of 'Can Censorship Measurements Be Safe(r)?' (HotNets 2015)")
    print(f"Measuring {len(TARGETS)} domains from inside the censored AS...")

    _, overt_risk = run_technique(
        lambda env: OvertHTTPMeasurement(env.ctx, TARGETS), "overt HTTP baseline"
    )
    _, spam_risk = run_technique(
        lambda env: SpamMeasurement(env.ctx, TARGETS), "spam-cloaked measurement (Method #2)"
    )

    print("\n=== verdict ===")
    print(
        f"Both techniques found the same censorship, but the overt baseline "
        f"left {overt_risk.attributed_alerts} user-attributed alert(s) while the "
        f"spam-cloaked measurement left {spam_risk.attributed_alerts}."
    )


if __name__ == "__main__":
    main()
