#!/usr/bin/env python3
"""Cover-traffic campaign: hide a measurement in a spoofed crowd (paper §4).

Runs the stateless spoofed-DNS technique with increasing cover-set sizes
and the stateful TTL-limited mimicry against a cooperating measurement
server, then prints how the surveillance system's attribution degrades.

Run:  python examples/spoofed_cover_campaign.py
"""

import math

from repro.analysis import render_table
from repro.core import (
    StatefulMimicryMeasurement,
    StatelessSpoofedDNSMeasurement,
    assess_risk,
    build_environment,
)
from repro.core.evaluation import BLOCKED_TARGETS_FULL


def stateless_sweep():
    print("Stateless spoofed-DNS mimicry: attribution vs. cover size")
    rows = []
    for cover in (0, 3, 8, 15):
        env = build_environment(censored=True, seed=2, population_size=max(cover, 1) + 2)
        technique = StatelessSpoofedDNSMeasurement(
            env.ctx, list(BLOCKED_TARGETS_FULL), env.cover_ips(cover)
        )
        technique.start()
        env.run(duration=60.0)
        detected = sum(1 for r in technique.results if r.blocked)
        risk = assess_risk(env.surveillance, f"cover={cover}", "measurer",
                           env.topo.measurement_client.ip, now=env.sim.now)
        rows.append([
            cover,
            f"{detected}/{len(technique.results)}",
            risk.attribution_confidence,
            f"{risk.suspect_entropy:.2f} / {math.log2(cover + 1):.2f}",
            "yes" if risk.investigated else "no",
        ])
    print(render_table(
        ["cover hosts", "censorship detected", "measurer confidence",
         "entropy / ideal", "investigated"],
        rows,
    ))


def stateful_demo():
    print("\nStateful TTL-limited mimicry toward our measurement server")
    env = build_environment(censored=True, seed=3, population_size=14)
    payloads = [
        b"GET /weather HTTP/1.1\r\nHost: probe\r\n\r\n",       # innocuous
        b"GET /falun HTTP/1.1\r\nHost: probe\r\n\r\n",          # keyword probe
        b"GET / HTTP/1.1\r\nHost: twitter.com\r\n\r\n",         # blocked Host
    ]
    technique = StatefulMimicryMeasurement(
        env.ctx, env.mimicry_server, payloads, env.cover_ips(11)
    )
    technique.start()
    env.run(duration=90.0)

    rows = []
    for payload in payloads:
        label = payload.decode().splitlines()[0]
        verdict = technique.verdict_for_payload(payload)
        rows.append([label, verdict.value])
    print(render_table(["probe", "majority verdict"], rows))

    risk = assess_risk(env.surveillance, "stateful", "measurer",
                       env.topo.measurement_client.ip, now=env.sim.now)
    print(
        f"\nsurveillance view: confidence {risk.attribution_confidence:.2f} "
        f"over {int(round(1 / max(risk.attribution_confidence, 1e-9)))} suspects, "
        f"investigated={risk.investigated}"
    )
    print(
        "note: the TTL-limited SYN/ACKs died inside the AS, so no cover "
        "host ever sent a replay RST"
    )


if __name__ == "__main__":
    stateless_sweep()
    stateful_demo()
