#!/usr/bin/env python3
"""The censorship-vs-surveillance asymmetry, end to end (paper §2).

Stands up a censored AS with realistic population traffic (web, DNS, p2p,
spam bots, background scanners), lets the surveillance system drink from
the firehose, and shows:

1. Massive Volume Reduction throwing away ~30 % of bytes (mostly p2p);
2. the 7.5 % content-retention budget holding;
3. the Syria-style infeasibility of alarming on every censored query;
4. an analyst who still finds an *overt* measurer trivially.

Run:  python examples/surveillance_tradeoff.py
"""

import random

from repro.analysis import SyriaLogGenerator, analyze_logs, render_table
from repro.core import OvertHTTPMeasurement, build_environment
from repro.core.evaluation import BLOCKED_TARGETS_FULL


def main():
    print("building censored AS with population traffic...")
    env = build_environment(censored=True, seed=4, population_size=12)
    env.surveillance.analyst.escalation_threshold = 1

    # Traffic shares calibrated so stage-1 reduction lands near the paper's
    # ~30 % (dominated by p2p) — see bench_e4_mvr_storage.py.
    from repro.traffic import PopulationMix

    mix = PopulationMix(
        env.topo,
        p2p_chunk=4096, p2p_interval=4.0, web_interval=0.2,
        dns_interval=0.3, spam_interval=3.0, scan_interval=1.0,
    )
    mix.start(until=60.0)

    # An overt measurer works alongside the population.
    technique = OvertHTTPMeasurement(env.ctx, list(BLOCKED_TARGETS_FULL))
    technique.start()
    env.run(duration=90.0)

    print(f"population activity: {mix.stats()}")
    summary = env.surveillance.summary()
    print(render_table(
        ["quantity", "value"],
        [
            ["packets seen at border", summary["packets_seen"]],
            ["bytes seen", summary["bytes_seen"]],
            ["MVR discard fraction", f"{summary['discard_fraction']:.1%}"],
            ["content retained fraction", f"{summary['retained_fraction']:.1%} (budget 7.5%)"],
            ["flow metadata records", summary["flow_records"]],
            ["retained alerts", summary["retained_alerts"]],
        ],
        title="\nsurveillance system state after the run",
    ))
    print("\ndiscarded by class:")
    for cls, size in sorted(summary["discarded_by_class"].items()):
        print(f"  {cls:6} {size:>10} bytes")

    investigations = env.surveillance.run_analyst(env.sim.now)
    print("\nanalyst investigations opened:")
    for inv in investigations:
        print(f"  {inv.user}: {inv.alert_count} alert(s) — {'; '.join(inv.reasons[:2])}")
    if not investigations:
        print("  (none)")

    # The Syria-scale argument: at country scale, per-query alarming fails.
    print("\nwhy not alarm on every censored query? (Syria logs, scaled)")
    generator = SyriaLogGenerator(population=100_000, rng=random.Random(4))
    analysis = analyze_logs(generator.generate(), 100_000)
    print(
        f"  {analysis.users_touching_censored} of {analysis.population} users "
        f"({analysis.censored_user_fraction:.2%}) touched censored content in 2 days;"
    )
    print(
        f"  pursuing them would take {analysis.pursuit_burden(10):.0f} analyst-days "
        f"at 10 investigations/day."
    )


if __name__ == "__main__":
    main()
