#!/usr/bin/env python3
"""Cache amplification and injection evidence: two DNS-censorship studies.

1. **Cache amplification** — with an in-AS caching resolver, a single
   GFC injection against the resolver's upstream lookup poisons *every*
   client in the AS for the record's TTL: censorship outlives the on-path
   event.  Client queries never even cross the border.

2. **Duplicate-response evidence** — when a client queries across the
   border directly, the off-path injector cannot suppress the genuine
   answer; the client sees two contradictory responses, which is
   self-contained injection evidence (no poison-IP list needed).

Run:  python examples/resolver_cache_study.py
"""

from repro.analysis import render_table
from repro.censor import GreatFirewall
from repro.core import DuplicateResponseDetector, build_environment
from repro.netsim import Host, PacketCapture, build_censored_as, resolve
from repro.netsim.capture import dns_only
from repro.netsim.resolver import CachingResolver
from repro.traffic import install_standard_servers


def cache_amplification():
    print("--- study 1: cache amplification ---")
    topo = build_censored_as(seed=5, population_size=6)
    install_standard_servers(topo)
    gfw = GreatFirewall()
    border_capture = PacketCapture(predicate=dns_only)
    topo.border_router.add_tap(gfw)
    topo.border_router.add_tap(border_capture)

    resolver_host = topo.network.add(Host("resolver", "10.1.250.53"))
    topo.network.connect(resolver_host, topo.internal_router)
    resolver = CachingResolver(resolver_host, upstream_ip=topo.dns_server.ip)

    answers = []
    for client in topo.population:
        resolve(client, resolver_host.ip, "twitter.com",
                callback=lambda r, c=client: answers.append((c.name, r.addresses)))
        topo.run()

    print(render_table(
        ["client", "answer"],
        [[name, ",".join(addrs)] for name, addrs in answers],
    ))
    print(
        f"clients poisoned: {len(answers)};  censor injections: "
        f"{gfw.dns_injections};  upstream queries that crossed the border: "
        f"{resolver.upstream_queries}"
    )
    client_ips = {host.ip for host in topo.population}
    crossed = {cap.packet.src for cap in border_capture.packets} & client_ips
    print(f"client DNS packets observed at the border: {len(crossed)} "
          f"(the resolver shields them)")


def duplicate_evidence():
    print("\n--- study 2: duplicate-response injection evidence ---")
    env = build_environment(censored=True, seed=5, population_size=4)
    detector = DuplicateResponseDetector(env.ctx.client)
    for domain in ("twitter.com", "youtube.com", "example.org"):
        resolve(env.ctx.client, env.ctx.resolver_ip, domain, callback=lambda r: None)
    env.run(duration=20.0)

    rows = []
    for pair in detector.transactions.values():
        rows.append([
            pair.qname,
            len(pair.responses),
            " vs ".join(",".join(a) or "-" for a in pair.distinct_answers()),
            "INJECTION" if pair.contradictory else "clean",
        ])
    print(render_table(["domain", "responses", "answers seen", "evidence"], rows))
    print(f"duplicate rate: {detector.duplicate_rate():.2f} "
          f"(censored names only — the race leaves two answers)")


if __name__ == "__main__":
    cache_amplification()
    duplicate_evidence()
