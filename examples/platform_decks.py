#!/usr/bin/env python3
"""Run the full OONI/Centinel-style test deck at each risk posture.

The platform runs three tests (DNS consistency, HTTP reachability, TCP
reachability) over a target list, choosing overt or stealthy
implementations per the configured risk posture, and emits an OONI-style
JSON document plus a risk assessment.

Run:  python examples/platform_decks.py
"""

import json

from repro.analysis import render_table
from repro.core import MeasurementPlatform, build_environment
from repro.core.evaluation import BLOCKED_TARGETS_FULL

# The full blocked list plus controls: bulk enough that the volume-
# threshold interest rules have something to see in the overt posture.
DOMAINS = list(BLOCKED_TARGETS_FULL) + ["example.org", "weather.gov"]


def main():
    rows = []
    sample_document = None
    for posture in ("overt", "stealthy", "paranoid"):
        env = build_environment(censored=True, seed=6, population_size=14)
        platform = MeasurementPlatform(env, posture=posture)
        report = platform.run_deck(DOMAINS, duration=120.0)
        rows.append([
            posture,
            ",".join(report.blocked_domains()),
            report.risk.attributed_alerts,
            report.risk.attribution_confidence,
            "yes" if report.risk.evaded else "no",
        ])
        if posture == "stealthy":
            sample_document = report.to_json()

    print(render_table(
        ["posture", "blocked domains found", "attributed alerts",
         "confidence", "evaded"],
        rows,
        title="the same deck at three risk postures",
    ))

    print("\nexcerpt of the stealthy deck's JSON document:")
    parsed = json.loads(sample_document)
    print(json.dumps({"metadata": parsed["metadata"],
                      "summary": parsed["summary"]}, indent=2))


if __name__ == "__main__":
    main()
