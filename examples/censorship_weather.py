#!/usr/bin/env python3
"""Censorship as weather: a week of daily measurements over a churning
blocklist (the ConceptDoppler framing the paper's related work cites).

The censor adds archive.org to its blocklist on day 2 and unblocks
twitter.com on day 4; the daily stealth-compatible DNS deck catches both
transitions.

Run:  python examples/censorship_weather.py
"""

from repro.core import OvertDNSMeasurement, build_environment
from repro.core.longitudinal import DAY, LongitudinalCampaign

DOMAINS = ["twitter.com", "youtube.com", "archive.org", "example.org"]


def main():
    env = build_environment(censored=True, seed=8, population_size=4)
    campaign = LongitudinalCampaign(
        env.sim,
        technique_factory=lambda: OvertDNSMeasurement(env.ctx, DOMAINS),
        interval=DAY,
        epochs=7,
    )
    # Blocklist churn, scheduled mid-simulation:
    env.sim.at(2 * DAY - 300,
               lambda: env.censor.policy.blocked_domains.append("archive.org"))
    env.sim.at(4 * DAY - 300,
               lambda: env.censor.policy.blocked_domains.remove("twitter.com"))

    campaign.start()
    env.run(duration=7 * DAY)

    print(campaign.weather_report())
    print("\ntransitions detected:")
    for change in campaign.transitions():
        kind = "newly BLOCKED" if change.newly_blocked else (
            "UNBLOCKED" if change.newly_unblocked else "changed mechanism")
        print(f"  day {change.epoch}: {change.target} {kind} "
              f"({change.before.value} -> {change.after.value})")


if __name__ == "__main__":
    main()
