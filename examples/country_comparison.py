#!/usr/bin/env python3
"""Comparative vantage study: the same domains from three vantages.

Two censored countries — alpha runs a GFC-style censor (DNS injection +
keyword resets), beta a block-page censor — plus an uncensored control
vantage, all sharing the same servers.  The per-country mechanism
signatures come out exactly as a multi-country censorship report tabulates
them.

Run:  python examples/country_comparison.py
"""

from repro.analysis import render_table
from repro.censor import CensorshipPolicy, GreatFirewall
from repro.netsim import DNSServer, WebServer, Zone, build_two_country, http_get, resolve

DOMAINS = ["twitter.com", "youtube.com", "example.org"]


def build_world():
    topo = build_two_country(seed=7, clients_per_country=3)
    zone = Zone()
    for domain, ip in topo.domains.items():
        zone.add_a(domain, ip)
    DNSServer(topo.dns_server, zone)
    WebServer(topo.blocked_web, default_body="<html>site content</html>")
    WebServer(topo.control_web, default_body="<html>control content</html>")

    gfc = GreatFirewall(
        policy=CensorshipPolicy.gfc_preset(),
        variables={"HOME_NET": "10.10.0.0/16", "EXTERNAL_NET": "any"},
    )
    blockpage_policy = CensorshipPolicy.blockpage_preset()
    blockpage_policy.dns_poisoning = False
    blockpage = GreatFirewall(
        policy=blockpage_policy,
        variables={"HOME_NET": "10.20.0.0/16", "EXTERNAL_NET": "any"},
    )
    topo.country_a.border_router.add_tap(gfc)
    topo.country_b.border_router.add_tap(blockpage)
    return topo, gfc


def classify(dns_result, http_result, poison_ip):
    if dns_result.addresses == [poison_ip]:
        return "DNS INJECTED"
    if http_result is None:
        return "?"
    if http_result.ok and http_result.response.status == 403:
        return "BLOCK PAGE"
    if http_result.status in ("reset", "timeout"):
        return http_result.status.upper()
    return "open"


def main():
    topo, gfc = build_world()
    vantages = {
        "alpha (GFC)": topo.country_a.vantage,
        "beta (block page)": topo.country_b.vantage,
        "control": topo.control_vantage,
    }

    observations = {name: {} for name in vantages}
    for name, vantage in vantages.items():
        for domain in DOMAINS:
            resolve(vantage, topo.dns_server.ip, domain,
                    callback=lambda r, n=name, d=domain:
                        observations[n].setdefault(d, {}).__setitem__("dns", r))
            http_get(vantage, topo.domains[domain], domain,
                     callback=lambda r, n=name, d=domain:
                         observations[n].setdefault(d, {}).__setitem__("http", r))
    topo.run()

    rows = []
    for domain in DOMAINS:
        row = [domain]
        for name in vantages:
            obs = observations[name][domain]
            row.append(classify(obs["dns"], obs.get("http"), gfc.policy.poison_ip))
        rows.append(row)
    print(render_table(
        ["domain"] + list(vantages), rows,
        title="the same domains from three vantages",
    ))


if __name__ == "__main__":
    main()
