"""Unit tests for the sim-time span tracer and its Chrome export."""

import json

from repro.obs import Tracer, active_tracer, set_tracer, use_tracer
from repro.obs.trace import _NULL_SPAN


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


class TestSpans:
    def test_span_records_complete_event_in_microseconds(self):
        clock = FakeClock(1.0)
        tracer = Tracer(clock=clock)
        span = tracer.begin("connect", "tcp", role="client")
        clock.now = 1.5
        span.end(outcome="closed")
        [event] = tracer.events
        assert event["ph"] == "X"
        assert event["name"] == "connect"
        assert event["cat"] == "tcp"
        assert event["ts"] == 1_000_000.0
        assert event["dur"] == 500_000.0
        assert event["args"] == {"role": "client", "outcome": "closed"}

    def test_double_end_is_idempotent(self):
        tracer = Tracer(clock=FakeClock())
        span = tracer.begin("x", "tcp")
        span.end()
        span.end()
        assert len(tracer.events) == 1

    def test_context_manager_ends_span(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.begin("x", "tcp"):
            clock.now = 2.0
        assert tracer.events[0]["dur"] == 2_000_000.0

    def test_end_clamps_to_non_negative_duration(self):
        clock = FakeClock(5.0)
        tracer = Tracer(clock=clock)
        span = tracer.begin("x", "tcp")
        clock.now = 3.0  # clock went "backwards" (explicit start in the future)
        span.end()
        assert tracer.events[0]["dur"] == 0.0

    def test_explicit_start_and_end_times(self):
        tracer = Tracer(clock=FakeClock(99.0))
        span = tracer.begin("x", "tcp", start=1.0)
        span.end(end_time=2.0)
        assert tracer.events[0]["ts"] == 1_000_000.0
        assert tracer.events[0]["dur"] == 1_000_000.0


class TestCategoryFilter:
    def test_disabled_category_returns_shared_null_span(self):
        tracer = Tracer(clock=FakeClock(), categories={"tcp"})
        span = tracer.begin("x", "rules")
        assert span is _NULL_SPAN
        assert not span
        span.end()
        assert tracer.events == []

    def test_disabled_category_drops_instants(self):
        tracer = Tracer(clock=FakeClock(), categories={"tcp"})
        tracer.instant("sweep", "rules")
        assert tracer.events == []

    def test_enabled_for(self):
        assert Tracer().enabled_for("anything")
        tracer = Tracer(categories={"tcp"})
        assert tracer.enabled_for("tcp")
        assert not tracer.enabled_for("rules")


class TestTracksAndInstants:
    def test_track_ids_interned_in_first_use_order(self):
        tracer = Tracer(clock=FakeClock())
        tracer.begin("a", "tcp", track="tcp").end()
        tracer.begin("b", "measurement", track="measure:scan").end()
        tracer.begin("c", "tcp", track="tcp").end()
        assert tracer._tracks == {"tcp": 1, "measure:scan": 2}

    def test_track_defaults_to_category(self):
        tracer = Tracer(clock=FakeClock())
        tracer.instant("hit", "rules")
        assert tracer._tracks == {"rules": 1}

    def test_instant_shape(self):
        tracer = Tracer(clock=FakeClock(2.0))
        tracer.instant("drop", "link", when=1.0, reason="loss")
        [event] = tracer.events
        assert event["ph"] == "i"
        assert event["ts"] == 1_000_000.0
        assert event["s"] == "t"
        assert event["args"] == {"reason": "loss"}


class TestFinalize:
    def test_finalize_closes_dangling_spans(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        tracer.begin("dangling", "tcp")
        clock.now = 4.0
        assert tracer.finalize() == 1
        [event] = tracer.events
        assert event["args"]["unfinished"] is True
        assert event["dur"] == 4_000_000.0
        assert tracer.finalize() == 0  # nothing left open

    def test_closed_spans_not_marked_unfinished(self):
        tracer = Tracer(clock=FakeClock())
        tracer.begin("done", "tcp").end()
        assert tracer.finalize() == 0
        assert "unfinished" not in tracer.events[0]["args"]


class TestChromeExport:
    def _traced(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock, process_name="test-proc")
        span = tracer.begin("flow", "tcp", track="tcp")
        clock.now = 1.0
        tracer.instant("sweep", "rules", track="rules")
        clock.now = 2.0
        span.end()
        return tracer

    def test_metadata_events_name_process_and_tracks(self):
        doc = self._traced().chrome()
        assert doc["displayTimeUnit"] == "ms"
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert meta[0]["args"] == {"name": "test-proc"}
        thread_names = {e["tid"]: e["args"]["name"] for e in meta[1:]}
        assert thread_names == {1: "tcp", 2: "rules"}

    def test_body_sorted_by_timestamp(self):
        doc = self._traced().chrome()
        body = [e for e in doc["traceEvents"] if e["ph"] != "M"]
        assert [e["name"] for e in body] == ["flow", "sweep"]
        assert body == sorted(
            body, key=lambda e: (e["ts"], e["tid"], e["name"], e["ph"])
        )

    def test_write_chrome_and_jsonl(self, tmp_path):
        tracer = self._traced()
        chrome_path = tracer.write_chrome(str(tmp_path / "t.trace.json"))
        jsonl_path = tracer.write_jsonl(str(tmp_path / "t.trace.jsonl"))
        doc = json.loads(open(chrome_path).read())
        assert doc == tracer.chrome()
        lines = open(jsonl_path).read().splitlines()
        assert [json.loads(line) for line in lines] == doc["traceEvents"]

    def test_clear_resets_everything(self):
        tracer = self._traced()
        tracer.clear()
        assert tracer.events == []
        assert tracer._tracks == {}
        assert tracer.finalize() == 0


class TestInstallation:
    def test_defaults_to_none(self):
        assert active_tracer() is None

    def test_use_tracer_scopes_installation(self):
        tracer = Tracer()
        with use_tracer(tracer) as installed:
            assert installed is tracer
            assert active_tracer() is tracer
        assert active_tracer() is None

    def test_set_tracer_returns_previous(self):
        tracer = Tracer()
        assert set_tracer(tracer) is None
        try:
            assert set_tracer(None) is tracer
        finally:
            set_tracer(None)
